"""E10 — SLA tiers and adaptive consistency (Section 5 directions)."""

from repro.bench.sla_adaptive import run_adaptive_bench, run_sla_bench

from benchmarks.conftest import emit


def test_sla_report(benchmark):
    report = benchmark.pedantic(
        run_sla_bench, kwargs={"clients": 40, "duration": 5.0},
        rounds=1, iterations=1,
    )
    emit(report)
    assert "premium" in report and "sla(ss2pl)" in report


def test_adaptive_report(benchmark):
    report = benchmark.pedantic(
        run_adaptive_bench, kwargs={"clients": 60, "duration": 5.0},
        rounds=1, iterations=1,
    )
    emit(report)
    assert "adaptive" in report and "read-committed" in report
