"""E5 — Section 4.3.2: declarative scheduling overhead.

pytest-benchmark times the full scheduler run (drain + insert + SS2PL
query + move to history) at the paper's 300- and 500-client operating
points; the report extrapolates total workload overhead exactly as the
paper does.
"""

import pytest

from repro.bench.declarative_overhead import (
    measure_scheduler_run,
    paper_snapshot,
    run_declarative_overhead,
)
from repro.core.scheduler import DeclarativeScheduler, SchedulerConfig
from repro.protocols.legacy import PaperListing1Protocol

from benchmarks.conftest import emit


@pytest.mark.parametrize("clients", [300, 500])
def test_scheduler_run_timing(benchmark, clients):
    """The quantity the paper reports as 358 ms / 545 ms per run."""
    incoming, history = paper_snapshot(clients)

    def fresh_scheduler():
        scheduler = DeclarativeScheduler(
            PaperListing1Protocol(),
            config=SchedulerConfig(prune_history=False),
        )
        scheduler.history.record_batch(history)
        for request in incoming:
            scheduler.submit(request)
        return (scheduler,), {}

    def one_run(scheduler):
        return scheduler.step()

    result = benchmark.pedantic(
        one_run, setup=fresh_scheduler, rounds=5, iterations=1
    )
    # Paper: "about half of the number of concurrent clients" returned.
    assert 0.3 * clients < result.batch_size < 0.7 * clients


def test_sec432_report(benchmark):
    report = benchmark.pedantic(
        run_declarative_overhead,
        kwargs={"client_counts": (100, 200, 300, 400, 500), "repetitions": 3},
        rounds=1,
        iterations=1,
    )
    emit(report)
    assert "declarative scheduling overhead" in report
    assert "paper" in report


def test_per_run_time_grows_with_clients():
    small = measure_scheduler_run(100, repetitions=2)
    large = measure_scheduler_run(500, repetitions=2)
    assert large.per_run_seconds > small.per_run_seconds
    assert large.returned_per_run > small.returned_per_run
