"""E3 — Figure 2: MU/SU execution-time ratio vs number of clients.

Full-scale reproduction: the paper's 240 s window at each client count.
The shape assertions encode Figure 2's qualitative curve — near-flat to
~300 clients, then a sharp (log-scale) rise.
"""

from repro.bench.figure2 import run_figure2, sweep_native

from benchmarks.conftest import emit

CLIENT_COUNTS = (1, 100, 200, 300, 350, 400, 450, 500, 600)


def test_figure2_full_sweep(benchmark):
    report = benchmark.pedantic(
        run_figure2,
        kwargs={"client_counts": CLIENT_COUNTS, "duration": 240.0},
        rounds=1,
        iterations=1,
    )
    emit(report)
    assert "Figure 2" in report


def test_figure2_shape():
    points = {
        p.clients: p for p in sweep_native((1, 300, 500), duration=240.0)
    }
    # Near-flat region: within 2x of SU at 300 clients (paper: 124%).
    assert 100 < points[300].ratio_percent < 200
    # Collapse: order-of-magnitude blowup at 500 (paper: ~1600%).
    assert points[500].ratio_percent > 1000
    # Monotone rise.
    assert (
        points[1].ratio_percent
        < points[300].ratio_percent
        < points[500].ratio_percent
    )
