"""E9 — productivity: declarative vs imperative specification size."""

from repro.bench.productivity import run_productivity
from repro.baselines.imperative import ImperativeSS2PLScheduler
from repro.bench.productivity import _code_lines
from repro.lang.protocol import SDLProtocol, SDL_SS2PL
from repro.protocols.legacy import PaperListing1Protocol
from repro.protocols.legacy import SS2PLDatalogProtocol

from benchmarks.conftest import emit


def test_productivity_report(benchmark):
    report = benchmark.pedantic(run_productivity, rounds=1, iterations=1)
    emit(report)
    assert "SQL (paper Listing 1)" in report
    assert "imperative" in report


def test_declarative_forms_strictly_smaller():
    sql = PaperListing1Protocol().spec_line_count()
    datalog = SS2PLDatalogProtocol().spec_line_count()
    sdl = SDLProtocol(SDL_SS2PL).spec_line_count()
    imperative = _code_lines(ImperativeSS2PLScheduler)
    # The paper's succinctness ladder: SDL < Datalog < SQL < imperative.
    assert sdl < datalog < sql < imperative
    # And the headline claim: an order of magnitude vs hand-coding.
    assert imperative / sdl >= 10
