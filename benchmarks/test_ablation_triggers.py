"""E7 — trigger-policy ablation (the evaluation Section 3.3 defers)."""

from repro.bench.triggers_ablation import (
    ABLATION_WORKLOAD,
    run_trigger_ablation,
)
from repro.core.simulation import MiddlewareSimulation
from repro.core.triggers import FillLevelTrigger, TimeLapseTrigger
from repro.protocols.legacy import SS2PLRelalgProtocol

from benchmarks.conftest import emit


def test_trigger_ablation_report(benchmark):
    report = benchmark.pedantic(
        run_trigger_ablation,
        kwargs={"clients": 40, "duration": 5.0},
        rounds=1,
        iterations=1,
    )
    emit(report)
    assert "hybrid" in report and "fill" in report and "time" in report


def _run(trigger):
    return MiddlewareSimulation(
        protocol=SS2PLRelalgProtocol(),
        trigger=trigger,
        spec=ABLATION_WORKLOAD,
        clients=40,
        seed=5,
    ).run(4.0)


def test_batching_amortizes_scheduler_runs():
    eager = _run(FillLevelTrigger(1))
    batched = _run(FillLevelTrigger(40))
    # Bigger batches => far fewer scheduler runs for comparable work.
    assert batched.scheduler_runs < eager.scheduler_runs
    assert batched.mean_batch_size > eager.mean_batch_size


def test_long_time_trigger_hurts_latency():
    fast = _run(TimeLapseTrigger(0.005))
    slow = _run(TimeLapseTrigger(0.1))
    assert slow.mean_response() > fast.mean_response()
