"""E1 — regenerate the paper's Table 1 (related-approach capabilities)."""

from repro.bench.table1 import run_table1, table1_mismatches

from benchmarks.conftest import emit


def test_table1_regeneration(benchmark):
    report = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    emit(report)
    assert "EQMS" in report and "QShuffler" in report
    assert "Declarative scheduler (this work)" in report


def test_table1_matches_published_vectors():
    assert table1_mismatches() == []
