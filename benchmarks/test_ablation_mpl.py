"""E12 — external MPL admission control vs raw native at 500 clients."""

from repro.bench.mpl_ablation import run_mpl_ablation
from repro.server.engine import SimulatedDBMS
from repro.workload.spec import PAPER_WORKLOAD

from benchmarks.conftest import emit


def test_mpl_ablation_report(benchmark):
    report = benchmark.pedantic(
        run_mpl_ablation,
        kwargs={"clients": 500, "duration": 240.0},
        rounds=1,
        iterations=1,
    )
    emit(report)
    assert "uncapped" in report


def test_cap_below_knee_restores_throughput():
    dbms = SimulatedDBMS(PAPER_WORKLOAD, seed=42)
    uncapped = dbms.run_multi_user(500, duration=240.0)
    capped = dbms.run_multi_user(500, duration=240.0, mpl_cap=300)
    assert capped.committed_statements > uncapped.committed_statements * 5
    assert capped.mu_over_su_percent < 200
