#!/usr/bin/env python
"""Throughput scaling curve of the sharded scheduler, 1/2/4/8 shards.

Writes ``BENCH_shards.json`` at the repository root (or ``--output``)::

    PYTHONPATH=src python benchmarks/bench_shards.py
    PYTHONPATH=src python benchmarks/bench_shards.py --quick
    PYTHONPATH=src python benchmarks/bench_shards.py --check

Each point drives a synchronous closed-loop client population through
``repro.api.make_scheduler("ss2pl", "compiled", shards=N)`` on a seeded
scenario workload (``zipf-hotspot`` — the adversarial hot-spot skew —
and ``matrix-sweep``'s uniform middleware workload).  The ``compiled``
backend re-evaluates the protocol query over the full pending/history
tables every step, so per-step cost grows superlinearly with the
backlog one scheduler holds — exactly the wall the paper's single
pending table hits, and exactly what partitioning divides.  Time is
virtual (deterministic deadlock timeouts and cross-shard retry
backoff); the reported requests/sec are wall-clock.

The facade steps its shards sequentially on one core, so each point
reports three throughput numbers derived from one measured run (see
the model comment in :func:`drive` and docs/benchmarks.md):
``grants_per_s_single_thread`` (raw wall), ``grants_per_s_lockstep``
(one worker per shard, global barrier per step — the conservative
floor), and ``grants_per_s`` (one worker per shard, work-conserving —
the headline; the busiest shard's total step time is the makespan).
Each point is the median of ``--repeats`` trials by headline
throughput.

Every point asserts request-lifecycle totality first — zero lost
requests: each submitted request reaches exactly one terminal state
(granted, or aborted/shed by recovery) under the invariant monitor,
with the cross-shard grant-union conflict check armed on the sound
``two-phase`` route (16-step cadence; SS2PL holds grants to commit,
so persistent conflicts cannot hide between scans).  The ``home``
route is recorded for comparison with the conflict check off (it is
deliberately unsound — see DESIGN.md §7).

``--check`` (used locally; CI records the artefact non-gating) fails
the run unless 4-shard two-phase throughput on zipf-hotspot reaches
``--min-speedup`` (default 2.0) times the 1-shard point.  The floor is
a regression guard, deliberately below the measured median (~2.4x,
whose structural ceiling on this workload is ~2.7x — the hottest
object's conflict bucket is conserved under partitioning; DESIGN.md
§7) so single-machine noise does not flake it.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import repro.api as api  # noqa: E402
from repro.faults.invariants import InvariantMonitor, lock_model_of  # noqa: E402
from repro.model.request import (  # noqa: E402
    NO_OBJECT,
    Operation,
    Request,
    RequestAttributes,
)
from repro.scenarios import get_scenario  # noqa: E402
from repro.workload.generator import TransactionFactory  # noqa: E402

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_shards.json"
)

PROTOCOL = "ss2pl"
BACKEND = "compiled"
SHARD_COUNTS = (1, 2, 4, 8)
WORKLOADS = ("zipf-hotspot", "matrix-sweep")

#: Virtual seconds per driver iteration; all timeouts below are in the
#: same virtual clock, so recovery behaviour is deterministic.
DT = 0.001


class _Client:
    """One closed-loop client: submit a transaction's data statements,
    wait for every grant, submit the commit, wait, repeat."""

    __slots__ = ("client_id", "ta", "waiting", "committing", "done_txns")

    def __init__(self, client_id: int) -> None:
        self.client_id = client_id
        self.ta = None
        self.waiting = set()
        self.committing = False
        self.done_txns = 0

    @property
    def idle(self) -> bool:
        return self.ta is None


def drive(
    workload,
    shards: int,
    route: str,
    clients: int,
    transactions: int,
    seed: int,
    check_conflicts: bool,
    reserve_mode: str = "escalate",
) -> dict:
    """One bench point: wall-clock throughput + zero-lost accounting."""
    scheduler = api.make_scheduler(
        PROTOCOL,
        BACKEND,
        shards=shards,
        shard_route=route,
        recovery=api.RecoveryPolicy(
            request_timeout=30.0, orphan_lease=60.0, retry_delay=0.01
        ),
        # A reserve stall on this workload is a hot-lock convoy, not a
        # deadlock (the zero-churn probe converges with the sweep
        # disabled), so the timeout is set far above any convoy wait:
        # it stays armed purely as the deadlock backstop.
        cross_shard=api.CrossShardPolicy(
            reserve_timeout=5.0, retry_backoff=0.005,
            reserve_mode=reserve_mode,
        ),
    )
    # Conflict scans on a 16-step cadence: SS2PL holds grants until
    # commit, so persistent conflicting grants are still witnessed
    # (see InvariantMonitor.conflict_interval); lifecycle totality is
    # checked every step and asserted below.
    monitor = InvariantMonitor(
        lock_model_of(scheduler.protocol) if check_conflicts else None,
        conflict_interval=16,
    )
    scheduler.monitor = monitor
    factory = TransactionFactory(workload, random.Random(seed))
    profiles = [factory.next_profile() for __ in range(transactions)]
    pool = [_Client(i + 1) for i in range(clients)]
    ids = iter(range(1, 1 << 30))
    tas = iter(range(1, 1 << 30))
    next_profile = 0
    granted = submitted = committed = aborted = 0
    #: request id -> owning client, live requests only.
    owner_of = {}
    aborted_tas = set()

    started = time.perf_counter()
    now = 0.0
    serial_query_s = 0.0
    serial_step_s = critical_step_s = 0.0
    shard_step_totals = [0.0] * shards
    max_iterations = 4_000_000
    for __ in range(max_iterations):
        for client in pool:
            if not client.idle or next_profile >= len(profiles):
                continue
            profile = profiles[next_profile]
            next_profile += 1
            client.ta = next(tas)
            client.committing = False
            attrs = RequestAttributes(client_id=client.client_id)
            for intrata, statement in enumerate(profile):
                request = Request(
                    id=next(ids),
                    ta=client.ta,
                    intrata=intrata,
                    operation=statement.operation,
                    obj=statement.obj,
                    attrs=attrs,
                )
                client.waiting.add(request.id)
                owner_of[request.id] = client
                scheduler.submit(request, now)
                submitted += 1
        result = scheduler.step(now)
        serial_query_s += result.query_seconds
        serial_step_s += sum(scheduler.shard_step_seconds)
        critical_step_s += max(scheduler.shard_step_seconds)
        for index, seconds in enumerate(scheduler.shard_step_seconds):
            shard_step_totals[index] += seconds
        for request in result.qualified:
            granted += 1
            client = owner_of.pop(request.id, None)
            if client is None:
                continue
            client.waiting.discard(request.id)
            if request.operation.is_termination:
                client.done_txns += 1
                committed += 1
                client.ta = None
                client.waiting.clear()
        for entries in (
            result.recovery.timeouts,
            result.recovery.orphans,
            result.recovery.sheds,
        ):
            for ta, __abort in entries:
                aborted_tas.add(ta)
                for client in pool:
                    if client.ta == ta:
                        aborted += 1
                        for rid in client.waiting:
                            owner_of.pop(rid, None)
                        client.waiting.clear()
                        client.ta = None
        # Commit once every data statement of the transaction is granted.
        for client in pool:
            if client.ta is None or client.committing or client.waiting:
                continue
            client.committing = True
            # Program-order slot of the commit: one past the last data
            # statement (profile length is constant per workload spec).
            commit = Request(
                id=next(ids),
                ta=client.ta,
                intrata=len(profiles[0]),
                operation=Operation.COMMIT,
                obj=NO_OBJECT,
                attrs=RequestAttributes(client_id=client.client_id),
            )
            client.waiting.add(commit.id)
            owner_of[commit.id] = client
            scheduler.submit(commit, now)
            submitted += 1
        if next_profile >= len(profiles) and all(c.idle for c in pool):
            break
        now += DT
    else:
        raise AssertionError("bench did not converge")
    wall = time.perf_counter() - started

    final = monitor.final_check(set(), now + 1_000.0)
    lost = submitted - sum(final.values())
    assert lost == 0, f"{lost} requests lost ({final} of {submitted})"
    # The facade steps shards sequentially, so the measured wall time
    # serializes N schedulers onto one core.  A deployment runs one
    # worker per shard; two concurrency models bracket what it would
    # see.  Both keep every cost outside the shards' own ``step()``
    # calls — driver, facade routing, cross-shard bookkeeping, global
    # monitors — fully counted and serial, and swap only the per-shard
    # step time (protocol query plus the shard's batch/trigger/recovery
    # work, measured per shard per step):
    #
    # * work-conserving ("grants_per_s", the headline): shards step
    #   independently and coordination stalls pipeline across the many
    #   in-flight transactions, so the busiest shard's *total* step
    #   time is the makespan;
    # * lockstep ("grants_per_s_lockstep", conservative floor): a
    #   global barrier per step, i.e. every step costs its slowest
    #   shard's step time.
    makespan_step_s = max(shard_step_totals)
    concurrent_wall = wall - serial_step_s + makespan_step_s
    lockstep_wall = wall - serial_step_s + critical_step_s
    return {
        "shards": shards,
        "route": route,
        "clients": clients,
        "transactions": transactions,
        "requests_submitted": submitted,
        "requests_granted": granted,
        "txn_committed": committed,
        "txn_aborted": aborted,
        "terminal_states": final,
        "lost": lost,
        "wall_s": round(wall, 4),
        "concurrent_wall_s": round(concurrent_wall, 4),
        "lockstep_wall_s": round(lockstep_wall, 4),
        "query_serial_s": round(serial_query_s, 4),
        "step_serial_s": round(serial_step_s, 4),
        "step_makespan_s": round(makespan_step_s, 4),
        "step_lockstep_s": round(critical_step_s, 4),
        "step_per_shard_s": [round(t, 4) for t in shard_step_totals],
        "grants_per_s_single_thread": round(granted / wall, 1),
        "grants_per_s_lockstep": round(granted / lockstep_wall, 1),
        "grants_per_s": round(granted / concurrent_wall, 1),
        "steps": scheduler.steps_run,
    }


def run_curve(
    workload_name: str,
    clients: int,
    transactions: int,
    seed: int,
    routes=("two-phase", "home"),
    repeats: int = 1,
) -> dict:
    workload = get_scenario(workload_name).workload
    points = []
    for route in routes:
        for shards in SHARD_COUNTS:
            # Median-of-N by headline throughput: single-machine noise
            # on a ~3 s point is easily +/-10%, which would dominate
            # the curve shape at repeats=1.
            trials = [
                drive(
                    workload,
                    shards,
                    route,
                    clients,
                    transactions,
                    seed,
                    # The union conflict check is the two-phase
                    # soundness witness; home mode is knowingly
                    # unsound, so only lifecycle totality is asserted
                    # there.
                    check_conflicts=(route == "two-phase"),
                )
                for __ in range(max(1, repeats))
            ]
            trials.sort(key=lambda t: t["grants_per_s"])
            point = trials[len(trials) // 2]
            point["trials"] = len(trials)
            point["grants_per_s_trials"] = [
                t["grants_per_s"] for t in trials
            ]
            baseline = next(
                (
                    p["grants_per_s"]
                    for p in points
                    if p["route"] == route and p["shards"] == 1
                ),
                None,
            )
            point["speedup_vs_1"] = (
                round(point["grants_per_s"] / baseline, 2)
                if baseline
                else 1.0
            )
            points.append(point)
            print(
                f"  {workload_name} {route:9s} x{shards}: "
                f"{point['grants_per_s']:>9.1f} grants/s "
                f"({point['speedup_vs_1']:.2f}x, "
                f"{point['txn_aborted']} txns aborted, "
                f"{point['wall_s']:.2f}s wall)"
            )
    return {
        "workload": workload_name,
        "clients": clients,
        "transactions": transactions,
        "seed": seed,
        "points": points,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--clients", type=int, default=128,
        help="closed-loop client population (default: 128)",
    )
    parser.add_argument(
        "--transactions", type=int, default=480,
        help="transactions per point (default: 480)",
    )
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="trials per point, median by throughput (default: 3)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller population/run for CI smoke",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail unless the 4-shard two-phase zipf-hotspot point "
        "reaches --min-speedup x the 1-shard point",
    )
    parser.add_argument("--min-speedup", type=float, default=2.0)
    args = parser.parse_args(argv)
    if args.quick:
        args.clients = min(args.clients, 32)
        args.transactions = min(args.transactions, 160)
        args.repeats = 1

    curves = []
    for workload_name in WORKLOADS:
        print(f"{workload_name}:")
        curves.append(
            run_curve(
                workload_name,
                args.clients,
                args.transactions,
                args.seed,
                repeats=args.repeats,
            )
        )

    artefact = {
        "bench": "shards",
        "protocol": PROTOCOL,
        "backend": BACKEND,
        "shard_counts": list(SHARD_COUNTS),
        "dt_virtual_s": DT,
        "zero_lost_asserted": True,
        "curves": curves,
    }
    args.output.write_text(
        json.dumps(artefact, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.output}")

    if args.check:
        zipf = next(c for c in curves if c["workload"] == "zipf-hotspot")
        speedup = next(
            p["speedup_vs_1"]
            for p in zipf["points"]
            if p["route"] == "two-phase" and p["shards"] == 4
        )
        if speedup < args.min_speedup:
            print(
                f"FAIL: 4-shard speedup {speedup:.2f}x < "
                f"{args.min_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(f"check OK: 4-shard speedup {speedup:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
