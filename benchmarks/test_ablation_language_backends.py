"""E8 — the same SS2PL rule on four declarative backends."""

import pytest

from repro.bench.declarative_overhead import paper_snapshot
from repro.bench.language_ablation import backends, run_language_ablation
from repro.core.stores import HistoryStore, PendingStore

from benchmarks.conftest import emit


def test_language_ablation_report(benchmark):
    report = benchmark.pedantic(
        run_language_ablation,
        kwargs={"client_counts": (100, 300), "repetitions": 2},
        rounds=1,
        iterations=1,
    )
    emit(report)
    for name in (
        "relalg interpreted",
        "relalg compiled plan",
        "datalog",
        "sdl",
        "sqlite3",
        "sqlfront compiled plan",
    ):
        assert name in report


@pytest.mark.parametrize(
    "label,protocol", backends(), ids=lambda value: (
        value if isinstance(value, str) else ""
    )
)
def test_backend_query_time(benchmark, label, protocol):
    """Per-backend timing of one SS2PL evaluation at 300 clients."""
    incoming, history = paper_snapshot(300)
    pending_store = PendingStore()
    history_store = HistoryStore()
    pending_store.insert_batch(incoming)
    history_store.record_batch(history)

    decision = benchmark(
        protocol.schedule, pending_store.table, history_store.table
    )
    assert len(decision.qualified) > 0
