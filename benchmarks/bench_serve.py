#!/usr/bin/env python
"""Perf smoke: the asyncio serving layer, wall-clock requests/sec.

Writes ``BENCH_serve.json`` at the repository root (or to ``--output``)
so successive changes to the serving layer leave a comparable perf
trajectory.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --min-rps 1000

Each point boots a :class:`~repro.serve.service.SchedulerService` over
the ``ss2pl`` spec (Listing 1 + program-order gating — pipelined
sessions need the gate) on the ``compiled-delta`` backend and replays a
seeded scenario workload (``zipf-hotspot`` and ``bursty-arrivals``)
through the pooled session client.  The workload *content* is fully
determined by ``(workload, seed)``; wall-clock interleaving across
sessions is not, so the artefact records throughput and grant-latency
percentiles (p50/p99/p99.9), not batch sequences.  Every run asserts
request-lifecycle totality (zero lost requests) via the invariant
monitor before reporting a number.

``--min-rps`` (default 0 = no gate) fails the run when any point's
requests/sec lands below the bar; CI records the artefact non-gating.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import repro.api as api  # noqa: E402
from repro.scenarios import get_scenario  # noqa: E402
from repro.serve import drive_workload, generate_profiles  # noqa: E402

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_serve.json"
)

WORKLOADS = ("zipf-hotspot", "bursty-arrivals")
PROTOCOL = "ss2pl"
BACKEND = "compiled-delta"
TRIGGER = "hybrid:0.005,16"


def transactions_for(workload, seed: int, requests: int) -> int:
    """Seeded sizing: transactions whose statements + commits reach
    *requests* (the same profile draw drive_workload replays)."""
    transactions = 0
    planned = 0
    while planned < requests:
        transactions += 8
        profiles = generate_profiles(workload, seed, transactions)
        planned = sum(len(profile) + 1 for profile in profiles)
    return transactions


async def measure_point(
    name: str, requests: int, sessions: int, pipeline: int, seed: int
) -> dict:
    scenario = get_scenario(name)
    transactions = transactions_for(scenario.workload, seed, requests)
    service = api.open_service(
        PROTOCOL,
        BACKEND,
        trigger=TRIGGER,
        max_sessions=sessions,
        max_pipeline=pipeline,
        check_invariants=True,
    )
    async with service:
        report = await drive_workload(
            service,
            scenario.workload,
            transactions=transactions,
            sessions=sessions,
            seed=seed,
        )
        final = service.final_check()
    stats = service.stats()
    lost = stats["submitted"] - stats["granted"] - sum(
        stats["rejected"].values()
    )
    if lost != 0:
        raise AssertionError(f"{name}: {lost} requests lost")
    latency = stats["grant_latency_s"]
    return {
        "workload": name,
        "seed": seed,
        "transactions": transactions,
        "sessions": sessions,
        "pipeline": pipeline,
        "requests": stats["submitted"],
        "granted": stats["granted"],
        "rejected": stats["rejected"],
        "committed": report.committed,
        "aborted": report.aborted,
        "duration_s": round(stats["duration_s"], 6),
        "requests_per_s": round(stats["grants_per_s"], 1),
        "steps": stats["steps"],
        "grant_latency_ms": {
            "p50": round(latency["p50"] * 1e3, 4),
            "p99": round(latency["p99"] * 1e3, 4),
            "p99.9": round(latency["p99.9"] * 1e3, 4),
            "max": round(latency["max"] * 1e3, 4),
        },
        "final_states": final,
    }


def run_bench(requests: int, sessions: int, pipeline: int, seed: int) -> dict:
    points = []
    for name in WORKLOADS:
        point = asyncio.run(
            measure_point(name, requests, sessions, pipeline, seed)
        )
        points.append(point)
    return {
        "bench": "serve",
        "protocol": PROTOCOL,
        "backend": BACKEND,
        "trigger": TRIGGER,
        "points": points,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument("--sessions", type=int, default=8)
    parser.add_argument("--pipeline", type=int, default=8)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--min-rps", type=float, default=0.0,
        help="fail (exit 1) when any point's requests/sec is below this "
        "(default 0: record only)",
    )
    args = parser.parse_args(argv)

    artefact = run_bench(
        args.requests, args.sessions, args.pipeline, args.seed
    )
    for point in artefact["points"]:
        latency = point["grant_latency_ms"]
        print(
            f"{point['workload']:16s} {point['requests']:5d} requests  "
            f"{point['requests_per_s']:9.1f} req/s  "
            f"p50 {latency['p50']:7.3f} ms  "
            f"p99.9 {latency['p99.9']:7.3f} ms  "
            f"({point['committed']} committed, {point['aborted']} aborted)"
        )
    args.output.write_text(
        json.dumps(artefact, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nwrote {args.output}")
    if args.min_rps > 0:
        slow = [
            point
            for point in artefact["points"]
            if point["requests_per_s"] < args.min_rps
        ]
        if slow:
            for point in slow:
                print(
                    f"FAIL: {point['workload']} at "
                    f"{point['requests_per_s']:.1f} req/s "
                    f"< {args.min_rps:.0f}",
                    file=sys.stderr,
                )
            return 1
        print(f"all points >= {args.min_rps:.0f} req/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
