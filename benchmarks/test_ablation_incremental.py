"""E11 — incremental view maintenance vs. per-step recomputation."""

from repro.bench.incremental_ablation import drive_steps, run_incremental_ablation
from repro.protocols.legacy import PaperListing1Protocol
from repro.protocols.legacy import SS2PLIncrementalProtocol

from benchmarks.conftest import emit


def test_incremental_ablation_report(benchmark):
    report = benchmark.pedantic(
        run_incremental_ablation,
        kwargs={"clients": 200, "steps": 30},
        rounds=1,
        iterations=1,
    )
    emit(report)
    assert "speedup" in report


def test_incremental_is_faster_and_equivalent():
    # The interpreted pipeline is the recomputation arm of RQ 4; the
    # compiled plan (delta-maintained builds) is measured separately in
    # run_incremental_ablation and BENCH_scheduler_step.json, and can
    # legitimately beat the hand-written incremental protocol.
    recompute = drive_steps(
        PaperListing1Protocol(compiled=False), clients=150, steps=20
    )
    incremental = drive_steps(
        SS2PLIncrementalProtocol(), clients=150, steps=20
    )
    assert incremental.batches == recompute.batches
    assert incremental.total_seconds < recompute.total_seconds
