"""E6 — Section 4.4: the native-vs-declarative overhead crossover.

Paper claims: native wins at 300 clients (46 s vs 1314 s), declarative
wins at 500 (106 s vs 225 s) — "for 500 concurrent clients, the
set-at-a-time approach ... is faster than a native scheduler".
"""

from repro.bench.crossover import run_crossover, sweep_crossover

from benchmarks.conftest import emit


def test_crossover_report(benchmark):
    report = benchmark.pedantic(
        run_crossover,
        kwargs={"client_counts": (100, 200, 300, 400, 500, 600),
                "duration": 240.0},
        rounds=1,
        iterations=1,
    )
    emit(report)
    assert "crossover" in report


def test_crossover_direction_matches_paper():
    points = {
        p.clients: p
        for p in sweep_crossover(client_counts=(300, 500), duration=240.0)
    }
    # Paper: native wins at 300.
    assert not points[300].declarative_wins
    # Paper: declarative wins at 500.
    assert points[500].declarative_wins
