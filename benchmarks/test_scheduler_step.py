"""Per-step query cost: interpreted Listing 1 vs cached compiled plan.

The JSON artefact (``BENCH_scheduler_step.json``) is produced by
``benchmarks/bench_scheduler_step.py``; this wrapper runs the same
measurement at reduced scale under pytest-benchmark and pins the two
contracts: identical batches, and the compiled plan not slower."""

from repro.bench.scheduler_step import (
    render_scheduler_step_report,
    write_scheduler_step_bench,
)

from benchmarks.conftest import emit


def test_scheduler_step_bench_report(benchmark, tmp_path):
    output = tmp_path / "BENCH_scheduler_step.json"
    report = benchmark.pedantic(
        write_scheduler_step_bench,
        args=(str(output),),
        kwargs={"client_counts": (100, 300), "steps": 6},
        rounds=1,
        iterations=1,
    )
    emit(render_scheduler_step_report(report))
    assert output.exists()
    assert all(p["batches_identical"] for p in report["points"])
    # 7x is typical; >1 guards against regression without host noise
    # flakiness.
    assert min(p["speedup"] for p in report["points"]) > 1.0


def test_check_mode_flags_only_real_regressions():
    from benchmarks.bench_scheduler_step import check_regression

    committed = {
        "points": [
            {"clients": 100, "compiled_median_step_s": 0.002},
            {"clients": 300, "compiled_median_step_s": 0.005},
        ]
    }
    same = {
        "points": [
            {"clients": 100, "compiled_median_step_s": 0.0024},
            {"clients": 300, "compiled_median_step_s": 0.005},
        ]
    }
    assert check_regression(committed, same, threshold_pct=25.0) == []
    slower = {
        "points": [
            {"clients": 100, "compiled_median_step_s": 0.0026},
            {"clients": 300, "compiled_median_step_s": 0.005},
        ]
    }
    failures = check_regression(committed, slower, threshold_pct=25.0)
    assert len(failures) == 1 and "100 clients" in failures[0]
    # Unknown operating points in the fresh run are ignored.
    extra = {"points": [{"clients": 999, "compiled_median_step_s": 9.0}]}
    assert check_regression(committed, extra, threshold_pct=25.0) == []


def test_stateful_backend_observes_preloaded_history():
    # Regression: the bench seeds history out-of-band; stateful
    # backends (incremental lock views) must still match the reference.
    from repro.bench.scheduler_step import run_scheduler_step_bench

    report = run_scheduler_step_bench(
        client_counts=(20,), steps=3, backend="incremental"
    )
    assert all(p["batches_identical"] for p in report["points"])


def test_delta_scale_point_matches_baseline_and_rebuilds_once():
    from repro.bench.scheduler_step import run_delta_scale_bench

    points = run_delta_scale_bench(
        history_sizes=(3_000,), active_clients=20, steps=4
    )
    (point,) = points
    assert point["batches_identical"]
    # One rebuild: the initial seeding.  Steady-state steps are pure
    # delta maintenance.
    assert point["rebuilds"] == 1
    assert point["delta_rows_per_step"] > 0


def test_write_bench_includes_delta_points(tmp_path):
    import json

    output = tmp_path / "bench.json"
    report = write_scheduler_step_bench(
        str(output), client_counts=(50,), steps=3,
        delta_history_sizes=(2_000,),
    )
    assert report["delta_backend"] == "compiled-delta"
    data = json.loads(output.read_text(encoding="utf-8"))
    assert [p["history_rows"] for p in data["delta_points"]] == [2_000]


def test_check_delta_regression_guards_drift_and_budget():
    from benchmarks.bench_scheduler_step import (
        DELTA_BUDGET_ROWS,
        check_delta_regression,
    )

    committed = {
        "delta_points": [
            {"history_rows": DELTA_BUDGET_ROWS, "delta_median_step_s": 0.0005}
        ]
    }
    ok = [{"history_rows": DELTA_BUDGET_ROWS, "delta_median_step_s": 0.0006}]
    assert check_delta_regression(committed, ok, 50.0, 1.0) == []
    drift = [
        {"history_rows": DELTA_BUDGET_ROWS, "delta_median_step_s": 0.0009}
    ]
    failures = check_delta_regression(committed, drift, 50.0, 1.0)
    assert len(failures) == 1 and "committed" in failures[0]
    # Past the absolute budget both guards fire.
    over = [
        {"history_rows": DELTA_BUDGET_ROWS, "delta_median_step_s": 0.0015}
    ]
    failures = check_delta_regression(committed, over, 50.0, 1.0)
    assert len(failures) == 2 and any("budget" in f for f in failures)
    # The budget applies even without committed delta points (first run).
    failures = check_delta_regression({}, over, 50.0, 1.0)
    assert len(failures) == 1 and "budget" in failures[0]


def test_check_refuses_mismatched_artefact():
    from benchmarks.bench_scheduler_step import artefact_mismatch

    committed = {"protocol": "ss2pl", "backend": "compiled", "points": []}
    assert artefact_mismatch(
        committed, {"protocol": "ss2pl", "backend": "compiled"}
    ) is None
    assert "backend" in artefact_mismatch(
        committed, {"protocol": "ss2pl", "backend": "datalog"}
    )
    assert "protocol" in artefact_mismatch(
        committed, {"protocol": "fcfs", "backend": "compiled"}
    )
    # Legacy artefacts without the keys are accepted.
    assert artefact_mismatch(
        {"points": []}, {"protocol": "ss2pl", "backend": "compiled"}
    ) is None
