"""Per-step query cost: interpreted Listing 1 vs cached compiled plan.

The JSON artefact (``BENCH_scheduler_step.json``) is produced by
``benchmarks/bench_scheduler_step.py``; this wrapper runs the same
measurement at reduced scale under pytest-benchmark and pins the two
contracts: identical batches, and the compiled plan not slower."""

from repro.bench.scheduler_step import (
    render_scheduler_step_report,
    write_scheduler_step_bench,
)

from benchmarks.conftest import emit


def test_scheduler_step_bench_report(benchmark, tmp_path):
    output = tmp_path / "BENCH_scheduler_step.json"
    report = benchmark.pedantic(
        write_scheduler_step_bench,
        args=(str(output),),
        kwargs={"client_counts": (100, 300), "steps": 6},
        rounds=1,
        iterations=1,
    )
    emit(render_scheduler_step_report(report))
    assert output.exists()
    assert all(p["batches_identical"] for p in report["points"])
    # 7x is typical; >1 guards against regression without host noise
    # flakiness.
    assert min(p["speedup"] for p in report["points"]) > 1.0
