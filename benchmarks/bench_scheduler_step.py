#!/usr/bin/env python
"""Perf smoke: per-step scheduler query cost, interpreted vs compiled.

Writes ``BENCH_scheduler_step.json`` at the repository root (or to
``--output``) so successive changes to the relalg engine leave a
comparable perf trajectory.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_scheduler_step.py
    PYTHONPATH=src python benchmarks/bench_scheduler_step.py --check

``--check`` is the perf regression guard: instead of overwriting the
committed artefact it re-runs the measurement and fails (exit 1) when
any operating point's compiled per-step median regressed by more than
``--threshold`` percent (default 25) against the committed numbers.

The workload is the E5 declarative-overhead operating point driven for
ten steps at three history sizes; batches are verified identical
between the two evaluation strategies before any number is reported.

The artefact also carries ``delta_points``: the compiled-delta backend
at 10^5–10^6 *preloaded* history rows (small active working set, deep
committed history) against the compiled full-recompute baseline.  In
``--check`` mode those points are guarded two ways: relative drift
against the committed numbers (``--delta-threshold``, relaxed because
sub-millisecond medians are noisy on shared runners) and an absolute
per-step budget at the 10^5-row point (``--delta-budget-ms``, default
1 ms) — the O(|delta|) claim as a number.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.bench.scheduler_step import (  # noqa: E402
    render_delta_scale_report,
    render_scheduler_step_report,
    run_delta_scale_bench,
    run_scheduler_step_bench,
    write_scheduler_step_bench,
)

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_scheduler_step.json"
)


def artefact_mismatch(committed: dict, fresh: dict) -> str | None:
    """Refuse apples-to-oranges checks: the committed artefact must have
    been produced by the same protocol × backend pairing."""
    for key in ("protocol", "backend"):
        old = committed.get(key)
        new = fresh.get(key)
        if old is not None and old != new:
            return (
                f"committed artefact measures {key} {old!r} but this run "
                f"measures {new!r}; refusing to compare"
            )
    return None


def check_regression(
    committed: dict, fresh: dict, threshold_pct: float
) -> list[str]:
    """Per-point comparison; returns human-readable failures."""
    failures: list[str] = []
    committed_points = {p["clients"]: p for p in committed["points"]}
    for point in fresh["points"]:
        baseline = committed_points.get(point["clients"])
        if baseline is None:
            continue
        old = baseline["compiled_median_step_s"]
        new = point["compiled_median_step_s"]
        if old > 0 and new > old * (1 + threshold_pct / 100.0):
            failures.append(
                f"{point['clients']} clients: compiled per-step median "
                f"{new * 1000:.2f} ms vs committed {old * 1000:.2f} ms "
                f"(+{(new / old - 1) * 100:.0f}% > {threshold_pct:.0f}%)"
            )
    return failures


#: The operating point the absolute per-step budget applies to.
DELTA_BUDGET_ROWS = 100_000


def check_delta_regression(
    committed: dict,
    fresh_points: list[dict],
    threshold_pct: float,
    budget_ms: float,
) -> list[str]:
    """Guard the large-history delta points: relative drift against the
    committed artefact plus the absolute per-step budget at the
    10^5-row point."""
    failures: list[str] = []
    committed_points = {
        p["history_rows"]: p for p in committed.get("delta_points", [])
    }
    for point in fresh_points:
        rows = point["history_rows"]
        new = point["delta_median_step_s"]
        baseline = committed_points.get(rows)
        if baseline is not None:
            old = baseline["delta_median_step_s"]
            if old > 0 and new > old * (1 + threshold_pct / 100.0):
                failures.append(
                    f"{rows} history rows: delta per-step median "
                    f"{new * 1000:.3f} ms vs committed {old * 1000:.3f} ms "
                    f"(+{(new / old - 1) * 100:.0f}% > {threshold_pct:.0f}%)"
                )
        if rows == DELTA_BUDGET_ROWS and new * 1000 > budget_ms:
            failures.append(
                f"{rows} history rows: delta per-step median "
                f"{new * 1000:.3f} ms exceeds the {budget_ms:g} ms budget"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "output", nargs="?", default=str(DEFAULT_OUTPUT),
        help="artefact path (default: repo-root BENCH_scheduler_step.json)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed artefact instead of writing it",
    )
    parser.add_argument(
        "--threshold", type=float, default=25.0,
        help="--check: max tolerated per-step regression in percent",
    )
    parser.add_argument(
        "--backend", default="compiled",
        help="execution backend measured against the interpreted baseline",
    )
    parser.add_argument(
        "--steps", type=int, default=10, help="scheduler steps per point"
    )
    parser.add_argument(
        "--delta-rows", type=int, nargs="*", default=None,
        help="preloaded-history sizes for the compiled-delta points "
        "(default: 100000 1000000 when writing, 100000 for --check; "
        "pass with no values to skip them)",
    )
    parser.add_argument(
        "--delta-threshold", type=float, default=50.0,
        help="--check: max tolerated delta-point regression in percent "
        "(relaxed: sub-ms medians are noisy on shared runners)",
    )
    parser.add_argument(
        "--delta-budget-ms", type=float, default=1.0,
        help="--check: absolute per-step median budget at the "
        f"{DELTA_BUDGET_ROWS}-row point",
    )
    args = parser.parse_args(argv)
    output = pathlib.Path(args.output)

    if args.check:
        if not output.exists():
            print(f"--check: no committed artefact at {output}", file=sys.stderr)
            return 2
        committed = json.loads(output.read_text(encoding="utf-8"))
        fresh = run_scheduler_step_bench(
            steps=args.steps, backend=args.backend
        )
        mismatch = artefact_mismatch(committed, fresh)
        if mismatch:
            print(f"--check: {mismatch}", file=sys.stderr)
            return 2
        print(render_scheduler_step_report(fresh))
        failures = check_regression(committed, fresh, args.threshold)
        delta_rows = (
            args.delta_rows
            if args.delta_rows is not None
            else [DELTA_BUDGET_ROWS]
        )
        if delta_rows:
            delta_points = run_delta_scale_bench(
                delta_rows, steps=args.steps
            )
            print()
            print(render_delta_scale_report(delta_points))
            failures += check_delta_regression(
                committed, delta_points,
                args.delta_threshold, args.delta_budget_ms,
            )
        if failures:
            print(
                "\nPERF REGRESSION against committed "
                f"{output.name}:", file=sys.stderr,
            )
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(
            f"\nno per-step regression beyond {args.threshold:.0f}% "
            f"against {output.name}"
        )
        return 0

    delta_rows = (
        args.delta_rows
        if args.delta_rows is not None
        else [100_000, 1_000_000]
    )
    report = write_scheduler_step_bench(
        str(output), steps=args.steps, backend=args.backend,
        delta_history_sizes=tuple(delta_rows),
    )
    print(render_scheduler_step_report(report))
    if report.get("delta_points"):
        print()
        print(render_delta_scale_report(report["delta_points"]))
    print(f"\nwrote {output}")
    slowest = min(p["speedup"] for p in report["points"])
    print(f"minimum speedup across history sizes: {slowest}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
