#!/usr/bin/env python
"""Perf smoke: per-step scheduler query cost, interpreted vs compiled.

Writes ``BENCH_scheduler_step.json`` at the repository root (or to the
path given as the first argument) so successive changes to the relalg
engine leave a comparable perf trajectory.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_scheduler_step.py

The workload is the E5 declarative-overhead operating point driven for
ten steps at three history sizes; batches are verified identical
between the two evaluation strategies before any number is reported.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.bench.scheduler_step import (  # noqa: E402
    render_scheduler_step_report,
    write_scheduler_step_bench,
)

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_scheduler_step.json"
)


def main(argv: list[str]) -> int:
    output = pathlib.Path(argv[1]) if len(argv) > 1 else DEFAULT_OUTPUT
    report = write_scheduler_step_bench(str(output))
    print(render_scheduler_step_report(report))
    print(f"\nwrote {output}")
    slowest = min(p["speedup"] for p in report["points"])
    print(f"minimum speedup across history sizes: {slowest}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
