"""E2 — regenerate the paper's Table 2 (request table schema)."""

from repro.bench.table2 import run_table2

from benchmarks.conftest import emit


def test_table2_regeneration(benchmark):
    report = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    emit(report)
    assert "INTRATA" in report
    assert "match the paper's Table 2 exactly" in report
