"""E4 — Section 4.2.2 anchor numbers at 300 and 500 clients.

Paper: at 300 clients 550 055 statements committed in 240 s (SU replay
194 s, overhead 46 s); at 500 clients 48 267 statements (SU 15 s,
overhead 225 s).  We assert the same relationships at matching orders
of magnitude.
"""

from repro.bench.figure2 import sweep_native

from benchmarks.conftest import emit
from repro.metrics.reporting import ComparisonRow, render_comparison


def test_sec422_anchors(benchmark):
    points = benchmark.pedantic(
        sweep_native,
        kwargs={"client_counts": (300, 500), "duration": 240.0},
        rounds=1,
        iterations=1,
    )
    at_300, at_500 = points
    emit(
        render_comparison(
            [
                ComparisonRow("stmts @300", 550_055, at_300.committed_statements),
                ComparisonRow("SU replay @300 (s)", 194.0, round(at_300.su_seconds, 1)),
                ComparisonRow(
                    "overhead @300 (s)", 46.0,
                    round(at_300.mu_seconds - at_300.su_seconds, 1),
                ),
                ComparisonRow("stmts @500", 48_267, at_500.committed_statements),
                ComparisonRow("SU replay @500 (s)", 15.0, round(at_500.su_seconds, 1)),
                ComparisonRow(
                    "overhead @500 (s)", 225.0,
                    round(at_500.mu_seconds - at_500.su_seconds, 1),
                ),
            ],
            title="Section 4.2.2 anchors",
        )
    )
    # Same order of magnitude as the paper at both anchors.
    assert 250_000 < at_300.committed_statements < 1_000_000
    assert 10_000 < at_500.committed_statements < 150_000
    # Overhead relationships: small at 300, dominating at 500.
    overhead_300 = at_300.mu_seconds - at_300.su_seconds
    overhead_500 = at_500.mu_seconds - at_500.su_seconds
    assert overhead_300 < 120
    assert overhead_500 > 180
    # The 500-client replay is far shorter than the 300-client one
    # (collapsed throughput => fewer statements to replay).
    assert at_500.su_seconds < at_300.su_seconds / 5
