"""Benchmark-suite configuration.

Every bench prints the regenerated paper artefact (table/figure) to
stdout; run with ``pytest benchmarks/ --benchmark-only -s`` to see the
reports inline, or check the captured output on failure.

Heavy experiments (the Figure 2 sweep runs 240 virtual seconds per
client count) use ``benchmark.pedantic(rounds=1)`` — the simulation is
deterministic, so repetition would only re-measure host noise.
"""

import pytest


def emit(report: str) -> None:
    """Print a bench report under a visible separator."""
    print()
    print("=" * 78)
    print(report)
    print("=" * 78)
