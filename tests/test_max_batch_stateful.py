"""``max_batch`` truncation against stateful backends.

The scheduler truncates the qualified set *before* removing from
pending, recording into history, and calling ``observe_executed`` — so
a stateful evaluator (incremental lock views, imperative lock walk)
must only ever see the dispatched prefix.  These tests pin that
contract: truncated-out requests stay pending, every backend emits the
identical truncated sequence, and re-evaluation re-qualifies the
leftovers on the next step.
"""

import random

import pytest

from repro.core.scheduler import DeclarativeScheduler, SchedulerConfig
from repro.model.request import make_transaction
from repro.model.schedule import Schedule, is_conflict_serializable, is_strict

#: Every backend that can lower the flagship spec, stateless and stateful.
BACKENDS = ("interpreted", "compiled", "incremental", "imperative")
STATEFUL = ("incremental", "imperative")


def build_scheduler(backend: str, max_batch=None) -> DeclarativeScheduler:
    return DeclarativeScheduler.for_spec(
        "ss2pl", backend, config=SchedulerConfig(max_batch=max_batch)
    )


def conflicting_transactions():
    return (
        make_transaction(1, [("r", 1), ("w", 1)], start_id=1),
        make_transaction(2, [("w", 1), ("w", 2)], start_id=101),
        make_transaction(3, [("r", 2), ("w", 3)], start_id=201),
    )


def submit_all(scheduler, transactions) -> int:
    count = 0
    for txn in transactions:
        for request in txn:
            scheduler.submit(request)
            count += 1
    return count


class TestTruncationKeepsPending:
    @pytest.mark.parametrize("backend", STATEFUL)
    def test_truncated_out_requests_remain_pending(self, backend):
        scheduler = build_scheduler(backend, max_batch=1)
        total = submit_all(scheduler, conflicting_transactions())
        result = scheduler.step()
        assert result.batch_size == 1
        assert result.pending_after == total - 1

    @pytest.mark.parametrize("backend", STATEFUL)
    def test_next_step_requalifies_leftovers(self, backend):
        scheduler = build_scheduler(backend, max_batch=1)
        submit_all(scheduler, conflicting_transactions())
        first = scheduler.step()
        second = scheduler.step()
        assert first.batch_size == 1 and second.batch_size == 1
        # Arrival order: T1's read went first, its write goes next.
        assert [r.id for r in first.qualified] == [1]
        assert [r.id for r in second.qualified] == [2]

    @pytest.mark.parametrize("backend", STATEFUL)
    def test_observe_state_matches_dispatched_prefix(self, backend):
        """A truncated step must leave the stateful evaluator holding
        locks for the dispatched prefix only: T2's write on object 1
        stays blocked until T1 *actually* committed, not merely
        qualified."""
        scheduler = build_scheduler(backend, max_batch=1)
        submit_all(
            scheduler,
            (
                make_transaction(1, [("w", 1)], start_id=1),
                make_transaction(2, [("w", 1)], start_id=101),
            ),
        )
        emitted = []
        for result in scheduler.run_until_drained():
            emitted.extend(r.id for r in result.qualified)
        # T1: write+commit fully dispatched before T2's write qualifies.
        assert emitted.index(101) > emitted.index(2)  # 2 == T1's commit


class TestTruncatedEquivalenceAcrossBackends:
    def drain(self, backend, transactions, max_batch):
        scheduler = build_scheduler(backend, max_batch=max_batch)
        submit_all(scheduler, transactions)
        emitted = Schedule()
        per_step = []
        for result in scheduler.run_until_drained():
            emitted.extend(result.qualified)
            per_step.append([r.id for r in result.qualified])
        return emitted, per_step

    @pytest.mark.parametrize("max_batch", [1, 2, 3])
    def test_same_truncated_sequence_on_every_backend(self, max_batch):
        reference, reference_steps = self.drain(
            "interpreted", conflicting_transactions(), max_batch
        )
        assert is_conflict_serializable(reference)
        assert is_strict(reference)
        for backend in BACKENDS[1:]:
            emitted, steps = self.drain(
                backend, conflicting_transactions(), max_batch
            )
            assert steps == reference_steps, (
                f"{backend} diverged from interpreted at max_batch={max_batch}"
            )

    def test_truncated_run_commits_same_work_as_unbounded(self):
        unbounded, __ = self.drain(
            "incremental", conflicting_transactions(), None
        )
        truncated, __ = self.drain(
            "incremental", conflicting_transactions(), 1
        )
        assert sorted(r.id for r in unbounded) == sorted(
            r.id for r in truncated
        )

    def test_randomized_workloads_agree_under_truncation(self):
        rng = random.Random(77)
        for trial in range(8):
            objects = rng.randrange(2, 5)
            transactions = []
            start_id = 1
            for ta in range(1, rng.randrange(3, 6)):
                accesses = [
                    (rng.choice(["r", "w"]), rng.randrange(objects))
                    for __ in range(rng.randrange(1, 4))
                ]
                # ss2pl assumes one access per object per transaction.
                seen = set()
                accesses = [
                    (op, obj)
                    for op, obj in accesses
                    if not (obj in seen or seen.add(obj))
                ]
                transactions.append(
                    make_transaction(ta, accesses, start_id=start_id)
                )
                start_id += len(accesses) + 1
            max_batch = rng.randrange(1, 4)
            reference, reference_steps = self.drain(
                "interpreted", transactions, max_batch
            )
            for backend in STATEFUL:
                __, steps = self.drain(backend, transactions, max_batch)
                assert steps == reference_steps, (
                    f"trial {trial}: {backend} diverged at "
                    f"max_batch={max_batch}"
                )
