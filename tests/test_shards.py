"""Tests of :mod:`repro.shard` — partitioning, the sharded facade, and
the cross-shard two-phase grant."""

import random

import pytest

import repro.api as api
from repro.core.scheduler import SchedulerConfig
from repro.faults.invariants import (
    InvariantMonitor,
    InvariantViolation,
    lock_model_of,
)
from repro.metrics.collector import MetricsCollector
from repro.model.request import (
    NO_OBJECT,
    Operation,
    Request,
    RequestAttributes,
)
from repro.shard.partition import HashPartitioner, shard_of_object
from repro.shard.scheduler import CrossShardPolicy, ShardedScheduler


def _txn(ta, ops, start_id, client_id=0):
    """Build one transaction's requests: ops like [("w", 3), ("c", None)]."""
    attrs = RequestAttributes(client_id=client_id)
    requests = []
    for intrata, (op, obj) in enumerate(ops):
        requests.append(
            Request(
                id=start_id + intrata,
                ta=ta,
                intrata=intrata,
                operation=Operation(op),
                obj=NO_OBJECT if obj is None else obj,
                attrs=attrs,
            )
        )
    return requests


def _objects_for(partitioner, shard, count, start=0):
    """First `count` object ids owned by `shard`."""
    found = []
    obj = start
    while len(found) < count:
        if partitioner.shard_of(obj) == shard:
            found.append(obj)
        obj += 1
    return found


class TestPartitioner:
    def test_golden_placements_are_pinned(self):
        # Changing the mix constants silently re-partitions recorded
        # runs; these goldens pin the current splitmix32 placement.
        assert [shard_of_object(o, 2) for o in range(12)] == [
            0, 1, 1, 1, 0, 1, 0, 1, 1, 0, 1, 0,
        ]
        assert [shard_of_object(o, 4) for o in range(12)] == [
            2, 3, 3, 3, 0, 1, 2, 1, 1, 2, 3, 0,
        ]
        assert [shard_of_object(o, 8) for o in range(12)] == [
            6, 3, 3, 3, 0, 1, 6, 1, 1, 2, 7, 0,
        ]

    def test_stable_and_in_range(self):
        rng = random.Random(2026)
        for __ in range(500):
            obj = rng.randrange(1 << 31)
            for shards in (1, 2, 3, 4, 8, 16):
                owner = shard_of_object(obj, shards)
                assert 0 <= owner < shards
                assert owner == shard_of_object(obj, shards)

    def test_one_shard_owns_everything(self):
        assert shard_of_object(0, 1) == 0
        assert shard_of_object(123456789, 1) == 0

    def test_hottest_ids_separate(self):
        # The property the scaling curve depends on: the two heaviest
        # Zipf ids (0 and 1) never co-locate, at any bench shard count.
        # Object 0 alone is ~40 % of the quadratic bucket weight, so
        # pairing it with the runner-up would sink the makespan model.
        for shards in (2, 4, 8):
            assert shard_of_object(0, shards) != shard_of_object(1, shards)

    def test_partitioner_validates(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)
        p = HashPartitioner(4)
        assert p.shard_of(7) == shard_of_object(7, 4)
        assert 0 <= p.fallback_for(99) < 4


class TestConstruction:
    def test_make_scheduler_plain_vs_sharded(self):
        flat = api.make_scheduler("ss2pl", "compiled")
        assert not isinstance(flat, ShardedScheduler)
        sharded = api.make_scheduler("ss2pl", "compiled", shards=4)
        assert isinstance(sharded, ShardedScheduler)
        assert len(sharded.shards) == 4

    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError, match="shards"):
            api.make_scheduler("ss2pl", "compiled", shards=0)

    def test_live_protocol_instance_rejected(self):
        live = api.make_protocol("ss2pl", "compiled")
        with pytest.raises(ValueError, match="live Protocol"):
            api.make_scheduler(live, shards=2)

    def test_live_trigger_instance_rejected(self):
        trigger = api.make_trigger("fill:4")
        with pytest.raises(ValueError, match="TriggerPolicy"):
            api.make_scheduler("ss2pl", "compiled", shards=2, trigger=trigger)

    def test_unknown_route_rejected(self):
        with pytest.raises(ValueError, match="route"):
            api.make_scheduler("ss2pl", "compiled", shards=2,
                               shard_route="everywhere")

    def test_cross_shard_policy_validation(self):
        with pytest.raises(ValueError):
            CrossShardPolicy(reserve_timeout=0.0)
        with pytest.raises(ValueError):
            CrossShardPolicy(retry_backoff=-1.0)
        with pytest.raises(ValueError):
            CrossShardPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            CrossShardPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="reserve_mode"):
            CrossShardPolicy(reserve_mode="eager")
        with pytest.raises(ValueError, match="ordered_patience"):
            CrossShardPolicy(ordered_patience=0.5)
        assert CrossShardPolicy(reserve_mode="ordered").reserve_mode == "ordered"

    def test_monitor_conflict_interval_validation(self):
        with pytest.raises(ValueError, match="conflict_interval"):
            InvariantMonitor(conflict_interval=0)


class TestSingleShardRouting:
    def test_single_object_transactions_never_cross_shards(self):
        # prune_history=False keeps finished transactions' rows around
        # so the end-of-run placement audit can see them.
        scheduler = api.make_scheduler(
            "ss2pl", "compiled", shards=4,
            config=SchedulerConfig(prune_history=False),
        )
        partitioner = scheduler.partitioner
        next_id = 1
        for ta in range(1, 25):
            obj = ta * 7 % 40
            ops = [("r", obj), ("w", obj), ("c", None)]
            for request in _txn(ta, ops, start_id=next_id):
                scheduler.submit(request, 0.0)
            next_id += len(ops)
        scheduler.run_until_drained()
        for index, shard in enumerate(scheduler.shards):
            pos = shard.history.table.schema.resolve("object")
            for row in shard.history.table.rows:
                if row[pos] == NO_OBJECT:
                    continue
                assert partitioner.shard_of(row[pos]) == index

    def test_one_shard_is_byte_identical_to_unsharded(self):
        # The facade with shards=1 must be a pure pass-through: same
        # qualified batches, step for step, over a randomized sweep.
        rng = random.Random(2026)
        for __ in range(50):
            plain = api.make_scheduler("ss2pl", "compiled")
            sharded = api.make_scheduler("ss2pl", "compiled", shards=1)
            next_id = 1
            queues = []
            for ta in range(1, rng.randint(3, 9)):
                length = rng.randint(1, 5)
                ops = [
                    (rng.choice(["r", "w"]), rng.randrange(12))
                    for __ in range(length)
                ] + [("c", None)]
                queues.append(_txn(ta, ops, start_id=next_id))
                next_id += len(ops)
            # Random interleave across transactions, program order
            # preserved within each.
            submissions = []
            while queues:
                queue = rng.choice(queues)
                submissions.append(queue.pop(0))
                if not queue:
                    queues.remove(queue)
            for request in submissions:
                plain.submit(request, 0.0)
                sharded.submit(request, 0.0)
            plain_steps = [
                [str(r) for r in result.qualified]
                for result in plain.run_until_drained()
            ]
            sharded_steps = [
                [str(r) for r in result.qualified]
                for result in sharded.run_until_drained()
            ]
            # The facade routes one step after submission, so strip
            # empty steps before comparing the grant sequences.
            assert [s for s in plain_steps if s] == [
                s for s in sharded_steps if s
            ]


class TestTwoPhase:
    def _coordinated_pair(self, scheduler):
        """Objects on two different shards of `scheduler`."""
        partitioner = scheduler.partitioner
        (a,) = _objects_for(partitioner, 0, 1)
        (b,) = _objects_for(partitioner, 1, 1)
        return a, b

    def test_commit_broadcasts_after_all_reserves(self):
        monitor = InvariantMonitor(
            lock_model_of(api.make_protocol("ss2pl", "compiled"))
        )
        scheduler = api.make_scheduler(
            "ss2pl", "compiled", shards=2,
            config=SchedulerConfig(prune_history=False),
        )
        scheduler.monitor = monitor
        a, b = self._coordinated_pair(scheduler)
        ops = [("w", a), ("w", b), ("c", None)]
        for request in _txn(1, ops, start_id=1):
            scheduler.submit(request, 0.0)
        results = scheduler.run_until_drained()
        granted = [str(r) for result in results for r in result.qualified]
        assert granted == [f"w1[{a}]", f"w1[{b}]", "c1"]
        # The commit reached both owning shards' histories.
        for shard in scheduler.shards:
            ops_pos = shard.history.table.schema.resolve("operation")
            assert "c" in [row[ops_pos] for row in shard.history.table.rows]
        # Facade bookkeeping is fully cleaned up.
        assert not scheduler._states
        assert not scheduler._requests
        monitor.final_check(set(), 1_000.0)

    def test_grants_released_in_program_order(self):
        scheduler = api.make_scheduler("ss2pl", "compiled", shards=2)
        a, b = self._coordinated_pair(scheduler)
        # Program order visits shard 1's object first; even if shard 0
        # grants earlier in the merged step, the caller must see b, a.
        ops = [("w", b), ("w", a), ("r", b), ("c", None)]
        for request in _txn(1, ops, start_id=1):
            scheduler.submit(request, 0.0)
        granted = [
            str(r)
            for result in scheduler.run_until_drained()
            for r in result.qualified
        ]
        assert granted == [f"w1[{b}]", f"w1[{a}]", f"r1[{b}]", "c1"]

    def test_cross_shard_deadlock_aborts_and_retries(self):
        metrics = MetricsCollector()
        scheduler = api.make_scheduler(
            "ss2pl", "compiled", shards=2,
            cross_shard=CrossShardPolicy(
                reserve_timeout=0.05, retry_backoff=0.01,
                reserve_mode="escalate",
            ),
            metrics=metrics,
        )
        a, b = self._coordinated_pair(scheduler)
        # Classic crossed order, interleaved over two steps so each
        # transaction holds its first lock before requesting the other:
        # ta 1 holds a wants b, ta 2 holds b wants a.
        t1 = _txn(1, [("w", a), ("w", b), ("c", None)], start_id=1,
                  client_id=1)
        t2 = _txn(2, [("w", b), ("w", a), ("c", None)], start_id=10,
                  client_id=2)
        scheduler.submit(t1[0], 0.0)
        scheduler.submit(t2[0], 0.0)
        scheduler.step(0.0)
        scheduler.submit(t1[1], 0.0)
        scheduler.submit(t2[1], 0.0)
        scheduler.submit(t1[2], 0.0)
        scheduler.submit(t2[2], 0.0)
        committed = set()
        now = 0.0
        for __ in range(200):
            result = scheduler.step(now)
            for request in result.qualified:
                if request.operation.is_termination:
                    committed.add(request.ta)
            if committed == {1, 2}:
                break
            now += 0.02
        assert committed == {1, 2}
        # The deadlock was broken by at least one abort-and-retry.
        assert metrics.counters.get("scheduler.xshard.retries", 0) >= 1
        assert not scheduler._states

    def test_crash_while_parked_is_reaped_as_orphan(self):
        scheduler = api.make_scheduler(
            "ss2pl", "compiled", shards=2,
            cross_shard=CrossShardPolicy(
                reserve_timeout=0.05, retry_backoff=5.0,
            ),
        )
        a, b = self._coordinated_pair(scheduler)
        t1 = _txn(1, [("w", a), ("w", b), ("c", None)], start_id=1,
                  client_id=1)
        t2 = _txn(2, [("w", b), ("w", a), ("c", None)], start_id=10,
                  client_id=2)
        scheduler.submit(t1[0], 0.0)
        scheduler.submit(t2[0], 0.0)
        scheduler.step(0.0)
        scheduler.submit(t1[1], 0.0)
        scheduler.submit(t2[1], 0.0)
        scheduler.submit(t1[2], 0.0)
        scheduler.submit(t2[2], 0.0)
        # Step past the reserve timeout: one side is parked (long
        # backoff keeps it parked), the other proceeds.
        now = 0.0
        parked = None
        for __ in range(50):
            scheduler.step(now)
            parked = next(
                (s for s in scheduler._states.values()
                 if s.parked_until is not None),
                None,
            )
            if parked is not None:
                break
            now += 0.02
        assert parked is not None
        client = parked.statements[0].attrs.client_id
        # The parked transaction's client dies: the facade must reap it
        # as an orphan (no shard knows about a parked transaction).
        scheduler.note_client_crashed(client, now)
        # Orphaned parked transactions are reaped when the park expires.
        now = max(now, parked.parked_until)
        orphaned = []
        survivor_committed = False
        for __ in range(100):
            now += 0.02
            result = scheduler.step(now)
            orphaned.extend(ta for ta, __r in result.recovery.orphans)
            for request in result.qualified:
                if request.operation.is_termination:
                    survivor_committed = True
            if orphaned and survivor_committed:
                break
        assert parked.ta in orphaned
        assert survivor_committed
        assert not scheduler._states


class TestHomeRouteUnsoundness:
    def test_union_check_catches_home_mode_conflict(self):
        monitor = InvariantMonitor(
            lock_model_of(api.make_protocol("ss2pl", "compiled"))
        )
        scheduler = api.make_scheduler("ss2pl", "compiled", shards=2,
                                       shard_route="home")
        scheduler.monitor = monitor
        partitioner = scheduler.partitioner
        (a,) = _objects_for(partitioner, 0, 1)
        (b,) = _objects_for(partitioner, 1, 1)
        # Different home shards (first object differs), same second
        # object: both writes of `b` are granted — a conflict only the
        # cross-shard grant-union check can see.
        t1 = _txn(1, [("w", a), ("w", b), ("c", None)], start_id=1)
        t2 = _txn(2, [("w", b), ("w", a), ("c", None)], start_id=10)
        for request in (t1[0], t1[1], t2[0], t2[1]):
            scheduler.submit(request, 0.0)
        with pytest.raises(InvariantViolation, match="conflicting-grants"):
            for step in range(5):
                scheduler.step(float(step))

    def test_two_phase_same_shape_is_sound(self):
        monitor = InvariantMonitor(
            lock_model_of(api.make_protocol("ss2pl", "compiled"))
        )
        scheduler = api.make_scheduler("ss2pl", "compiled", shards=2)
        scheduler.monitor = monitor
        partitioner = scheduler.partitioner
        (a,) = _objects_for(partitioner, 0, 1)
        (b,) = _objects_for(partitioner, 1, 1)
        t1 = _txn(1, [("w", a), ("w", b), ("c", None)], start_id=1)
        t2 = _txn(2, [("w", b), ("w", a), ("c", None)], start_id=10)
        for request in t1 + t2:
            scheduler.submit(request, 0.0)
        scheduler.run_until_drained()  # raises on any violation
        monitor.final_check(set(), 1_000.0)


class TestServiceIntegration:
    def test_sharded_service_smoke(self):
        import asyncio

        async def main():
            async with api.open_service(
                "ss2pl", "compiled", shards=4, check_invariants=True
            ) as service:
                async with service.pool.session() as session:
                    for op, obj in [("w", 2), ("w", 5), ("c", None)]:
                        if obj is None:
                            ticket = await session.request(op)
                        else:
                            ticket = await session.request(op, obj)
                        await service.await_grant(ticket)
                        service.release(ticket)
            return service.stats()

        stats = asyncio.run(main())
        assert stats["granted"] == 3
