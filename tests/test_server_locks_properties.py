"""Property-based tests on the lock manager (hypothesis).

Random sequences of acquire/release operations must preserve the lock
table's safety invariants: no incompatible holders coexist, waiters are
exactly the not-yet-granted, and releasing everything empties the table.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.locks import LockManager, LockMode


@st.composite
def op_sequence(draw):
    """A list of (kind, ta, obj) operations over small domains."""
    ops = []
    for __ in range(draw(st.integers(1, 40))):
        kind = draw(st.sampled_from(["acquire_s", "acquire_x", "release"]))
        ta = draw(st.integers(1, 6))
        obj = draw(st.integers(1, 4))
        ops.append((kind, ta, obj))
    return ops


def apply_ops(ops):
    """Drive a LockManager; skip acquires by already-waiting tas (the
    real engine never issues those).  Returns the manager and the set of
    tas that were force-released."""
    locks = LockManager()
    for kind, ta, obj in ops:
        if kind == "release":
            locks.release_all(ta)
        elif not locks.is_waiting(ta):
            mode = LockMode.S if kind == "acquire_s" else LockMode.X
            locks.acquire(ta, obj, mode)
    return locks


def holders_by_object(locks: LockManager) -> dict[int, dict[int, LockMode]]:
    return {
        obj: dict(entry.holders) for obj, entry in locks._table.items()
    }


class TestInvariants:
    @given(op_sequence())
    @settings(max_examples=150, deadline=None)
    def test_no_incompatible_holders(self, ops):
        locks = apply_ops(ops)
        for obj, holders in holders_by_object(locks).items():
            writers = [ta for ta, m in holders.items() if m is LockMode.X]
            if writers:
                assert len(holders) == 1, (
                    f"object {obj}: X holder coexists with others: {holders}"
                )

    @given(op_sequence())
    @settings(max_examples=150, deadline=None)
    def test_waiters_hold_consistent_state(self, ops):
        locks = apply_ops(ops)
        for obj, entry in locks._table.items():
            for queued in entry.queue:
                # A queued request's ta must be registered as waiting on
                # exactly this object.
                assert locks._waiting.get(queued.ta) == obj

    @given(op_sequence())
    @settings(max_examples=100, deadline=None)
    def test_release_everything_empties_table(self, ops):
        locks = apply_ops(ops)
        for ta in range(1, 7):
            locks.release_all(ta)
        assert not locks._table
        assert locks.waiting_count == 0

    @given(op_sequence())
    @settings(max_examples=100, deadline=None)
    def test_deadlock_detection_never_crashes_and_cycles_are_real(self, ops):
        locks = apply_ops(ops)
        for ta in range(1, 7):
            cycle = locks.find_deadlock(ta)
            if cycle is None:
                continue
            # Every member of a reported cycle waits for the next.
            for i, member in enumerate(cycle):
                successor = cycle[(i + 1) % len(cycle)]
                assert successor in locks.waits_for(member)

    @given(op_sequence())
    @settings(max_examples=100, deadline=None)
    def test_grant_cascade_respects_compatibility(self, ops):
        locks = apply_ops(ops)
        # Release all current holders at once; grants must never create
        # incompatible co-holders.
        holders = {
            ta
            for entry in locks._table.values()
            for ta in entry.holders
        }
        for ta in list(holders):
            locks.release_all(ta)
            for obj, entry_holders in holders_by_object(locks).items():
                writers = [
                    t for t, m in entry_holders.items() if m is LockMode.X
                ]
                if writers:
                    assert len(entry_holders) == 1
