"""Coverage for smaller surfaces: relation utilities, optimizer key
extraction, capability vectors, stream modes, bench report smoke."""

import itertools
import random

import pytest

from repro.metrics.reporting import render_table
from repro.protocols.base import Capabilities
from repro.relalg.expressions import col, lit
from repro.relalg.optimizer import split_join_predicate
from repro.relalg.relation import Relation, rows_equal_as_bags
from repro.relalg.schema import Column, Schema
from repro.workload.generator import request_stream
from repro.workload.spec import WorkloadSpec


class TestRelationUtilities:
    def _relation(self):
        schema = Schema([Column("a", "t"), Column("b", "t")])
        return Relation(schema, [(1, "x"), (2, "y")])

    def test_to_dicts(self):
        assert self._relation().to_dicts() == [
            {"a": 1, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_column_values_qualified(self):
        assert self._relation().column_values("a", "t") == [1, 2]

    def test_sorted_rows_canonical(self):
        schema = Schema([Column("a")])
        r1 = Relation(schema, [(2,), (1,)])
        r2 = Relation(schema, [(1,), (2,)])
        assert r1.sorted_rows() == r2.sorted_rows()

    def test_bag_equality(self):
        assert rows_equal_as_bags([(1,), (1,), (2,)], [(2,), (1,), (1,)])
        assert not rows_equal_as_bags([(1,)], [(1,), (1,)])
        assert not rows_equal_as_bags([(1,), (1,)], [(1,), (2,)])

    def test_empty(self):
        schema = Schema([Column("a")])
        assert Relation.empty(schema).cardinality == 0


class TestSplitJoinPredicate:
    LEFT = Schema([Column("a", "l"), Column("b", "l")])
    RIGHT = Schema([Column("a", "r"), Column("c", "r")])

    def test_extracts_equi_keys(self):
        left_keys, right_keys, residual = split_join_predicate(
            col("l.a") == col("r.a"), self.LEFT, self.RIGHT
        )
        assert left_keys == ["l.a"] and right_keys == ["r.a"]
        assert residual is None

    def test_reversed_sides_normalized(self):
        left_keys, right_keys, __ = split_join_predicate(
            col("r.a") == col("l.b"), self.LEFT, self.RIGHT
        )
        assert left_keys == ["l.b"] and right_keys == ["r.a"]

    def test_non_equality_goes_to_residual(self):
        left_keys, __, residual = split_join_predicate(
            (col("l.a") == col("r.a")) & (col("l.b") > col("r.c")),
            self.LEFT,
            self.RIGHT,
        )
        assert left_keys == ["l.a"]
        assert residual is not None

    def test_literal_comparison_is_residual(self):
        left_keys, __, residual = split_join_predicate(
            col("l.a") == lit(5), self.LEFT, self.RIGHT
        )
        assert left_keys == [] and residual is not None

    def test_none_predicate(self):
        assert split_join_predicate(None, self.LEFT, self.RIGHT) == ([], [], None)


class TestCapabilities:
    def test_as_row_marks(self):
        assert Capabilities().as_row() == ("-", "-", "-", "-", "-")
        assert Capabilities(
            performance=True, qos=True, declarative=True, flexible=True,
            high_scalability=True,
        ).as_row() == ("+", "+", "+", "+", "+")


class TestInfiniteStream:
    def test_unbounded_stream_yields_forever(self):
        spec = WorkloadSpec(reads_per_txn=1, writes_per_txn=1, table_rows=50)
        stream = request_stream(spec, random.Random(1), clients=2)
        first_hundred = list(itertools.islice(stream, 100))
        assert len(first_hundred) == 100
        ids = [r.id for r in first_hundred]
        assert ids == list(range(1, 101))


class TestBenchSmoke:
    """Scaled-down smoke of every report generator not covered by the
    heavier benchmark suite — each must render a plausible report."""

    def test_table_reports(self):
        from repro.bench import run_table1, run_table2

        assert "EQMS" in run_table1()
        assert "INTRATA" in run_table2()

    def test_figure2_small(self):
        from repro.bench.figure2 import run_figure2

        report = run_figure2(client_counts=(1, 50), duration=5.0)
        assert "Figure 2" in report and "anchors" in report

    def test_declarative_overhead_small(self):
        from repro.bench import run_declarative_overhead

        report = run_declarative_overhead(client_counts=(50,), repetitions=1)
        assert "per-run" in report

    def test_productivity(self):
        from repro.bench import run_productivity

        assert "SDL" in run_productivity()

    def test_mpl_small(self):
        from repro.bench import run_mpl_ablation

        report = run_mpl_ablation(clients=100, caps=(None, 50), duration=5.0)
        assert "uncapped" in report

    def test_incremental_small(self):
        from repro.bench import run_incremental_ablation

        report = run_incremental_ablation(clients=30, steps=5)
        assert "speedup" in report


class TestRenderTableEdgeCases:
    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_wide_values_extend_columns(self):
        text = render_table(["x"], [["a-very-long-cell-value"]])
        assert "a-very-long-cell-value" in text


class TestSDLDeadlineOrdering:
    def test_order_by_deadline(self):
        from repro.core.stores import PendingStore
        from repro.lang.protocol import SDLProtocol
        from repro.model.request import Operation, Request, RequestAttributes

        store = PendingStore()
        store.insert_batch(
            [
                Request(1, 1, 0, Operation.READ, 5,
                        attrs=RequestAttributes(deadline=9.0)),
                Request(2, 2, 0, Operation.READ, 6,
                        attrs=RequestAttributes(deadline=2.0)),
            ]
        )
        protocol = SDLProtocol(
            "protocol p { deny any when batch_conflict; "
            "order by deadline asc; }"
        )
        decision = protocol.schedule(store.table, PendingStore().table)
        assert [r.id for r in decision.qualified] == [2, 1]
