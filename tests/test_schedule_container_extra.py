"""Remaining container/utility behaviours: traces, schedule views."""

from repro.model.request import make_transaction
from repro.model.schedule import Schedule
from repro.workload.traces import record_trace


class TestScheduleViews:
    def test_str_rendering(self):
        txn = make_transaction(1, [("r", 5), ("w", 6)], start_id=1)
        schedule = Schedule(list(txn))
        assert str(schedule) == "r1[5] w1[6] c1"

    def test_len_and_iter(self):
        txn = make_transaction(1, [("r", 5)], start_id=1)
        schedule = Schedule(list(txn))
        assert len(schedule) == 2
        assert [r.id for r in schedule] == [1, 2]

    def test_append_and_extend(self):
        t1 = make_transaction(1, [("r", 5)], start_id=1)
        t2 = make_transaction(2, [("w", 6)], start_id=10)
        schedule = Schedule()
        schedule.append(t1.requests[0])
        schedule.extend(t1.requests[1:])
        schedule.extend(t2.requests)
        assert schedule.transactions == [1, 2]


class TestRecordTrace:
    def test_zips_times_with_requests(self):
        txn = make_transaction(1, [("r", 5), ("w", 6)], start_id=1)
        trace = record_trace(txn.requests, [0.1, 0.2, 0.3])
        assert len(trace) == 3
        assert trace.entries[0] == (0.1, txn.requests[0])

    def test_truncates_to_shorter_input(self):
        txn = make_transaction(1, [("r", 5)], start_id=1)
        trace = record_trace(txn.requests, [0.1])
        assert len(trace) == 1
