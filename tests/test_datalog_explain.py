"""Derivation explanations (why-provenance)."""

import pytest

from repro.datalog.engine import Database, evaluate
from repro.datalog.explain import Derivation, ExplainError, explain
from repro.datalog.program import Program


def evaluated(source: str, facts: dict[str, list[tuple]]):
    program = Program.parse(source)
    db = Database()
    for pred, rows in facts.items():
        db.add_facts(pred, rows)
    evaluate(program, db)
    return program, db


class TestBasics:
    def test_extensional_fact_is_a_leaf(self):
        program, db = evaluated("p(X) :- q(X).", {"q": [(1,)]})
        node = explain(program, db, "q", (1,))
        assert node.is_extensional
        assert "[given]" in node.format()

    def test_single_rule_derivation(self):
        program, db = evaluated("p(X) :- q(X).", {"q": [(1,)]})
        node = explain(program, db, "p", (1,))
        assert node.rule is not None
        assert len(node.children) == 1
        assert node.children[0].pred == "q"

    def test_missing_fact_rejected(self):
        program, db = evaluated("p(X) :- q(X).", {"q": [(1,)]})
        with pytest.raises(ExplainError):
            explain(program, db, "p", (99,))

    def test_join_derivation_lists_both_facts(self):
        program, db = evaluated(
            "gp(X, Z) :- parent(X, Y), parent(Y, Z).",
            {"parent": [("a", "b"), ("b", "c")]},
        )
        node = explain(program, db, "gp", ("a", "c"))
        facts = {(c.pred, c.fact) for c in node.children}
        assert facts == {("parent", ("a", "b")), ("parent", ("b", "c"))}

    def test_recursive_derivation(self):
        program, db = evaluated(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """,
            {"edge": [(1, 2), (2, 3)]},
        )
        node = explain(program, db, "path", (1, 3))
        rendered = node.format()
        assert "path(1, 3)" in rendered
        assert "edge" in rendered

    def test_negation_recorded_as_absence(self):
        program, db = evaluated(
            "orphan(X) :- node(X), not parent(_, X).",
            {"node": [(1,), (2,)], "parent": [(1, 2)]},
        )
        node = explain(program, db, "orphan", (1,))
        assert any("parent" in note for note in node.absent)

    def test_comparisons_recorded(self):
        program, db = evaluated(
            "big(X) :- val(X, V), V > 10.", {"val": [(1, 11)]}
        )
        node = explain(program, db, "big", (1,))
        assert any(">" in check for check in node.checks)

    def test_anonymous_variables_in_positive_body(self):
        program, db = evaluated(
            'finished(Ta) :- history(_, Ta, _, "c", _).',
            {"history": [(9, 7, 3, "c", -1)]},
        )
        node = explain(program, db, "finished", (7,))
        assert node.children[0].fact == (9, 7, 3, "c", -1)

    def test_aggregate_derivation_cites_contributors(self):
        program, db = evaluated(
            "n(G, count(X)) :- item(G, X).",
            {"item": [("a", 1), ("a", 2)]},
        )
        node = explain(program, db, "n", ("a", 2))
        assert node.rule is not None
        assert len(node.children) >= 1


class TestSchedulingDenials:
    def test_explaining_a_denial(self):
        """The operator-facing use case: why was request 4 denied?"""
        from repro.protocols.ss2pl_datalog import SS2PL_DATALOG_RULES

        program = Program.parse(SS2PL_DATALOG_RULES)
        db = Database()
        db.add_facts("history", [(1, 1, 0, "w", 5)])
        db.add_facts("requests", [(4, 2, 0, "r", 5)])
        evaluate(program, db)
        node = explain(program, db, "denied", (4,))
        rendered = node.format()
        assert "wlocked" in rendered
        assert "(1, 1, 0, 'w', 5)" in rendered  # the lock-holding write
        assert "no fact finished" in rendered  # the holder is active

    def test_str_is_format(self):
        program, db = evaluated("p(X) :- q(X).", {"q": [(1,)]})
        node = explain(program, db, "p", (1,))
        assert str(node) == node.format()
