"""The compile-once plan layer: correctness of codegen, cached builds,
plan caching, and randomized cross-strategy protocol equivalence."""

import random

import pytest

from repro.bench.incremental_ablation import drive_steps
from repro.core.scheduler import DeclarativeScheduler
from repro.model.request import Request
from repro.protocols.fcfs import FCFSProtocol
from repro.protocols.ss2pl import (
    PaperListing1Protocol,
    SS2PLRelalgProtocol,
    listing1_pipeline,
    listing1_query,
)
from repro.protocols.ss2pl_incremental import SS2PLIncrementalProtocol
from repro.relalg.expressions import col, compile_expr, is_null, lit, or_
from repro.relalg.plan import (
    CompiledPlan,
    PAntiJoin,
    PHashJoin,
    PlanCache,
    _CachedBuild,
    _IndexBuild,
)
from repro.relalg.query import Query, cte
from repro.relalg.schema import Column, Schema
from repro.relalg.table import Table


def request(rid, ta, intrata, op, obj):
    return Request.from_row((rid, ta, intrata, op, obj))


def make_history(rows):
    table = Table("history", ["id", "ta", "intrata", "operation", "object"])
    table.create_index("ta")
    table.create_index("object")
    table.insert_many(rows)
    return table


def make_requests(rows):
    table = Table("requests", ["id", "ta", "intrata", "operation", "object"])
    table.insert_many(rows)
    return table


class TestCompiledExpressions:
    SCHEMA = Schema(
        [Column("ta", "r"), Column("op", "r"), Column("obj", "r"),
         Column("ta", "h"), Column("op", "h"), Column("obj", "h")]
    )

    EXPRS = [
        (col("r.ta") == col("h.ta")) & (col("r.obj") != col("h.obj")),
        or_(col("r.op") == lit("w"), col("h.op") == lit("w")),
        ~((col("r.ta") > col("h.ta")) | is_null(col("h.obj"))),
        (col("r.ta") + col("h.ta")) * lit(2) > lit(5),
        col("r.op").in_(["a", "c"]),
        is_null(col("r.ta") - col("h.ta")),
    ]

    def rows(self):
        rng = random.Random(11)
        ints = [None, 0, 1, 2, 3]
        ops = [None, "w", "r", "a", "c"]
        return [
            (rng.choice(ints), rng.choice(ops), rng.choice(ints),
             rng.choice(ints), rng.choice(ops), rng.choice(ints))
            for __ in range(200)
        ]

    @pytest.mark.parametrize("expr", EXPRS, ids=repr)
    def test_compiled_matches_bound(self, expr):
        bound = expr.bind(self.SCHEMA)
        compiled = compile_expr(expr, self.SCHEMA)
        for row in self.rows():
            assert bound(row) == compiled(row)

    @pytest.mark.parametrize("expr", EXPRS, ids=repr)
    def test_predicate_mode_matches_truthiness(self, expr):
        bound = expr.bind(self.SCHEMA)
        compiled = compile_expr(expr, self.SCHEMA, predicate=True)
        for row in self.rows():
            assert bool(bound(row)) == bool(compiled(row))

    def test_generated_source_is_attached(self):
        fn = compile_expr(col("r.ta") == lit(3), self.SCHEMA)
        assert "_row[0] == 3" in fn.__relalg_source__


class TestCompiledPlanExecution:
    def test_reexecutes_against_current_table_contents(self):
        table = make_requests([(1, 1, 0, "r", 5), (2, 2, 0, "w", 6)])
        query = (
            Query.from_(table, alias="r")
            .where(col("r.operation") == lit("w"))
            .select("r.id")
        )
        plan = query.compile()
        assert plan.execute().rows == [(2,)]
        table.insert((3, 3, 0, "w", 7))
        assert plan.execute().rows == [(2,), (3,)]
        table.delete_rows([(2, 2, 0, "w", 6)])
        assert plan.execute().rows == [(3,)]

    def test_matches_interpreted_through_mutations(self):
        rng = random.Random(5)
        history = make_history([])
        requests = make_requests([])
        finished = cte(
            Query.from_(history, alias="f")
            .where(or_(col("f.operation") == lit("a"),
                       col("f.operation") == lit("c")))
            .select("f.ta")
            .distinct(),
            "finished",
        )
        query = (
            Query.from_(requests, alias="r")
            .anti_join(Query.from_(finished, alias="fin"),
                       on=col("r.ta") == col("fin.ta"))
            .select("r.id", "r.ta")
            .order_by("id")
        )
        plan = query.compile()
        rid = 1
        for __ in range(30):
            if rng.random() < 0.7 or not len(history):
                op = rng.choice(["r", "w", "c", "a"])
                history.insert((rid, rng.randrange(5), 0, op, rng.randrange(8)))
                rid += 1
            else:
                history.delete_rows([rng.choice(history.rows)])
            if rng.random() < 0.5:
                requests.insert((rid, rng.randrange(5), 0, "r", rng.randrange(8)))
                rid += 1
            assert plan.execute().rows == query.execute().rows

    def test_index_build_used_for_indexed_base_table(self):
        history = make_history([(1, 1, 0, "w", 5)])
        requests = make_requests([(2, 2, 0, "r", 5)])
        query = Query.from_(requests, alias="r").join(
            Query.from_(history, alias="h"),
            on=col("r.object") == col("h.object"),
        )
        plan = query.compile()
        joins = [
            node
            for node in _walk(plan.physical)
            if isinstance(node, PHashJoin)
        ]
        assert joins and isinstance(joins[0].build, _IndexBuild)
        assert plan.execute().rows == query.execute().rows

    def test_cached_build_applies_deltas_without_rebuild(self):
        history = make_history([(i, i, 0, "w", i) for i in range(1, 6)])
        requests = make_requests([(10, 9, 0, "r", 3)])
        writes = cte(
            Query.from_(history, alias="h")
            .where(col("h.operation") == lit("w"))
            .select("h.object"),
            "writes",
        )
        query = Query.from_(requests, alias="r").anti_join(
            Query.from_(writes, alias="w"),
            on=col("r.object") == col("w.object"),
        )
        plan = query.compile()
        caches = [
            node.build
            for node in _walk(plan.physical)
            if isinstance(node, PAntiJoin)
            and isinstance(node.build, _CachedBuild)
        ]
        assert caches
        cache = caches[0]
        plan.execute()
        assert cache.rebuilds == 1
        history.insert((6, 6, 0, "w", 9))
        history.insert((7, 7, 0, "r", 3))
        plan.execute()
        assert cache.rebuilds == 1  # deltas applied, no rebuild
        assert cache.delta_rows_applied >= 2
        assert plan.execute().rows == query.execute().rows

    def test_outer_join_reduction_preserves_semantics(self):
        history = make_history(
            [(1, 1, 0, "w", 5), (2, 1, 1, "c", -1), (3, 2, 0, "w", 6),
             (4, 3, 0, "r", 6), (5, 4, 0, "w", 5)]
        )
        finished = cte(
            Query.from_(history, alias="f")
            .where(or_(col("f.operation") == lit("a"),
                       col("f.operation") == lit("c")))
            .select("f.ta")
            .distinct(),
            "finished",
        )
        w_locked = (
            Query.from_(history, alias="a")
            .left_join(Query.from_(finished, alias="fin"),
                       on=col("a.ta") == col("fin.ta"))
            .where((col("a.operation") == lit("w")) & is_null(col("fin.ta")))
            .select("a.object", "a.ta")
            .distinct()
        )
        plan = w_locked.compile()
        assert "AntiJoin" in plan.explain()
        assert plan.execute().rows == w_locked.execute().rows

    def test_outer_join_reduction_with_null_join_keys(self):
        # A NULL left key *matches* a NULL build key under hash-join
        # semantics, so the original LEFT JOIN ... IS NULL keeps such
        # rows; the reduction must too (build filtered to non-NULL
        # keys + DISTINCT above).
        history = make_history(
            [(1, None, 0, "w", 5), (2, None, 1, "c", -1),
             (3, 2, 0, "w", 6), (4, 3, 0, "w", 7), (5, 3, 1, "c", -1)]
        )
        finished = cte(
            Query.from_(history, alias="f")
            .where(or_(col("f.operation") == lit("a"),
                       col("f.operation") == lit("c")))
            .select("f.ta")
            .distinct(),
            "finished",
        )
        w_locked = (
            Query.from_(history, alias="a")
            .left_join(Query.from_(finished, alias="fin"),
                       on=col("a.ta") == col("fin.ta"))
            .where((col("a.operation") == lit("w")) & is_null(col("fin.ta")))
            .select("a.object", "a.ta")
            .distinct()
        )
        plan = w_locked.compile()
        assert "AntiJoin" in plan.explain()
        assert plan.execute().rows == w_locked.execute().rows
        history.insert((6, None, 2, "w", 9))
        history.insert((7, 4, 0, "w", 9))
        assert plan.execute().rows == w_locked.execute().rows

    def test_no_reduction_without_distinct(self):
        # Without a DISTINCT above, multiplicities can differ for NULL
        # keys; the rewrite must not fire.
        history = make_history([(1, 1, 0, "w", 5)])
        finished = cte(
            Query.from_(history, alias="f")
            .where(col("f.operation") == lit("c"))
            .select("f.ta"),
            "finished",
        )
        query = (
            Query.from_(history, alias="a")
            .left_join(Query.from_(finished, alias="fin"),
                       on=col("a.ta") == col("fin.ta"))
            .where(is_null(col("fin.ta")))
            .select("a.object", "a.ta")
        )
        plan = query.compile()
        assert "AntiJoin" not in plan.explain()
        assert plan.execute().rows == query.execute().rows

    def test_empty_tables(self):
        requests = make_requests([])
        history = make_history([])
        plan = CompiledPlan(listing1_query(requests, history).plan)
        assert plan.execute().rows == []


def _walk(node):
    yield node
    for child in node.children():
        yield from _walk(child)


class TestPlanCache:
    def test_caches_per_table_identity(self):
        cache = PlanCache(lambda t: Query.from_(t).order_by("id"))
        a = make_requests([(1, 1, 0, "r", 5)])
        b = make_requests([(2, 2, 0, "w", 6)])
        plan_a = cache.get(a)
        assert cache.get(a) is plan_a
        assert cache.get(b) is not plan_a
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = PlanCache(lambda t: Query.from_(t).order_by("id"), capacity=2)
        tables = [make_requests([]) for __ in range(3)]
        plans = [cache.get(t) for t in tables]
        assert len(cache) == 2
        assert cache.get(tables[0]) is not plans[0]  # evicted, rebuilt


class TestListing1Compiled:
    def test_one_shot_identical_to_pipeline(self):
        from repro.bench.declarative_overhead import paper_snapshot
        from repro.core.stores import HistoryStore, PendingStore

        incoming, history = paper_snapshot(40, seed=3)
        pending_store, history_store = PendingStore(), HistoryStore()
        pending_store.insert_batch(incoming)
        history_store.record_batch(history)
        interpreted = listing1_pipeline(
            pending_store.table, history_store.table
        )["qualified_requests"].rows
        compiled = (
            PaperListing1Protocol(compiled=True)
            ._plans.get(pending_store.table, history_store.table)
            .execute()
            .rows
        )
        assert interpreted == compiled


class TestRandomizedEquivalence:
    """~50 random workloads: the interpreted pipeline, the compiled
    plan, and the incrementally maintained protocol emit identical
    qualified batches on every scheduler step."""

    def test_fifty_random_workloads(self):
        rng = random.Random(2026)
        for trial in range(50):
            clients = rng.randrange(3, 10)
            steps = rng.randrange(4, 9)
            ops_per_txn = rng.randrange(2, 6)
            table_rows = rng.choice([4, 10, 50])
            seed = rng.randrange(10_000)
            kwargs = dict(
                clients=clients,
                steps=steps,
                ops_per_txn=ops_per_txn,
                table_rows=table_rows,
                seed=seed,
            )
            interpreted = drive_steps(
                PaperListing1Protocol(compiled=False), **kwargs
            )
            compiled = drive_steps(
                PaperListing1Protocol(compiled=True), **kwargs
            )
            incremental = drive_steps(SS2PLIncrementalProtocol(), **kwargs)
            assert interpreted.batches == compiled.batches, (
                f"trial {trial}: compiled diverged ({kwargs})"
            )
            assert interpreted.batches == incremental.batches, (
                f"trial {trial}: incremental diverged ({kwargs})"
            )

    def test_ss2pl_relalg_modes_agree(self):
        rng = random.Random(7)
        for trial in range(10):
            kwargs = dict(
                clients=rng.randrange(3, 10),
                steps=rng.randrange(4, 8),
                ops_per_txn=rng.randrange(2, 5),
                table_rows=rng.choice([5, 25]),
                seed=rng.randrange(10_000),
            )
            interpreted = drive_steps(
                SS2PLRelalgProtocol(compiled=False), **kwargs
            )
            compiled = drive_steps(
                SS2PLRelalgProtocol(compiled=True), **kwargs
            )
            assert interpreted.batches == compiled.batches, (
                f"trial {trial}: {kwargs}"
            )


class TestSchedulerShortCircuit:
    def test_empty_pending_skips_protocol_query(self):
        class ExplodingProtocol(FCFSProtocol):
            def schedule(self, requests, history):  # pragma: no cover
                raise AssertionError("protocol queried on empty pending")

        scheduler = DeclarativeScheduler(ExplodingProtocol())
        result = scheduler.step()
        assert result.batch_size == 0
        assert result.query_seconds == 0.0
        assert scheduler.steps_run == 1

    def test_nonempty_pending_still_queries(self):
        scheduler = DeclarativeScheduler(FCFSProtocol())
        scheduler.submit(request(1, 1, 0, "r", 5))
        result = scheduler.step()
        assert [r.id for r in result.qualified] == [1]
