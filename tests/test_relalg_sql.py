"""SQL frontend: lexing, parsing, planning, and Listing 1 execution."""

import random

import pytest

from repro.protocols.ss2pl import LISTING1_SQL, PaperListing1Protocol
from repro.relalg.sql import SqlError, SqlPlanner, execute_sql
from repro.relalg.table import Table

from tests.conftest import random_scheduling_instance


@pytest.fixture
def db():
    people = Table("people", ["id", "dept", "salary"])
    people.insert_many(
        [(1, "db", 100), (2, "db", 120), (3, "os", 90), (4, "pl", 90)]
    )
    depts = Table("depts", ["dept", "floor"])
    depts.insert_many([("db", 1), ("os", 2)])
    return {"people": people, "depts": depts}


def sql(source, db):
    return execute_sql(source, db)


class TestSelectBasics:
    def test_select_star(self, db):
        out = sql("SELECT * FROM people", db)
        assert len(out) == 4 and out.schema.arity == 3

    def test_projection_and_where(self, db):
        out = sql("SELECT id FROM people WHERE dept = 'db'", db)
        assert sorted(out.rows) == [(1,), (2,)]

    def test_qualified_star(self, db):
        out = sql(
            "SELECT p.* FROM people p, depts d WHERE p.dept = d.dept", db
        )
        assert out.schema.arity == 3 and len(out) == 3

    def test_alias_with_as(self, db):
        out = sql("SELECT p.salary AS pay FROM people AS p WHERE p.id = 1", db)
        assert out.schema.names == ("pay",)
        assert out.rows == [(100,)]

    def test_distinct(self, db):
        out = sql("SELECT DISTINCT dept FROM people", db)
        assert sorted(out.rows) == [("db",), ("os",), ("pl",)]

    def test_comparison_operators(self, db):
        assert len(sql("SELECT id FROM people WHERE salary >= 100", db)) == 2
        assert len(sql("SELECT id FROM people WHERE salary <> 90", db)) == 2
        assert len(sql("SELECT id FROM people WHERE salary != 90", db)) == 2
        assert len(sql("SELECT id FROM people WHERE salary < 100", db)) == 2

    def test_and_or_parens(self, db):
        out = sql(
            "SELECT id FROM people WHERE (dept = 'db' AND salary > 110) "
            "OR dept = 'pl'",
            db,
        )
        assert sorted(out.rows) == [(2,), (4,)]

    def test_order_by(self, db):
        out = sql("SELECT id FROM people ORDER BY salary DESC, id ASC", db)
        assert [r[0] for r in out.rows] == [2, 1, 3, 4]

    def test_string_escape(self, db):
        table = Table("t", ["s"])
        table.insert(("it's",))
        out = sql("SELECT s FROM t WHERE s = 'it''s'", {"t": table})
        assert len(out) == 1


class TestJoins:
    def test_comma_join_with_where(self, db):
        out = sql(
            "SELECT p.id, d.floor FROM people p, depts d "
            "WHERE p.dept = d.dept",
            db,
        )
        assert sorted(out.rows) == [(1, 1), (2, 1), (3, 2)]

    def test_left_join_is_null(self, db):
        out = sql(
            "SELECT p.id FROM people p LEFT JOIN depts d "
            "ON p.dept = d.dept WHERE d.floor IS NULL",
            db,
        )
        assert out.rows == [(4,)]

    def test_left_join_subquery(self, db):
        out = sql(
            "SELECT p.id FROM people p LEFT JOIN "
            "(SELECT dept FROM depts WHERE floor = 1) AS ground "
            "ON p.dept = ground.dept WHERE ground.dept IS NOT NULL",
            db,
        )
        assert sorted(out.rows) == [(1,), (2,)]


class TestExists:
    def test_not_exists(self, db):
        out = sql(
            "SELECT p.id FROM people p WHERE NOT EXISTS "
            "(SELECT * FROM depts d WHERE d.dept = p.dept)",
            db,
        )
        assert out.rows == [(4,)]

    def test_exists(self, db):
        out = sql(
            "SELECT p.id FROM people p WHERE EXISTS "
            "(SELECT * FROM depts d WHERE d.dept = p.dept)",
            db,
        )
        assert sorted(out.rows) == [(1,), (2,), (3,)]

    def test_not_exists_with_or_decorrelates(self, db):
        # NOT EXISTS(P1 OR P2) == NOT EXISTS(P1) AND NOT EXISTS(P2).
        # p4 (pl, 90) survives P1 (no pl dept) and P2 (salary != 100);
        # everyone else is caught by P1, and a salary-100 pl person
        # would be caught by P2.
        out = sql(
            "SELECT p.id FROM people p WHERE NOT EXISTS "
            "(SELECT * FROM depts d WHERE d.dept = p.dept "
            " OR (d.floor = 2 AND p.salary = 100))",
            db,
        )
        assert out.rows == [(4,)]

    def test_exists_combined_with_plain_predicate(self, db):
        out = sql(
            "SELECT p.id FROM people p WHERE p.salary > 95 AND EXISTS "
            "(SELECT * FROM depts d WHERE d.dept = p.dept)",
            db,
        )
        assert sorted(out.rows) == [(1,), (2,)]

    def test_exists_under_or_rejected(self, db):
        with pytest.raises(SqlError, match="top-level conjunct"):
            sql(
                "SELECT p.id FROM people p WHERE p.id = 1 OR EXISTS "
                "(SELECT * FROM depts d WHERE d.dept = p.dept)",
                db,
            )


class TestSetOpsAndCtes:
    def test_union_all_except(self, db):
        out = sql(
            "(SELECT dept FROM people) EXCEPT (SELECT dept FROM depts)", db
        )
        assert out.rows == [("pl",)]

    def test_union_distinct(self, db):
        out = sql(
            "(SELECT dept FROM depts) UNION (SELECT dept FROM people)", db
        )
        assert len(out) == 3

    def test_with_chain(self, db):
        out = sql(
            "WITH rich AS (SELECT id, dept FROM people WHERE salary > 95), "
            "grounded AS (SELECT r.id FROM rich r, depts d "
            "             WHERE r.dept = d.dept AND d.floor = 1) "
            "SELECT * FROM grounded",
            db,
        )
        assert sorted(out.rows) == [(1,), (2,)]

    def test_semicolon_tolerated(self, db):
        assert len(sql("SELECT id FROM people;", db)) == 4


class TestErrors:
    def test_unknown_table(self, db):
        with pytest.raises(SqlError, match="unknown table"):
            sql("SELECT * FROM missing", db)

    def test_trailing_garbage(self, db):
        with pytest.raises(SqlError, match="trailing"):
            sql("SELECT id FROM people people2 people3", db)

    def test_unexpected_character(self, db):
        with pytest.raises(SqlError, match="unexpected character"):
            sql("SELECT id FROM people WHERE id ~ 3", db)

    def test_missing_from(self, db):
        with pytest.raises(SqlError, match="expected FROM"):
            sql("SELECT id", db)


class TestListing1:
    def test_matches_reference_on_random_instances(self):
        rng = random.Random(31)
        reference = PaperListing1Protocol()
        for __ in range(15):
            requests, history = random_scheduling_instance(
                rng,
                pending=rng.randint(1, 20),
                history_transactions=rng.randint(1, 12),
            )
            ours = sorted(
                execute_sql(
                    LISTING1_SQL, {"requests": requests, "history": history}
                ).rows
            )
            expected = sorted(
                q.as_row()
                for q in reference.schedule(requests, history).qualified
            )
            assert ours == expected

    def test_planner_reusable(self, db):
        planner = SqlPlanner(db)
        a = planner.execute("SELECT id FROM people WHERE dept = 'db'")
        b = planner.execute("SELECT id FROM people WHERE dept = 'os'")
        assert len(a) == 2 and len(b) == 1
