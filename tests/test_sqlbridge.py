"""sqlite3 bridge: loading, the paper's query, batch maintenance."""

import random

from repro.protocols.ss2pl import PaperListing1Protocol
from repro.sqlbridge.bridge import SqliteScheduler

from tests.conftest import (
    empty_history_table,
    empty_requests_table,
    random_scheduling_instance,
    request,
)


class TestQuery:
    def test_empty_tables_qualify_nothing(self):
        with SqliteScheduler() as backend:
            assert backend.qualified_requests() == []

    def test_simple_qualification(self):
        with SqliteScheduler() as backend:
            backend.insert_pending([request(1, 1, 0, "r", 5)])
            qualified = backend.qualified_requests()
            assert [r.id for r in qualified] == [1]

    def test_write_lock_blocks(self):
        with SqliteScheduler() as backend:
            backend.insert_history([request(1, 1, 0, "w", 5)])
            backend.insert_pending([request(2, 2, 0, "r", 5)])
            assert backend.qualified_requests() == []

    def test_matches_relalg_on_random_instances(self):
        rng = random.Random(99)
        reference = PaperListing1Protocol()
        for __ in range(10):
            requests, history = random_scheduling_instance(rng)
            with SqliteScheduler() as backend:
                backend.load_rows("requests", requests.rows)
                backend.load_rows("history", history.rows)
                sql_ids = sorted(r.id for r in backend.qualified_requests())
            expected = sorted(
                r.id for r in reference.schedule(requests, history).qualified
            )
            assert sql_ids == expected


class TestSchedulerStep:
    def test_step_moves_qualified_to_history(self):
        with SqliteScheduler() as backend:
            qualified = backend.scheduler_step([request(1, 1, 0, "r", 5)])
            assert [r.id for r in qualified] == [1]
            pending, history = backend.counts()
            assert (pending, history) == (0, 1)

    def test_blocked_requests_stay_pending(self):
        with SqliteScheduler() as backend:
            backend.insert_history([request(1, 1, 0, "w", 5)])
            qualified = backend.scheduler_step([request(2, 2, 0, "w", 5)])
            assert qualified == []
            pending, history = backend.counts()
            assert (pending, history) == (1, 1)

    def test_multi_step_progression(self):
        with SqliteScheduler() as backend:
            backend.insert_history([request(1, 1, 0, "w", 5)])
            backend.scheduler_step([request(2, 2, 0, "w", 5)])
            # T1 commits; next step frees T2's write.
            backend.scheduler_step([request(3, 1, 1, "c")])
            backend.prune_finished_history()
            qualified = backend.scheduler_step([])
            assert [r.id for r in qualified] == [2]

    def test_prune_finished_history(self):
        with SqliteScheduler() as backend:
            backend.insert_history(
                [
                    request(1, 1, 0, "w", 5),
                    request(2, 1, 1, "c"),
                    request(3, 2, 0, "w", 6),
                ]
            )
            removed = backend.prune_finished_history()
            assert removed == 2
            assert backend.counts() == (0, 1)

    def test_load_rows_validates_table(self):
        import pytest

        with SqliteScheduler() as backend:
            with pytest.raises(ValueError, match="unknown table"):
                backend.load_rows("other", [])

    def test_clear(self):
        with SqliteScheduler() as backend:
            backend.insert_pending([request(1, 1, 0, "r", 5)])
            backend.insert_history([request(2, 2, 0, "w", 6)])
            backend.clear()
            assert backend.counts() == (0, 0)
