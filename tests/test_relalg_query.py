"""Query builder, pipelines and the optimizer."""

import pytest

from repro.relalg.expressions import col, lit
from repro.relalg.query import Pipeline, Query
from repro.relalg.table import Table


@pytest.fixture
def requests() -> Table:
    t = Table("requests", ["id", "ta", "intrata", "operation", "object"])
    t.insert_many(
        [
            (1, 1, 0, "r", 5),
            (2, 2, 0, "w", 5),
            (3, 3, 0, "r", 9),
            (4, 3, 1, "w", 9),
        ]
    )
    return t


@pytest.fixture
def history() -> Table:
    t = Table("history", ["id", "ta", "intrata", "operation", "object"])
    t.insert_many([(100, 9, 0, "w", 9), (101, 9, 1, "c", -1)])
    return t


class TestBuilder:
    def test_where_select(self, requests):
        out = (
            Query.from_(requests, alias="r")
            .where(col("r.operation") == lit("w"))
            .select("r.id")
            .execute()
        )
        assert out.rows == [(2,), (4,)]

    def test_join_with_equi_and_residual(self, requests, history):
        out = (
            Query.from_(requests, alias="r")
            .join(
                Query.from_(history, alias="h"),
                on=(col("r.object") == col("h.object"))
                & (col("r.ta") != col("h.ta")),
            )
            .select("r.id")
            .execute()
        )
        assert sorted(out.rows) == [(3,), (4,)]

    def test_left_join_is_null_idiom(self, requests, history):
        from repro.relalg.expressions import is_null

        out = (
            Query.from_(requests, alias="r")
            .left_join(
                Query.from_(history, alias="h"),
                on=col("r.object") == col("h.object"),
            )
            .where(is_null(col("h.id")))
            .select("r.id")
            .execute()
        )
        assert sorted(out.rows) == [(1,), (2,)]

    def test_anti_join(self, requests, history):
        out = (
            Query.from_(requests, alias="r")
            .anti_join(
                Query.from_(history, alias="h"),
                on=col("r.object") == col("h.object"),
            )
            .select("r.id")
            .execute()
        )
        assert sorted(out.rows) == [(1,), (2,)]

    def test_semi_join(self, requests, history):
        out = (
            Query.from_(requests, alias="r")
            .semi_join(
                Query.from_(history, alias="h"),
                on=col("r.object") == col("h.object"),
            )
            .select("r.id")
            .execute()
        )
        assert sorted(out.rows) == [(3,), (4,)]

    def test_set_operations(self, requests):
        reads = (
            Query.from_(requests, alias="r")
            .where(col("r.operation") == lit("r"))
            .select("r.ta")
        )
        writes = (
            Query.from_(requests, alias="r")
            .where(col("r.operation") == lit("w"))
            .select("r.ta")
        )
        assert sorted(reads.union(writes).execute().rows) == [(1,), (2,), (3,)]
        assert sorted(reads.except_(writes).execute().rows) == [(1,)]
        assert sorted(reads.intersect(writes).execute().rows) == [(3,)]

    def test_aggregate_and_order(self, requests):
        out = (
            Query.from_(requests, alias="r")
            .aggregate(["r.ta"], [("count", "*", "n")])
            .order_by(("n", True), "ta")
            .execute()
        )
        assert out.rows == [(3, 2), (1, 1), (2, 1)]

    def test_extend_and_limit(self, requests):
        out = (
            Query.from_(requests, alias="r")
            .extend("next_id", col("r.id") + lit(1))
            .limit(1)
            .execute()
        )
        assert out.rows == [(1, 1, 0, "r", 5, 2)]

    def test_distinct(self, requests):
        out = (
            Query.from_(requests, alias="r").select("r.operation").distinct().execute()
        )
        assert sorted(out.rows) == [("r",), ("w",)]

    def test_subquery_alias(self, requests):
        inner = Query.from_(requests, alias="r").select("r.ta").distinct()
        out = Query.from_(inner, alias="sub").where(
            col("sub.ta") > lit(1)
        ).execute()
        assert sorted(out.rows) == [(2,), (3,)]


class TestOptimizer:
    def test_pushdown_preserves_results(self, requests, history):
        q = (
            Query.from_(requests, alias="r")
            .join(
                Query.from_(history, alias="h"),
                on=col("r.object") == col("h.object"),
            )
            .where(
                (col("r.operation") == lit("w"))
                & (col("h.operation") == lit("w"))
            )
            .select("r.id")
        )
        optimized = q.execute(optimize=True)
        unoptimized = q.execute(optimize=False)
        assert sorted(optimized.rows) == sorted(unoptimized.rows) == [(4,)]

    def test_pushdown_visible_in_plan(self, requests, history):
        q = (
            Query.from_(requests, alias="r")
            .join(
                Query.from_(history, alias="h"),
                on=col("r.object") == col("h.object"),
            )
            .where(col("r.operation") == lit("w"))
        )
        plan = q.explain(optimize=True)
        # The filter should appear under the join, on the source side.
        join_line = next(
            i for i, line in enumerate(plan.splitlines()) if "Join" in line
        )
        filter_line = next(
            i for i, line in enumerate(plan.splitlines()) if "Filter" in line
        )
        assert filter_line > join_line

    def test_explain_unoptimized_keeps_filter_on_top(self, requests, history):
        q = (
            Query.from_(requests, alias="r")
            .join(
                Query.from_(history, alias="h"),
                on=col("r.object") == col("h.object"),
            )
            .where(col("r.operation") == lit("w"))
        )
        plan = q.explain(optimize=False)
        assert plan.splitlines()[0].startswith("Filter")


class TestPipeline:
    def test_named_steps(self, requests, history):
        p = Pipeline()
        p.add_table("requests", requests, alias="r")
        p.add(
            "writes",
            p.ref("requests").where(col("r.operation") == lit("w")),
        )
        out = p.ref("writes", alias="w").select("w.id").execute()
        assert sorted(out.rows) == [(2,), (4,)]

    def test_missing_step_raises(self):
        with pytest.raises(KeyError, match="no step"):
            Pipeline()["nope"]

    def test_contains(self, requests):
        p = Pipeline()
        p.add_table("requests", requests)
        assert "requests" in p and "other" not in p
