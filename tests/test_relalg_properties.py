"""Property-based tests for the relational engine (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relalg import operators as ops
from repro.relalg.expressions import col
from repro.relalg.relation import Relation, rows_equal_as_bags
from repro.relalg.schema import Column, Schema

small_int = st.integers(0, 6)
row2 = st.tuples(small_int, small_int)
rows2 = st.lists(row2, max_size=25)


def rel(qualifier: str, rows) -> Relation:
    return Relation(Schema([Column("k", qualifier), Column("v", qualifier)]), rows)


class TestJoinEquivalence:
    @given(rows2, rows2)
    @settings(max_examples=100, deadline=None)
    def test_hash_join_matches_nested_loop(self, left_rows, right_rows):
        left, right = rel("l", left_rows), rel("r", right_rows)
        predicate = col("l.k") == col("r.k")
        hashed = ops.hash_join(left, right, ["l.k"], ["r.k"])
        nested = ops.nested_loop_join(left, right, predicate)
        assert rows_equal_as_bags(hashed.rows, nested.rows)

    @given(rows2, rows2)
    @settings(max_examples=100, deadline=None)
    def test_semi_plus_anti_partition_left(self, left_rows, right_rows):
        left, right = rel("l", left_rows), rel("r", right_rows)
        semi = ops.semi_join(left, right, ["l.k"], ["r.k"])
        anti = ops.anti_join(left, right, ["l.k"], ["r.k"])
        assert rows_equal_as_bags(semi.rows + anti.rows, left.rows)

    @given(rows2, rows2)
    @settings(max_examples=100, deadline=None)
    def test_outer_join_covers_every_left_row(self, left_rows, right_rows):
        left, right = rel("l", left_rows), rel("r", right_rows)
        outer = ops.left_outer_join(left, right, ["l.k"], ["r.k"])
        left_keys = [row[:2] for row in outer.rows]
        # Every left row appears at least once (projection of outer rows).
        for row in left.rows:
            assert row in left_keys

    @given(rows2, rows2)
    @settings(max_examples=60, deadline=None)
    def test_outer_join_null_rows_are_anti_join(self, left_rows, right_rows):
        left, right = rel("l", left_rows), rel("r", right_rows)
        outer = ops.left_outer_join(left, right, ["l.k"], ["r.k"])
        padded = [row[:2] for row in outer.rows if row[2] is None]
        anti = ops.anti_join(left, right, ["l.k"], ["r.k"])
        assert rows_equal_as_bags(padded, anti.rows)


class TestSetOpsAgainstPython:
    @given(rows2, rows2)
    @settings(max_examples=100, deadline=None)
    def test_except_matches_set_difference(self, a_rows, b_rows):
        a, b = rel("a", a_rows), rel("b", b_rows)
        out = ops.except_(a, b)
        assert set(out.rows) == set(a_rows) - set(b_rows)
        assert len(out.rows) == len(set(out.rows))  # distinct

    @given(rows2, rows2)
    @settings(max_examples=100, deadline=None)
    def test_union_matches_set_union(self, a_rows, b_rows):
        a, b = rel("a", a_rows), rel("b", b_rows)
        assert set(ops.union(a, b).rows) == set(a_rows) | set(b_rows)

    @given(rows2, rows2)
    @settings(max_examples=100, deadline=None)
    def test_intersect_matches_set_intersection(self, a_rows, b_rows):
        a, b = rel("a", a_rows), rel("b", b_rows)
        assert set(ops.intersect(a, b).rows) == set(a_rows) & set(b_rows)

    @given(rows2, rows2)
    @settings(max_examples=60, deadline=None)
    def test_except_all_counts(self, a_rows, b_rows):
        a, b = rel("a", a_rows), rel("b", b_rows)
        out = ops.except_all(a, b)
        for row in set(a_rows):
            expected = max(0, a_rows.count(row) - b_rows.count(row))
            assert out.rows.count(row) == expected


class TestAggregateAgainstPython:
    @given(rows2)
    @settings(max_examples=100, deadline=None)
    def test_grouped_count_and_sum(self, rows):
        relation = rel("t", rows)
        out = ops.aggregate(
            relation, ["k"], [("count", "*", "n"), ("sum", "v", "s")]
        )
        expected = {}
        for k, v in rows:
            n, s = expected.get(k, (0, 0))
            expected[k] = (n + 1, s + v)
        assert {row[0]: (row[1], row[2]) for row in out.rows} == expected

    @given(rows2)
    @settings(max_examples=60, deadline=None)
    def test_distinct_is_idempotent(self, rows):
        relation = rel("t", rows)
        once = ops.distinct(relation)
        twice = ops.distinct(once)
        assert once.rows == twice.rows
