"""External MPL admission control on the simulated server."""

import pytest

from repro.server.engine import SimulatedDBMS
from repro.workload.spec import WorkloadSpec

SMALL = WorkloadSpec(reads_per_txn=4, writes_per_txn=4, table_rows=2_000)


class TestMplCap:
    def test_validation(self):
        dbms = SimulatedDBMS(SMALL)
        with pytest.raises(ValueError, match="mpl_cap"):
            dbms.run_multi_user(10, 1.0, mpl_cap=0)

    def test_cap_larger_than_clients_is_noop(self):
        dbms = SimulatedDBMS(SMALL, seed=1)
        plain = dbms.run_multi_user(10, 2.0)
        capped = dbms.run_multi_user(10, 2.0, mpl_cap=100)
        assert capped.committed_statements == plain.committed_statements

    def test_cap_reduces_effective_statement_cost_pressure(self):
        # With a cost model that penalizes MPL, capping must not *hurt*
        # throughput for CPU-bound workloads.
        dbms = SimulatedDBMS(SMALL, seed=2)
        uncapped = dbms.run_multi_user(30, 2.0)
        capped = dbms.run_multi_user(30, 2.0, mpl_cap=10)
        assert capped.committed_statements >= uncapped.committed_statements * 0.9

    def test_cap_one_serializes_transactions(self):
        dbms = SimulatedDBMS(SMALL, seed=3)
        result = dbms.run_multi_user(5, 2.0, mpl_cap=1)
        # One transaction at a time: zero lock waits, zero deadlocks.
        assert result.lock_waits == 0
        assert result.deadlock_aborts == 0
        assert result.committed_transactions > 0

    def test_cap_restores_throughput_past_knee(self):
        from repro.workload.spec import PAPER_WORKLOAD

        dbms = SimulatedDBMS(PAPER_WORKLOAD, seed=42)
        uncapped = dbms.run_multi_user(450, 60.0)
        capped = dbms.run_multi_user(450, 60.0, mpl_cap=300)
        assert capped.committed_statements > uncapped.committed_statements

    def test_determinism_with_cap(self):
        a = SimulatedDBMS(SMALL, seed=5).run_multi_user(12, 2.0, mpl_cap=4)
        b = SimulatedDBMS(SMALL, seed=5).run_multi_user(12, 2.0, mpl_cap=4)
        assert a.committed_statements == b.committed_statements
