"""Discrete-event kernel: queue, clock, simulator, RNG streams."""

import pytest

from repro.sim.clock import VirtualClock, WallClock
from repro.sim.events import EventQueue
from repro.sim.rng import RandomStreams
from repro.sim.simulator import Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.push(2.0, lambda: fired.append("b"))
        q.push(1.0, lambda: fired.append("a"))
        q.push(3.0, lambda: fired.append("c"))
        while (event := q.pop()) is not None:
            event.action()
        assert fired == ["a", "b", "c"]

    def test_ties_resolve_in_push_order(self):
        q = EventQueue()
        fired = []
        for name in "abc":
            q.push(1.0, lambda n=name: fired.append(n))
        while (event := q.pop()) is not None:
            event.action()
        assert fired == ["a", "b", "c"]

    def test_cancel_skips_event(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.cancel(event)
        assert len(q) == 0
        assert q.pop() is None

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.cancel(first)
        assert q.peek_time() == 2.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)


class TestVirtualClock:
    def test_monotonic(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)

    def test_advance_by_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance_by(-1.0)

    def test_wall_clock_advances(self):
        wall = WallClock()
        assert wall.now <= wall.now


class TestSimulator:
    def test_schedule_and_run(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.now))
        sim.schedule(2.0, lambda: seen.append(sim.now))
        sim.run_until(10.0)
        assert seen == [1.0, 2.0]
        assert sim.now == 10.0

    def test_run_until_stops_at_horizon(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append("late"))
        sim.run_until(2.0)
        assert seen == []
        assert sim.now == 2.0
        sim.run_until(10.0)
        assert seen == ["late"]

    def test_run_until_clock_lands_on_horizon(self):
        # The clock conventionally lands on the horizon itself, whether
        # the queue drained before it, was empty all along, or the last
        # event fell short of it.
        sim = Simulator()
        assert sim.run_until(5.0) == 5.0  # empty queue
        sim.schedule(1.0, lambda: None)
        assert sim.run_until(8.0) == 8.0  # last event at 6.0 < horizon
        assert sim.now == 8.0

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append((sim.now, n))
            if n > 0:
                sim.schedule(1.0, lambda: chain(n - 1))

        sim.schedule(0.0, lambda: chain(3))
        sim.run_to_completion()
        assert seen == [(0.0, 3), (1.0, 2), (2.0, 1), (3.0, 0)]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until(5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.5, lambda: None)

    def test_determinism(self):
        def run() -> list[float]:
            sim = Simulator()
            log = []
            for i in range(10):
                sim.schedule(i * 0.1, lambda i=i: log.append((sim.now, i)))
            sim.run_to_completion()
            return log

        assert run() == run()

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run_to_completion(max_events=1000)


class TestRandomStreams:
    def test_streams_deterministic_per_name(self):
        a = RandomStreams(42).stream("workload")
        b = RandomStreams(42).stream("workload")
        assert [a.random() for __ in range(5)] == [b.random() for __ in range(5)]

    def test_streams_independent_across_names(self):
        streams = RandomStreams(42)
        x = [streams.stream("x").random() for __ in range(5)]
        y = [streams.stream("y").random() for __ in range(5)]
        assert x != y

    def test_different_master_seeds_differ(self):
        a = RandomStreams(1).stream("s")
        b = RandomStreams(2).stream("s")
        assert [a.random() for __ in range(5)] != [b.random() for __ in range(5)]

    def test_reset_restores_sequences(self):
        streams = RandomStreams(7)
        first = [streams.stream("s").random() for __ in range(5)]
        streams.reset()
        second = [streams.stream("s").random() for __ in range(5)]
        assert first == second
