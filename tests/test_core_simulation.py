"""Closed-loop middleware simulation: integrity and protocol behaviour."""

import pytest

from repro.core.simulation import MiddlewareSimulation
from repro.core.triggers import FillLevelTrigger, HybridTrigger
from repro.protocols.fcfs import FCFSProtocol
from repro.protocols.relaxed import ReadCommittedProtocol
from repro.protocols.sla import SLAOrderingProtocol
from repro.protocols.ss2pl import SS2PLRelalgProtocol
from repro.workload.clients import ClientPopulation, SLA_TIERS
from repro.workload.spec import WorkloadSpec

SPEC = WorkloadSpec(reads_per_txn=3, writes_per_txn=3, table_rows=500)


def run(protocol, clients=10, duration=2.0, seed=1, **kwargs):
    simulation = MiddlewareSimulation(
        protocol=protocol,
        trigger=kwargs.pop("trigger", HybridTrigger(0.02, 10)),
        spec=kwargs.pop("spec", SPEC),
        clients=clients,
        seed=seed,
        **kwargs,
    )
    return simulation.run(duration)


class TestIntegrity:
    def test_counts_are_consistent(self):
        result = run(SS2PLRelalgProtocol())
        assert result.completed_statements > 0
        assert result.committed_transactions > 0
        # Committed txns imply their statements completed.
        assert (
            result.completed_statements
            >= result.committed_transactions * SPEC.statements_per_txn
        )

    def test_determinism(self):
        a = run(SS2PLRelalgProtocol(), seed=7)
        b = run(SS2PLRelalgProtocol(), seed=7)
        assert a.completed_statements == b.completed_statements
        assert a.committed_transactions == b.committed_transactions
        assert a.scheduler_runs == b.scheduler_runs

    def test_scheduler_cost_accumulates(self):
        result = run(SS2PLRelalgProtocol())
        assert result.scheduler_runs > 0
        assert result.scheduler_cost > 0
        assert result.mean_batch_size > 0

    def test_response_times_recorded(self):
        result = run(FCFSProtocol())
        assert result.mean_response() > 0

    def test_invalid_clients(self):
        with pytest.raises(ValueError):
            MiddlewareSimulation(
                protocol=FCFSProtocol(),
                trigger=FillLevelTrigger(1),
                spec=SPEC,
                clients=0,
            )


class TestProtocolOrdering:
    def test_fcfs_outperforms_ss2pl(self):
        fcfs = run(FCFSProtocol(), clients=20, duration=3.0)
        ss2pl = run(SS2PLRelalgProtocol(), clients=20, duration=3.0)
        assert fcfs.completed_statements >= ss2pl.completed_statements

    def test_relaxed_at_least_as_fast_as_strict_under_contention(self):
        hot = WorkloadSpec(reads_per_txn=4, writes_per_txn=4, table_rows=60)
        strict = run(SS2PLRelalgProtocol(), clients=15, duration=3.0, spec=hot)
        relaxed = run(ReadCommittedProtocol(), clients=15, duration=3.0, spec=hot)
        assert relaxed.completed_statements >= strict.completed_statements * 0.9

    def test_ss2pl_experiences_timeout_aborts_under_heat(self):
        hot = WorkloadSpec(reads_per_txn=2, writes_per_txn=6, table_rows=30)
        result = run(
            SS2PLRelalgProtocol(), clients=15, duration=3.0, spec=hot,
            deadlock_timeout=0.2,
        )
        assert result.timeout_aborts > 0


class TestSLA:
    def test_premium_faster_with_sla_layer(self):
        population = ClientPopulation(SLA_TIERS)
        base = run(
            SS2PLRelalgProtocol(), clients=20, duration=3.0,
            attrs_for_client=population.attributes_for,
        )
        sla = run(
            SLAOrderingProtocol(SS2PLRelalgProtocol()), clients=20,
            duration=3.0, attrs_for_client=population.attributes_for,
        )
        assert sla.mean_response("premium") < base.mean_response("premium")
        assert sla.mean_response("premium") < sla.mean_response("free")

    def test_tier_samples_collected(self):
        population = ClientPopulation(SLA_TIERS)
        result = run(
            SS2PLRelalgProtocol(), clients=10, duration=2.0,
            attrs_for_client=population.attributes_for,
        )
        assert set(result.response_times) == {"premium", "free"}
