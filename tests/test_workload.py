"""Workload generation: specs, factories, streams, populations, traces."""

import random

import pytest

from repro.model.request import Operation
from repro.workload.clients import ClientPopulation, ClientProfile, SLA_TIERS
from repro.workload.generator import TransactionFactory, request_stream
from repro.workload.spec import PAPER_WORKLOAD, WorkloadSpec
from repro.workload.traces import Trace, replay_statement_count

from tests.conftest import request


class TestSpec:
    def test_paper_workload_parameters(self):
        assert PAPER_WORKLOAD.reads_per_txn == 20
        assert PAPER_WORKLOAD.writes_per_txn == 20
        assert PAPER_WORKLOAD.table_rows == 100_000
        assert PAPER_WORKLOAD.zipf_theta is None
        assert PAPER_WORKLOAD.statements_per_txn == 40

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(reads_per_txn=-1)
        with pytest.raises(ValueError):
            WorkloadSpec(reads_per_txn=0, writes_per_txn=0)
        with pytest.raises(ValueError):
            WorkloadSpec(table_rows=0)
        with pytest.raises(ValueError):
            WorkloadSpec(interleave="sideways")
        with pytest.raises(ValueError):
            WorkloadSpec(reads_per_txn=10, writes_per_txn=10, table_rows=5)


class TestTransactionFactory:
    def test_profile_counts(self):
        factory = TransactionFactory(PAPER_WORKLOAD, random.Random(1))
        profile = factory.next_profile()
        assert len(profile) == 40
        reads = sum(1 for s in profile if s.operation is Operation.READ)
        assert reads == 20

    def test_distinct_objects(self):
        spec = WorkloadSpec(reads_per_txn=10, writes_per_txn=10, table_rows=50)
        factory = TransactionFactory(spec, random.Random(1))
        for __ in range(20):
            profile = factory.next_profile()
            objects = [s.obj for s in profile]
            assert len(set(objects)) == len(objects)

    def test_objects_within_table(self):
        spec = WorkloadSpec(reads_per_txn=5, writes_per_txn=5, table_rows=30)
        factory = TransactionFactory(spec, random.Random(1))
        for __ in range(10):
            assert all(0 <= s.obj < 30 for s in factory.next_profile())

    def test_reads_first_interleave(self):
        spec = WorkloadSpec(
            reads_per_txn=3, writes_per_txn=3, interleave="reads_first"
        )
        profile = TransactionFactory(spec, random.Random(1)).next_profile()
        ops = [s.operation for s in profile]
        assert ops == [Operation.READ] * 3 + [Operation.WRITE] * 3

    def test_alternating_interleave(self):
        spec = WorkloadSpec(
            reads_per_txn=2, writes_per_txn=3, interleave="alternating"
        )
        profile = TransactionFactory(spec, random.Random(1)).next_profile()
        ops = [s.operation for s in profile]
        assert ops == [
            Operation.READ, Operation.WRITE, Operation.READ,
            Operation.WRITE, Operation.WRITE,
        ]

    def test_zipf_skews_toward_low_ranks(self):
        spec = WorkloadSpec(
            reads_per_txn=1, writes_per_txn=0, table_rows=1000,
            zipf_theta=1.2, distinct_objects=False,
        )
        factory = TransactionFactory(spec, random.Random(1))
        samples = [factory.next_profile()[0].obj for __ in range(2000)]
        head = sum(1 for s in samples if s < 10)
        assert head > len(samples) * 0.3  # top-1% rows get >30% of hits

    def test_deterministic_given_seed(self):
        a = TransactionFactory(PAPER_WORKLOAD, random.Random(5)).next_profile()
        b = TransactionFactory(PAPER_WORKLOAD, random.Random(5)).next_profile()
        assert [(s.operation, s.obj) for s in a] == [
            (s.operation, s.obj) for s in b
        ]

    def test_zipf_cumulative_upper_bound_is_exact(self):
        from repro.workload.generator import _ZipfSampler

        sampler = _ZipfSampler(1000, 0.7, random.Random(3))
        assert sampler._cumulative[-1] == 1.0

    def test_zipf_draw_at_one_stays_in_range(self):
        from repro.workload.generator import _ZipfSampler

        class _TopDraw(random.Random):
            def random(self):
                # The largest float below 1.0: without the clamp (and the
                # pinned upper bound) bisect can land past the end and
                # produce an invalid object id.
                return 1.0 - 2**-53

        sampler = _ZipfSampler(50, 1.1, _TopDraw())
        for __ in range(10):
            assert 0 <= sampler.sample() < 50

    def test_zipf_samples_always_valid_objects(self):
        spec = WorkloadSpec(
            reads_per_txn=2, writes_per_txn=0, table_rows=17,
            zipf_theta=0.4, distinct_objects=False,
        )
        factory = TransactionFactory(spec, random.Random(11))
        for __ in range(500):
            for stmt in factory.next_profile():
                assert 0 <= stmt.obj < 17


class TestRequestStream:
    SPEC = WorkloadSpec(reads_per_txn=2, writes_per_txn=1, table_rows=100)

    def test_finite_stream_length(self):
        stream = list(
            request_stream(
                self.SPEC, random.Random(1), clients=3,
                transactions_per_client=2,
            )
        )
        # 3 clients x 2 txns x (3 statements + commit).
        assert len(stream) == 3 * 2 * 4

    def test_ids_unique_and_increasing(self):
        stream = list(
            request_stream(
                self.SPEC, random.Random(1), clients=3,
                transactions_per_client=2,
            )
        )
        ids = [r.id for r in stream]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)

    def test_transactions_well_formed(self):
        stream = list(
            request_stream(
                self.SPEC, random.Random(1), clients=2,
                transactions_per_client=3,
            )
        )
        by_ta: dict[int, list] = {}
        for r in stream:
            by_ta.setdefault(r.ta, []).append(r)
        for requests in by_ta.values():
            requests.sort(key=lambda r: r.intrata)
            assert [r.intrata for r in requests] == list(range(4))
            assert requests[-1].operation is Operation.COMMIT

    def test_round_robin_interleaving(self):
        stream = request_stream(
            self.SPEC, random.Random(1), clients=3,
            transactions_per_client=1,
        )
        first_three = [next(stream) for __ in range(3)]
        assert len({r.ta for r in first_three}) == 3

    def test_attrs_callback(self):
        from repro.model.request import RequestAttributes

        stream = request_stream(
            self.SPEC, random.Random(1), clients=2,
            transactions_per_client=1,
            attrs_for_client=lambda i: RequestAttributes(
                client_id=i, sla_class="premium" if i == 0 else "free"
            ),
        )
        classes = {r.attrs.client_id: r.attrs.sla_class for r in stream}
        assert classes == {0: "premium", 1: "free"}


class TestClientPopulation:
    def test_counts_match_shares(self):
        population = ClientPopulation(SLA_TIERS)
        counts = population.counts(100)
        assert counts["premium"] == 20
        assert counts["free"] == 80

    def test_prefix_proportionality(self):
        population = ClientPopulation(SLA_TIERS)
        counts = population.counts(10)
        assert counts["premium"] == 2

    def test_attributes_for(self):
        population = ClientPopulation(SLA_TIERS)
        attrs = population.attributes_for(0)
        assert attrs.sla_class in ("premium", "free")
        assert attrs.priority > 0

    def test_single_tier(self):
        only = ClientPopulation([ClientProfile("all", priority=1)])
        assert only.counts(7) == {"all": 7}

    def test_invalid_population(self):
        with pytest.raises(ValueError):
            ClientPopulation([])
        with pytest.raises(ValueError):
            ClientPopulation([ClientProfile("x", 1, share=0.0)])


class TestTrace:
    def test_statement_counting(self):
        trace = Trace()
        trace.record(0.1, request(1, 1, 0, "w", 5))
        trace.record(0.2, request(2, 1, 1, "c"))
        trace.record(0.3, request(3, 2, 0, "r", 6))
        assert trace.statement_count() == 2
        assert trace.statement_count(committed_only=True) == 1
        assert replay_statement_count(trace) == 1

    def test_iteration_order(self):
        trace = Trace()
        trace.record(0.1, request(1, 1, 0, "w", 5))
        trace.record(0.2, request(2, 1, 1, "c"))
        times = [t for t, __ in trace]
        assert times == [0.1, 0.2]
        assert len(trace) == 2
