"""Tests of :mod:`repro.api`, the public construction surface."""

import asyncio

import pytest

import repro.api as api
from repro.backends import BackendError
from repro.core.triggers import (
    FillLevelTrigger,
    HybridTrigger,
    TimeLapseTrigger,
)
from repro.faults import RecoveryPolicy
from repro.model import make_transaction
from repro.protocols.base import Protocol


class TestMakeTrigger:
    def test_none_passes_through(self):
        assert api.make_trigger(None) is None

    def test_instance_passes_through(self):
        trigger = FillLevelTrigger(5)
        assert api.make_trigger(trigger) is trigger

    def test_string_spellings(self):
        fill = api.make_trigger("fill:20")
        assert isinstance(fill, FillLevelTrigger)
        timed = api.make_trigger("time:0.02")
        assert isinstance(timed, TimeLapseTrigger)
        hybrid = api.make_trigger("hybrid:0.02,20")
        assert isinstance(hybrid, HybridTrigger)

    def test_duck_typed_spec_builds(self):
        from repro.scenarios.spec import TriggerSpec

        built = api.make_trigger(TriggerSpec(kind="fill", threshold=7))
        assert isinstance(built, FillLevelTrigger)

    @pytest.mark.parametrize(
        "text", ["bogus", "fill:x", "time:abc", "hybrid:1", "hybrid:a,b"]
    )
    def test_bad_spellings_raise_value_error(self, text):
        with pytest.raises(ValueError) as excinfo:
            api.make_trigger(text)
        assert "trigger" in str(excinfo.value)


class TestMakeProtocol:
    def test_spec_name_builds(self):
        protocol = api.make_protocol("ss2pl-listing1", "compiled-delta")
        assert isinstance(protocol, Protocol)

    def test_instance_passes_through(self):
        protocol = api.make_protocol("fcfs")
        assert api.make_protocol(protocol) is protocol

    def test_sla_wrapper(self):
        protocol = api.make_protocol("sla:ss2pl")
        assert "sla" in protocol.name.lower()

    def test_adaptive_wrapper(self):
        protocol = api.make_protocol("adaptive:ss2pl,read-committed")
        assert "adaptive" in protocol.name.lower()

    def test_adaptive_missing_relaxed_raises(self):
        with pytest.raises(ValueError):
            api.make_protocol("adaptive:ss2pl")

    def test_unknown_spec_raises(self):
        with pytest.raises(Exception):
            api.make_protocol("definitely-not-a-spec")


class TestValidatePairing:
    def test_supported_pairing_passes(self):
        api.validate_pairing("ss2pl", "compiled-delta")
        api.validate_pairing("read-committed", "datalog")

    def test_none_protocol_checks_backend_name(self):
        api.validate_pairing(None, "compiled")
        with pytest.raises(Exception):
            api.validate_pairing(None, "bogus-backend")

    def test_unsupported_pairing_raises_declared_reason(self):
        with pytest.raises(BackendError) as excinfo:
            api.validate_pairing("c2pl", "compiled")
        assert "cannot run spec" in str(excinfo.value)

    def test_wrapper_prefixes_validate_inner_specs(self):
        api.validate_pairing("sla:ss2pl", "compiled")
        with pytest.raises(BackendError):
            api.validate_pairing("sla:c2pl", "compiled")
        with pytest.raises(BackendError):
            api.validate_pairing("adaptive:ss2pl,c2pl", "compiled")


class TestMakeScheduler:
    def test_scheduler_runs_quickstart(self):
        scheduler = api.make_scheduler("ss2pl", trigger="fill:1")
        for request in make_transaction(
            1, [("r", 10), ("w", 10)], start_id=1
        ):
            scheduler.submit(request)
        batch = scheduler.step().qualified
        assert [str(r) for r in batch] == ["r1[10]", "w1[10]", "c1"]

    def test_trigger_string_is_wired(self):
        scheduler = api.make_scheduler("ss2pl", trigger="hybrid:0.5,32")
        assert isinstance(scheduler.trigger, HybridTrigger)

    def test_admission_and_recovery_are_wired(self):
        scheduler = api.make_scheduler(
            "ss2pl",
            recovery=RecoveryPolicy(request_timeout=1.0),
            admission=api.AdmissionPolicy(max_pending=10),
        )
        assert scheduler.admission.max_pending == 10


class TestOpenService:
    def test_open_service_defaults_recovery(self):
        service = api.open_service("ss2pl", "compiled-delta")
        assert service.scheduler.recovery is not None
        assert isinstance(service.scheduler.recovery, RecoveryPolicy)

    def test_open_service_round_trip(self):
        async def scenario():
            async with api.open_service(
                "ss2pl", "compiled-delta", trigger="fill:1", max_sessions=2
            ) as service:
                async with service.pool.session() as session:
                    ticket = await session.request("w", 7)
                    await service.await_grant(ticket)
                    service.release(ticket)
                    commit = await session.request("c")
                    await service.await_grant(commit)
                    service.release(commit)
            return service.stats()

        stats = asyncio.run(scenario())
        assert stats["granted"] == 2

    def test_unsupported_pairing_raises_at_construction(self):
        with pytest.raises(BackendError):
            api.open_service("c2pl", "compiled")


class TestDeprecatedShims:
    SHIMS = [
        "repro.protocols.ss2pl",
        "repro.protocols.ss2pl_datalog",
        "repro.protocols.ss2pl_incremental",
        "repro.protocols.ss2pl_sql",
        "repro.protocols.ss2pl_sqlfront",
    ]

    @pytest.mark.parametrize("module_name", SHIMS)
    def test_shim_import_warns_but_works(self, module_name):
        import importlib
        import sys

        sys.modules.pop(module_name, None)
        with pytest.warns(DeprecationWarning):
            module = importlib.import_module(module_name)
        # Behaviour-identical: the shim re-exports the legacy names.
        legacy = importlib.import_module("repro.protocols.legacy")
        public = [name for name in dir(module) if not name.startswith("_")]
        assert public, f"{module_name} re-exports nothing"
        for name in public:
            if hasattr(legacy, name):
                assert getattr(module, name) is getattr(legacy, name)

    def test_package_import_stays_warning_free(self):
        # The deprecation must not leak into normal imports: importing
        # the package, the api, and the bench modules emits nothing.
        import subprocess
        import sys

        result = subprocess.run(
            [
                sys.executable,
                "-W",
                "error::DeprecationWarning",
                "-c",
                "import repro, repro.api, repro.bench, repro.cli",
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr


def test_api_is_reexported_from_package():
    import repro

    assert repro.api is api
    assert "api" in repro.__all__
