"""The backend registry and the SpecProtocol adapter."""

import pytest

from repro.backends import (
    BACKEND_REGISTRY,
    BackendError,
    SpecProtocol,
    build_protocol,
    resolve_backend,
    supported_backends,
)
from repro.core.scheduler import DeclarativeScheduler
from repro.protocols.base import Protocol
from repro.protocols.spec import (
    ProtocolSpec,
    SPEC_REGISTRY,
    get_spec,
    register_spec,
)

from tests.conftest import (
    empty_history_table,
    empty_requests_table,
    request,
)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {
            "interpreted", "compiled", "sqlfront", "sqlite",
            "datalog", "imperative", "incremental",
        } <= set(BACKEND_REGISTRY)

    def test_resolve_by_name_and_instance(self):
        backend = resolve_backend("compiled")
        assert backend.name == "compiled"
        assert resolve_backend(backend) is backend

    def test_resolve_unknown_lists_choices(self):
        with pytest.raises(BackendError, match="valid backends"):
            resolve_backend("postgres")

    def test_factories_produce_fresh_instances(self):
        assert resolve_backend("datalog") is not resolve_backend("datalog")


class TestSpecProtocolAdapter:
    def test_is_a_protocol(self):
        assert isinstance(build_protocol("ss2pl"), Protocol)

    def test_default_backend_keeps_spec_name(self):
        assert build_protocol("ss2pl").name == "ss2pl"
        assert build_protocol("c2pl").name == "c2pl"

    def test_non_default_backend_tags_name(self):
        assert build_protocol("ss2pl", "datalog").name == "ss2pl@datalog"

    def test_unsupported_pairing_raises(self):
        with pytest.raises(BackendError, match="cannot run spec"):
            SpecProtocol(get_spec("c2pl"), backend="incremental")

    def test_declarative_source_reflects_consumed_dialect(self):
        # The datalog backend runs the rules; the compiled backend runs
        # the relalg plan but reports the spec's source of record (SQL).
        datalog = build_protocol("ss2pl-listing1", "datalog")
        compiled = build_protocol("ss2pl-listing1", "compiled")
        assert "denied(" in datalog.declarative_source
        assert "WITH RLockedObjects" in compiled.declarative_source
        assert datalog.spec_line_count() < compiled.spec_line_count()

    def test_post_process_runs_on_every_backend(self):
        # Program order: intrata 1 before intrata 0 must be gated no
        # matter which engine qualified it.
        for backend in supported_backends(SPEC_REGISTRY["ss2pl"]):
            protocol = build_protocol("ss2pl", backend)
            requests = empty_requests_table()
            requests.insert(request(1, 1, 1, "r", 5).as_row())
            decision = protocol.schedule(requests, empty_history_table())
            assert decision.qualified == [], backend
            assert 1 in decision.denials, backend

    def test_scheduler_for_spec_names(self):
        scheduler = DeclarativeScheduler.for_spec("ss2pl", "imperative")
        scheduler.submit(request(1, 1, 0, "r", 5))
        result = scheduler.step()
        assert [r.id for r in result.qualified] == [1]
        with pytest.raises(BackendError):
            DeclarativeScheduler.for_spec("ss2pl", "bogus")
        with pytest.raises(KeyError):
            DeclarativeScheduler.for_spec("bogus")


class TestCustomSpec:
    def test_user_spec_runs_on_stock_backends(self):
        """The extension path from DESIGN.md: registering a new spec is
        enough for every dialect-compatible backend to run it."""
        spec = ProtocolSpec(
            name="writes-only-test",
            description="qualify only writes (toy)",
            datalog=(
                'qualified(Id, Ta, I, "w", Obj) :- '
                'requests(Id, Ta, I, "w", Obj).\n'
            ),
            default_backend="datalog",
        )
        register_spec(spec)
        try:
            assert supported_backends(spec) == ["datalog"]
            protocol = build_protocol("writes-only-test")
            requests = empty_requests_table()
            requests.insert(request(1, 1, 0, "r", 5).as_row())
            requests.insert(request(2, 2, 0, "w", 6).as_row())
            decision = protocol.schedule(requests, empty_history_table())
            assert [r.id for r in decision.qualified] == [2]
        finally:
            SPEC_REGISTRY.pop("writes-only-test", None)


class TestListing1ShimCompat:
    def test_explain_works_in_both_evaluation_modes(self):
        # Regression: EXPLAIN (and ._plans) must survive compiled=False,
        # as before the spec/backend split.
        from repro.protocols.ss2pl import PaperListing1Protocol

        requests = empty_requests_table()
        history = empty_history_table()
        for protocol in (
            PaperListing1Protocol(compiled=True),
            PaperListing1Protocol(compiled=False),
        ):
            plan_text = protocol.explain(requests, history)
            assert "AntiJoin" in plan_text
            assert len(protocol._plans) == 1
            protocol.reset()
            assert len(protocol._plans) == 0
