"""SS2PL protocol semantics: Listing 1 rule-by-rule."""

import pytest

from repro.core.stores import HistoryStore, PendingStore
from repro.protocols.ss2pl import (
    PaperListing1Protocol,
    SS2PLRelalgProtocol,
    listing1_pipeline,
)

from tests.conftest import (
    empty_history_table,
    empty_requests_table,
    request,
)


def schedule_ids(protocol, pending_requests, history_requests):
    requests = empty_requests_table()
    history = empty_history_table()
    for r in pending_requests:
        requests.insert(r.as_row())
    for r in history_requests:
        history.insert(r.as_row())
    return sorted(r.id for r in protocol.schedule(requests, history).qualified)


@pytest.fixture
def protocol():
    return PaperListing1Protocol()


class TestWriteLocks:
    def test_write_lock_blocks_any_foreign_access(self, protocol):
        history = [request(1, 1, 0, "w", 5)]
        assert schedule_ids(protocol, [request(2, 2, 0, "r", 5)], history) == []
        assert schedule_ids(protocol, [request(3, 2, 0, "w", 5)], history) == []

    def test_own_write_lock_is_reentrant(self, protocol):
        history = [request(1, 1, 0, "w", 5)]
        assert schedule_ids(protocol, [request(2, 1, 1, "r", 5)], history) == [2]
        assert schedule_ids(protocol, [request(3, 1, 1, "w", 5)], history) == [3]

    def test_commit_releases_write_lock(self, protocol):
        history = [request(1, 1, 0, "w", 5), request(2, 1, 1, "c")]
        assert schedule_ids(protocol, [request(3, 2, 0, "w", 5)], history) == [3]

    def test_abort_releases_write_lock(self, protocol):
        history = [request(1, 1, 0, "w", 5), request(2, 1, 1, "a")]
        assert schedule_ids(protocol, [request(3, 2, 0, "w", 5)], history) == [3]


class TestReadLocks:
    def test_read_lock_blocks_foreign_write_only(self, protocol):
        history = [request(1, 1, 0, "r", 5)]
        assert schedule_ids(protocol, [request(2, 2, 0, "w", 5)], history) == []
        assert schedule_ids(protocol, [request(3, 2, 0, "r", 5)], history) == [3]

    def test_own_read_lock_upgradable(self, protocol):
        history = [request(1, 1, 0, "r", 5)]
        assert schedule_ids(protocol, [request(2, 1, 1, "w", 5)], history) == [2]

    def test_read_subsumed_by_own_write(self, protocol):
        # T1 read and wrote object 5: RLockedObjects must not list it,
        # but the write lock still blocks T2.
        history = [request(1, 1, 0, "r", 5), request(2, 1, 1, "w", 5)]
        pipeline_requests = empty_requests_table()
        history_table = empty_history_table()
        for r in history:
            history_table.insert(r.as_row())
        pipeline = listing1_pipeline(pipeline_requests, history_table)
        r_locked = pipeline["RLockedObjects"].rows
        assert r_locked == []
        assert schedule_ids(protocol, [request(3, 2, 0, "w", 5)], history) == []

    def test_shared_read_locks(self, protocol):
        history = [request(1, 1, 0, "r", 5), request(2, 2, 0, "r", 5)]
        assert schedule_ids(protocol, [request(3, 3, 0, "r", 5)], history) == [3]


class TestIntraBatchRule:
    def test_later_ta_loses_conflict(self, protocol):
        pending = [request(1, 1, 0, "w", 5), request(2, 2, 0, "w", 5)]
        assert schedule_ids(protocol, pending, []) == [1]

    def test_read_read_no_conflict(self, protocol):
        pending = [request(1, 1, 0, "r", 5), request(2, 2, 0, "r", 5)]
        assert schedule_ids(protocol, pending, []) == [1, 2]

    def test_read_then_write_conflict(self, protocol):
        pending = [request(1, 1, 0, "r", 5), request(2, 2, 0, "w", 5)]
        assert schedule_ids(protocol, pending, []) == [1]

    def test_denied_request_still_blocks_later_tas(self, protocol):
        # T2's write is blocked by history; T3's read on the same object
        # must STILL be denied (Listing 1 joins the raw requests table).
        history = [request(1, 1, 0, "w", 5)]
        pending = [request(2, 2, 0, "w", 5), request(3, 3, 0, "r", 5)]
        assert schedule_ids(protocol, pending, history) == []

    def test_disjoint_objects_all_qualify(self, protocol):
        pending = [request(1, 1, 0, "w", 5), request(2, 2, 0, "w", 6)]
        assert schedule_ids(protocol, pending, []) == [1, 2]

    def test_commits_always_qualify(self, protocol):
        pending = [request(1, 1, 0, "c"), request(2, 2, 0, "c")]
        assert schedule_ids(protocol, pending, []) == [1, 2]


class TestQualifiedOrdering:
    def test_result_in_id_order(self, protocol):
        pending = [
            request(5, 3, 0, "r", 30),
            request(2, 1, 0, "r", 10),
            request(9, 4, 0, "r", 40),
        ]
        requests = empty_requests_table()
        for r in pending:
            requests.insert(r.as_row())
        decision = protocol.schedule(requests, empty_history_table())
        assert [r.id for r in decision.qualified] == [2, 5, 9]


class TestProgramOrderVariant:
    def test_out_of_order_intrata_denied(self):
        protocol = SS2PLRelalgProtocol()
        # Pending contains T1's SECOND statement only; nothing executed.
        store = PendingStore()
        history = HistoryStore()
        store.insert_batch([request(1, 1, 1, "r", 5)])
        decision = protocol.schedule(store.table, history.table)
        assert decision.qualified == []
        assert 1 in decision.denials

    def test_in_order_batch_admitted_fully(self):
        protocol = SS2PLRelalgProtocol()
        store = PendingStore()
        history = HistoryStore()
        store.insert_batch(
            [request(1, 1, 0, "r", 5), request(2, 1, 1, "w", 5), request(3, 1, 2, "c")]
        )
        decision = protocol.schedule(store.table, history.table)
        assert [r.id for r in decision.qualified] == [1, 2, 3]

    def test_continuation_after_history(self):
        protocol = SS2PLRelalgProtocol()
        store = PendingStore()
        history = HistoryStore()
        history.record_batch([request(1, 1, 0, "r", 5)])
        store.insert_batch([request(2, 1, 1, "w", 6)])
        decision = protocol.schedule(store.table, history.table)
        assert [r.id for r in decision.qualified] == [2]

    def test_commit_gated_until_statements_done(self):
        protocol = SS2PLRelalgProtocol()
        store = PendingStore()
        history = HistoryStore()
        # T1 has executed one statement; pending: second stmt blocked by
        # T2's lock, plus T1's commit. The commit must NOT overtake.
        history.record_batch(
            [request(1, 1, 0, "r", 5), request(2, 2, 0, "w", 7)]
        )
        store.insert_batch(
            [request(3, 1, 1, "w", 7), request(4, 1, 2, "c")]
        )
        decision = protocol.schedule(store.table, history.table)
        assert decision.qualified == []
