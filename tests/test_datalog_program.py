"""Safety validation and stratification."""

import pytest

from repro.datalog.program import (
    Program,
    SafetyError,
    StratificationError,
)


class TestSafety:
    def test_unbound_head_variable(self):
        with pytest.raises(SafetyError, match="head variables"):
            Program.parse("p(X, Y) :- q(X).")

    def test_unbound_negation_variable(self):
        with pytest.raises(SafetyError, match="negated literal"):
            Program.parse("p(X) :- q(X), not r(Y).")

    def test_unbound_comparison_variable(self):
        with pytest.raises(SafetyError, match="comparison"):
            Program.parse("p(X) :- q(X), X > Y.")

    def test_constants_are_always_safe(self):
        Program.parse("p(1, 2).")  # no exception

    def test_anonymous_vars_do_not_bind(self):
        # _ in a positive literal does not make X bound.
        with pytest.raises(SafetyError):
            Program.parse("p(X) :- q(_).")

    def test_aggregate_variable_must_be_bound(self):
        with pytest.raises(SafetyError):
            Program.parse("n(G, count(X)) :- item(G).")


class TestStratification:
    def test_simple_negation_two_strata(self):
        program = Program.parse(
            """
            finished(T) :- history(T, done).
            active(T) :- history(T, _), not finished(T).
            """
        )
        strata = program.strata
        assert {"finished"} in strata and {"active"} in strata
        assert strata.index({"finished"}) < strata.index({"active"})

    def test_recursion_in_one_stratum(self):
        program = Program.parse(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        assert program.strata == [{"path"}]

    def test_negation_through_recursion_rejected(self):
        with pytest.raises(StratificationError):
            Program.parse(
                """
                win(X) :- move(X, Y), not win(Y).
                """
            )

    def test_direct_negative_self_dependency_rejected(self):
        with pytest.raises(StratificationError):
            Program.parse("p(X) :- q(X), not p(X).")

    def test_aggregation_counts_as_negative_edge(self):
        # The aggregate rule's IDB body predicate must be complete before
        # the aggregate evaluates — i.e. live in a strictly lower stratum.
        program = Program.parse(
            """
            base(X) :- item(X).
            total(G, count(X)) :- pair(G, X), base(X).
            """
        )
        base_level = next(
            i for i, s in enumerate(program.strata) if "base" in s
        )
        total_level = next(
            i for i, s in enumerate(program.strata) if "total" in s
        )
        assert base_level < total_level

    def test_aggregate_over_own_recursion_rejected(self):
        with pytest.raises(StratificationError):
            Program.parse(
                """
                t(G, count(X)) :- item(G, X).
                item(G, N) :- t(G, N).
                """
            )

    def test_mutual_recursion_same_stratum(self):
        program = Program.parse(
            """
            even(X) :- zero(X).
            even(Y) :- odd(X), succ(X, Y).
            odd(Y) :- even(X), succ(X, Y).
            """
        )
        assert {"even", "odd"} in program.strata

    def test_edb_predicates(self):
        program = Program.parse("p(X) :- q(X), not r(X).")
        assert program.edb_predicates == {"q", "r"}
