"""Property-based tests on the correctness analyzers (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.request import Operation, Request, make_transaction
from repro.model.schedule import (
    Schedule,
    is_avoiding_cascading_aborts,
    is_conflict_serializable,
    is_legal_ss2pl_order,
    is_recoverable,
    is_strict,
    serialization_order,
)


@st.composite
def transaction_set(draw, max_txns=4, max_ops=4, objects=4):
    """A list of complete transactions over a small object space."""
    txn_count = draw(st.integers(1, max_txns))
    txns = []
    rid = 1
    for ta in range(1, txn_count + 1):
        op_count = draw(st.integers(1, max_ops))
        accesses = [
            (draw(st.sampled_from(["r", "w"])), draw(st.integers(0, objects - 1)))
            for __ in range(op_count)
        ]
        terminate = draw(st.sampled_from(["c", "c", "c", "a"]))
        txns.append(
            make_transaction(ta, accesses, terminate=terminate, start_id=rid)
        )
        rid += op_count + 1
    return txns


@st.composite
def interleaved_schedule(draw):
    """A random interleaving of a random transaction set (each
    transaction's internal order preserved)."""
    txns = draw(transaction_set())
    cursors = [0] * len(txns)
    out = Schedule()
    remaining = sum(len(t) for t in txns)
    while remaining:
        live = [i for i, t in enumerate(txns) if cursors[i] < len(t)]
        which = draw(st.sampled_from(live))
        out.append(txns[which].requests[cursors[which]])
        cursors[which] += 1
        remaining -= 1
    return out


class TestSerialSchedules:
    @given(transaction_set())
    @settings(max_examples=60, deadline=None)
    def test_serial_is_always_everything(self, txns):
        """Any serial execution satisfies every criterion."""
        schedule = Schedule([r for t in txns for r in t])
        assert is_conflict_serializable(schedule)
        assert is_recoverable(schedule)
        assert is_avoiding_cascading_aborts(schedule)
        assert is_strict(schedule)
        assert is_legal_ss2pl_order(schedule)

    @given(transaction_set())
    @settings(max_examples=30, deadline=None)
    def test_serial_order_is_a_valid_serialization(self, txns):
        schedule = Schedule([r for t in txns for r in t])
        order = serialization_order(schedule)
        assert order is not None
        committed = schedule.committed
        assert set(order) == committed


class TestHierarchy:
    @given(interleaved_schedule())
    @settings(max_examples=120, deadline=None)
    def test_strict_implies_aca_implies_rc(self, schedule):
        """ST ⊂ ACA ⊂ RC (Weikum & Vossen hierarchy)."""
        if is_strict(schedule):
            assert is_avoiding_cascading_aborts(schedule)
        if is_avoiding_cascading_aborts(schedule):
            assert is_recoverable(schedule)

    @given(interleaved_schedule())
    @settings(max_examples=120, deadline=None)
    def test_ss2pl_legal_implies_csr_and_strict(self, schedule):
        """SS2PL schedules are serializable and strict — the guarantee
        the paper's Listing 1 encodes."""
        if is_legal_ss2pl_order(schedule):
            assert is_conflict_serializable(schedule)
            assert is_strict(schedule)

    @given(interleaved_schedule())
    @settings(max_examples=60, deadline=None)
    def test_serialization_order_iff_csr(self, schedule):
        order = serialization_order(schedule)
        assert (order is not None) == is_conflict_serializable(schedule)


class TestRowRoundtripProperty:
    @given(
        st.integers(1, 10**6),
        st.integers(1, 10**4),
        st.integers(0, 100),
        st.sampled_from(list(Operation)),
        st.integers(0, 10**5),
    )
    @settings(max_examples=100, deadline=None)
    def test_as_row_from_row_identity(self, rid, ta, intrata, op, obj):
        request = Request(
            rid, ta, intrata, op, obj if op.is_data_access else -1
        )
        assert Request.from_row(request.as_row()) == request
