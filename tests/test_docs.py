"""Docs stay true: relative links resolve and every ``python`` block
in docs/api.md and docs/analysis.md executes.

These snippets are what users paste first; executing them here (and in
CI's docs job) keeps the documented surface from drifting away from
the real one.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: Every markdown file whose links and headings we guarantee.
DOC_FILES = [
    REPO / "README.md",
    REPO / "DESIGN.md",
    REPO / "docs" / "api.md",
    REPO / "docs" / "scenarios.md",
    REPO / "docs" / "benchmarks.md",
    REPO / "docs" / "analysis.md",
]

#: Docs whose ``python`` fences must execute as written.
EXECUTABLE_DOCS = [
    REPO / "docs" / "api.md",
    REPO / "docs" / "analysis.md",
]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_SNIPPET = re.compile(r"```python\n(.*?)```", re.S)


def _heading_anchors(text):
    """GitHub-style anchors of every markdown heading in `text`."""
    anchors = set()
    in_fence = False
    for line in text.splitlines():
        if line.startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence or not line.startswith("#"):
            continue
        title = line.lstrip("#").strip()
        slug = re.sub(r"[^\w\- ]", "", title.lower())
        anchors.add(slug.replace(" ", "-"))
    return anchors


def _targets(path):
    for match in _LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


class TestLinks:
    @pytest.mark.parametrize(
        "doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO))
    )
    def test_relative_links_resolve(self, doc):
        assert doc.exists(), f"documented file missing: {doc}"
        broken = []
        for target in _targets(doc):
            path_part, __, anchor = target.partition("#")
            resolved = (
                doc if not path_part else (doc.parent / path_part).resolve()
            )
            if not resolved.exists():
                broken.append(target)
            elif anchor and resolved.suffix == ".md":
                if anchor not in _heading_anchors(resolved.read_text()):
                    broken.append(target)
        assert not broken, f"broken links in {doc.name}: {broken}"


class TestDocSnippets:
    @staticmethod
    def _snippets(doc):
        return _SNIPPET.findall(doc.read_text())

    @pytest.mark.parametrize(
        "doc", EXECUTABLE_DOCS, ids=lambda p: str(p.relative_to(REPO))
    )
    def test_snippets_present(self, doc):
        assert len(self._snippets(doc)) >= 3

    @pytest.mark.parametrize(
        "doc", EXECUTABLE_DOCS, ids=lambda p: str(p.relative_to(REPO))
    )
    def test_every_snippet_executes(self, doc):
        name = str(doc.relative_to(REPO))
        for index, snippet in enumerate(self._snippets(doc)):
            code = compile(snippet, f"{name}#snippet-{index}", "exec")
            namespace = {"__name__": f"doc_snippet_{index}"}
            try:
                exec(code, namespace)
            except Exception as error:  # pragma: no cover - failure path
                pytest.fail(
                    f"{name} snippet {index} failed: "
                    f"{type(error).__name__}: {error}\n{snippet}"
                )
