"""Serving-layer tests: service lifecycle, sessions, pool, recovery.

No pytest-asyncio in the toolchain — every test is a plain sync
function running its coroutine with ``asyncio.run``.
"""

import asyncio

import pytest

import repro.api as api
from repro.faults import RecoveryPolicy
from repro.scenarios import get_scenario
from repro.serve import (
    SchedulerService,
    ServiceClosed,
    SessionPool,
    Ticket,
    TicketRejected,
    drive_workload,
    generate_profiles,
)


def open_test_service(**overrides) -> SchedulerService:
    options = dict(
        trigger="fill:1",
        max_sessions=4,
        max_pipeline=4,
        check_invariants=True,
    )
    options.update(overrides)
    return api.open_service("ss2pl", "compiled-delta", **options)


class TestGrantFlow:
    def test_submit_grant_release_commit(self):
        async def scenario():
            async with open_test_service() as service:
                async with service.pool.session() as session:
                    session.begin()
                    first = await session.request("r", 10)
                    second = await session.request("w", 11)
                    await service.await_grant(first)
                    await service.await_grant(second)
                    service.release(first)
                    service.release(second)
                    commit = await session.request("c")
                    await service.await_grant(commit)
                    service.release(commit)
                final = service.final_check()
            return service.stats(), final

        stats, final = asyncio.run(scenario())
        assert stats["submitted"] == 3
        assert stats["granted"] == 3
        assert stats["released"] == 3
        assert stats["unresolved"] == 0
        assert final == {"granted": 3}

    def test_conflicting_writer_waits_for_commit(self):
        async def scenario():
            async with open_test_service() as service:
                first = await service.pool.acquire()
                second = await service.pool.acquire()
                first.begin()
                second.begin()
                hold = await first.request("w", 5)
                await service.await_grant(hold)
                service.release(hold)
                blocked = await second.request("w", 5)
                waiter = asyncio.ensure_future(service.await_grant(blocked))
                done, __ = await asyncio.wait([waiter], timeout=0.1)
                assert not done, "conflicting write granted under SS2PL"
                commit = await first.request("c")
                await service.await_grant(commit)
                service.release(commit)
                granted = await asyncio.wait_for(waiter, timeout=5.0)
                service.release(granted)
                commit2 = await second.request("c")
                await service.await_grant(commit2)
                service.release(commit2)
                await first.close()
                await second.close()
                service.final_check()

        asyncio.run(scenario())

    def test_stats_percentiles_present(self):
        async def scenario():
            async with open_test_service() as service:
                async with service.pool.session() as session:
                    for obj in range(6):
                        ticket = await session.request("w", obj)
                        await service.await_grant(ticket)
                        service.release(ticket)
                    commit = await session.request("c")
                    await service.await_grant(commit)
                    service.release(commit)
            return service.stats()

        stats = asyncio.run(scenario())
        latency = stats["grant_latency_s"]
        assert latency["p50"] <= latency["p99"] <= latency["p99.9"]
        assert latency["max"] >= latency["p99.9"]
        assert stats["grants_per_s"] > 0


class TestPoolBounds:
    def test_pool_acquire_blocks_at_capacity(self):
        async def scenario():
            async with open_test_service(max_sessions=2) as service:
                first = await service.pool.acquire()
                second = await service.pool.acquire()
                assert service.pool.available == 0
                waiter = asyncio.ensure_future(service.pool.acquire())
                done, __ = await asyncio.wait([waiter], timeout=0.05)
                assert not done, "third acquire should wait"
                await first.close()
                third = await asyncio.wait_for(waiter, timeout=5.0)
                assert third.client_id not in (
                    first.client_id,
                    second.client_id,
                ), "client ids must never be reused"
                await second.close()
                await third.close()

        asyncio.run(scenario())

    def test_pipeline_bound_blocks_submit(self):
        async def scenario():
            async with open_test_service(
                max_pipeline=2,
                # Trigger far above fill so nothing is granted; linger
                # long so the window genuinely stays full.
                trigger="fill:100000",
                max_linger=30.0,
                check_invariants=False,
            ) as service:
                async with service.pool.session() as session:
                    session.begin()
                    await session.request("w", 1)
                    await session.request("w", 2)
                    third = asyncio.ensure_future(session.request("w", 3))
                    done, __ = await asyncio.wait([third], timeout=0.05)
                    assert not done, "submit past pipeline bound ran"
                    third.cancel()

        asyncio.run(scenario())


class TestDriverPipelining:
    def test_drive_workload_profiles_longer_than_pipeline(self):
        # Regression: the driver used to submit a whole transaction
        # before collecting any grant; with a profile longer than the
        # pipeline the submit blocked on a slot only release() frees — a
        # self-deadlock with zero pending rows, so no recovery timer
        # could ever fire.  zipf-hotspot profiles exceed two statements,
        # so pipeline 2 forces mid-transaction grant collection.
        workload = get_scenario("zipf-hotspot").workload
        assert any(
            len(profile) > 2
            for profile in generate_profiles(workload, 17, 10)
        )

        async def scenario():
            service = open_test_service(
                trigger="hybrid:0.005,16", max_pipeline=2
            )
            async with service:
                report = await asyncio.wait_for(
                    drive_workload(
                        service,
                        workload,
                        transactions=10,
                        sessions=4,
                        seed=17,
                    ),
                    timeout=30.0,
                )
                final = service.final_check()
            return report, final, service.stats()

        report, final, stats = asyncio.run(scenario())
        assert report.committed + report.aborted == 10
        assert stats["submitted"] == (
            stats["granted"] + sum(stats["rejected"].values())
        )
        assert final is not None

    def test_single_statement_pipeline(self):
        # The degenerate window: pipeline 1 serialises every session.
        workload = get_scenario("bursty-arrivals").workload

        async def scenario():
            service = open_test_service(
                trigger="hybrid:0.005,16", max_pipeline=1
            )
            async with service:
                report = await asyncio.wait_for(
                    drive_workload(
                        service,
                        workload,
                        transactions=6,
                        sessions=3,
                        seed=23,
                    ),
                    timeout=30.0,
                )
                service.final_check()
            return report

        report = asyncio.run(scenario())
        assert report.committed + report.aborted == 6


class TestBackpressure:
    def test_submit_waits_at_admission_cap(self):
        async def scenario():
            async with open_test_service(
                admission=api.AdmissionPolicy(max_pending=3),
                trigger="fill:100000",
                max_linger=30.0,
                check_invariants=False,
            ) as service:
                async with service.pool.session() as session:
                    session.begin()
                    for obj in range(3):
                        await session.request("w", obj)
                    fourth = asyncio.ensure_future(session.request("w", 99))
                    done, __ = await asyncio.wait([fourth], timeout=0.05)
                    assert not done, "submit past the admission cap ran"
                    fourth.cancel()

        asyncio.run(scenario())

    def test_shed_rejection_routes_to_ticket(self):
        # Submit-side backpressure makes an organic shed unreachable
        # from a single event loop (the capacity check and the insert
        # are atomic between awaits), so exercise the routing the step
        # hook uses when the scheduler's backstop does shed.
        async def scenario():
            async with open_test_service(
                trigger="fill:100000",
                max_linger=30.0,
                check_invariants=False,
            ) as service:
                async with service.pool.session() as session:
                    session.begin()
                    ticket = await session.request("w", 1)
                    service._reject_transaction(ticket.request.ta, "shed")
                    with pytest.raises(TicketRejected) as excinfo:
                        await service.await_grant(ticket)
                    assert excinfo.value.reason == "shed"
                    assert session.inflight == 0, "slot must be freed"
            return service.stats()

        stats = asyncio.run(scenario())
        assert stats["rejected"]["shed"] == 1


class TestRecovery:
    def test_timeout_abort_rejects_blocked_transaction(self):
        async def scenario():
            recovery = RecoveryPolicy(
                request_timeout=0.05, orphan_lease=0.05
            )
            async with open_test_service(recovery=recovery) as service:
                holder = await service.pool.acquire()
                waiter = await service.pool.acquire()
                holder.begin()
                waiter.begin()
                hold = await holder.request("w", 3)
                await service.await_grant(hold)
                service.release(hold)
                blocked = await waiter.request("w", 3)
                with pytest.raises(TicketRejected) as excinfo:
                    await asyncio.wait_for(
                        service.await_grant(blocked), timeout=5.0
                    )
                assert excinfo.value.reason == "timeout"
                commit = await holder.request("c")
                await service.await_grant(commit)
                service.release(commit)
                await holder.close()
                await waiter.close()
            return service.stats()

        stats = asyncio.run(scenario())
        assert stats["rejected"]["timeout"] >= 1

    def test_crash_while_blocked_in_await_grant_reaps_and_frees_slot(self):
        # Satellite: a client crashes while one of its requests is
        # still blocked behind a conflicting lock.  The orphan lease
        # must reap the crashed transaction (freeing the lock it held),
        # the pool slot must free immediately, and the abandoned
        # ticket's future must be cancelled, not failed.
        async def scenario():
            recovery = RecoveryPolicy(
                request_timeout=10.0, orphan_lease=0.05
            )
            async with open_test_service(
                max_sessions=2, recovery=recovery
            ) as service:
                crasher = await service.pool.acquire()
                other = await service.pool.acquire()
                crasher.begin()
                other.begin()
                # crasher holds w(1) granted-uncommitted...
                held = await crasher.request("w", 1)
                await service.await_grant(held)
                service.release(held)
                # ...and has a second request blocked behind other's
                # w(2) grant.
                hold2 = await other.request("w", 2)
                await service.await_grant(hold2)
                service.release(hold2)
                blocked = await crasher.request("w", 2)
                grant_task = asyncio.ensure_future(
                    service.await_grant(blocked)
                )
                done, __ = await asyncio.wait([grant_task], timeout=0.05)
                assert not done

                assert service.pool.available == 0
                await crasher.crash()
                # The slot frees immediately, before the lease expires.
                assert service.pool.available == 1
                assert blocked.abandoned

                # After the lease the orphan is reaped: other can take
                # w(1), which the crashed client held.
                want_held_lock = await other.request("w", 1)
                granted = await asyncio.wait_for(
                    service.await_grant(want_held_lock), timeout=5.0
                )
                service.release(granted)
                commit = await other.request("c")
                await service.await_grant(commit)
                service.release(commit)
                await other.close()

                # The abandoned ticket was cancelled, never failed.
                with pytest.raises(asyncio.CancelledError):
                    await grant_task
                final = service.final_check()
            return final, service.stats()

        final, stats = asyncio.run(scenario())
        assert stats["rejected"]["orphan"] >= 1
        assert stats["submitted"] == (
            stats["granted"] + sum(stats["rejected"].values())
        )
        assert final is not None

    def test_drive_workload_crash_indices(self):
        workload = get_scenario("zipf-hotspot").workload

        async def scenario():
            recovery = RecoveryPolicy(
                request_timeout=0.5, orphan_lease=0.05
            )
            service = open_test_service(
                trigger="hybrid:0.005,16", recovery=recovery
            )
            async with service:
                report = await asyncio.wait_for(
                    drive_workload(
                        service,
                        workload,
                        transactions=12,
                        sessions=4,
                        seed=17,
                        crash_indices={2, 5},
                    ),
                    timeout=60.0,
                )
                final = service.final_check()
            return report, final, service.stats()

        report, final, stats = asyncio.run(scenario())
        assert report.crashes == 2
        assert report.aborted >= 2
        assert report.committed + report.aborted == 12
        assert final is not None


class TestLifecycle:
    def test_acquire_after_stop_raises_service_closed(self):
        async def scenario():
            service = open_test_service()
            async with service:
                pass
            with pytest.raises(ServiceClosed):
                await service.pool.acquire()

        asyncio.run(scenario())

    def test_stop_fails_unresolved_tickets(self):
        async def scenario():
            service = open_test_service(
                trigger="fill:100000",
                max_linger=30.0,
                check_invariants=False,
            )
            await service.start()
            async with service.pool.session() as session:
                session.begin()
                ticket = await session.request("w", 1)
                waiter = asyncio.ensure_future(service.await_grant(ticket))
                await asyncio.sleep(0)
                await service.stop()
                with pytest.raises(ServiceClosed):
                    await waiter

        asyncio.run(scenario())

    def test_exports(self):
        assert SessionPool is not None
        assert Ticket is not None
