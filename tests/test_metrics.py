"""Metrics: statistics, collectors, rendering."""

import pytest

from repro.metrics.collector import MetricsCollector, Timer
from repro.metrics.reporting import (
    AsciiPlot,
    ComparisonRow,
    render_comparison,
    render_table,
)
from repro.metrics.stats import percentile, summarize


class TestStats:
    def test_percentile_interpolation(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 4.0
        assert percentile(samples, 50) == pytest.approx(2.5)

    def test_percentile_single_sample(self):
        assert percentile([7.0], 95) == 7.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.total == 6.0
        assert summary.p50 == 2.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_summary_str(self):
        assert "mean=" in str(summarize([1.0, 2.0]))

    def test_summary_str_includes_p99(self):
        rendered = str(summarize([1.0, 2.0, 3.0, 4.0]))
        assert "p99=" in rendered and "p95=" in rendered

    def test_sample_variance(self):
        # Bessel-corrected: var([1,2,3]) = 1 (not the population 2/3).
        assert summarize([1.0, 2.0, 3.0]).stdev == pytest.approx(1.0)
        assert summarize([2.0, 4.0]).stdev == pytest.approx(2.0 ** 0.5)

    def test_single_sample_has_zero_stdev(self):
        assert summarize([5.0]).stdev == 0.0


class TestCollector:
    def test_counters_and_gauges(self):
        collector = MetricsCollector()
        collector.incr("x")
        collector.incr("x", 4)
        collector.gauge("g", 1.5)
        assert collector.counters["x"] == 5
        assert collector.gauges["g"] == 1.5

    def test_timer_measure(self):
        collector = MetricsCollector()
        with collector.timer("t").measure():
            pass
        assert len(collector.timer("t").samples) == 1
        assert collector.timer("t").total >= 0

    def test_timer_add(self):
        timer = Timer("t")
        timer.add(0.5)
        timer.add(1.5)
        assert timer.total == 2.0
        assert timer.summary().mean == 1.0

    def test_series(self):
        collector = MetricsCollector()
        collector.record_point("fig2", 100, 120.0)
        collector.record_point("fig2", 200, 130.0)
        assert collector.series["fig2"] == [(100, 120.0), (200, 130.0)]

    def test_report_renders_everything(self):
        collector = MetricsCollector()
        collector.incr("requests")
        collector.gauge("load", 0.7)
        collector.timer("query").add(0.01)
        report = collector.report()
        assert "requests" in report and "load" in report and "query" in report


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert set(lines[2]) <= {"-", " "}
        assert lines[3].startswith("1")

    def test_cell_count_validated(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = render_table(["v"], [[0.000123456], [12345.678], [1.5]])
        assert "0.000123" in text and "1.23e+04" in text and "1.5" in text

    def test_comparison(self):
        text = render_comparison(
            [ComparisonRow("stmts", 550055, 557920, "close")]
        )
        assert "550055" in text and "557920" in text and "close" in text


class TestAsciiPlot:
    def test_linear_plot_contains_markers(self):
        plot = AsciiPlot(width=40, height=10, title="demo")
        plot.add_series("*", [(0, 0), (10, 100)])
        rendered = plot.render()
        assert "demo" in rendered
        assert rendered.count("*") == 2

    def test_log_scale_axis_labels(self):
        plot = AsciiPlot(width=40, height=10, log_y=True)
        plot.add_series("x", [(0, 100), (10, 10000)])
        rendered = plot.render()
        assert "1e+04" in rendered or "10000" in rendered

    def test_log_scale_rejects_nonpositive(self):
        plot = AsciiPlot(log_y=True)
        plot.add_series("x", [(0, 0)])
        with pytest.raises(ValueError):
            plot.render()

    def test_empty_plot(self):
        assert "(no data)" in AsciiPlot(title="t").render()

    def test_marker_validation(self):
        with pytest.raises(ValueError):
            AsciiPlot().add_series("ab", [(0, 1)])

    def test_multiple_series(self):
        plot = AsciiPlot(width=30, height=8)
        plot.add_series("a", [(0, 1), (5, 5)])
        plot.add_series("b", [(0, 5), (5, 1)])
        rendered = plot.render()
        assert "a" in rendered and "b" in rendered
