"""Key-range scheduling extension."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ext.ranges import (
    RangeRequest,
    RangeSS2PLProtocol,
    brute_force_qualified,
    make_range_tables,
)
from repro.model.request import Operation
from repro.protocols.ss2pl import PaperListing1Protocol

from tests.conftest import empty_history_table, empty_requests_table


def rr(rid, ta, intrata, op, lo=-1, hi=None):
    return RangeRequest(
        rid, ta, intrata, Operation.from_code(op), lo,
        lo if hi is None else hi,
    )


def schedule_ids(pending, history):
    requests, history_table = make_range_tables()
    for r in pending:
        requests.insert(r.as_row())
    for r in history:
        history_table.insert(r.as_row())
    decision = RangeSS2PLProtocol().schedule(requests, history_table)
    return sorted(r.id for r in decision.qualified)


class TestRangeRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            RangeRequest(1, 1, 0, Operation.READ, 5, 3)
        with pytest.raises(ValueError):
            RangeRequest(1, 1, 0, Operation.WRITE, -1, -1)

    def test_overlap(self):
        a = rr(1, 1, 0, "w", 10, 20)
        assert a.overlaps(rr(2, 2, 0, "r", 20, 30))
        assert a.overlaps(rr(3, 2, 0, "r", 5, 10))
        assert not a.overlaps(rr(4, 2, 0, "r", 21, 30))

    def test_conflict_needs_write_and_other_ta(self):
        a = rr(1, 1, 0, "r", 10, 20)
        assert not a.conflicts_with(rr(2, 2, 0, "r", 15, 25))
        assert a.conflicts_with(rr(3, 2, 0, "w", 15, 25))
        assert not a.conflicts_with(rr(4, 1, 1, "w", 15, 25))  # same ta

    def test_row_roundtrip(self):
        original = rr(7, 3, 2, "w", 10, 40)
        assert RangeRequest.from_row(original.as_row()) == original

    def test_str(self):
        assert str(rr(1, 3, 0, "w", 10, 40)) == "w3[10..40]"
        assert str(rr(2, 3, 1, "c")) == "c3"


class TestRangeProtocol:
    def test_overlapping_write_lock_blocks(self):
        history = [rr(1, 1, 0, "w", 10, 20)]
        assert schedule_ids([rr(2, 2, 0, "r", 15, 30)], history) == []
        assert schedule_ids([rr(3, 2, 0, "r", 21, 30)], history) == [3]

    def test_read_lock_blocks_overlapping_write_only(self):
        history = [rr(1, 1, 0, "r", 10, 20)]
        assert schedule_ids([rr(2, 2, 0, "w", 5, 10)], history) == []
        assert schedule_ids([rr(3, 2, 0, "r", 5, 10)], history) == [3]

    def test_commit_releases_range_locks(self):
        history = [rr(1, 1, 0, "w", 10, 20), rr(2, 1, 1, "c")]
        assert schedule_ids([rr(3, 2, 0, "w", 10, 20)], history) == [3]

    def test_intra_batch_overlap(self):
        pending = [rr(1, 1, 0, "w", 10, 20), rr(2, 2, 0, "w", 15, 30)]
        assert schedule_ids(pending, []) == [1]

    def test_disjoint_ranges_coexist(self):
        pending = [rr(1, 1, 0, "w", 10, 20), rr(2, 2, 0, "w", 21, 30)]
        assert schedule_ids(pending, []) == [1, 2]

    def test_point_ranges_match_listing1(self):
        """On lo==hi workloads, ranges degenerate to Listing 1."""
        rng = random.Random(3)
        reference = PaperListing1Protocol()
        for __ in range(10):
            point_requests = empty_requests_table()
            point_history = empty_history_table()
            range_requests, range_history = make_range_tables()
            rid = 1
            for ta in range(1, rng.randint(2, 8)):
                for intrata in range(rng.randint(1, 3)):
                    op = rng.choice(["r", "w"])
                    obj = rng.randrange(6)
                    point_history.insert((rid, ta, intrata, op, obj))
                    range_history.insert((rid, ta, intrata, op, obj, obj))
                    rid += 1
                if rng.random() < 0.3:
                    point_history.insert((rid, ta, 9, "c", -1))
                    range_history.insert((rid, ta, 9, "c", -1, -1))
                    rid += 1
            for k in range(rng.randint(1, 10)):
                ta = 100 + k
                op = rng.choice(["r", "w"])
                obj = rng.randrange(6)
                point_requests.insert((rid, ta, 0, op, obj))
                range_requests.insert((rid, ta, 0, op, obj, obj))
                rid += 1
            expected = sorted(
                r.id
                for r in reference.schedule(point_requests, point_history).qualified
            )
            actual = sorted(
                r.id
                for r in RangeSS2PLProtocol()
                .schedule(range_requests, range_history)
                .qualified
            )
            assert actual == expected


@st.composite
def range_instance(draw):
    keys = 12
    pending, history = [], []
    rid = 1
    for ta in range(1, draw(st.integers(0, 4)) + 1):
        for intrata in range(draw(st.integers(1, 2))):
            lo = draw(st.integers(0, keys - 1))
            hi = draw(st.integers(lo, keys - 1))
            history.append(
                rr(rid, ta, intrata, draw(st.sampled_from(["r", "w"])), lo, hi)
            )
            rid += 1
        if draw(st.booleans()):
            history.append(rr(rid, ta, 9, draw(st.sampled_from(["c", "a"]))))
            rid += 1
    for k in range(draw(st.integers(1, 6))):
        lo = draw(st.integers(0, keys - 1))
        hi = draw(st.integers(lo, keys - 1))
        pending.append(
            rr(rid, 100 + k, 0, draw(st.sampled_from(["r", "w"])), lo, hi)
        )
        rid += 1
    return pending, history


class TestRangeProperty:
    @given(range_instance())
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, instance):
        pending, history = instance
        assert schedule_ids(pending, history) == brute_force_qualified(
            pending, history
        )

    @given(range_instance())
    @settings(max_examples=60, deadline=None)
    def test_qualified_set_internally_conflict_free(self, instance):
        pending, history = instance
        requests, history_table = make_range_tables()
        for r in pending:
            requests.insert(r.as_row())
        for r in history:
            history_table.insert(r.as_row())
        qualified = RangeSS2PLProtocol().schedule(
            requests, history_table
        ).qualified
        for i, a in enumerate(qualified):
            for b in qualified[i + 1:]:
                assert not a.conflicts_with(b)
