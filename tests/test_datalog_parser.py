"""Datalog lexer/parser tests."""

import pytest

from repro.datalog.ast import Aggregate, Comparison, Const, Literal, Var
from repro.datalog.parser import DatalogSyntaxError, parse_program, parse_rule


class TestRules:
    def test_fact(self):
        rule = parse_rule("edge(1, 2).")
        assert rule.is_fact
        assert rule.head.pred == "edge"
        assert rule.head.terms == (Const(1), Const(2))

    def test_simple_rule(self):
        rule = parse_rule("path(X, Y) :- edge(X, Y).")
        assert not rule.is_fact
        assert len(rule.positive_literals) == 1
        assert rule.head.variables == {Var("X"), Var("Y")}

    def test_negation(self):
        rule = parse_rule("active(T) :- txn(T), not finished(T).")
        assert len(rule.negative_literals) == 1
        assert rule.negative_literals[0].atom.pred == "finished"

    def test_comparison(self):
        rule = parse_rule("big(X) :- value(X, V), V > 10.")
        comparisons = rule.comparisons
        assert len(comparisons) == 1
        assert comparisons[0].op == ">"
        assert comparisons[0].right == Const(10)

    def test_all_comparison_operators(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            rule = parse_rule(f"p(X) :- q(X, Y), X {op} Y.")
            assert rule.comparisons[0].op == op

    def test_string_constants(self):
        rule = parse_rule('locked(O) :- history(_, _, _, "w", O).')
        assert Const("w") in rule.positive_literals[0].atom.terms

    def test_string_escapes(self):
        rule = parse_rule('p(X) :- q(X, "a\\"b").')
        assert Const('a"b') in rule.positive_literals[0].atom.terms

    def test_negative_numbers_and_floats(self):
        rule = parse_rule("p(-1, 2.5).")
        assert rule.head.terms == (Const(-1), Const(2.5))

    def test_lowercase_ident_is_symbol_constant(self):
        rule = parse_rule("p(X) :- q(X, foo).")
        assert Const("foo") in rule.positive_literals[0].atom.terms

    def test_anonymous_variable(self):
        rule = parse_rule("p(X) :- q(X, _, _).")
        atom = rule.positive_literals[0].atom
        assert sum(1 for t in atom.terms if isinstance(t, Var) and t.is_anonymous) == 2
        assert atom.variables == {Var("X")}

    def test_head_aggregate(self):
        rule = parse_rule("n(G, count(X)) :- item(G, X).")
        aggs = rule.head.aggregates
        assert len(aggs) == 1
        assert aggs[0] == Aggregate("count", Var("X"))
        assert rule.has_aggregates


class TestPrograms:
    def test_multiple_rules_and_comments(self):
        rules = parse_program(
            """
            % transitive closure
            path(X, Y) :- edge(X, Y).
            # another comment style
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        assert len(rules) == 2

    def test_str_roundtrips_through_parser(self):
        source = 'p(X) :- q(X, Y), not r(Y), X > 3, s(X, "lit").'
        rule = parse_rule(source)
        assert str(parse_rule(str(rule))) == str(rule)


class TestErrors:
    def test_missing_dot(self):
        with pytest.raises(DatalogSyntaxError, match="expected DOT"):
            parse_rule("p(X) :- q(X)")

    def test_unexpected_character(self):
        with pytest.raises(DatalogSyntaxError, match="unexpected character"):
            parse_program("p(X) :- q(X) & r(X).")

    def test_error_carries_line_number(self):
        try:
            parse_program("p(1).\nbroken(")
        except DatalogSyntaxError as error:
            assert error.line == 2
        else:
            raise AssertionError("expected syntax error")

    def test_trailing_garbage_on_single_rule(self):
        with pytest.raises(DatalogSyntaxError, match="trailing"):
            parse_rule("p(1). q(2).")

    def test_comparison_needs_terms(self):
        with pytest.raises(DatalogSyntaxError):
            parse_rule("p(X) :- X > .")
