"""Semi-naive evaluation: joins, negation, recursion, aggregates."""

import pytest

from repro.datalog.engine import Database, evaluate, query
from repro.datalog.program import Program


def run(source: str, facts: dict[str, list[tuple]], goal: str) -> set[tuple]:
    program = Program.parse(source)
    db = Database()
    for pred, rows in facts.items():
        db.add_facts(pred, rows)
    return query(program, db, goal)


class TestBasics:
    def test_facts_in_program(self):
        assert run("p(1). p(2).", {}, "p") == {(1,), (2,)}

    def test_join_on_shared_variable(self):
        out = run(
            "grand(X, Z) :- parent(X, Y), parent(Y, Z).",
            {"parent": [("a", "b"), ("b", "c"), ("b", "d")]},
            "grand",
        )
        assert out == {("a", "c"), ("a", "d")}

    def test_constants_filter(self):
        out = run(
            'locked(O) :- history(_, _, "w", O).',
            {"history": [(1, 1, "w", 5), (2, 1, "r", 6)]},
            "locked",
        )
        assert out == {(5,)}

    def test_repeated_variable_in_atom(self):
        out = run(
            "loop(X) :- edge(X, X).",
            {"edge": [(1, 1), (1, 2), (3, 3)]},
            "loop",
        )
        assert out == {(1,), (3,)}

    def test_comparisons(self):
        out = run(
            "older(X) :- age(X, A), A >= 30.",
            {"age": [("ann", 25), ("bob", 30), ("cyd", 41)]},
            "older",
        )
        assert out == {("bob",), ("cyd",)}

    def test_mixed_type_comparison_is_false_not_fatal(self):
        out = run(
            "p(X) :- q(X, V), V > 3.",
            {"q": [(1, "not-a-number"), (2, 5)]},
            "p",
        )
        assert out == {(2,)}

    def test_anonymous_variables_match_anything(self):
        out = run(
            "seen(T) :- history(_, T, _).",
            {"history": [(1, 10, "x"), (2, 11, "y")]},
            "seen",
        )
        assert out == {(10,), (11,)}


class TestNegation:
    def test_stratified_negation(self):
        out = run(
            """
            finished(T) :- history(T, done).
            active(T) :- history(T, _), not finished(T).
            """,
            {"history": [(1, "open"), (2, "done"), (2, "open")]},
            "active",
        )
        assert out == {(1,)}

    def test_negation_with_constants(self):
        out = run(
            "nonzero(X) :- num(X), not zero(X).",
            {"num": [(0,), (1,), (2,)], "zero": [(0,)]},
            "nonzero",
        )
        assert out == {(1,), (2,)}


class TestRecursion:
    def test_transitive_closure(self):
        out = run(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """,
            {"edge": [(1, 2), (2, 3), (3, 4)]},
            "path",
        )
        assert out == {
            (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)
        }

    def test_cyclic_graph_terminates(self):
        out = run(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """,
            {"edge": [(1, 2), (2, 1)]},
            "path",
        )
        assert out == {(1, 1), (1, 2), (2, 1), (2, 2)}

    def test_mutual_recursion(self):
        out = run(
            """
            even(X) :- zero(X).
            even(Y) :- odd(X), succ(X, Y).
            odd(Y) :- even(X), succ(X, Y).
            """,
            {"zero": [(0,)], "succ": [(i, i + 1) for i in range(6)]},
            "even",
        )
        assert out == {(0,), (2,), (4,), (6,)}

    def test_linear_chain_depth(self):
        n = 60
        out = run(
            """
            reach(X) :- start(X).
            reach(Y) :- reach(X), edge(X, Y).
            """,
            {"start": [(0,)], "edge": [(i, i + 1) for i in range(n)]},
            "reach",
        )
        assert len(out) == n + 1


class TestAggregates:
    def test_count_per_group(self):
        out = run(
            "n(G, count(X)) :- item(G, X).",
            {"item": [("a", 1), ("a", 2), ("b", 9)]},
            "n",
        )
        assert out == {("a", 2), ("b", 1)}

    def test_count_is_distinct_per_group(self):
        out = run(
            "n(G, count(X)) :- item(G, X).",
            {"item": [("a", 1), ("a", 1)]},
            "n",
        )
        assert out == {("a", 1)}

    def test_sum_min_max(self):
        facts = {"item": [("a", 1), ("a", 4), ("b", 9)]}
        assert run("s(G, sum(X)) :- item(G, X).", facts, "s") == {
            ("a", 5), ("b", 9)
        }
        assert run("m(G, min(X)) :- item(G, X).", facts, "m") == {
            ("a", 1), ("b", 9)
        }
        assert run("m(G, max(X)) :- item(G, X).", facts, "m") == {
            ("a", 4), ("b", 9)
        }

    def test_aggregate_feeds_downstream_rule(self):
        out = run(
            """
            n(G, count(X)) :- item(G, X).
            busy(G) :- n(G, N), N >= 2.
            """,
            {"item": [("a", 1), ("a", 2), ("b", 1)]},
            "busy",
        )
        assert out == {("a",)}


class TestDatabase:
    def test_add_fact_dedup(self):
        db = Database()
        assert db.add_fact("p", (1,))
        assert not db.add_fact("p", (1,))
        assert db.facts("p") == {(1,)}

    def test_copy_is_independent(self):
        db = Database()
        db.add_fact("p", (1,))
        clone = db.copy()
        clone.add_fact("p", (2,))
        assert db.facts("p") == {(1,)}

    def test_index_consistency_after_mutation(self):
        db = Database()
        db.add_facts("p", [(1, "a"), (2, "b")])
        assert db.index("p", (1,))[("a",)] == [(1, "a")]
        db.add_fact("p", (3, "a"))
        buckets = db.index("p", (1,))
        assert sorted(buckets[("a",)]) == [(1, "a"), (3, "a")]

    def test_contains(self):
        db = Database()
        db.add_fact("p", (1,))
        assert ("p", (1,)) in db
        assert ("p", (2,)) not in db
