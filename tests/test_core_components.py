"""Core middleware components: queue, triggers, stores."""

import pytest

from repro.core.queue import IncomingQueue
from repro.core.stores import HistoryStore, PendingStore
from repro.core.triggers import FillLevelTrigger, HybridTrigger, TimeLapseTrigger
from repro.model.request import (
    Operation,
    Request,
    RequestAttributes,
    TransactionStatus,
)

from tests.conftest import request


class TestIncomingQueue:
    def test_fifo_drain(self):
        queue = IncomingQueue()
        for i in range(3):
            queue.enqueue(request(i + 1, 1, i, "r", 5), now=float(i))
        drained = queue.drain()
        assert [r.id for r in drained] == [1, 2, 3]
        assert len(queue) == 0

    def test_oldest_arrival(self):
        queue = IncomingQueue()
        assert queue.oldest_arrival is None
        queue.enqueue(request(1, 1, 0, "r", 5), now=3.5)
        queue.enqueue(request(2, 1, 1, "r", 6), now=4.0)
        assert queue.oldest_arrival == 3.5

    def test_total_enqueued_persists_after_drain(self):
        queue = IncomingQueue()
        queue.enqueue(request(1, 1, 0, "r", 5))
        queue.drain()
        queue.enqueue(request(2, 1, 1, "r", 6))
        assert queue.total_enqueued == 2

    def test_iter_does_not_consume(self):
        queue = IncomingQueue()
        queue.enqueue(request(1, 1, 0, "r", 5))
        assert [r.id for r in queue] == [1]
        assert len(queue) == 1


class TestTriggers:
    def _queue_with(self, n: int) -> IncomingQueue:
        queue = IncomingQueue()
        for i in range(n):
            queue.enqueue(request(i + 1, 1, i, "r", 5))
        return queue

    def test_time_lapse(self):
        trigger = TimeLapseTrigger(1.0)
        queue = self._queue_with(1)
        assert not trigger.should_fire(queue, 0.5)
        assert trigger.should_fire(queue, 1.0)
        trigger.notify_fired(1.0)
        assert not trigger.should_fire(queue, 1.5)
        assert trigger.should_fire(queue, 2.0)

    def test_time_lapse_requires_queued_work(self):
        trigger = TimeLapseTrigger(1.0)
        assert not trigger.should_fire(self._queue_with(0), 5.0)

    def test_fill_level(self):
        trigger = FillLevelTrigger(3)
        assert not trigger.should_fire(self._queue_with(2), 0.0)
        assert trigger.should_fire(self._queue_with(3), 0.0)
        assert trigger.next_check(0.0) is None

    def test_hybrid_fires_on_either(self):
        trigger = HybridTrigger(1.0, 3)
        assert trigger.should_fire(self._queue_with(3), 0.1)  # fill
        assert not trigger.should_fire(self._queue_with(1), 0.5)
        assert trigger.should_fire(self._queue_with(1), 1.0)  # time

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeLapseTrigger(0)
        with pytest.raises(ValueError):
            FillLevelTrigger(0)
        with pytest.raises(ValueError):
            HybridTrigger(1.0, 0)

    def test_names(self):
        assert TimeLapseTrigger(0.5).name == "time(0.5s)"
        assert FillLevelTrigger(5).name == "fill(5)"
        assert HybridTrigger(0.5, 5).name == "hybrid(0.5s|5)"


class TestPendingStore:
    def test_insert_and_remove(self):
        store = PendingStore()
        requests = [request(1, 1, 0, "r", 5), request(2, 2, 0, "w", 6)]
        assert store.insert_batch(requests) == 2
        assert store.remove([requests[0]]) == 1
        assert len(store) == 1

    def test_attrs_rehydration(self):
        store = PendingStore()
        original = Request(
            1, 1, 0, Operation.READ, 5,
            attrs=RequestAttributes(priority=7, sla_class="premium"),
        )
        store.insert_batch([original])
        bare = Request.from_row(original.as_row())
        assert bare.attrs.priority == 0
        hydrated = store.rehydrate(bare)
        assert hydrated.attrs.priority == 7

    def test_rehydrate_unknown_id_passthrough(self):
        store = PendingStore()
        bare = request(99, 1, 0, "r", 5)
        assert store.rehydrate(bare) is bare


class TestHistoryStore:
    def test_status_tracking(self):
        store = HistoryStore()
        store.record_batch(
            [request(1, 1, 0, "w", 5), request(2, 1, 1, "c")]
        )
        assert store.status(1) is TransactionStatus.COMMITTED
        assert store.status(2) is TransactionStatus.ACTIVE

    def test_active_transactions(self):
        store = HistoryStore()
        store.record_batch(
            [
                request(1, 1, 0, "w", 5),
                request(2, 2, 0, "w", 6),
                request(3, 2, 1, "a"),
            ]
        )
        assert store.active_transactions == {1}

    def test_prune_finished(self):
        store = HistoryStore()
        store.record_batch(
            [
                request(1, 1, 0, "w", 5),
                request(2, 1, 1, "c"),
                request(3, 2, 0, "w", 6),
            ]
        )
        removed = store.prune_finished()
        assert removed == 2
        assert len(store) == 1
        assert store.active_transactions == {2}

    def test_prune_noop(self):
        store = HistoryStore()
        store.record_batch([request(1, 1, 0, "w", 5)])
        assert store.prune_finished() == 0

    def test_total_recorded_monotonic(self):
        store = HistoryStore()
        store.record_batch([request(1, 1, 0, "w", 5), request(2, 1, 1, "c")])
        store.prune_finished()
        assert store.total_recorded == 2
