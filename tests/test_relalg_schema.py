"""Schema and column-resolution tests."""

import pytest

from repro.relalg.schema import Column, Schema, SchemaError


class TestColumn:
    def test_qualified_name(self):
        assert Column("ta", "requests").qualified_name == "requests.ta"
        assert Column("ta").qualified_name == "ta"

    def test_matches_with_and_without_qualifier(self):
        column = Column("ta", "r")
        assert column.matches("ta")
        assert column.matches("ta", "r")
        assert not column.matches("ta", "h")
        assert not column.matches("id", "r")


class TestResolution:
    def test_resolve_unqualified(self):
        schema = Schema.of("id", "ta", "object")
        assert schema.resolve("ta") == 1

    def test_resolve_qualified(self):
        schema = Schema([Column("ta", "r"), Column("ta", "h")])
        assert schema.resolve("ta", "r") == 0
        assert schema.resolve("ta", "h") == 1

    def test_ambiguous_unqualified_raises(self):
        schema = Schema([Column("ta", "r"), Column("ta", "h")])
        with pytest.raises(SchemaError, match="ambiguous"):
            schema.resolve("ta")

    def test_unknown_raises_with_candidates(self):
        schema = Schema.of("id")
        with pytest.raises(SchemaError, match="unknown column"):
            schema.resolve("nope")

    def test_has(self):
        schema = Schema([Column("ta", "r")])
        assert schema.has("ta")
        assert schema.has("ta", "r")
        assert not schema.has("ta", "x")


class TestSchemaAlgebra:
    def test_qualify_requalifies_all(self):
        schema = Schema.of("a", "b").qualify("x")
        assert [c.qualified_name for c in schema] == ["x.a", "x.b"]

    def test_unqualified_strips(self):
        schema = Schema([Column("a", "x")]).unqualified()
        assert schema.columns[0].qualifier is None

    def test_concat_preserves_order(self):
        left = Schema.of("a", qualifier="l")
        right = Schema.of("a", qualifier="r")
        combined = left.concat(right)
        assert combined.arity == 2
        assert combined.resolve("a", "l") == 0
        assert combined.resolve("a", "r") == 1

    def test_project(self):
        schema = Schema.of("a", "b", "c")
        assert Schema.of("c", "a") == schema.project([2, 0])

    def test_equality_and_hash(self):
        assert Schema.of("a", "b") == Schema.of("a", "b")
        assert hash(Schema.of("a")) == hash(Schema.of("a"))
        assert Schema.of("a") != Schema.of("b")
