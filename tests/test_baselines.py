"""Imperative baseline and the related-approach catalogue."""

from repro.baselines.imperative import ImperativeSS2PLScheduler
from repro.baselines.related import (
    PAPER_TABLE1,
    RELATED_APPROACHES,
    table1_rows,
)
from repro.model.request import Operation, Request, RequestAttributes

from tests.conftest import (
    empty_history_table,
    empty_requests_table,
    request,
)


class TestImperativeBaseline:
    def test_simple_grant(self):
        requests = empty_requests_table()
        requests.insert(request(1, 1, 0, "r", 5).as_row())
        decision = ImperativeSS2PLScheduler().schedule(
            requests, empty_history_table()
        )
        assert [r.id for r in decision.qualified] == [1]

    def test_denial_reasons_attributed(self):
        requests = empty_requests_table()
        history = empty_history_table()
        history.insert(request(1, 1, 0, "w", 5).as_row())
        requests.insert(request(2, 2, 0, "r", 5).as_row())
        decision = ImperativeSS2PLScheduler().schedule(requests, history)
        assert decision.qualified == []
        assert decision.denials[2] == "write lock held"

    def test_has_no_declarative_source(self):
        assert ImperativeSS2PLScheduler().declarative_source is None
        assert ImperativeSS2PLScheduler().spec_line_count() == 0


def _tiered_queue():
    def req(rid, ta, op, obj, priority):
        return Request(
            rid, ta, 0, op, obj,
            attrs=RequestAttributes(priority=priority),
        )

    return [
        req(1, 1, Operation.WRITE, 5, priority=1),
        req(2, 2, Operation.READ, 6, priority=9),
        req(3, 3, Operation.READ, 7, priority=1),
        req(4, 4, Operation.WRITE, 5, priority=9),
    ]


class TestRelatedPolicies:
    def test_all_policies_respect_capacity(self):
        queue = _tiered_queue()
        for approach in RELATED_APPROACHES:
            out = approach.policy(queue, 2)
            assert len(out) <= 2, approach.name
            assert all(r in queue for r in out), approach.name

    def test_qos_approaches_prefer_priority(self):
        queue = _tiered_queue()
        for approach in RELATED_APPROACHES:
            if not approach.capabilities.qos:
                continue
            out = approach.policy(queue, 2)
            assert out[0].attrs.priority == 9, approach.name

    def test_ganymed_puts_updates_first(self):
        approach = next(a for a in RELATED_APPROACHES if a.name == "Ganymed")
        out = approach.policy(_tiered_queue(), 4)
        kinds = [r.is_write for r in out]
        assert kinds == sorted(kinds, reverse=True)

    def test_qshuffler_groups_by_object(self):
        approach = next(
            a for a in RELATED_APPROACHES if a.name == "QShuffler"
        )
        out = approach.policy(_tiered_queue(), 4)
        objects = [r.obj for r in out]
        assert objects == sorted(objects)

    def test_cjdbc_is_fifo(self):
        approach = next(a for a in RELATED_APPROACHES if a.name == "C-JDBC")
        out = approach.policy(_tiered_queue(), 3)
        assert [r.id for r in out] == [1, 2, 3]


class TestTable1:
    def test_vectors_match_paper(self):
        for approach in RELATED_APPROACHES:
            assert approach.capabilities.as_row() == PAPER_TABLE1[approach.name], (
                approach.name
            )

    def test_no_related_approach_is_declarative(self):
        # The paper's point: the D column is all minus except our system.
        for approach in RELATED_APPROACHES:
            assert not approach.capabilities.declarative

    def test_rows_include_ours(self):
        rows = table1_rows(include_ours=True)
        assert len(rows) == len(RELATED_APPROACHES) + 1
        ours = rows[-1]
        assert ours[1:] == ("+", "+", "+", "+", "+")

    def test_rows_without_ours(self):
        rows = table1_rows(include_ours=False)
        assert len(rows) == len(RELATED_APPROACHES)
