"""DeclarativeScheduler step semantics and the passthrough mode."""

import pytest

from repro.core.passthrough import PassthroughScheduler
from repro.core.scheduler import (
    DeclarativeScheduler,
    SchedulerConfig,
    SchedulerCostModel,
)
from repro.core.triggers import FillLevelTrigger, HybridTrigger, TimeLapseTrigger
from repro.metrics.collector import MetricsCollector
from repro.model.request import make_transaction
from repro.model.schedule import Schedule, is_conflict_serializable, is_strict
from repro.protocols.fcfs import FCFSProtocol
from repro.protocols.ss2pl import SS2PLRelalgProtocol

from tests.conftest import request


def submit_transactions(scheduler, *txns):
    for txn in txns:
        for req in txn:
            scheduler.submit(req)


class TestStep:
    def test_step_moves_qualified_to_history(self):
        scheduler = DeclarativeScheduler(FCFSProtocol())
        submit_transactions(
            scheduler, make_transaction(1, [("r", 1)], start_id=1)
        )
        result = scheduler.step()
        assert result.batch_size == 2
        assert len(scheduler.pending) == 0
        # Committed txn pruned from history by default.
        assert len(scheduler.history) == 0

    def test_prune_disabled_keeps_history(self):
        scheduler = DeclarativeScheduler(
            FCFSProtocol(), config=SchedulerConfig(prune_history=False)
        )
        submit_transactions(
            scheduler, make_transaction(1, [("r", 1)], start_id=1)
        )
        scheduler.step()
        assert len(scheduler.history) == 2

    def test_blocked_requests_stay_pending(self):
        scheduler = DeclarativeScheduler(SS2PLRelalgProtocol())
        # T1 holds a write lock (open transaction in history).
        scheduler.history.record_batch([request(1, 1, 0, "w", 5)])
        scheduler.submit(request(2, 2, 0, "r", 5))
        result = scheduler.step()
        assert result.batch_size == 0
        assert len(scheduler.pending) == 1

    def test_unblocking_after_commit(self):
        scheduler = DeclarativeScheduler(SS2PLRelalgProtocol())
        scheduler.history.record_batch([request(1, 1, 0, "w", 5)])
        scheduler.submit(request(2, 2, 0, "r", 5))
        scheduler.step()
        scheduler.submit(request(3, 1, 1, "c"))
        scheduler.step()  # commit qualifies, then prunes T1
        result = scheduler.step()  # now the read is free
        assert [r.id for r in result.qualified] == [2]

    def test_max_batch_limits_dispatch(self):
        scheduler = DeclarativeScheduler(
            FCFSProtocol(), config=SchedulerConfig(max_batch=1)
        )
        submit_transactions(
            scheduler, make_transaction(1, [("r", 1), ("r", 2)], start_id=1)
        )
        result = scheduler.step()
        assert result.batch_size == 1
        assert len(scheduler.pending) == 2

    def test_metrics_recorded(self):
        metrics = MetricsCollector()
        scheduler = DeclarativeScheduler(FCFSProtocol(), metrics=metrics)
        submit_transactions(
            scheduler, make_transaction(1, [("r", 1)], start_id=1)
        )
        scheduler.step()
        assert metrics.counters["scheduler.steps"] == 1
        assert metrics.counters["scheduler.qualified"] == 2
        assert metrics.counters["scheduler.submitted"] == 2

    def test_should_run_respects_trigger(self):
        scheduler = DeclarativeScheduler(
            FCFSProtocol(), trigger=FillLevelTrigger(3)
        )
        scheduler.submit(request(1, 1, 0, "r", 5))
        assert not scheduler.should_run(0.0)
        scheduler.submit(request(2, 1, 1, "r", 6))
        scheduler.submit(request(3, 1, 2, "r", 7))
        assert scheduler.should_run(0.0)

    def test_should_run_false_when_empty(self):
        scheduler = DeclarativeScheduler(FCFSProtocol())
        assert not scheduler.should_run(100.0)


class TestBlockedPendingPacing:
    """Blocked-pending steps must be paced by the trigger, not fire
    unconditionally (the E7 busy-poll bug)."""

    def _blocked_scheduler(self, trigger):
        scheduler = DeclarativeScheduler(SS2PLRelalgProtocol(), trigger=trigger)
        # T1 holds a write lock; T2's read is blocked behind it.
        scheduler.history.record_batch([request(1, 1, 0, "w", 5)])
        scheduler.submit(request(2, 2, 0, "r", 5), now=0.0)
        scheduler.step(now=1.0)  # drains into pending, dispatches nothing
        assert len(scheduler.pending) == 1
        assert len(scheduler.incoming) == 0
        return scheduler

    def test_time_trigger_paces_blocked_pending(self):
        scheduler = self._blocked_scheduler(TimeLapseTrigger(1.0))
        # The step at t=1 reset the lapse clock: no re-run before t=2.
        assert not scheduler.should_run(1.0)
        assert not scheduler.should_run(1.5)
        assert scheduler.should_run(2.0)
        scheduler.step(now=2.0)
        assert not scheduler.should_run(2.5)
        assert scheduler.should_run(3.0)

    def test_hybrid_trigger_paces_blocked_pending(self):
        scheduler = self._blocked_scheduler(HybridTrigger(1.0, 3))
        assert not scheduler.should_run(1.2)
        assert scheduler.should_run(2.0)

    def test_fill_trigger_stays_enqueue_driven_when_blocked(self):
        scheduler = self._blocked_scheduler(FillLevelTrigger(2))
        # Nothing queued: a pure fill trigger never fires on time alone.
        assert not scheduler.should_run(100.0)
        scheduler.submit(request(3, 3, 0, "r", 9), now=100.0)
        assert not scheduler.should_run(100.0)  # below threshold
        scheduler.submit(request(4, 3, 1, "r", 10), now=100.0)
        assert scheduler.should_run(100.0)

    def test_unblocking_commit_still_reaches_pending(self):
        scheduler = self._blocked_scheduler(TimeLapseTrigger(1.0))
        scheduler.submit(request(3, 1, 1, "c"), now=2.0)
        assert scheduler.should_run(2.0)
        scheduler.step(now=2.0)  # commit executes, T1's lock released
        assert scheduler.should_run(3.0)
        result = scheduler.step(now=3.0)
        assert [r.id for r in result.qualified] == [2]


class TestRunUntilDrained:
    def test_emits_serializable_strict_schedule(self):
        scheduler = DeclarativeScheduler(SS2PLRelalgProtocol())
        submit_transactions(
            scheduler,
            make_transaction(1, [("r", 1), ("w", 1)], start_id=1),
            make_transaction(2, [("w", 1), ("w", 2)], start_id=101),
            make_transaction(3, [("r", 2), ("w", 3)], start_id=201),
        )
        emitted = Schedule()
        for result in scheduler.run_until_drained():
            emitted.extend(result.qualified)
        assert len(emitted) == 9
        assert is_conflict_serializable(emitted)
        assert is_strict(emitted)

    def test_stall_detection(self):
        scheduler = DeclarativeScheduler(SS2PLRelalgProtocol())
        # A pending request permanently blocked by an open transaction
        # that never commits.
        scheduler.history.record_batch([request(1, 1, 0, "w", 5)])
        scheduler.submit(request(2, 2, 0, "w", 5))
        with pytest.raises(RuntimeError, match="stalled"):
            scheduler.run_until_drained()


class TestSchedulerCostModel:
    def test_linear_in_rows(self):
        cost = SchedulerCostModel(fixed_cost=1.0, per_row_cost=0.1)
        assert cost.step_cost(10, 20) == pytest.approx(1.0 + 3.0)


class TestPassthrough:
    def test_forwards_everything_in_order(self):
        scheduler = PassthroughScheduler()
        txn = make_transaction(1, [("r", 1), ("w", 2)], start_id=1)
        for req in txn:
            scheduler.submit(req)
        assert scheduler.should_run(0.0)
        result = scheduler.step()
        assert [r.id for r in result.qualified] == [1, 2, 3]
        assert not scheduler.should_run(0.0)

    def test_zero_query_time(self):
        scheduler = PassthroughScheduler()
        scheduler.submit(request(1, 1, 0, "r", 5))
        assert scheduler.step().query_seconds == 0.0
