"""Property tests: Datalog fixpoints against networkx references."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.engine import Database, evaluate
from repro.datalog.program import Program

edges = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=30
)

TC_PROGRAM = Program.parse(
    """
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
    """
)


class TestTransitiveClosure:
    @given(edges)
    @settings(max_examples=80, deadline=None)
    def test_matches_networkx(self, edge_list):
        db = Database()
        db.add_facts("edge", edge_list)
        evaluate(TC_PROGRAM, db)
        ours = db.facts("path")

        # path(u, v) iff a non-empty walk u -> v exists: v is a successor
        # of u, or reachable from one.
        graph = nx.DiGraph(edge_list)
        expected = set()
        for source in graph.nodes:
            reachable: set = set()
            for successor in graph.successors(source):
                reachable.add(successor)
                reachable |= nx.descendants(graph, successor)
            expected |= {(source, target) for target in reachable}
        assert ours == expected

    @given(edges)
    @settings(max_examples=40, deadline=None)
    def test_idempotent_reevaluation(self, edge_list):
        db = Database()
        db.add_facts("edge", edge_list)
        evaluate(TC_PROGRAM, db)
        first = set(db.facts("path"))
        evaluate(TC_PROGRAM, db)
        assert db.facts("path") == first


NEGATION_PROGRAM = Program.parse(
    """
    reach(X) :- start(X).
    reach(Y) :- reach(X), edge(X, Y).
    unreached(X) :- node(X), not reach(X).
    """
)


class TestStratifiedNegationProperty:
    @given(edges, st.integers(0, 8))
    @settings(max_examples=80, deadline=None)
    def test_reach_unreached_partition_nodes(self, edge_list, start):
        nodes = {start} | {n for e in edge_list for n in e}
        db = Database()
        db.add_facts("edge", edge_list)
        db.add_fact("start", (start,))
        db.add_facts("node", [(n,) for n in nodes])
        evaluate(NEGATION_PROGRAM, db)
        reached = {t[0] for t in db.facts("reach")}
        unreached = {t[0] for t in db.facts("unreached")}
        assert reached | unreached == nodes
        assert reached & unreached == set()

        graph = nx.DiGraph(edge_list)
        graph.add_node(start)
        expected = {start} | (
            nx.descendants(graph, start) if start in graph else set()
        )
        assert reached == expected


COUNT_PROGRAM = Program.parse("deg(X, count(Y)) :- edge(X, Y).")


class TestAggregateProperty:
    @given(edges)
    @settings(max_examples=80, deadline=None)
    def test_out_degree_matches_networkx(self, edge_list):
        db = Database()
        db.add_facts("edge", edge_list)
        evaluate(COUNT_PROGRAM, db)
        ours = dict(db.facts("deg"))
        graph = nx.DiGraph(edge_list)  # distinct edges, like set semantics
        expected = {
            n: d for n, d in graph.out_degree() if d > 0
        }
        assert ours == expected
