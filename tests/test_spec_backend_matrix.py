"""The protocol × backend matrix: one spec, every engine, same batches.

The specification/execution split's core contract: a registered
:class:`~repro.protocols.spec.ProtocolSpec` must produce byte-identical
batch sequences on every backend that declares support for it, and a
backend that does *not* declare support must refuse to lower the spec
(no silent wrong answers).  The randomized sweep drives the live
scheduler — so stateful backends (incremental view maintenance) are
exercised through the observe hooks exactly as in production — over the
same 50-workload distribution as the plan-compilation equivalence test,
rotating specs so every supported (spec, backend) pairing is driven
several times.
"""

import random

import pytest

from repro.backends import (
    BACKEND_REGISTRY,
    BackendError,
    build_protocol,
    supported_backends,
)
from repro.bench.incremental_ablation import drive_steps
from repro.protocols.spec import SPEC_REGISTRY, spec_names

from tests.conftest import random_scheduling_instance

ALL_SPECS = spec_names()
ALL_BACKENDS = sorted(BACKEND_REGISTRY)


class TestDeclaredSupportIsExact:
    """The skip list is exactly what the backends declare."""

    @pytest.mark.parametrize("spec_name", ALL_SPECS)
    def test_every_backend_either_lowers_or_refuses(self, spec_name):
        spec = SPEC_REGISTRY[spec_name]
        declared = set(supported_backends(spec))
        actually_lowered = set()
        for backend_name in ALL_BACKENDS:
            try:
                build_protocol(spec_name, backend_name)
            except BackendError:
                continue
            actually_lowered.add(backend_name)
        assert actually_lowered == declared, (
            f"{spec_name}: declared support {sorted(declared)} != "
            f"lowerable {sorted(actually_lowered)}"
        )

    def test_static_prediction_matches_dynamic_support_exactly(self):
        # The analyzer's schema-only lowerability mirror replaces the
        # old hand-maintained skip-list pin: for EVERY spec × backend
        # pair, the static prediction must equal the backend's live
        # supports() answer — which for compiled-delta trial-lowers the
        # plan.  A new spec landing in the wrong bucket (silently
        # skipped, or silently accepted with an unmaintainable plan)
        # fails here by name, and so does any drift between the mirror
        # in repro.analysis.lowerability and the real lowering.
        from repro.analysis import explain_refusal, predicted_backend_matrix

        matrix = predicted_backend_matrix()
        assert sorted(matrix) == sorted(ALL_SPECS)
        for spec_name, row in matrix.items():
            assert sorted(row) == ALL_BACKENDS
            spec = SPEC_REGISTRY[spec_name]
            declared = set(supported_backends(spec))
            for backend_name, predicted in row.items():
                actual = backend_name in declared
                assert predicted == actual, (
                    f"{spec_name} × {backend_name}: static analysis "
                    f"predicts {predicted}, backend declares {actual}"
                )
        # Every compiled-delta refusal of a spec that *has* a relalg or
        # sql dialect comes with an operator-path diagnosis.
        for spec_name, row in matrix.items():
            spec = SPEC_REGISTRY[spec_name]
            if row["compiled-delta"] or not (
                {"relalg", "sql"} & spec.dialects()
            ):
                continue
            assert explain_refusal(spec), (
                f"{spec_name}: refused without a diagnosis"
            )

    def test_matrix_is_wide(self):
        # The refactor's acceptance floor: >= 8 specs, and the flagship
        # specs run on >= 4 backends each.
        assert len(ALL_SPECS) >= 8
        wide = [
            name
            for name in ALL_SPECS
            if len(supported_backends(SPEC_REGISTRY[name])) >= 4
        ]
        assert len(wide) >= 6, f"only {wide} run on >= 4 backends"

    def test_unknown_backend_error_names_choices(self):
        with pytest.raises(BackendError, match="valid backends"):
            build_protocol("ss2pl", "no-such-backend")

    def test_unknown_spec_error_names_choices(self):
        with pytest.raises(KeyError, match="registered"):
            build_protocol("no-such-spec", "compiled")


class TestMatrixEquivalence:
    """Byte-identical batch sequences across the full matrix."""

    def test_fifty_random_workloads_sweep_matrix(self):
        rng = random.Random(2026)
        for trial in range(50):
            clients = rng.randrange(3, 10)
            steps = rng.randrange(4, 9)
            ops_per_txn = rng.randrange(2, 6)
            table_rows = rng.choice([4, 10, 50])
            seed = rng.randrange(10_000)
            kwargs = dict(
                clients=clients,
                steps=steps,
                ops_per_txn=ops_per_txn,
                table_rows=table_rows,
                seed=seed,
            )
            spec_name = ALL_SPECS[trial % len(ALL_SPECS)]
            backends = supported_backends(SPEC_REGISTRY[spec_name])
            assert backends, f"{spec_name} runs nowhere"
            reference = None
            reference_backend = None
            for backend_name in backends:
                result = drive_steps(
                    build_protocol(spec_name, backend_name), **kwargs
                )
                if reference is None:
                    reference = result.batches
                    reference_backend = backend_name
                else:
                    assert result.batches == reference, (
                        f"trial {trial}: {spec_name} on {backend_name} "
                        f"diverged from {reference_backend} ({kwargs})"
                    )

    @pytest.mark.parametrize("spec_name", ALL_SPECS)
    def test_one_shot_agreement_per_spec(self, spec_name):
        """Static (requests, history) instances: every backend's
        qualified id set matches, with stateful evaluators resynced the
        documented way."""
        backends = supported_backends(SPEC_REGISTRY[spec_name])
        rng = random.Random(hash(spec_name) % 100_000)
        for __ in range(10):
            requests, history = random_scheduling_instance(
                rng,
                pending=rng.randint(1, 20),
                history_transactions=rng.randint(1, 12),
                objects=rng.randint(4, 30),
                pending_ops_per_txn=rng.choice([1, 2, 3]),
            )
            reference = None
            for backend_name in backends:
                protocol = build_protocol(spec_name, backend_name)
                evaluator = getattr(protocol, "_evaluator", None)
                if hasattr(evaluator, "resync"):
                    evaluator.resync(history)
                ids = [
                    r.id
                    for r in protocol.schedule(requests, history).qualified
                ]
                if reference is None:
                    reference = ids
                else:
                    assert ids == reference, (
                        f"{spec_name} on {backend_name}: {ids} != {reference}"
                    )
