"""Simulated DBMS: cost model, data table, MU runs, batch server."""

import pytest

from repro.model.request import Operation, Request
from repro.server.costmodel import CostModel, PAPER_CALIBRATION
from repro.server.database import DataTable
from repro.server.engine import (
    BatchServer,
    SimulatedDBMS,
    single_user_replay_time,
)
from repro.workload.spec import WorkloadSpec

SMALL = WorkloadSpec(reads_per_txn=5, writes_per_txn=5, table_rows=500)


class TestCostModel:
    def test_mu_cost_grows_with_clients(self):
        cost = PAPER_CALIBRATION
        assert cost.mu_statement_cost(10) < cost.mu_statement_cost(300)

    def test_thrashing_beyond_knee(self):
        cost = PAPER_CALIBRATION
        below = cost.mu_statement_cost(cost.mpl_knee)
        above = cost.mu_statement_cost(cost.mpl_knee + 150)
        assert above > below * 5  # super-linear blowup

    def test_su_cost_is_bare_statement_cost(self):
        cost = CostModel()
        assert cost.su_statement_cost() == cost.statement_cost

    def test_su_replay_time_formula(self):
        cost = CostModel()
        assert single_user_replay_time(1000, cost) == pytest.approx(
            1000 * cost.statement_cost + cost.commit_cost
        )

    def test_replay_rejects_negative(self):
        with pytest.raises(ValueError):
            single_user_replay_time(-1)

    def test_batch_time_linear_in_statements(self):
        cost = CostModel()
        t10 = cost.batch_execution_time(10)
        t20 = cost.batch_execution_time(20)
        assert t20 - t10 == pytest.approx(10 * cost.statement_cost)


class TestDataTable:
    def test_read_default(self):
        assert DataTable(10, initial_value=3).read(5) == 3

    def test_write_and_rollback(self):
        table = DataTable(10)
        table.write(1, 42, ta=7)
        table.write(1, 43, ta=7)
        assert table.read(1) == 43
        assert table.rollback(7) == 2
        assert table.read(1) == 0

    def test_commit_discards_undo(self):
        table = DataTable(10)
        table.write(1, 42, ta=7)
        table.commit(7)
        assert table.rollback(7) == 0
        assert table.read(1) == 42

    def test_update_is_relative(self):
        table = DataTable(10, initial_value=5)
        assert table.update(2, +3) == 8

    def test_out_of_range(self):
        with pytest.raises(KeyError):
            DataTable(10).read(10)

    def test_snapshot(self):
        table = DataTable(10)
        table.write(1, 9)
        assert table.snapshot([0, 1]) == {0: 0, 1: 9}


class TestMultiUser:
    def test_single_client_matches_analytics(self):
        dbms = SimulatedDBMS(SMALL, seed=1)
        result = dbms.run_multi_user(1, duration=5.0)
        # One client, no contention: each statement costs the MU rate,
        # plus one commit per transaction.
        per_statement = (
            dbms.cost.mu_statement_cost(1)
            + dbms.cost.commit_cost / SMALL.statements_per_txn
        )
        expected = 5.0 / per_statement
        assert result.committed_statements == pytest.approx(expected, rel=0.03)
        assert result.deadlock_aborts == 0
        assert result.mu_over_su_percent > 100

    def test_determinism(self):
        a = SimulatedDBMS(SMALL, seed=3).run_multi_user(10, 2.0)
        b = SimulatedDBMS(SMALL, seed=3).run_multi_user(10, 2.0)
        assert a.committed_statements == b.committed_statements
        assert a.lock_waits == b.lock_waits

    def test_seed_changes_results(self):
        a = SimulatedDBMS(SMALL, seed=3).run_multi_user(10, 2.0)
        b = SimulatedDBMS(SMALL, seed=4).run_multi_user(10, 2.0)
        assert (a.committed_statements, a.lock_waits) != (
            b.committed_statements,
            b.lock_waits,
        )

    def test_contention_produces_waits(self):
        hot = WorkloadSpec(reads_per_txn=2, writes_per_txn=8, table_rows=30)
        result = SimulatedDBMS(hot, seed=5).run_multi_user(20, 3.0)
        assert result.lock_waits > 0

    def test_committed_counts_consistent(self):
        result = SimulatedDBMS(SMALL, seed=2).run_multi_user(5, 2.0)
        statements_per_txn = SMALL.statements_per_txn
        assert (
            result.committed_statements
            == result.committed_transactions * statements_per_txn
        )
        assert result.executed_statements >= result.committed_statements

    def test_invalid_clients(self):
        with pytest.raises(ValueError):
            SimulatedDBMS(SMALL).run_multi_user(0, 1.0)

    def test_sweep(self):
        results = SimulatedDBMS(SMALL, seed=1).sweep([1, 5], duration=1.0)
        assert [r.clients for r in results] == [1, 5]

    def test_overhead_definition(self):
        result = SimulatedDBMS(SMALL, seed=1).run_multi_user(5, 2.0)
        assert result.scheduling_overhead == pytest.approx(
            result.duration - result.su_replay_time
        )


class TestFigure2Shape:
    """Coarse shape assertions matching the paper's qualitative curve."""

    def test_ratio_rises_with_clients(self):
        dbms = SimulatedDBMS(WorkloadSpec(table_rows=100_000), seed=42)
        low = dbms.run_multi_user(50, duration=20.0)
        mid = dbms.run_multi_user(300, duration=20.0)
        assert low.mu_over_su_percent < mid.mu_over_su_percent

    def test_collapse_beyond_knee(self):
        dbms = SimulatedDBMS(WorkloadSpec(table_rows=100_000), seed=42)
        at_300 = dbms.run_multi_user(300, duration=240.0)
        at_500 = dbms.run_multi_user(500, duration=240.0)
        # Paper: ~124% at 300 clients, ~1600% at 500.
        assert at_300.mu_over_su_percent < 200
        assert at_500.mu_over_su_percent > 1000
        assert at_500.committed_statements < at_300.committed_statements / 5


class TestBatchServer:
    def _requests(self, n):
        return [
            Request(i, 1, i - 1, Operation.WRITE, i) for i in range(1, n + 1)
        ]

    def test_service_time(self):
        server = BatchServer()
        service = server.execute_batch(self._requests(10))
        assert service == pytest.approx(
            PAPER_CALIBRATION.batch_execution_time(10)
        )

    def test_counters(self):
        server = BatchServer()
        server.execute_batch(self._requests(3))
        server.execute_batch(self._requests(2))
        assert server.batches_executed == 2
        assert server.statements_executed == 5

    def test_terminations_cost_nothing(self):
        server = BatchServer()
        commit_only = [Request(1, 1, 0, Operation.COMMIT)]
        service = server.execute_batch(commit_only)
        assert service == pytest.approx(PAPER_CALIBRATION.batch_fixed_cost)

    def test_applies_effects_to_table(self):
        table = DataTable(100)
        server = BatchServer(table=table)
        server.execute_batch(
            [
                Request(1, 7, 0, Operation.WRITE, 5),
                Request(2, 7, 1, Operation.COMMIT),
            ]
        )
        assert table.read(5) == 1

    def test_abort_rolls_back(self):
        table = DataTable(100)
        server = BatchServer(table=table)
        server.execute_batch([Request(1, 7, 0, Operation.WRITE, 5)])
        server.execute_batch([Request(2, 7, 1, Operation.ABORT)])
        assert table.read(5) == 0
