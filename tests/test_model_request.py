"""Unit tests for the request/transaction data model."""

import pytest

from repro.model.request import (
    GLOBAL_REQUEST_IDS,
    NO_OBJECT,
    Operation,
    Request,
    RequestAttributes,
    Transaction,
    make_transaction,
)


class TestOperation:
    def test_codes_match_paper_sql(self):
        assert Operation.READ.value == "r"
        assert Operation.WRITE.value == "w"
        assert Operation.ABORT.value == "a"
        assert Operation.COMMIT.value == "c"

    def test_from_code_roundtrip(self):
        for op in Operation:
            assert Operation.from_code(op.value) is op

    def test_from_code_case_insensitive(self):
        assert Operation.from_code("R") is Operation.READ

    def test_from_code_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown operation"):
            Operation.from_code("x")

    def test_classification(self):
        assert Operation.READ.is_data_access
        assert Operation.WRITE.is_data_access
        assert not Operation.COMMIT.is_data_access
        assert Operation.COMMIT.is_termination
        assert Operation.ABORT.is_termination
        assert not Operation.READ.is_termination


class TestRequest:
    def test_data_access_requires_object(self):
        with pytest.raises(ValueError, match="non-negative object"):
            Request(1, 1, 0, Operation.READ, NO_OBJECT)

    def test_termination_takes_no_object(self):
        commit = Request(1, 1, 0, Operation.COMMIT)
        assert commit.obj == NO_OBJECT

    def test_conflicts_same_object_different_ta_one_write(self):
        r = Request(1, 1, 0, Operation.READ, 5)
        w = Request(2, 2, 0, Operation.WRITE, 5)
        assert r.conflicts_with(w)
        assert w.conflicts_with(r)

    def test_reads_do_not_conflict(self):
        a = Request(1, 1, 0, Operation.READ, 5)
        b = Request(2, 2, 0, Operation.READ, 5)
        assert not a.conflicts_with(b)

    def test_same_transaction_never_conflicts(self):
        a = Request(1, 1, 0, Operation.WRITE, 5)
        b = Request(2, 1, 1, Operation.WRITE, 5)
        assert not a.conflicts_with(b)

    def test_different_objects_never_conflict(self):
        a = Request(1, 1, 0, Operation.WRITE, 5)
        b = Request(2, 2, 0, Operation.WRITE, 6)
        assert not a.conflicts_with(b)

    def test_termination_never_conflicts(self):
        w = Request(1, 1, 0, Operation.WRITE, 5)
        c = Request(2, 2, 0, Operation.COMMIT)
        assert not w.conflicts_with(c)
        assert not c.conflicts_with(w)

    def test_row_roundtrip(self):
        original = Request(7, 3, 2, Operation.WRITE, 42)
        assert Request.from_row(original.as_row()) == original

    def test_row_matches_table2_layout(self):
        row = Request(7, 3, 2, Operation.WRITE, 42).as_row()
        assert row == (7, 3, 2, "w", 42)

    def test_str_format(self):
        assert str(Request(1, 3, 0, Operation.READ, 17)) == "r3[17]"
        assert str(Request(2, 3, 1, Operation.COMMIT)) == "c3"

    def test_with_attrs(self):
        request = Request(1, 1, 0, Operation.READ, 5)
        upgraded = request.with_attrs(priority=9, sla_class="premium")
        assert upgraded.attrs.priority == 9
        assert upgraded.attrs.sla_class == "premium"
        assert request.attrs.priority == 0  # original untouched

    def test_attrs_not_part_of_equality(self):
        a = Request(1, 1, 0, Operation.READ, 5)
        b = a.with_attrs(priority=5)
        assert a == b


class TestTransaction:
    def test_make_transaction_shape(self):
        txn = make_transaction(7, [("r", 10), ("w", 10)], start_id=1)
        assert [str(r) for r in txn] == ["r7[10]", "w7[10]", "c7"]
        assert txn.is_well_formed()

    def test_abort_termination(self):
        txn = make_transaction(1, [("w", 1)], terminate="a", start_id=1)
        assert txn.termination is not None
        assert txn.termination.is_abort

    def test_open_transaction(self):
        txn = make_transaction(1, [("w", 1)], terminate="", start_id=1)
        assert txn.termination is None
        assert len(txn) == 1

    def test_read_write_sets(self):
        txn = make_transaction(
            1, [("r", 1), ("w", 2), ("r", 3), ("w", 3)], start_id=1
        )
        assert txn.read_set == {1, 3}
        assert txn.write_set == {2, 3}
        assert txn.objects == {1, 2, 3}

    def test_intrata_is_consecutive(self):
        txn = make_transaction(1, [("r", 1), ("w", 2)], start_id=10)
        assert [r.intrata for r in txn] == [0, 1, 2]

    def test_ids_consecutive_from_start(self):
        txn = make_transaction(1, [("r", 1), ("w", 2)], start_id=10)
        assert [r.id for r in txn] == [10, 11, 12]

    def test_global_allocator_when_no_start(self):
        GLOBAL_REQUEST_IDS.reset()
        txn = make_transaction(1, [("r", 1)])
        assert [r.id for r in txn] == [1, 2]

    def test_ill_formed_detection(self):
        txn = Transaction(
            ta=1,
            requests=[
                Request(1, 1, 0, Operation.COMMIT),
                Request(2, 1, 1, Operation.READ, 5),
            ],
        )
        assert not txn.is_well_formed()

    def test_attrs_applied_to_every_request(self):
        attrs = RequestAttributes(client_id=4, sla_class="premium", priority=2)
        txn = make_transaction(1, [("r", 1)], start_id=1, attrs=attrs)
        assert all(r.attrs.sla_class == "premium" for r in txn)
