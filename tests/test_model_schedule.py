"""Schedule-correctness analyzers against textbook cases."""

import networkx as nx

from repro.model.request import make_transaction
from repro.model.schedule import (
    Schedule,
    conflict_graph,
    interleave,
    is_avoiding_cascading_aborts,
    is_conflict_serializable,
    is_legal_ss2pl_order,
    is_recoverable,
    is_strict,
    serialization_order,
)


def two_txn(parts1, parts2, terminate1="c", terminate2="c"):
    t1 = make_transaction(1, parts1, terminate=terminate1, start_id=1)
    t2 = make_transaction(2, parts2, terminate=terminate2, start_id=100)
    return t1.requests, t2.requests


class TestConflictGraph:
    def test_serial_schedule_no_cycle(self):
        t1, t2 = two_txn([("w", 1)], [("w", 1)])
        schedule = Schedule(t1 + t2)
        assert is_conflict_serializable(schedule)
        assert serialization_order(schedule) == [1, 2]

    def test_classic_nonserializable_interleaving(self):
        # r1(x) r2(x) w1(x) w2(x): T1->T2 (r1-w2) and T2->T1 (r2-w1).
        t1, t2 = two_txn([("r", 1), ("w", 1)], [("r", 1), ("w", 1)])
        schedule = interleave([t1, t2], [0, 1, 0, 1, 0, 1])
        assert not is_conflict_serializable(schedule)
        assert serialization_order(schedule) is None

    def test_serializable_interleaving(self):
        # r1(x) w2(y) w1(x) — disjoint objects, no conflicts at all.
        t1, t2 = two_txn([("r", 1), ("w", 1)], [("w", 2)])
        schedule = interleave([t1, t2], [0, 1, 0, 0, 1])
        assert is_conflict_serializable(schedule)

    def test_graph_edges_direction(self):
        t1, t2 = two_txn([("w", 1)], [("r", 1)])
        schedule = interleave([t1, t2], [0, 1, 0, 1])  # w1 r2 c1 c2
        graph = conflict_graph(schedule)
        assert list(graph.edges) == [(1, 2)]

    def test_uncommitted_transactions_excluded(self):
        t1, t2 = two_txn([("w", 1)], [("w", 1)], terminate2="")
        schedule = Schedule(t1 + t2)
        graph = conflict_graph(schedule)
        assert 2 not in graph.nodes

    def test_aborted_transactions_excluded(self):
        t1, t2 = two_txn([("w", 1)], [("w", 1)], terminate2="a")
        # w2 w1 c1 a2 would be a cycle if T2 counted; it must not.
        schedule = interleave([t2, t1], [0, 1, 1, 0])
        assert is_conflict_serializable(schedule)


class TestRecoverabilityHierarchy:
    def test_dirty_read_commit_before_writer_not_recoverable(self):
        # w1(x) r2(x) c2 c1: T2 read from T1 and committed first.
        t1, t2 = two_txn([("w", 1)], [("r", 1)])
        schedule = interleave([t1, t2], [0, 1, 1, 0])
        assert not is_recoverable(schedule)
        assert not is_avoiding_cascading_aborts(schedule)
        assert not is_strict(schedule)

    def test_dirty_read_commit_after_writer_is_rc_not_aca(self):
        # w1(x) r2(x) c1 c2: recoverable, but the read was dirty.
        t1, t2 = two_txn([("w", 1)], [("r", 1)])
        schedule = interleave([t1, t2], [0, 1, 0, 1])
        assert is_recoverable(schedule)
        assert not is_avoiding_cascading_aborts(schedule)
        assert not is_strict(schedule)

    def test_read_after_commit_is_aca_and_strict(self):
        # w1(x) c1 r2(x) c2.
        t1, t2 = two_txn([("w", 1)], [("r", 1)])
        schedule = Schedule(t1 + t2)
        assert is_recoverable(schedule)
        assert is_avoiding_cascading_aborts(schedule)
        assert is_strict(schedule)

    def test_dirty_overwrite_breaks_strictness_only(self):
        # w1(x) w2(x) c1 c2: no reads-from, so RC and ACA hold; the
        # overwrite of uncommitted data breaks strictness.
        t1, t2 = two_txn([("w", 1)], [("w", 1)])
        schedule = interleave([t1, t2], [0, 1, 0, 1])
        assert is_recoverable(schedule)
        assert is_avoiding_cascading_aborts(schedule)
        assert not is_strict(schedule)

    def test_read_from_aborted_writer_not_recoverable(self):
        # w1(x) r2(x) a1 c2: T2 committed a dirty read from an abort.
        t1, t2 = two_txn([("w", 1)], [("r", 1)], terminate1="a")
        schedule = interleave([t1, t2], [0, 1, 0, 1])
        assert not is_recoverable(schedule)


class TestSS2PLLegality:
    def test_serial_is_legal(self):
        t1, t2 = two_txn([("r", 1), ("w", 2)], [("w", 1)])
        assert is_legal_ss2pl_order(Schedule(t1 + t2))

    def test_conflicting_access_before_termination_is_illegal(self):
        # w1(x) r2(x) c1 c2 — r2 read x while T1 still held its lock.
        t1, t2 = two_txn([("w", 1)], [("r", 1)])
        schedule = interleave([t1, t2], [0, 1, 0, 1])
        assert not is_legal_ss2pl_order(schedule)

    def test_non_conflicting_interleaving_is_legal(self):
        # r1(x) r2(x) c1 c2 — shared locks coexist.
        t1, t2 = two_txn([("r", 1)], [("r", 1)])
        schedule = interleave([t1, t2], [0, 1, 0, 1])
        assert is_legal_ss2pl_order(schedule)

    def test_access_after_termination_is_legal(self):
        t1, t2 = two_txn([("w", 1)], [("w", 1)])
        schedule = interleave([t1, t2], [0, 0, 1, 1])  # w1 c1 w2 c2
        assert is_legal_ss2pl_order(schedule)


class TestScheduleContainer:
    def test_transaction_bookkeeping(self):
        t1, t2 = two_txn([("w", 1)], [("r", 2)], terminate2="")
        schedule = Schedule(t1 + t2)
        assert schedule.transactions == [1, 2]
        assert schedule.committed == {1}
        assert schedule.active == {2}
        assert schedule.of_transaction(2) == t2

    def test_committed_projection(self):
        t1, t2 = two_txn([("w", 1)], [("r", 2)], terminate2="")
        projection = Schedule(t1 + t2).committed_projection()
        assert {r.ta for r in projection} == {1}

    def test_conflict_graph_is_networkx(self):
        t1, t2 = two_txn([("w", 1)], [("w", 1)])
        assert isinstance(conflict_graph(Schedule(t1 + t2)), nx.DiGraph)
