"""HistoryView: incremental lock-footprint tracking."""

from repro.model.history import HistoryView
from repro.model.request import TransactionStatus, make_transaction

from tests.conftest import request


class TestStatusTracking:
    def test_new_transaction_active(self):
        view = HistoryView([request(1, 1, 0, "r", 5)])
        assert view.status(1) is TransactionStatus.ACTIVE
        assert view.is_active(1)

    def test_commit_and_abort(self):
        view = HistoryView()
        view.record(request(1, 1, 0, "w", 5))
        view.record(request(2, 1, 1, "c"))
        view.record(request(3, 2, 0, "w", 6))
        view.record(request(4, 2, 1, "a"))
        assert view.status(1) is TransactionStatus.COMMITTED
        assert view.status(2) is TransactionStatus.ABORTED
        assert view.is_finished(1) and view.is_finished(2)

    def test_unknown_transaction_defaults_active(self):
        assert HistoryView().status(99) is TransactionStatus.ACTIVE


class TestLockFootprints:
    def test_write_locked_objects_exclude_finished(self):
        view = HistoryView()
        view.record(request(1, 1, 0, "w", 5))
        view.record(request(2, 2, 0, "w", 6))
        view.record(request(3, 2, 1, "c"))
        assert view.write_locked_objects() == {5: {1}}

    def test_read_lock_subsumed_by_own_write(self):
        view = HistoryView()
        view.record(request(1, 1, 0, "r", 5))
        view.record(request(2, 1, 1, "w", 5))
        assert view.read_locked_objects() == {}
        assert view.write_locked_objects() == {5: {1}}

    def test_read_locks_shared(self):
        view = HistoryView()
        view.record(request(1, 1, 0, "r", 5))
        view.record(request(2, 2, 0, "r", 5))
        assert view.read_locked_objects() == {5: {1, 2}}


class TestWouldConflict:
    def test_read_vs_foreign_write_lock(self):
        view = HistoryView([request(1, 1, 0, "w", 5)])
        assert view.would_conflict(request(2, 2, 0, "r", 5))

    def test_write_vs_foreign_read_lock(self):
        view = HistoryView([request(1, 1, 0, "r", 5)])
        assert view.would_conflict(request(2, 2, 0, "w", 5))

    def test_read_vs_foreign_read_lock_ok(self):
        view = HistoryView([request(1, 1, 0, "r", 5)])
        assert not view.would_conflict(request(2, 2, 0, "r", 5))

    def test_own_locks_never_conflict(self):
        view = HistoryView([request(1, 1, 0, "w", 5)])
        assert not view.would_conflict(request(2, 1, 1, "w", 5))

    def test_finished_locks_released(self):
        view = HistoryView(
            [request(1, 1, 0, "w", 5), request(2, 1, 1, "c")]
        )
        assert not view.would_conflict(request(3, 2, 0, "w", 5))

    def test_termination_requests_never_conflict(self):
        view = HistoryView([request(1, 1, 0, "w", 5)])
        assert not view.would_conflict(request(2, 2, 0, "c"))


class TestPruning:
    def test_prune_drops_finished_rows(self):
        view = HistoryView()
        for r in make_transaction(1, [("w", 1), ("r", 2)], start_id=1):
            view.record(r)
        view.record(request(10, 2, 0, "w", 3))
        removed = view.prune_finished()
        assert removed == 3
        assert len(view) == 1
        assert view.write_locked_objects() == {3: {2}}

    def test_prune_noop_when_all_active(self):
        view = HistoryView([request(1, 1, 0, "w", 5)])
        assert view.prune_finished() == 0
        assert len(view) == 1
