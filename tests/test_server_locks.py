"""Lock manager: grants, queues, upgrades, deadlock detection."""

from repro.server.locks import LockManager, LockMode


class TestBasicGrants:
    def test_shared_locks_coexist(self):
        locks = LockManager()
        assert locks.acquire(1, 10, LockMode.S)
        assert locks.acquire(2, 10, LockMode.S)
        assert locks.waiting_count == 0

    def test_exclusive_blocks_shared(self):
        locks = LockManager()
        assert locks.acquire(1, 10, LockMode.X)
        assert not locks.acquire(2, 10, LockMode.S)
        assert locks.is_waiting(2)

    def test_shared_blocks_exclusive(self):
        locks = LockManager()
        assert locks.acquire(1, 10, LockMode.S)
        assert not locks.acquire(2, 10, LockMode.X)

    def test_reentrant_acquisition(self):
        locks = LockManager()
        assert locks.acquire(1, 10, LockMode.X)
        assert locks.acquire(1, 10, LockMode.X)
        assert locks.acquire(1, 10, LockMode.S)  # X subsumes S

    def test_different_objects_independent(self):
        locks = LockManager()
        assert locks.acquire(1, 10, LockMode.X)
        assert locks.acquire(2, 11, LockMode.X)


class TestUpgrade:
    def test_sole_holder_upgrades_immediately(self):
        locks = LockManager()
        assert locks.acquire(1, 10, LockMode.S)
        assert locks.acquire(1, 10, LockMode.X)
        assert locks.holds(1, 10) is LockMode.X

    def test_contended_upgrade_waits(self):
        locks = LockManager()
        assert locks.acquire(1, 10, LockMode.S)
        assert locks.acquire(2, 10, LockMode.S)
        assert not locks.acquire(1, 10, LockMode.X)
        assert locks.is_waiting(1)

    def test_upgrade_granted_on_release(self):
        locks = LockManager()
        locks.acquire(1, 10, LockMode.S)
        locks.acquire(2, 10, LockMode.S)
        locks.acquire(1, 10, LockMode.X)  # queued upgrade
        grants = locks.release_all(2)
        assert [(g.ta, g.obj, g.mode) for g in grants] == [
            (1, 10, LockMode.X)
        ]


class TestReleaseAndQueue:
    def test_fifo_grant_order(self):
        locks = LockManager()
        locks.acquire(1, 10, LockMode.X)
        locks.acquire(2, 10, LockMode.X)
        locks.acquire(3, 10, LockMode.X)
        grants = locks.release_all(1)
        assert [g.ta for g in grants] == [2]
        grants = locks.release_all(2)
        assert [g.ta for g in grants] == [3]

    def test_batched_shared_grants(self):
        locks = LockManager()
        locks.acquire(1, 10, LockMode.X)
        locks.acquire(2, 10, LockMode.S)
        locks.acquire(3, 10, LockMode.S)
        grants = locks.release_all(1)
        assert sorted(g.ta for g in grants) == [2, 3]

    def test_writer_not_starved_behind_reader_queue(self):
        locks = LockManager()
        locks.acquire(1, 10, LockMode.X)
        locks.acquire(2, 10, LockMode.X)  # queued writer
        # A reader arriving later must queue behind the writer.
        assert not locks.acquire(3, 10, LockMode.S)
        grants = locks.release_all(1)
        assert [g.ta for g in grants] == [2]

    def test_release_removes_queued_request(self):
        locks = LockManager()
        locks.acquire(1, 10, LockMode.X)
        locks.acquire(2, 10, LockMode.X)
        locks.release_all(2)  # aborting the waiter
        assert not locks.is_waiting(2)
        grants = locks.release_all(1)
        assert grants == []

    def test_locks_held_count(self):
        locks = LockManager()
        locks.acquire(1, 10, LockMode.S)
        locks.acquire(1, 11, LockMode.X)
        assert locks.locks_held(1) == 2
        locks.release_all(1)
        assert locks.locks_held(1) == 0


class TestDeadlockDetection:
    def test_two_cycle(self):
        locks = LockManager()
        locks.acquire(1, 10, LockMode.X)
        locks.acquire(2, 11, LockMode.X)
        assert not locks.acquire(1, 11, LockMode.X)
        assert locks.find_deadlock(1) is None  # no cycle yet
        assert not locks.acquire(2, 10, LockMode.X)
        cycle = locks.find_deadlock(2)
        assert cycle is not None
        assert set(cycle) == {1, 2}

    def test_three_cycle(self):
        locks = LockManager()
        for ta, obj in ((1, 10), (2, 11), (3, 12)):
            locks.acquire(ta, obj, LockMode.X)
        locks.acquire(1, 11, LockMode.X)
        locks.acquire(2, 12, LockMode.X)
        assert locks.find_deadlock(2) is None
        locks.acquire(3, 10, LockMode.X)
        cycle = locks.find_deadlock(3)
        assert cycle is not None and set(cycle) == {1, 2, 3}

    def test_chain_without_cycle(self):
        locks = LockManager()
        locks.acquire(1, 10, LockMode.X)
        locks.acquire(2, 10, LockMode.X)
        locks.acquire(3, 10, LockMode.X)
        assert locks.find_deadlock(3) is None

    def test_waits_for_includes_queued_ahead(self):
        locks = LockManager()
        locks.acquire(1, 10, LockMode.X)
        locks.acquire(2, 10, LockMode.X)
        locks.acquire(3, 10, LockMode.S)
        assert 2 in locks.waits_for(3)
        assert 1 in locks.waits_for(3)

    def test_abort_breaks_cycle(self):
        locks = LockManager()
        locks.acquire(1, 10, LockMode.X)
        locks.acquire(2, 11, LockMode.X)
        locks.acquire(1, 11, LockMode.X)
        locks.acquire(2, 10, LockMode.X)
        assert locks.find_deadlock(1)
        grants = locks.release_all(2)  # abort T2
        assert [g.ta for g in grants] == [1]
        assert locks.find_deadlock(1) is None
