"""Physical operators against hand-computed results."""

import pytest

from repro.relalg import operators as ops
from repro.relalg.expressions import col, lit, or_
from repro.relalg.relation import Relation, rows_equal_as_bags
from repro.relalg.schema import Column, Schema


def rel(qualifier, names, rows):
    return Relation(Schema([Column(n, qualifier) for n in names]), rows)


@pytest.fixture
def people():
    return rel("p", ["id", "dept", "salary"],
               [(1, "db", 100), (2, "db", 120), (3, "os", 90), (4, "pl", 90)])


@pytest.fixture
def depts():
    return rel("d", ["dept", "floor"], [("db", 1), ("os", 2)])


class TestUnary:
    def test_select(self, people):
        out = ops.select(people, col("dept") == lit("db"))
        assert [r[0] for r in out.rows] == [1, 2]

    def test_project(self, people):
        out = ops.project(people, ["salary", "id"])
        assert out.schema.names == ("salary", "id")
        assert out.rows[0] == (100, 1)

    def test_project_keeps_duplicates(self, people):
        out = ops.project(people, ["dept"])
        assert len(out.rows) == 4

    def test_extend(self, people):
        out = ops.extend(people, "double", col("salary") * lit(2))
        assert out.schema.names[-1] == "double"
        assert out.rows[0][-1] == 200

    def test_rename(self, people):
        out = ops.rename(people, "x")
        assert out.schema.resolve("id", "x") == 0

    def test_distinct_preserves_first_seen_order(self):
        r = rel(None, ["a"], [(2,), (1,), (2,), (3,), (1,)])
        assert ops.distinct(r).rows == [(2,), (1,), (3,)]

    def test_order_by_multi_key(self, people):
        out = ops.order_by(people, [("salary", False), ("id", True)])
        assert [r[0] for r in out.rows] == [4, 3, 1, 2]

    def test_order_by_descending(self, people):
        out = ops.order_by(people, [("salary", True)])
        assert out.rows[0][2] == 120

    def test_limit(self, people):
        assert len(ops.limit(people, 2)) == 2


class TestJoins:
    def test_hash_join(self, people, depts):
        out = ops.hash_join(people, depts, ["p.dept"], ["d.dept"])
        assert len(out) == 3  # pl has no dept row
        assert out.schema.arity == 5

    def test_hash_join_equals_nested_loop(self, people, depts):
        predicate = col("p.dept") == col("d.dept")
        nested = ops.nested_loop_join(people, depts, predicate)
        hashed = ops.hash_join(people, depts, ["p.dept"], ["d.dept"])
        assert rows_equal_as_bags(nested.rows, hashed.rows)

    def test_hash_join_residual(self, people, depts):
        out = ops.hash_join(
            people, depts, ["p.dept"], ["d.dept"],
            residual=col("salary") > lit(100),
        )
        assert [r[0] for r in out.rows] == [2]

    def test_left_outer_join_pads_none(self, people, depts):
        out = ops.left_outer_join(people, depts, ["p.dept"], ["d.dept"])
        assert len(out) == 4
        unmatched = [r for r in out.rows if r[0] == 4][0]
        assert unmatched[3] is None and unmatched[4] is None

    def test_semi_join(self, people, depts):
        out = ops.semi_join(people, depts, ["p.dept"], ["d.dept"])
        assert [r[0] for r in out.rows] == [1, 2, 3]
        assert out.schema == people.schema

    def test_anti_join(self, people, depts):
        out = ops.anti_join(people, depts, ["p.dept"], ["d.dept"])
        assert [r[0] for r in out.rows] == [4]

    def test_anti_join_predicate_form(self, people, depts):
        out = ops.anti_join_predicate(
            people, depts, col("p.dept") == col("d.dept")
        )
        assert [r[0] for r in out.rows] == [4]

    def test_cross_join_cardinality(self, people, depts):
        assert len(ops.cross_join(people, depts)) == 8


class TestSetOps:
    def test_union_all_and_union(self):
        a = rel(None, ["x"], [(1,), (2,)])
        b = rel(None, ["x"], [(2,), (3,)])
        assert len(ops.union_all(a, b)) == 4
        assert sorted(ops.union(a, b).rows) == [(1,), (2,), (3,)]

    def test_except_set_semantics(self):
        a = rel(None, ["x"], [(1,), (1,), (2,), (3,)])
        b = rel(None, ["x"], [(2,)])
        # SQL EXCEPT: distinct result, all copies of matches removed.
        assert sorted(ops.except_(a, b).rows) == [(1,), (3,)]

    def test_except_all_bag_semantics(self):
        a = rel(None, ["x"], [(1,), (1,), (2,)])
        b = rel(None, ["x"], [(1,)])
        assert sorted(ops.except_all(a, b).rows) == [(1,), (2,)]

    def test_intersect(self):
        a = rel(None, ["x"], [(1,), (2,), (2,)])
        b = rel(None, ["x"], [(2,), (3,)])
        assert ops.intersect(a, b).rows == [(2,)]

    def test_arity_mismatch_rejected(self):
        a = rel(None, ["x"], [(1,)])
        b = rel(None, ["x", "y"], [(1, 2)])
        with pytest.raises(ValueError, match="arity"):
            ops.union_all(a, b)


class TestAggregate:
    def test_group_by_count_sum(self, people):
        out = ops.aggregate(
            people, ["dept"],
            [("count", "*", "n"), ("sum", "salary", "total")],
        )
        as_dict = {row[0]: (row[1], row[2]) for row in out.rows}
        assert as_dict == {"db": (2, 220), "os": (1, 90), "pl": (1, 90)}

    def test_min_max_avg(self, people):
        out = ops.aggregate(
            people, [],
            [("min", "salary", "lo"), ("max", "salary", "hi"),
             ("avg", "salary", "mean")],
        )
        assert out.rows == [(90, 120, 100.0)]

    def test_global_aggregate_on_empty_input(self):
        empty = rel(None, ["x"], [])
        out = ops.aggregate(empty, [], [("count", "*", "n")])
        assert out.rows == [(0,)]

    def test_grouped_aggregate_on_empty_input(self):
        empty = rel(None, ["x"], [])
        out = ops.aggregate(empty, ["x"], [("count", "*", "n")])
        assert out.rows == []

    def test_unknown_aggregate_rejected(self, people):
        with pytest.raises(ValueError, match="unknown aggregate"):
            ops.aggregate(people, [], [("median", "salary", "m")])


class TestSelectComposition:
    def test_or_predicate(self, people):
        out = ops.select(
            people,
            or_(col("dept") == lit("os"), col("salary") > lit(110)),
        )
        assert [r[0] for r in out.rows] == [2, 3]
