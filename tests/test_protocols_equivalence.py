"""Cross-backend equivalence: five SS2PL implementations, one semantics.

The paper's central artifact is the SS2PL-as-query formulation.  We
ship it five ways (relalg/Listing 1, Datalog, SDL, sqlite3 SQL, and the
hand-coded imperative baseline); on every random instance all five must
qualify exactly the same requests.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.imperative import ImperativeSS2PLScheduler
from repro.lang.protocol import SDLProtocol, SDL_SS2PL
from repro.model.history import HistoryView
from repro.model.request import Request
from repro.protocols.ss2pl import PaperListing1Protocol
from repro.protocols.ss2pl_datalog import SS2PLDatalogProtocol
from repro.protocols.ss2pl_sql import SS2PLSqlProtocol
from repro.protocols.ss2pl_sqlfront import SqlFrontendSS2PLProtocol

from tests.conftest import (
    empty_history_table,
    empty_requests_table,
    random_scheduling_instance,
)

BACKENDS = [
    PaperListing1Protocol(),
    SS2PLDatalogProtocol(),
    SDLProtocol(SDL_SS2PL),
    SS2PLSqlProtocol(),
    SqlFrontendSS2PLProtocol(),
    ImperativeSS2PLScheduler(),
]


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_all_backends_agree(self, seed):
        rng = random.Random(seed)
        requests, history = random_scheduling_instance(
            rng,
            pending=rng.randint(1, 25),
            history_transactions=rng.randint(1, 15),
            objects=rng.randint(5, 40),
        )
        results = {
            p.name: sorted(r.id for r in p.schedule(requests, history).qualified)
            for p in BACKENDS
        }
        reference = results[BACKENDS[0].name]
        for name, ids in results.items():
            assert ids == reference, f"{name} diverged: {ids} vs {reference}"

    @pytest.mark.parametrize("seed", range(6))
    def test_multi_op_pending_transactions(self, seed):
        rng = random.Random(1000 + seed)
        requests, history = random_scheduling_instance(
            rng, pending=8, history_transactions=6, objects=10,
            pending_ops_per_txn=3,
        )
        reference = None
        for protocol in BACKENDS:
            ids = sorted(
                r.id for r in protocol.schedule(requests, history).qualified
            )
            if reference is None:
                reference = ids
            assert ids == reference, protocol.name


@st.composite
def instance(draw):
    objects = draw(st.integers(2, 8))
    requests = empty_requests_table()
    history = empty_history_table()
    rid = 1
    for ta in range(1, draw(st.integers(0, 5)) + 1):
        for intrata in range(draw(st.integers(1, 3))):
            requests_row = (
                rid, ta + 100, intrata,
                draw(st.sampled_from(["r", "w"])),
                draw(st.integers(0, objects - 1)),
            )
            requests.insert(requests_row)
            rid += 1
    for ta in range(1, draw(st.integers(0, 4)) + 1):
        count = draw(st.integers(1, 3))
        for intrata in range(count):
            history.insert(
                (rid, ta, intrata, draw(st.sampled_from(["r", "w"])),
                 draw(st.integers(0, objects - 1)))
            )
            rid += 1
        if draw(st.booleans()):
            history.insert((rid, ta, count, draw(st.sampled_from(["c", "a"])), -1))
            rid += 1
    return requests, history


class TestQualifiedSetInvariants:
    """Semantic invariants of any correct SS2PL qualification."""

    @given(instance())
    @settings(max_examples=60, deadline=None)
    def test_qualified_never_conflicts_with_held_locks(self, tables):
        requests, history = tables
        view = HistoryView(Request.from_row(row) for row in history.rows)
        decision = PaperListing1Protocol().schedule(requests, history)
        for qualified in decision.qualified:
            assert not view.would_conflict(qualified), (
                f"{qualified} conflicts with history locks"
            )

    @given(instance())
    @settings(max_examples=60, deadline=None)
    def test_qualified_set_is_internally_conflict_free(self, tables):
        requests, history = tables
        decision = PaperListing1Protocol().schedule(requests, history)
        qualified = decision.qualified
        for i, a in enumerate(qualified):
            for b in qualified[i + 1:]:
                assert not a.conflicts_with(b), f"{a} vs {b}"

    @given(instance())
    @settings(max_examples=60, deadline=None)
    def test_backends_agree_property(self, tables):
        requests, history = tables
        reference = sorted(
            r.id
            for r in PaperListing1Protocol().schedule(requests, history).qualified
        )
        for protocol in (SS2PLDatalogProtocol(), ImperativeSS2PLScheduler()):
            ids = sorted(
                r.id for r in protocol.schedule(requests, history).qualified
            )
            assert ids == reference, protocol.name
