"""FCFS, C2PL, relaxed, SLA, EDF, oversell, adaptive protocols."""

import pytest

from repro.core.stores import HistoryStore, PendingStore
from repro.model.request import Operation, Request, RequestAttributes
from repro.protocols.adaptive import AdaptiveConsistencyProtocol
from repro.protocols.app_consistency import BoundedOversellProtocol
from repro.protocols.base import PROTOCOL_REGISTRY
from repro.protocols.c2pl import ConservativeTwoPLProtocol
from repro.protocols.fcfs import FCFSProtocol
from repro.protocols.relaxed import ReadCommittedProtocol
from repro.protocols.sla import (
    EarliestDeadlineFirstProtocol,
    SLAOrderingProtocol,
)
from repro.protocols.ss2pl import SS2PLRelalgProtocol

from tests.conftest import (
    empty_history_table,
    empty_requests_table,
    request,
)


def tables(pending, history=()):
    requests_table = empty_requests_table()
    history_table = empty_history_table()
    for r in pending:
        requests_table.insert(r.as_row())
    for r in history:
        history_table.insert(r.as_row())
    return requests_table, history_table


class TestFCFS:
    def test_admits_everything_in_id_order(self):
        requests_table, history_table = tables(
            [request(3, 2, 0, "w", 5), request(1, 1, 0, "w", 5)]
        )
        decision = FCFSProtocol().schedule(requests_table, history_table)
        assert [r.id for r in decision.qualified] == [1, 3]


class TestC2PL:
    def test_new_transaction_with_conflicting_claim_denied_entirely(self):
        # T2 wants objects 5 and 6; 5 is write-locked -> neither admitted.
        history = [request(1, 1, 0, "w", 5)]
        pending = [request(2, 2, 0, "r", 5), request(3, 2, 1, "w", 6)]
        requests_table, history_table = tables(pending, history)
        decision = ConservativeTwoPLProtocol().schedule(
            requests_table, history_table
        )
        assert decision.qualified == []

    def test_admitted_transaction_keeps_running(self):
        # T1 is already admitted (has history, not finished); its next
        # request qualifies even against another claim.
        history = [request(1, 1, 0, "w", 5)]
        pending = [request(2, 1, 1, "w", 6)]
        requests_table, history_table = tables(pending, history)
        decision = ConservativeTwoPLProtocol().schedule(
            requests_table, history_table
        )
        assert [r.id for r in decision.qualified] == [2]

    def test_claim_conflict_between_new_transactions(self):
        pending = [
            request(1, 1, 0, "w", 5),
            request(2, 2, 0, "w", 5),
        ]
        requests_table, history_table = tables(pending)
        decision = ConservativeTwoPLProtocol().schedule(
            requests_table, history_table
        )
        # Earlier TA wins the claim; later one waits entirely.
        assert [r.id for r in decision.qualified] == [1]

    def test_disjoint_claims_coexist(self):
        pending = [request(1, 1, 0, "w", 5), request(2, 2, 0, "w", 6)]
        requests_table, history_table = tables(pending)
        decision = ConservativeTwoPLProtocol().schedule(
            requests_table, history_table
        )
        assert [r.id for r in decision.qualified] == [1, 2]


class TestReadCommitted:
    def test_reads_never_blocked(self):
        history = [request(1, 1, 0, "w", 5)]
        requests_table, history_table = tables(
            [request(2, 2, 0, "r", 5)], history
        )
        decision = ReadCommittedProtocol().schedule(
            requests_table, history_table
        )
        assert [r.id for r in decision.qualified] == [2]

    def test_write_write_still_blocks(self):
        history = [request(1, 1, 0, "w", 5)]
        requests_table, history_table = tables(
            [request(2, 2, 0, "w", 5)], history
        )
        decision = ReadCommittedProtocol().schedule(
            requests_table, history_table
        )
        assert decision.qualified == []

    def test_intra_batch_write_write(self):
        requests_table, history_table = tables(
            [request(1, 1, 0, "w", 5), request(2, 2, 0, "w", 5)]
        )
        decision = ReadCommittedProtocol().schedule(
            requests_table, history_table
        )
        assert [r.id for r in decision.qualified] == [1]


class TestSLAOrdering:
    def _pending_with_priorities(self):
        store = PendingStore()
        store.insert_batch(
            [
                Request(1, 1, 0, Operation.READ, 5,
                        attrs=RequestAttributes(priority=1, sla_class="free")),
                Request(2, 2, 0, Operation.READ, 6,
                        attrs=RequestAttributes(priority=9, sla_class="premium")),
                Request(3, 3, 0, Operation.READ, 7,
                        attrs=RequestAttributes(priority=1, sla_class="free")),
            ]
        )
        return store

    def test_priority_order(self):
        store = self._pending_with_priorities()
        protocol = SLAOrderingProtocol(FCFSProtocol())
        decision = protocol.schedule(store.table, HistoryStore().table)
        assert [r.id for r in decision.qualified] == [2, 1, 3]

    def test_reserve_share_caps_low_tier(self):
        store = self._pending_with_priorities()
        protocol = SLAOrderingProtocol(FCFSProtocol(), reserve_share=0.4)
        decision = protocol.schedule(store.table, HistoryStore().table)
        # cap = max(1, 3*0.4) = 1 low-tier request per batch.
        assert [r.id for r in decision.qualified] == [2, 1]

    def test_invalid_reserve_share(self):
        with pytest.raises(ValueError):
            SLAOrderingProtocol(FCFSProtocol(), reserve_share=0.0)

    def test_consistency_preserved_under_sla(self):
        store = PendingStore()
        store.insert_batch(
            [
                Request(1, 1, 0, Operation.WRITE, 5,
                        attrs=RequestAttributes(priority=1)),
                Request(2, 2, 0, Operation.WRITE, 5,
                        attrs=RequestAttributes(priority=9)),
            ]
        )
        protocol = SLAOrderingProtocol(SS2PLRelalgProtocol())
        decision = protocol.schedule(store.table, HistoryStore().table)
        # The SLA layer only reorders what the inner protocol allowed:
        # T2's write still conflicts and must not be smuggled in.
        assert [r.id for r in decision.qualified] == [1]


class TestEDF:
    def test_deadline_order(self):
        store = PendingStore()
        store.insert_batch(
            [
                Request(1, 1, 0, Operation.READ, 5,
                        attrs=RequestAttributes(deadline=9.0)),
                Request(2, 2, 0, Operation.READ, 6,
                        attrs=RequestAttributes(deadline=1.0)),
                Request(3, 3, 0, Operation.READ, 7),  # no deadline: last
            ]
        )
        protocol = EarliestDeadlineFirstProtocol(FCFSProtocol())
        decision = protocol.schedule(store.table, HistoryStore().table)
        assert [r.id for r in decision.qualified] == [2, 1, 3]


class TestBoundedOversell:
    def test_allowance_enforced_against_history(self):
        history = [
            request(1, 1, 0, "w", 5),
            request(2, 2, 0, "w", 5),
        ]
        requests_table, history_table = tables(
            [request(3, 3, 0, "w", 5)], history
        )
        decision = BoundedOversellProtocol(2).schedule(
            requests_table, history_table
        )
        assert decision.qualified == []
        assert 3 in decision.denials

    def test_intra_batch_budget(self):
        requests_table, history_table = tables(
            [request(i, i, 0, "w", 5) for i in range(1, 6)]
        )
        decision = BoundedOversellProtocol(3).schedule(
            requests_table, history_table
        )
        assert [r.id for r in decision.qualified] == [1, 2, 3]
        assert set(decision.denials) == {4, 5}

    def test_reads_unaffected(self):
        history = [request(i, i, 0, "w", 5) for i in range(1, 4)]
        requests_table, history_table = tables(
            [request(10, 10, 0, "r", 5)], history
        )
        decision = BoundedOversellProtocol(3).schedule(
            requests_table, history_table
        )
        assert [r.id for r in decision.qualified] == [10]

    def test_commit_frees_slot(self):
        history = [
            request(1, 1, 0, "w", 5),
            request(2, 2, 0, "w", 5),
            request(3, 1, 1, "c"),
        ]
        requests_table, history_table = tables(
            [request(4, 3, 0, "w", 5)], history
        )
        decision = BoundedOversellProtocol(2).schedule(
            requests_table, history_table
        )
        assert [r.id for r in decision.qualified] == [4]

    def test_invalid_allowance(self):
        with pytest.raises(ValueError):
            BoundedOversellProtocol(0)


class TestAdaptive:
    def _protocol(self, high=4, low=2):
        return AdaptiveConsistencyProtocol(
            strict=SS2PLRelalgProtocol(),
            relaxed=ReadCommittedProtocol(),
            high_watermark=high,
            low_watermark=low,
        )

    def test_strict_below_watermark(self):
        protocol = self._protocol()
        history = [request(1, 1, 0, "w", 5)]
        requests_table, history_table = tables(
            [request(2, 2, 0, "r", 5)], history
        )
        decision = protocol.schedule(requests_table, history_table)
        assert decision.qualified == []  # strict arm blocks the read
        assert protocol.active_arm is protocol.strict

    def test_degrades_above_watermark(self):
        protocol = self._protocol(high=2, low=1)
        history = [request(1, 1, 0, "w", 5)]
        pending = [request(i + 10, i + 10, 0, "r", 5) for i in range(3)]
        requests_table, history_table = tables(pending, history)
        decision = protocol.schedule(requests_table, history_table)
        assert len(decision.qualified) == 3  # relaxed arm admits reads
        assert protocol.active_arm is protocol.relaxed
        assert protocol.switches == 1

    def test_hysteresis(self):
        protocol = self._protocol(high=3, low=2)
        # Degrade at 4 pending.
        requests_table, history_table = tables(
            [request(i, i, 0, "r", i) for i in range(1, 5)]
        )
        protocol.schedule(requests_table, history_table)
        assert protocol.active_arm is protocol.relaxed
        # 3 pending is between the watermarks: stays relaxed.
        requests_table, __ = tables(
            [request(i, i, 0, "r", i) for i in range(1, 4)]
        )
        protocol.schedule(requests_table, history_table)
        assert protocol.active_arm is protocol.relaxed
        # 1 pending: back to strict.
        requests_table, __ = tables([request(1, 1, 0, "r", 1)])
        protocol.schedule(requests_table, history_table)
        assert protocol.active_arm is protocol.strict
        assert protocol.switches == 2

    def test_reset(self):
        protocol = self._protocol(high=1, low=0)
        with pytest.raises(ValueError):
            AdaptiveConsistencyProtocol(
                SS2PLRelalgProtocol(), ReadCommittedProtocol(),
                high_watermark=2, low_watermark=2,
            )
        requests_table, history_table = tables(
            [request(1, 1, 0, "r", 1), request(2, 2, 0, "r", 2)]
        )
        protocol.schedule(requests_table, history_table)
        assert protocol.switches == 1
        protocol.reset()
        assert protocol.switches == 0
        assert protocol.active_arm is protocol.strict


class TestRegistry:
    def test_core_protocols_registered(self):
        for name in ("ss2pl", "ss2pl-listing1", "ss2pl-datalog", "ss2pl-sql",
                     "fcfs", "c2pl", "read-committed"):
            assert name in PROTOCOL_REGISTRY
            protocol = PROTOCOL_REGISTRY[name]()
            assert protocol.name == name
