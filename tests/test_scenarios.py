"""The deterministic scenario subsystem: registry, runner, record/replay."""

import pytest

from repro.core.triggers import FillLevelTrigger, HybridTrigger, TimeLapseTrigger
from repro.scenarios import (
    SCENARIO_REGISTRY,
    ScenarioCell,
    ScenarioSpec,
    TriggerSpec,
    get_scenario,
    record_scenario,
    render_scenario_comparison,
    render_scenario_report,
    replay_scenario,
    run_scenario,
    scenario_names,
    trigger_spec_of,
)
from repro.workload.spec import WorkloadSpec
from repro.workload.traces import (
    Trace,
    canonical_entries,
    read_trace_file,
    write_trace_file,
)

QUICK = dict(duration=0.5, clients=8)


class TestTriggerSpec:
    def test_builds_each_kind(self):
        assert isinstance(TriggerSpec("time", interval=0.1).build(), TimeLapseTrigger)
        assert isinstance(TriggerSpec("fill", threshold=5).build(), FillLevelTrigger)
        assert isinstance(
            TriggerSpec("hybrid", interval=0.1, threshold=5).build(), HybridTrigger
        )

    def test_label_matches_policy_name(self):
        spec = TriggerSpec("hybrid", interval=0.02, threshold=20)
        assert spec.label == "hybrid(0.02s|20)"

    def test_validation(self):
        with pytest.raises(ValueError):
            TriggerSpec("nope")
        with pytest.raises(ValueError):
            TriggerSpec("time")
        with pytest.raises(ValueError):
            TriggerSpec("hybrid", interval=0.1)

    def test_round_trip_from_policy(self):
        for policy in (
            TimeLapseTrigger(0.05),
            FillLevelTrigger(7),
            HybridTrigger(0.1, 3),
        ):
            assert trigger_spec_of(policy).label == policy.name
        spec = TriggerSpec("fill", threshold=2)
        assert trigger_spec_of(spec) is spec
        with pytest.raises(TypeError):
            trigger_spec_of(object())


class TestRegistry:
    def test_at_least_six_scenarios_registered(self):
        assert len(SCENARIO_REGISTRY) >= 6

    def test_required_scenarios_present(self):
        names = scenario_names()
        for required in (
            "smoke",
            "zipf-hotspot",
            "bursty-arrivals",
            "mixed-sla",
            "trigger-sweep",
            "matrix-sweep",
        ):
            assert required in names

    def test_unknown_scenario_names_choices(self):
        with pytest.raises(KeyError, match="registered:"):
            get_scenario("does-not-exist")

    def test_spec_validation(self):
        workload = WorkloadSpec(reads_per_txn=1, writes_per_txn=1, table_rows=10)
        cell = ScenarioCell(label="a")
        with pytest.raises(ValueError, match="at least one cell"):
            ScenarioSpec("x", "d", workload, cells=())
        with pytest.raises(ValueError, match="duplicate cell labels"):
            ScenarioSpec("x", "d", workload, cells=(cell, cell))
        with pytest.raises(ValueError, match="population"):
            ScenarioSpec("x", "d", workload, cells=(cell,), population="vip")
        with pytest.raises(ValueError, match="burst"):
            ScenarioSpec("x", "d", workload, cells=(cell,), burst_size=3)

    def test_burst_start_delays(self):
        spec = get_scenario("bursty-arrivals")
        assert spec.start_delay(0) == 0.0
        assert spec.start_delay(9) == 0.0
        assert spec.start_delay(10) == pytest.approx(0.5)
        assert spec.start_delay(25) == pytest.approx(1.0)


class TestRunner:
    def test_reports_are_byte_identical_across_invocations(self):
        spec = get_scenario("smoke")
        first = render_scenario_report(run_scenario(spec, **QUICK))
        second = render_scenario_report(run_scenario(spec, **QUICK))
        assert first == second

    def test_backend_override_keeps_dispatches_and_reports_deltas(self):
        # `--backend compiled-delta` must change only the engine: the
        # dispatch log stays byte-identical to the default run, and the
        # report gains the deterministic delta-maintenance table.
        spec = get_scenario("smoke")
        base = run_scenario(spec, record=True, **QUICK)
        delta = run_scenario(
            spec, record=True, backend="compiled-delta", **QUICK
        )
        assert canonical_entries_of(base) == canonical_entries_of(delta)
        report = render_scenario_report(delta)
        assert "delta maintenance" in report
        assert "delta maintenance" not in render_scenario_report(base)
        stats = delta.cells[0].result.delta_maintenance
        assert stats["steps"] > 0 and stats["rebuilds"] == 1
        # Deterministic counts: a re-run renders the identical report.
        again = run_scenario(spec, backend="compiled-delta", **QUICK)
        assert render_scenario_report(again) == report

    def test_recorded_backend_header_round_trips_through_replay(
        self, tmp_path
    ):
        path = tmp_path / "delta.trace"
        record_scenario(
            get_scenario("smoke"), path, backend="compiled-delta", **QUICK
        )
        outcome = replay_scenario(path)
        assert outcome.matches

    def test_seed_changes_the_run(self):
        spec = get_scenario("smoke")
        base = run_scenario(spec, seed=1, **QUICK)
        other = run_scenario(spec, seed=2, **QUICK)
        assert (
            canonical_entries_of(base) != canonical_entries_of(other)
        )

    def test_sla_population_produces_tiers(self):
        outcome = run_scenario(get_scenario("mixed-sla"), **QUICK)
        tiers = set()
        for entry in outcome.cells:
            tiers.update(entry.result.response_times)
        assert {"premium", "free"} <= tiers
        assert "per-tier response times" in render_scenario_report(outcome)

    def test_trigger_sweep_differentiates_step_counts(self):
        outcome = run_scenario(
            get_scenario("trigger-sweep"), duration=1.0, clients=16
        )
        runs = {
            entry.cell.label: entry.result.scheduler_runs
            for entry in outcome.cells
        }
        # The pre-fix scheduler busy-polled blocked pending sets, making
        # every policy step at the same watchdog pace; post-fix the
        # policies must disagree widely.
        assert len(set(runs.values())) >= 4
        assert runs["time(0.005s)"] > 2 * runs["time(0.1s)"]

    def test_bursty_arrivals_ramp_load(self):
        outcome = run_scenario(get_scenario("bursty-arrivals"), duration=1.2)
        hybrid = outcome.cell("hybrid").result
        # Only the first wave is active at t=0; all 40 clients by t=1.5.
        assert hybrid.completed_statements > 0

    def test_comparison_report_includes_all(self):
        smoke = run_scenario(get_scenario("smoke"), **QUICK)
        table = render_scenario_comparison([smoke, smoke])
        assert table.count("smoke") >= 2

    def test_adaptive_cell_builds_wrapper(self):
        outcome = run_scenario(
            get_scenario("adaptive-load-step"), duration=0.3, clients=6
        )
        adaptive = outcome.cell("adaptive (strict<->relaxed)").protocol
        assert adaptive.name.startswith("adaptive(")

    def test_matrix_backends_agree_on_committed_work(self):
        outcome = run_scenario(
            get_scenario("matrix-sweep"), duration=0.5, clients=10
        )
        stmts = {
            entry.cell.label: entry.result.completed_statements
            for entry in outcome.cells
            if entry.cell.label.startswith("ss2pl/")
            and entry.cell.label.endswith("/hybrid")
        }
        assert len(set(stmts.values())) == 1, stmts


def canonical_entries_of(outcome) -> list:
    """Cheap deterministic signature of a scenario run."""
    return [
        (
            entry.cell.label,
            entry.result.completed_statements,
            tuple(entry.result.batch_sizes),
        )
        for entry in outcome.cells
    ]


class TestTraceFiles:
    def test_write_read_round_trip(self, tmp_path):
        from tests.conftest import request

        trace = Trace()
        trace.record(0.5, request(1, 1, 0, "r", 7))
        trace.record(0.75, request(2, 1, 1, "c"))
        path = tmp_path / "t.trace"
        count = write_trace_file(path, [("cell-a", trace)], {"scenario": "x"})
        assert count == 2
        header, traces = read_trace_file(path)
        assert header["scenario"] == "x"
        [(label, loaded)] = traces
        assert label == "cell-a"
        assert canonical_entries(loaded) == canonical_entries(trace)

    def test_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a repro-trace"):
            read_trace_file(path)
        empty = tmp_path / "empty.trace"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_trace_file(empty)


class TestRecordReplay:
    def test_replay_reproduces_recording(self, tmp_path):
        path = tmp_path / "smoke.trace"
        record_scenario(get_scenario("smoke"), path)
        outcome = replay_scenario(path)
        assert outcome.matches, outcome.mismatch
        assert outcome.entries > 0

    def test_recording_is_byte_identical(self, tmp_path):
        a, b = tmp_path / "a.trace", tmp_path / "b.trace"
        record_scenario(get_scenario("smoke"), a)
        record_scenario(get_scenario("smoke"), b)
        assert a.read_bytes() == b.read_bytes()

    def test_replay_detects_tampering(self, tmp_path):
        import json

        path = tmp_path / "smoke.trace"
        record_scenario(get_scenario("smoke"), path)
        lines = path.read_text().splitlines()
        # Flip the first entry's object number.
        entry = json.loads(lines[1])
        entry["obj"] = entry["obj"] + 1 if entry["obj"] >= 0 else 0
        lines[1] = json.dumps(entry, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        outcome = replay_scenario(path)
        assert not outcome.matches
        assert "divergence" in outcome.mismatch or "entries" in outcome.mismatch

    def test_replay_unknown_scenario_fails_cleanly(self, tmp_path):
        path = tmp_path / "x.trace"
        write_trace_file(
            path, [], {"scenario": "gone", "seed": 1, "duration": 1, "clients": 1}
        )
        with pytest.raises(KeyError, match="unknown scenario"):
            replay_scenario(path)


class TestScenarioCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "trigger-sweep" in out

    def test_run_and_replay(self, capsys, tmp_path):
        from repro.cli import main

        path = str(tmp_path / "smoke.trace")
        assert main(["scenario", "run", "smoke", "--record", path]) == 0
        assert "trace recorded" in capsys.readouterr().out
        assert main(["scenario", "replay", path]) == 0
        assert "replay OK" in capsys.readouterr().out

    def test_run_unknown_scenario(self, capsys):
        from repro.cli import main

        assert main(["scenario", "run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_invalid_overrides_exit_cleanly(self, capsys):
        from repro.cli import main

        assert main(["scenario", "run", "smoke", "--clients", "0"]) == 2
        assert "invalid scenario parameters" in capsys.readouterr().err
        assert main(["scenario", "run", "smoke", "--duration", "-5"]) == 2
        assert "invalid scenario parameters" in capsys.readouterr().err

    def test_replay_missing_file(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["scenario", "replay", str(tmp_path / "none.trace")]) == 2
        assert "replay failed" in capsys.readouterr().err

    def test_compare(self, capsys):
        from repro.cli import main

        assert (
            main(
                ["scenario", "compare", "smoke", "smoke",
                 "--duration", "0.3", "--clients", "6"]
            )
            == 0
        )
        assert "scenario comparison" in capsys.readouterr().out
