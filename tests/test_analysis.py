"""The static analyzer: inference, lowerability, spec checks, repo lint.

Three layers of coverage:

* **property tests** (hypothesis) — randomized relalg trees assert that
  (a) schema/type inference reproduces the executor's own
  ``output_schema()`` with zero findings on well-formed plans, and
  (b) the static delta-lowerability mirror agrees with dynamic
  trial-lowering (``lower_delta_plan``) on every generated plan, in
  both directions;
* **per-rule fixtures** — one positive (finding fires) and one negative
  (it does not) case for every rule in the catalogue;
* **the live registry and CLI** — ``check_registry()`` and
  ``repro analyze --strict`` are clean on the shipped repo, which is
  the CI gate's contract.
"""

from __future__ import annotations

import json
import random
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    AnalysisReport,
    RULES,
    check_registry,
    check_spec,
    explain_refusal,
    infer_plan,
    lint_source,
    predict_delta_lowerability,
    predict_plan_lowerability,
    predicted_backend_matrix,
    run_analysis,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.inference import TABLE2_TYPES
from repro.core.stores import REQUEST_COLUMNS
from repro.protocols.spec import NO_LOCKS, SS2PL_LOCKS, ProtocolSpec
from repro.relalg.delta import lower_delta_plan
from repro.relalg.expressions import col, lit
from repro.relalg.query import PlanNode, Query, SetOpNode
from repro.relalg.schema import Column, Schema
from repro.relalg.table import Table


def _tables() -> tuple[Table, Table]:
    return (
        Table("requests", list(REQUEST_COLUMNS)),
        Table("history", list(REQUEST_COLUMNS)),
    )


def _rules_of(findings) -> set[str]:
    return {finding.rule for finding in findings}


# ---------------------------------------------------------------------------
# Randomized plan generator (shared by both property tests).
# ---------------------------------------------------------------------------

_CODES = ("r", "w", "a", "c")


def _random_query(rng: random.Random) -> Query:
    """A well-formed random plan over the Table 2 stores.

    Always type-correct and name-resolvable; may or may not be
    delta-lowerable (LIMIT and key-less outer joins are generated on
    purpose, so the lowerability property exercises both verdicts).
    """
    requests, history = _tables()
    if rng.random() < 0.5:
        q = Query.from_(requests)
    else:
        left = Query.from_(requests, alias="l")
        right = Query.from_(history, alias="h")
        equi = col("l.object") == col("h.object")
        theta = col("l.id") < col("h.id")
        shape = rng.choice(
            ["inner-equi", "inner-theta", "left-equi", "left-theta",
             "semi", "anti"]
        )
        on = theta if shape.endswith("theta") else equi
        if shape.startswith("inner"):
            q = left.join(right, on=on)
        elif shape.startswith("left"):
            q = left.left_join(right, on=on)
        elif shape == "semi":
            q = left.semi_join(right, on=on)
        else:
            q = left.anti_join(right, on=on)
        q = q.select(*[f"l.{name}" for name in REQUEST_COLUMNS])
    columns: dict[str, str] = dict(TABLE2_TYPES)

    fresh = 0
    for __ in range(rng.randrange(5)):
        op = rng.choice(
            ["where", "select", "extend", "distinct", "order_by",
             "limit", "aggregate", "union_all"]
        )
        names = list(columns)
        if op == "where":
            name = rng.choice(names)
            if columns[name] == "str":
                q = q.where(col(name) == lit(rng.choice(_CODES)))
            else:
                q = q.where(col(name) <= lit(rng.randrange(5)))
        elif op == "select":
            keep = sorted(
                rng.sample(names, rng.randrange(1, len(names) + 1)),
                key=names.index,
            )
            q = q.select(*keep)
            columns = {name: columns[name] for name in keep}
        elif op == "extend":
            numeric = [n for n in names if columns[n] == "int"]
            if numeric:
                fresh += 1
                q = q.extend(f"x{fresh}", col(rng.choice(numeric)) + lit(1))
                columns[f"x{fresh}"] = "int"
        elif op == "distinct":
            q = q.distinct()
        elif op == "order_by":
            q = q.order_by(rng.choice(names))
        elif op == "limit":
            q = q.limit(1 + rng.randrange(3))
        elif op == "aggregate":
            group = rng.choice(names)
            fresh += 1
            q = q.aggregate([group], [("count", "*", f"agg{fresh}")])
            columns = {group: columns[group], f"agg{fresh}": "int"}
        else:
            q = q.union_all(q)
    return q


class TestInferenceProperties:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=80, deadline=None)
    def test_inference_matches_executor_schema(self, seed):
        q = _random_query(random.Random(seed))
        inference = infer_plan(q.plan)
        assert inference.ok, [d.render() for d in inference.diagnostics]
        assert inference.schema.names == q.plan.output_schema().names
        assert len(inference.typed.types) == inference.schema.arity

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=80, deadline=None)
    def test_static_lowerability_agrees_with_dynamic(self, seed):
        q = _random_query(random.Random(seed))
        prediction = predict_plan_lowerability(q.plan)
        try:
            lower_delta_plan(q)
        except Exception:
            dynamic = False
        else:
            dynamic = True
        assert prediction.lowerable == dynamic, (
            f"static {prediction.lowerable} ({prediction.reason}) vs "
            f"dynamic {dynamic} for\n{q.plan.explain()}"
        )
        if not prediction.lowerable:
            assert prediction.refusal is not None
            assert prediction.refusal.rule.startswith("D1")


# ---------------------------------------------------------------------------
# Spec verifier rules (S0xx).
# ---------------------------------------------------------------------------


class TestSpecRules:
    def test_s001_fires_on_wrong_projection(self):
        spec = ProtocolSpec(
            name="bad-projection",
            relalg=lambda r, h: Query.from_(r).select("id", "ta"),
        )
        assert "S001" in _rules_of(check_spec(spec))

    def test_s001_silent_on_table2_projection(self):
        spec = ProtocolSpec(
            name="good-projection",
            relalg=lambda r, h: Query.from_(r).select(*REQUEST_COLUMNS),
        )
        assert "S001" not in _rules_of(check_spec(spec))

    def test_s002_fires_on_wrong_arity(self):
        spec = ProtocolSpec(
            name="bad-datalog",
            datalog='qualified(Id, Ta) :- requests(Id, Ta, _, _, _).\n',
        )
        assert "S002" in _rules_of(check_spec(spec))

    def test_s002_silent_on_qualified_slash_5(self):
        spec = ProtocolSpec(
            name="good-datalog",
            datalog=(
                "qualified(Id, Ta, I, Op, Obj) :- "
                "requests(Id, Ta, I, Op, Obj).\n"
            ),
        )
        assert "S002" not in _rules_of(check_spec(spec))

    def test_s003_fires_when_checking_model_tests_no_codes(self):
        spec = ProtocolSpec(
            name="missing-codes",
            relalg=lambda r, h: Query.from_(r),
            lock_model=SS2PL_LOCKS,
        )
        findings = [f for f in check_spec(spec) if f.rule == "S003"]
        assert findings and "missing" in findings[0].message

    def test_s003_fires_when_no_locks_model_branches_on_codes(self):
        spec = ProtocolSpec(
            name="surplus-codes",
            relalg=lambda r, h: Query.from_(r).where(
                col("operation") == lit("w")
            ),
            lock_model=NO_LOCKS,
        )
        assert "S003" in _rules_of(check_spec(spec))

    def test_s003_silent_on_consistent_spec(self):
        spec = ProtocolSpec(
            name="consistent",
            relalg=lambda r, h: Query.from_(r),
            lock_model=NO_LOCKS,
        )
        assert "S003" not in _rules_of(check_spec(spec))

    def test_s004_fires_on_unknown_column(self):
        requests, __ = _tables()
        plan = Query.from_(requests).where(col("nope") == lit(1)).plan
        inference = infer_plan(plan)
        assert "S004" in _rules_of(inference.diagnostics)
        # The finding names the operator path, not just the column.
        finding = inference.diagnostics[0]
        assert "Filter" in finding.location

    def test_s004_silent_on_resolvable_plan(self):
        requests, __ = _tables()
        plan = Query.from_(requests).where(col("id") >= lit(1)).plan
        assert infer_plan(plan).ok

    def test_s005_fires_on_impossible_comparison(self):
        requests, __ = _tables()
        plan = Query.from_(requests).where(col("operation") == lit(3)).plan
        assert "S005" in _rules_of(infer_plan(plan).diagnostics)

    def test_s005_fires_on_string_arithmetic(self):
        requests, __ = _tables()
        plan = Query.from_(requests).extend(
            "x", col("operation") + lit(1)
        ).plan
        assert "S005" in _rules_of(infer_plan(plan).diagnostics)

    def test_s005_fires_on_disjoint_in_set(self):
        from repro.relalg.expressions import InSet

        requests, __ = _tables()
        plan = Query.from_(requests).where(
            InSet(col("id"), frozenset({"a", "b"}))
        ).plan
        assert "S005" in _rules_of(infer_plan(plan).diagnostics)

    def test_s005_silent_on_typed_comparison(self):
        requests, __ = _tables()
        plan = Query.from_(requests).where(
            col("operation") == lit("w")
        ).plan
        assert infer_plan(plan).ok


# ---------------------------------------------------------------------------
# Delta-lowerability rules (D1xx).
# ---------------------------------------------------------------------------


class TestLowerabilityRules:
    def test_d101_fires_on_limit(self):
        requests, __ = _tables()
        prediction = predict_plan_lowerability(
            Query.from_(requests).limit(3).plan
        )
        assert not prediction.lowerable
        assert prediction.refusal.rule == "D101"
        assert "Limit(3)" in prediction.refusal.location

    def test_d101_silent_without_limit(self):
        requests, __ = _tables()
        assert predict_plan_lowerability(Query.from_(requests).plan).lowerable

    def test_d102_fires_on_keyless_left_join(self):
        requests, history = _tables()
        q = Query.from_(requests, alias="l").left_join(
            Query.from_(history, alias="h"), on=col("l.id") < col("h.id")
        )
        prediction = predict_plan_lowerability(q.plan)
        assert not prediction.lowerable
        assert prediction.refusal.rule == "D102"

    def test_d102_silent_on_equi_left_join(self):
        requests, history = _tables()
        q = Query.from_(requests, alias="l").left_join(
            Query.from_(history, alias="h"),
            on=col("l.object") == col("h.object"),
        )
        assert predict_plan_lowerability(q.plan).lowerable

    def test_d103_fires_on_unknown_operator(self):
        class FakeNode(PlanNode):
            def output_schema(self):
                return Schema([Column("id")])

            def children(self):
                return []

            def _describe(self):
                return "Fake()"

        prediction = predict_plan_lowerability(FakeNode(), optimize=False)
        assert not prediction.lowerable
        assert prediction.refusal.rule == "D103"
        assert "FakeNode" in prediction.refusal.message

    def test_d104_fires_on_unknown_aggregate(self):
        requests, __ = _tables()
        q = Query.from_(requests).aggregate(
            ["ta"], [("median", "id", "m")]
        )
        prediction = predict_plan_lowerability(q.plan, optimize=False)
        assert not prediction.lowerable
        assert prediction.refusal.rule == "D104"

    def test_d104_silent_on_known_aggregate(self):
        requests, __ = _tables()
        q = Query.from_(requests).aggregate(["ta"], [("count", "*", "n")])
        assert predict_plan_lowerability(q.plan).lowerable

    def test_d105_fires_on_arity_mismatch(self):
        requests, __ = _tables()
        node = SetOpNode(
            "union_all",
            Query.from_(requests).select("id").plan,
            Query.from_(requests).select("id", "ta").plan,
        )
        prediction = predict_plan_lowerability(node, optimize=False)
        assert not prediction.lowerable
        assert prediction.refusal.rule == "D105"

    def test_d106_fires_on_unplannable_sql(self):
        spec = ProtocolSpec(name="broken-sql", sql="SELECT FROM nonsense")
        prediction = predict_delta_lowerability(spec)
        assert not prediction.lowerable
        assert prediction.refusal.rule == "D106"

    def test_d106_fires_without_any_query_dialect(self):
        spec = ProtocolSpec(name="no-dialect", lock_model=NO_LOCKS)
        prediction = predict_delta_lowerability(spec)
        assert not prediction.lowerable
        assert prediction.refusal.rule == "D106"
        assert prediction.refusal.subject == "no-dialect"

    def test_explain_refusal_cites_rule_and_path(self):
        spec = ProtocolSpec(
            name="limited",
            relalg=lambda r, h: Query.from_(r).limit(2),
        )
        reason = explain_refusal(spec)
        assert "(D101)" in reason and "limited/relalg" in reason
        assert explain_refusal(
            ProtocolSpec(name="fine", relalg=lambda r, h: Query.from_(r))
        ) == ""

    def test_d100_fires_on_tampered_matrix(self):
        from repro.analysis import _check_matrix_agreement

        matrix = predicted_backend_matrix()
        assert _check_matrix_agreement(matrix) == []
        spec_name = next(iter(matrix))
        backend_name = next(iter(matrix[spec_name]))
        matrix[spec_name][backend_name] = not matrix[spec_name][backend_name]
        findings = _check_matrix_agreement(matrix)
        assert _rules_of(findings) == {"D100"}
        assert findings[0].severity == "error"


# ---------------------------------------------------------------------------
# Plan lints (P2xx).
# ---------------------------------------------------------------------------


class TestPlanLints:
    def test_p201_fires_on_unused_cte(self):
        spec = ProtocolSpec(
            name="dead-cte",
            sql=(
                "WITH dead AS (SELECT id FROM requests) "
                "SELECT id, ta, intrata, operation, object FROM requests"
            ),
        )
        findings = [f for f in check_spec(spec) if f.rule == "P201"]
        assert findings and "'dead'" in findings[0].message

    def test_p201_silent_on_referenced_cte(self):
        spec = ProtocolSpec(
            name="live-cte",
            sql=(
                "WITH live AS (SELECT id, ta, intrata, operation, object "
                "FROM requests) SELECT * FROM live"
            ),
        )
        assert "P201" not in _rules_of(check_spec(spec))

    def test_p202_fires_on_self_comparison(self):
        spec = ProtocolSpec(
            name="dead-filter",
            relalg=lambda r, h: Query.from_(r).where(col("id") == col("id")),
        )
        assert "P202" in _rules_of(check_spec(spec))

    def test_p202_fires_on_constant_predicate(self):
        spec = ProtocolSpec(
            name="const-filter",
            relalg=lambda r, h: Query.from_(r).where(lit(True)),
        )
        assert "P202" in _rules_of(check_spec(spec))

    def test_p202_silent_on_live_filter(self):
        spec = ProtocolSpec(
            name="live-filter",
            relalg=lambda r, h: Query.from_(r).where(col("id") > lit(0)),
        )
        assert "P202" not in _rules_of(check_spec(spec))

    def test_p203_fires_on_nested_loop_join(self):
        spec = ProtocolSpec(
            name="theta-join",
            relalg=lambda r, h: Query.from_(r, alias="l").join(
                Query.from_(h, alias="x"), on=col("l.id") < col("x.id")
            ),
        )
        assert "P203" in _rules_of(check_spec(spec))

    def test_p203_silent_on_equi_join(self):
        spec = ProtocolSpec(
            name="equi-join",
            relalg=lambda r, h: Query.from_(r, alias="l").join(
                Query.from_(h, alias="x"),
                on=col("l.object") == col("x.object"),
            ),
        )
        assert "P203" not in _rules_of(check_spec(spec))


# ---------------------------------------------------------------------------
# Repo determinism lints (R3xx).
# ---------------------------------------------------------------------------


def _lint(source: str, path: str) -> set[str]:
    return _rules_of(lint_source(textwrap.dedent(source), path))


class TestRepoLints:
    def test_r301_fires_on_wall_clock_in_core(self):
        src = '"""m."""\nimport time\n\n\ndef f():\n    return time.time()\n'
        assert "R301" in _lint(src, "repro/sim/clocky.py")

    def test_r301_fires_on_aliased_import(self):
        src = (
            '"""m."""\nimport time as _time\n\n\ndef f():\n'
            "    return _time.time_ns()\n"
        )
        assert "R301" in _lint(src, "repro/core/x.py")

    def test_r301_fires_on_datetime_now(self):
        src = (
            '"""m."""\nfrom datetime import datetime\n\n\ndef f():\n'
            "    return datetime.now()\n"
        )
        assert "R301" in _lint(src, "repro/core/x.py")

    def test_r301_allows_perf_counter_and_other_dirs(self):
        src = '"""m."""\nimport time\n\n\ndef f():\n    return time.perf_counter()\n'
        assert "R301" not in _lint(src, "repro/sim/clocky.py")
        wall = '"""m."""\nimport time\n\n\ndef f():\n    return time.time()\n'
        assert "R301" not in _lint(wall, "repro/bench/x.py")

    def test_r302_fires_on_global_rng_in_core(self):
        src = '"""m."""\nimport random\n\n\ndef f():\n    return random.random()\n'
        assert "R302" in _lint(src, "repro/core/x.py")

    def test_r302_allows_seeded_streams(self):
        src = '"""m."""\nimport random\n\n\ndef f():\n    return random.Random(7)\n'
        assert "R302" not in _lint(src, "repro/core/x.py")

    def test_r303_fires_on_set_iteration(self):
        src = '"""m."""\n\n\ndef f(xs):\n    return [x for x in {1, 2, 3}]\n'
        assert "R303" in _lint(src, "repro/relalg/x.py")

    def test_r303_allows_sorted_sets(self):
        src = '"""m."""\n\n\ndef f(xs):\n    return [x for x in sorted(set(xs))]\n'
        assert "R303" not in _lint(src, "repro/relalg/x.py")

    def test_r304_fires_on_blocking_sleep_in_coroutine(self):
        src = (
            '"""m."""\nimport time\n\n\nasync def f():\n'
            "    time.sleep(1)\n"
        )
        assert "R304" in _lint(src, "repro/serve/x.py")

    def test_r304_silent_in_nested_sync_def(self):
        src = (
            '"""m."""\nimport time\n\n\nasync def f():\n'
            "    def g():\n        time.sleep(1)\n    return g\n"
        )
        assert "R304" not in _lint(src, "repro/serve/x.py")

    def test_r305_fires_without_module_docstring(self):
        assert "R305" in _lint("x = 1\n", "repro/api2.py")
        assert "R305" not in _lint('"""m."""\nx = 1\n', "repro/api2.py")

    def test_r306_fires_on_init_without_all(self):
        src = '"""m."""\nfrom repro.cli import main\n'
        assert "R306" in _lint(src, "repro/fake/__init__.py")
        with_all = src + '\n__all__ = ["main"]\n'
        assert "R306" not in _lint(with_all, "repro/fake/__init__.py")

    def test_suppression_comment_silences_the_named_rule(self):
        src = (
            '"""m."""\n\n\ndef f():\n'
            "    return [x for x in {1, 2}]  # repro: allow[R303]\n"
        )
        assert "R303" not in _lint(src, "repro/core/x.py")
        # The marker only covers the rule it names.
        assert "R303" in _lint(
            src.replace("R303", "R301"), "repro/core/x.py"
        )


# ---------------------------------------------------------------------------
# The shipped repo is clean; report and CLI semantics.
# ---------------------------------------------------------------------------


class TestRepoIsClean:
    def test_registry_has_zero_findings(self):
        assert check_registry() == []

    def test_full_analysis_is_strict_clean(self):
        report = run_analysis()
        assert report.findings == []
        assert report.ok(strict=True)
        assert len(report.matrix) >= 8

    def test_report_severity_partition(self):
        report = AnalysisReport(
            findings=[
                Diagnostic("S001", "a", "m1"),
                Diagnostic("P201", "b", "m2"),
            ]
        )
        assert not report.ok(strict=False)  # S001 is an error
        warn_only = AnalysisReport(findings=[Diagnostic("P201", "b", "m")])
        assert warn_only.ok(strict=False)
        assert not warn_only.ok(strict=True)
        payload = report.as_dict()
        assert payload["errors"] == 1 and payload["warnings"] == 1

    def test_api_analyze_passthrough(self):
        import repro.api as api

        report = api.analyze(repo=False)
        assert report.ok(strict=True)
        assert report.matrix

    def test_every_rule_has_catalogue_metadata(self):
        for rule, (severity, title) in RULES.items():
            assert severity in ("error", "warning", "info")
            assert title


class TestAnalyzeCli:
    def test_analyze_strict_exits_zero_on_repo(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "report.json"
        assert main(["analyze", "--strict", "--json", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in stdout
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["errors"] == 0
        assert "compiled-delta" in payload["matrix"]["ss2pl"]

    def test_analyze_repo_half_alone(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--skip-specs"]) == 0
        assert "matrix" not in capsys.readouterr().out

    def test_analyze_rejects_skipping_everything(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--skip-specs", "--skip-repo"]) == 2
        assert "exclude everything" in capsys.readouterr().err
