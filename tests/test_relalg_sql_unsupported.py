"""SQL frontend limits: unsupported constructs fail loudly, not wrongly.

A small engine that silently mis-executes SQL would be worse than none;
these tests pin the failure mode of everything outside the documented
subset.
"""

import pytest

from repro.relalg.sql import SqlError, execute_sql
from repro.relalg.table import Table


@pytest.fixture
def db():
    t = Table("t", ["a", "b"])
    t.insert_many([(1, 2), (3, 4)])
    return {"t": t}


@pytest.mark.parametrize(
    "query",
    [
        # aggregate functions are not in the subset
        "SELECT count(a) FROM t",
        # arithmetic in select lists is not in the subset
        "SELECT a FROM t WHERE a + 1 = 2",
        # GROUP BY is not in the subset
        "SELECT a FROM t GROUP BY a",
        # INSERT/UPDATE/DELETE are not in the subset
        "INSERT INTO t VALUES (1, 2)",
        "DELETE FROM t",
    ],
    ids=["aggregate", "arithmetic", "group-by", "insert", "delete"],
)
def test_unsupported_constructs_raise(db, query):
    with pytest.raises(SqlError):
        execute_sql(query, db)


def test_nested_exists_rejected(db):
    with pytest.raises(SqlError, match="nested EXISTS"):
        execute_sql(
            "SELECT a FROM t x WHERE NOT EXISTS ("
            "SELECT * FROM t y WHERE y.a = x.a AND EXISTS ("
            "SELECT * FROM t z WHERE z.a = y.a))",
            db,
        )


def test_exists_with_join_inside_rejected(db):
    with pytest.raises(SqlError, match="single FROM item"):
        execute_sql(
            "SELECT a FROM t x WHERE NOT EXISTS ("
            "SELECT * FROM t y, t z WHERE y.a = x.a)",
            db,
        )


def test_computed_select_item_rejected(db):
    # Only column references (and stars) may appear in SELECT lists.
    with pytest.raises(SqlError):
        execute_sql("SELECT 1 FROM t", db)


def test_helpful_message_on_unknown_table(db):
    with pytest.raises(SqlError, match="unknown table 'nope'"):
        execute_sql("SELECT * FROM nope", db)
