"""CLI surface tests."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_lists_experiments_and_protocols(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out
        assert "ss2pl" in out and "fcfs" in out


class TestRun:
    def test_run_quick_table_experiments(self, capsys):
        assert main(["run", "E1", "E2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out

    def test_run_quick_productivity(self, capsys):
        assert main(["run", "E9", "--quick"]) == 0
        assert "imperative" in capsys.readouterr().out

    def test_unknown_id(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestDemo:
    def test_demo_runs_clean(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "conflict serializable: True" in out
        assert "strict:                True" in out


class TestSql:
    def test_adhoc_query(self, capsys):
        assert main(["sql", "SELECT ta FROM requests WHERE ta < 5"]) == 0
        out = capsys.readouterr().out
        assert "ta" in out

    def test_sql_error_reported(self, capsys):
        assert main(["sql", "SELECT FROM"]) == 1
        assert "SQL error" in capsys.readouterr().err

    def test_listing1_via_cli(self, capsys):
        from repro.protocols.legacy import LISTING1_SQL

        assert main(["sql", LISTING1_SQL]) == 0
        out = capsys.readouterr().out
        assert "id" in out


class TestExperimentCoverage:
    def test_every_paper_artefact_has_an_experiment(self):
        # The paper has Table 1, Table 2 and Figure 2 plus the two
        # measured sections; all must be covered.
        assert {"E1", "E2", "E3", "E5", "E6"} <= set(EXPERIMENTS)

    @pytest.mark.parametrize("experiment_id", ["E7", "E11"])
    def test_quick_runners_produce_reports(self, experiment_id, capsys):
        assert main(["run", experiment_id, "--quick"]) == 0
        assert len(capsys.readouterr().out) > 100


class TestRegistrySubcommands:
    def test_protocols_lists_specs_and_backends(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        for spec_name in ("ss2pl", "fcfs", "priority-ceiling", "c2pl"):
            assert spec_name in out
        assert "backends:" in out and "dialects:" in out

    def test_backends_lists_engines(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for backend in ("compiled", "interpreted", "datalog", "sqlite",
                        "sqlfront", "imperative", "incremental"):
            assert backend in out


class TestBackendSelection:
    def test_bench_runs_named_pairing(self, capsys):
        assert main([
            "bench", "--protocol", "read-committed", "--backend", "datalog",
            "--clients", "10", "--steps", "4",
        ]) == 0
        assert "read-committed@datalog" in capsys.readouterr().out

    def test_bad_backend_names_valid_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--protocol", "ss2pl", "--backend", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown backend 'bogus'" in err
        assert "compiled" in err and "datalog" in err

    def test_bad_protocol_names_valid_choices(self, capsys):
        assert main(["bench", "--protocol", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown protocol 'bogus'" in err and "ss2pl" in err

    def test_unsupported_pairing_reports_dialects(self, capsys):
        assert main(["bench", "--protocol", "c2pl", "--backend",
                     "compiled"]) == 2
        assert "cannot run spec" in capsys.readouterr().err

    def test_run_backend_validated(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "E13", "--backend", "bogus"])
        assert excinfo.value.code == 2
        assert "valid backends" in capsys.readouterr().err

    def test_demo_on_alternate_backend(self, capsys):
        assert main(["demo", "--backend", "incremental"]) == 0
        out = capsys.readouterr().out
        assert "conflict serializable: True" in out
        assert "strict:                True" in out

    def test_demo_bad_protocol_names_valid_choices(self, capsys):
        assert main(["demo", "--protocol", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown protocol 'bogus'" in err and "ss2pl" in err

    def test_demo_unsupported_pairing_reports_cleanly(self, capsys):
        assert main(["demo", "--protocol", "c2pl", "--backend",
                     "compiled"]) == 2
        assert "cannot run spec" in capsys.readouterr().err


class TestNormalizedFlags:
    """--protocol/--backend/--trigger behave identically everywhere."""

    @pytest.mark.parametrize("argv", [
        ["bench", "--trigger", "bogus"],
        ["scenario", "run", "smoke", "--trigger", "bogus"],
        ["serve", "--trigger", "bogus"],
        ["run", "E14", "--quick", "--trigger", "bogus"],
    ])
    def test_bad_trigger_rejected_everywhere(self, argv, capsys):
        assert main(argv) == 2
        assert "trigger" in capsys.readouterr().err

    def test_bench_supports_trigger_pacing(self, capsys):
        assert main([
            "bench", "--protocol", "ss2pl", "--backend", "compiled-delta",
            "--trigger", "fill:1", "--clients", "10", "--steps", "4",
        ]) == 0
        assert "ss2pl@compiled-delta" in capsys.readouterr().out

    def test_run_fails_fast_on_unsupported_pairing(self, capsys):
        # E13 drives ss2pl by default; sqlite cannot run c2pl — the run
        # must exit with the backend's declared reason before any
        # experiment output, not fall back silently.
        assert main([
            "run", "E13", "--quick", "--protocol", "c2pl",
            "--backend", "sqlite",
        ]) == 2
        captured = capsys.readouterr()
        assert "cannot run spec" in captured.err
        assert "E13 —" not in captured.out

    def test_run_notes_inapplicable_flags(self, capsys):
        assert main(["run", "E1", "--quick", "--trigger", "fill:4"]) == 0
        assert "--trigger fill:4 has no effect on E1" in (
            capsys.readouterr().out
        )

    def test_scenario_run_accepts_trigger_override(self, capsys):
        assert main([
            "scenario", "run", "smoke", "--trigger", "fill:20",
            "--check-invariants",
        ]) == 0
        assert "0 violations" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_smoke_zero_lost(self, capsys, tmp_path):
        import json

        out_json = tmp_path / "serve.json"
        assert main([
            "serve", "--backend", "compiled-delta", "--requests", "120",
            "--sessions", "4", "--pipeline", "4", "--check-invariants",
            "--json", str(out_json),
        ]) == 0
        out = capsys.readouterr().out
        assert "invariants OK: no lost requests" in out
        payload = json.loads(out_json.read_text())
        stats = payload["stats"]
        assert stats["submitted"] >= 120
        assert stats["submitted"] == (
            stats["granted"] + sum(stats["rejected"].values())
        )
        assert payload["protocol"] == "ss2pl"
        assert payload["report"]["committed"] > 0

    def test_serve_unknown_workload(self, capsys):
        assert main(["serve", "--workload", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_serve_unsupported_pairing(self, capsys):
        assert main([
            "serve", "--protocol", "c2pl", "--backend", "compiled",
        ]) == 2
        assert "cannot run spec" in capsys.readouterr().err

    def test_serve_rejects_nonpositive_sizing(self, capsys):
        assert main(["serve", "--requests", "0"]) == 2
        assert "must be positive" in capsys.readouterr().err
