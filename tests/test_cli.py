"""CLI surface tests."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_lists_experiments_and_protocols(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out
        assert "ss2pl" in out and "fcfs" in out


class TestRun:
    def test_run_quick_table_experiments(self, capsys):
        assert main(["run", "E1", "E2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out

    def test_run_quick_productivity(self, capsys):
        assert main(["run", "E9", "--quick"]) == 0
        assert "imperative" in capsys.readouterr().out

    def test_unknown_id(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestDemo:
    def test_demo_runs_clean(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "conflict serializable: True" in out
        assert "strict:                True" in out


class TestSql:
    def test_adhoc_query(self, capsys):
        assert main(["sql", "SELECT ta FROM requests WHERE ta < 5"]) == 0
        out = capsys.readouterr().out
        assert "ta" in out

    def test_sql_error_reported(self, capsys):
        assert main(["sql", "SELECT FROM"]) == 1
        assert "SQL error" in capsys.readouterr().err

    def test_listing1_via_cli(self, capsys):
        from repro.protocols.ss2pl import LISTING1_SQL

        assert main(["sql", LISTING1_SQL]) == 0
        out = capsys.readouterr().out
        assert "id" in out


class TestExperimentCoverage:
    def test_every_paper_artefact_has_an_experiment(self):
        # The paper has Table 1, Table 2 and Figure 2 plus the two
        # measured sections; all must be covered.
        assert {"E1", "E2", "E3", "E5", "E6"} <= set(EXPERIMENTS)

    @pytest.mark.parametrize("experiment_id", ["E7", "E11"])
    def test_quick_runners_produce_reports(self, experiment_id, capsys):
        assert main(["run", experiment_id, "--quick"]) == 0
        assert len(capsys.readouterr().out) > 100


class TestRegistrySubcommands:
    def test_protocols_lists_specs_and_backends(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        for spec_name in ("ss2pl", "fcfs", "priority-ceiling", "c2pl"):
            assert spec_name in out
        assert "backends:" in out and "dialects:" in out

    def test_backends_lists_engines(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for backend in ("compiled", "interpreted", "datalog", "sqlite",
                        "sqlfront", "imperative", "incremental"):
            assert backend in out


class TestBackendSelection:
    def test_bench_runs_named_pairing(self, capsys):
        assert main([
            "bench", "--protocol", "read-committed", "--backend", "datalog",
            "--clients", "10", "--steps", "4",
        ]) == 0
        assert "read-committed@datalog" in capsys.readouterr().out

    def test_bad_backend_names_valid_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--protocol", "ss2pl", "--backend", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown backend 'bogus'" in err
        assert "compiled" in err and "datalog" in err

    def test_bad_protocol_names_valid_choices(self, capsys):
        assert main(["bench", "--protocol", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown protocol 'bogus'" in err and "ss2pl" in err

    def test_unsupported_pairing_reports_dialects(self, capsys):
        assert main(["bench", "--protocol", "c2pl", "--backend",
                     "compiled"]) == 2
        assert "cannot run spec" in capsys.readouterr().err

    def test_run_backend_validated(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "E13", "--backend", "bogus"])
        assert excinfo.value.code == 2
        assert "valid backends" in capsys.readouterr().err

    def test_demo_on_alternate_backend(self, capsys):
        assert main(["demo", "--backend", "incremental"]) == 0
        out = capsys.readouterr().out
        assert "conflict serializable: True" in out
        assert "strict:                True" in out

    def test_demo_bad_protocol_names_valid_choices(self, capsys):
        assert main(["demo", "--protocol", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown protocol 'bogus'" in err and "ss2pl" in err

    def test_demo_unsupported_pairing_reports_cleanly(self, capsys):
        assert main(["demo", "--protocol", "c2pl", "--backend",
                     "compiled"]) == 2
        assert "cannot run spec" in capsys.readouterr().err
