"""CLI surface tests."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_lists_experiments_and_protocols(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out
        assert "ss2pl" in out and "fcfs" in out


class TestRun:
    def test_run_quick_table_experiments(self, capsys):
        assert main(["run", "E1", "E2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out

    def test_run_quick_productivity(self, capsys):
        assert main(["run", "E9", "--quick"]) == 0
        assert "imperative" in capsys.readouterr().out

    def test_unknown_id(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestDemo:
    def test_demo_runs_clean(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "conflict serializable: True" in out
        assert "strict:                True" in out


class TestSql:
    def test_adhoc_query(self, capsys):
        assert main(["sql", "SELECT ta FROM requests WHERE ta < 5"]) == 0
        out = capsys.readouterr().out
        assert "ta" in out

    def test_sql_error_reported(self, capsys):
        assert main(["sql", "SELECT FROM"]) == 1
        assert "SQL error" in capsys.readouterr().err

    def test_listing1_via_cli(self, capsys):
        from repro.protocols.ss2pl import LISTING1_SQL

        assert main(["sql", LISTING1_SQL]) == 0
        out = capsys.readouterr().out
        assert "id" in out


class TestExperimentCoverage:
    def test_every_paper_artefact_has_an_experiment(self):
        # The paper has Table 1, Table 2 and Figure 2 plus the two
        # measured sections; all must be covered.
        assert {"E1", "E2", "E3", "E5", "E6"} <= set(EXPERIMENTS)

    @pytest.mark.parametrize("experiment_id", ["E7", "E11"])
    def test_quick_runners_produce_reports(self, experiment_id, capsys):
        assert main(["run", experiment_id, "--quick"]) == 0
        assert len(capsys.readouterr().out) > 100
