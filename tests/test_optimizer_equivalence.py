"""Optimizer soundness: optimized and unoptimized plans agree.

Covers the rewrites that matter for the paper's workloads — predicate
pushdown, join-predicate merging (comma joins) and NOT EXISTS
decorrelation — on randomized instances, plus the SQL frontend against
sqlite3 as an independent oracle for Listing 1.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.ss2pl import LISTING1_SQL
from repro.relalg.expressions import col, lit
from repro.relalg.query import Query
from repro.relalg.relation import rows_equal_as_bags
from repro.relalg.sql import SqlPlanner
from repro.relalg.table import Table
from repro.sqlbridge.bridge import SqliteScheduler

from tests.conftest import random_scheduling_instance

small = st.integers(0, 4)
rows3 = st.lists(st.tuples(small, small, small), max_size=20)


def table(name, rows):
    t = Table(name, ["a", "b", "c"])
    t.insert_many(rows)
    return t


class TestPlanEquivalence:
    @given(rows3, rows3)
    @settings(max_examples=80, deadline=None)
    def test_filter_over_join_pushdown(self, left_rows, right_rows):
        t1 = table("t1", left_rows)
        t2 = table("t2", right_rows)
        q = (
            Query.from_(t1, alias="x")
            .join(Query.from_(t2, alias="y"), on=None)
            .where(
                (col("x.a") == col("y.a"))
                & (col("x.b") > lit(1))
                & (col("y.c") < lit(3))
            )
        )
        optimized = q.execute(optimize=True)
        plain = q.execute(optimize=False)
        assert rows_equal_as_bags(optimized.rows, plain.rows)

    @given(rows3, rows3)
    @settings(max_examples=60, deadline=None)
    def test_anti_join_residual(self, left_rows, right_rows):
        t1 = table("t1", left_rows)
        t2 = table("t2", right_rows)
        q = Query.from_(t1, alias="x").anti_join(
            Query.from_(t2, alias="y"),
            on=(col("x.a") == col("y.a")) & (col("y.b") > col("x.b")),
        )
        # Reference: brute-force NOT EXISTS.
        kept = [
            lr
            for lr in left_rows
            if not any(
                lr[0] == rr[0] and rr[1] > lr[1] for rr in right_rows
            )
        ]
        assert rows_equal_as_bags(q.execute().rows, kept)


class TestSqlFrontendAgainstSqlite:
    def test_listing1_agrees_with_sqlite(self):
        rng = random.Random(77)
        for __ in range(10):
            requests, history = random_scheduling_instance(
                rng,
                pending=rng.randint(1, 25),
                history_transactions=rng.randint(1, 15),
            )
            ours = sorted(
                SqlPlanner(
                    {"requests": requests, "history": history}
                ).execute(LISTING1_SQL).rows
            )
            with SqliteScheduler() as backend:
                backend.load_rows("requests", requests.rows)
                backend.load_rows("history", history.rows)
                theirs = sorted(
                    r.as_row() for r in backend.qualified_requests()
                )
            assert ours == theirs

    def test_simple_queries_agree_with_sqlite(self):
        import sqlite3

        rng = random.Random(13)
        requests, history = random_scheduling_instance(rng, pending=20)
        queries = [
            "SELECT ta, intrata FROM requests WHERE operation = 'w'",
            "SELECT DISTINCT operation FROM requests",
            "SELECT r.id FROM requests r, history h "
            "WHERE r.object = h.object AND r.ta <> h.ta",
            "SELECT ta FROM requests EXCEPT SELECT ta FROM history",
            "SELECT id FROM requests ORDER BY object DESC, id ASC",
        ]
        conn = sqlite3.connect(":memory:")
        conn.execute(
            "CREATE TABLE requests (id INT, ta INT, intrata INT, "
            "operation TEXT, object INT)"
        )
        conn.execute(
            "CREATE TABLE history (id INT, ta INT, intrata INT, "
            "operation TEXT, object INT)"
        )
        conn.executemany(
            "INSERT INTO requests VALUES (?,?,?,?,?)", requests.rows
        )
        conn.executemany(
            "INSERT INTO history VALUES (?,?,?,?,?)", history.rows
        )
        planner = SqlPlanner({"requests": requests, "history": history})
        for query in queries:
            ours = sorted(planner.execute(query).rows)
            theirs = sorted(tuple(r) for r in conn.execute(query).fetchall())
            assert ours == theirs, query
        conn.close()
