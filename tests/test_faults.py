"""The fault-injection / recovery / invariant-monitoring subsystem."""

import random

import pytest

from repro.backends import build_protocol
from repro.core.scheduler import (
    DeclarativeScheduler,
    SchedulerStalledError,
)
from repro.core.simulation import MiddlewareSimulation
from repro.core.triggers import FillLevelTrigger
from repro.faults import (
    AdmissionPolicy,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InvariantMonitor,
    InvariantViolation,
    RecoveryPolicy,
    clock_jump,
    crash,
    drop,
    lock_model_of,
    stall,
    step_exception,
)
from repro.model.request import (
    NO_OBJECT,
    Operation,
    Request,
    make_transaction,
)
from repro.protocols.sla import SLAOrderingProtocol
from repro.protocols.spec import SS2PL_LOCKS
from repro.scenarios import get_scenario, run_scenario
from repro.sim.rng import RandomStreams, derive_seed
from repro.sim.simulator import Simulator
from repro.workload.spec import WorkloadSpec


def request(rid, ta, intrata, op, obj=NO_OBJECT):
    return Request(
        id=rid, ta=ta, intrata=intrata, operation=Operation.from_code(op), obj=obj
    )


# -- deterministic seed derivation -----------------------------------------


class TestSeedDerivation:
    def test_pinned_values_are_process_stable(self):
        # sha256-derived, so independent of PYTHONHASHSEED: these exact
        # values must hold in every interpreter (the CI chaos smoke
        # compares traces across separate processes).
        assert derive_seed(0, "faults.crash") == 4841083830075756459
        assert derive_seed(1, "faults.crash") == 8506093491067896079
        assert derive_seed(0, "faults.stall") == 5053269389498294446

    def test_streams_reproducible_and_distinct(self):
        a = RandomStreams(7)
        b = RandomStreams(7)
        assert [a.stream("x").random() for __ in range(3)] == [
            b.stream("x").random() for __ in range(3)
        ]
        assert a.stream("y").random() != a.stream("z").random()


# -- fault specs and plans -------------------------------------------------


class TestFaultSpec:
    def test_kind_validation(self):
        with pytest.raises(TypeError):
            FaultSpec(kind="client-crash", probability=0.5)

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.REQUEST_DROP, probability=1.5)
        with pytest.raises(ValueError):
            drop(0.0)

    def test_stall_needs_duration(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.CLIENT_STALL, probability=0.5)

    def test_clock_jump_needs_count(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.CLOCK_JUMP, duration=1.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            crash(0.5, window=(0.9, 0.1))

    def test_labels(self):
        plan = FaultPlan(specs=(crash(0.5), clock_jump(2, 1.0)))
        assert "client-crash" in plan.label
        assert "clock-jump" in plan.label

    def test_plan_needs_specs(self):
        with pytest.raises(ValueError):
            FaultPlan(specs=())

    def test_of_kind(self):
        plan = FaultPlan(specs=(crash(0.5), drop(0.1)))
        assert len(plan.of_kind(FaultKind.CLIENT_CRASH)) == 1
        assert len(plan.of_kind(FaultKind.CLIENT_STALL)) == 0


class TestFaultInjector:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan(
            specs=(crash(0.5), stall(0.3, 0.2), drop(0.2), step_exception(0.1))
        )
        a = plan.build(seed=3, clients=10, duration=5.0)
        b = plan.build(seed=3, clients=10, duration=5.0)
        assert a.crash_schedule == b.crash_schedule
        assert [a.stall_before_submit(0) for __ in range(20)] == [
            b.stall_before_submit(0) for __ in range(20)
        ]
        assert [a.drop_request(0) for __ in range(20)] == [
            b.drop_request(0) for __ in range(20)
        ]

    def test_different_seed_different_schedule(self):
        plan = FaultPlan(specs=(crash(0.5),))
        a = plan.build(seed=1, clients=50, duration=5.0)
        b = plan.build(seed=2, clients=50, duration=5.0)
        assert a.crash_schedule != b.crash_schedule

    def test_clock_jumps_stay_inside_run(self):
        plan = FaultPlan(specs=(clock_jump(5, 3.0, window=(0.5, 1.0)),))
        injector = plan.build(seed=0, clients=1, duration=4.0)
        for at, delta in injector.clock_jumps:
            assert at + delta <= 4.0 + 1e-9

    def test_step_fault_hook_flag(self):
        with_faults = FaultPlan(specs=(step_exception(0.5),)).build(0, 1, 1.0)
        without = FaultPlan(specs=(drop(0.5),)).build(0, 1, 1.0)
        assert with_faults.has_step_faults
        assert not without.has_step_faults


# -- sim-kernel clock jump -------------------------------------------------


class TestClockJump:
    def test_jump_retimes_events_preserving_identity(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("early"))
        sim.schedule_at(5.0, lambda: fired.append("late"))
        cancelled = sim.schedule_at(2.0, lambda: fired.append("cancelled"))
        sim.cancel(cancelled)
        landed = sim.jump(3.0)
        assert landed == pytest.approx(3.0)
        assert sim.now == pytest.approx(3.0)
        sim.run_until(10.0)
        # The skipped event fires at the landing time; the cancelled one
        # stays cancelled; the far event keeps its own time.
        assert fired == ["early", "late"]

    def test_jump_preserves_order_of_retimed_events(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.jump(4.0)
        sim.run_until(10.0)
        assert fired == [1, 2]  # seq order kept for same-time events

    def test_negative_jump_rejected(self):
        with pytest.raises(ValueError):
            Simulator().jump(-1.0)


# -- recovery and admission policies ---------------------------------------


class TestRecoveryPolicy:
    def test_backoff_widens_and_caps(self):
        policy = RecoveryPolicy(
            request_timeout=0.1, backoff_factor=2.0, max_backoff_exponent=3
        )
        assert policy.timeout_for(0) == pytest.approx(0.1)
        assert policy.timeout_for(2) == pytest.approx(0.4)
        assert policy.timeout_for(50) == pytest.approx(0.8)  # capped

    def test_restart_delay_backs_off(self):
        policy = RecoveryPolicy(retry_delay=0.05, backoff_factor=2.0)
        assert policy.restart_delay_for(1, 0.01) == pytest.approx(0.05)
        assert policy.restart_delay_for(3, 0.01) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(request_timeout=0.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=-1)


class TestAdmissionPolicy:
    def test_needs_positive_cap(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_pending=0)

    def test_no_victims_under_cap(self):
        policy = AdmissionPolicy(max_pending=10)
        assert policy.choose_victims({1: 3}, {}, {}, {}, 3) == []

    def test_victim_order_priority_then_retries_then_age(self):
        policy = AdmissionPolicy(max_pending=2)
        rows = {1: 1, 2: 1, 3: 1, 4: 1}
        priority = {1: 5, 2: 0, 3: 0, 4: 0}
        retries = {2: 0, 3: 2, 4: 0}
        arrival = {2: 1.0, 3: 1.0, 4: 2.0}
        victims = policy.choose_victims(rows, priority, retries, arrival, 4)
        # Sheds 2 txns: lowest priority first; among those, most
        # retried (3) then newest (4).  High-priority 1 survives.
        assert victims == [3, 4]


# -- scheduler recovery integration ----------------------------------------


def _two_blocked_writers(scheduler):
    """ta 1 takes the lock; ta 2 blocks behind it."""
    t1 = make_transaction(1, [("w", 5)], terminate="", start_id=1)
    t2 = make_transaction(2, [("w", 5)], terminate="", start_id=10)
    for r in t1:
        scheduler.submit(r, 0.0)
    for r in t2:
        scheduler.submit(r, 0.0)


class TestSchedulerRecovery:
    def test_timeout_abort_releases_blocker(self):
        scheduler = DeclarativeScheduler.for_spec(
            "ss2pl", recovery=RecoveryPolicy(request_timeout=0.1)
        )
        _two_blocked_writers(scheduler)
        first = scheduler.step(0.0)
        assert [str(r) for r in first.qualified] == ["w1[5]"]
        second = scheduler.step(0.5)
        assert [ta for ta, __ in second.recovery.timeouts] == [2]
        abort = second.recovery.timeouts[0][1]
        assert abort.is_abort and abort.id < 0  # synthesized, non-colliding
        assert len(scheduler.pending) == 0

    def test_backoff_widens_timeouts_per_client(self):
        policy = RecoveryPolicy(request_timeout=0.1, backoff_factor=4.0)
        scheduler = DeclarativeScheduler.for_spec("ss2pl", recovery=policy)
        _two_blocked_writers(scheduler)
        scheduler.step(0.0)
        step = scheduler.step(0.2)
        assert len(step.recovery.timeouts) == 1
        assert scheduler.retries_of_client(0) == 1
        # Same client again: now the timeout is 0.4, so age 0.2 is safe.
        t3 = make_transaction(3, [("w", 5)], terminate="", start_id=20)
        for r in t3:
            scheduler.submit(r, 0.3)
        step = scheduler.step(0.3)
        step = scheduler.step(0.55)
        assert not step.recovery.timeouts
        step = scheduler.step(0.8)  # age 0.5 > 0.4: now aborted
        assert [ta for ta, __ in step.recovery.timeouts] == [3]

    def test_orphan_reaped_after_lease(self):
        policy = RecoveryPolicy(request_timeout=10.0, orphan_lease=0.5)
        scheduler = DeclarativeScheduler.for_spec("ss2pl", recovery=policy)
        txn = make_transaction(1, [("w", 5)], terminate="", start_id=1)
        for r in txn:
            scheduler.submit(r, 0.0)
        granted = scheduler.step(0.0)
        assert granted.batch_size == 1  # ta 1 holds the lock now
        scheduler.note_client_crashed(0, 0.1)
        step = scheduler.step(0.3)
        assert not step.recovery.orphans  # lease not yet expired
        step = scheduler.step(0.7)
        assert [ta for ta, __ in step.recovery.orphans] == [1]
        # The lock is released: a new writer gets through immediately.
        t2 = make_transaction(2, [("w", 5)], terminate="", start_id=10)
        for r in t2:
            scheduler.submit(r, 0.8)
        assert scheduler.step(0.8).batch_size == 1

    def test_empty_pending_fast_path_still_reaps_orphans(self):
        """Regression: with incoming and pending both empty, should_run
        used to return False unconditionally — so a driver gating steps
        on it never ran the recovery sweep, and an orphaned transaction
        whose client died after dispatch held its locks forever."""
        policy = RecoveryPolicy(request_timeout=10.0, orphan_lease=0.5)
        scheduler = DeclarativeScheduler.for_spec("ss2pl", recovery=policy)
        txn = make_transaction(1, [("w", 5)], terminate="", start_id=1)
        for r in txn:
            scheduler.submit(r, 0.0)
        assert scheduler.step(0.0).batch_size == 1
        assert len(scheduler.pending) == 0 and len(scheduler.incoming) == 0
        scheduler.note_client_crashed(0, 0.1)
        # Lease not yet expired: the empty fast path stays idle.
        assert not scheduler.should_run(0.3)
        # Lease expired: the trigger must fire so the sweep can reap.
        assert scheduler.should_run(0.7)
        step = scheduler.step(0.7)
        assert [ta for ta, __ in step.recovery.orphans] == [1]
        # Reaped: back to idle, no busy loop.
        assert not scheduler.should_run(0.8)
        # The lock is actually released for the next writer.
        t2 = make_transaction(2, [("w", 5)], terminate="", start_id=10)
        for r in t2:
            scheduler.submit(r, 0.9)
        assert scheduler.step(0.9).batch_size == 1

    def test_recovered_client_new_transactions_not_reaped(self):
        policy = RecoveryPolicy(request_timeout=10.0, orphan_lease=0.5)
        scheduler = DeclarativeScheduler.for_spec("ss2pl", recovery=policy)
        scheduler.note_client_crashed(0, 0.0)
        scheduler.note_client_recovered(0)
        txn = make_transaction(1, [("w", 5)], terminate="", start_id=1)
        for r in txn:
            scheduler.submit(r, 0.1)
        scheduler.step(0.1)
        step = scheduler.step(2.0)
        assert not step.recovery.orphans

    def test_admission_sheds_on_overflow(self):
        scheduler = DeclarativeScheduler.for_spec(
            "ss2pl", admission=AdmissionPolicy(max_pending=2)
        )
        for ta in range(1, 5):
            txn = make_transaction(
                ta, [("w", ta)], terminate="", start_id=ta * 10
            )
            for r in txn:
                scheduler.submit(r, 0.0)
        step = scheduler.step(0.0)
        assert len(step.recovery.sheds) == 2
        assert step.batch_size == 2  # survivors all get distinct objects

    def test_abort_transaction_public_api(self):
        scheduler = DeclarativeScheduler.for_spec("ss2pl")
        txn = make_transaction(1, [("w", 5)], terminate="", start_id=1)
        for r in txn:
            scheduler.submit(r, 0.0)
        scheduler.step(0.0)
        abort = scheduler.abort_transaction(1, 0.1, reason="test")
        assert abort.ta == 1 and abort.is_abort
        # The logical lock is gone.
        t2 = make_transaction(2, [("w", 5)], terminate="", start_id=10)
        for r in t2:
            scheduler.submit(r, 0.2)
        assert scheduler.step(0.2).batch_size == 1


class TestSchedulerStalledError:
    def test_carries_snapshot_and_denials(self):
        scheduler = DeclarativeScheduler.for_spec("ss2pl")
        scheduler.history.record_batch([request(1, 1, 0, "w", 5)])
        scheduler.submit(request(2, 2, 0, "w", 5))
        with pytest.raises(SchedulerStalledError) as excinfo:
            scheduler.run_until_drained()
        error = excinfo.value
        assert isinstance(error, RuntimeError)  # old catch sites still work
        assert "stalled" in str(error)
        assert [r.id for r in error.pending_snapshot] == [2]
        assert error.steps_run > 0
        assert "id=2" in error.describe()

    def test_recovery_converts_stall_into_abort(self):
        scheduler = DeclarativeScheduler.for_spec(
            "ss2pl", recovery=RecoveryPolicy(request_timeout=0.5)
        )
        scheduler.history.record_batch([request(1, 1, 0, "w", 5)])
        scheduler.submit(request(2, 2, 0, "w", 5))
        results = scheduler.run_until_drained()  # no stall error raised
        assert any(r.recovery.timeouts for r in results)


# -- invariant monitor -----------------------------------------------------


class TestLockModelOf:
    def test_spec_protocol_exposes_model(self):
        assert lock_model_of(build_protocol("ss2pl")) == SS2PL_LOCKS

    def test_unwraps_sla_decorator(self):
        wrapped = SLAOrderingProtocol(build_protocol("ss2pl"))
        assert lock_model_of(wrapped) == SS2PL_LOCKS

    def test_unknown_protocol_gives_none(self):
        assert lock_model_of(object()) is None


class TestInvariantMonitor:
    def test_double_terminal_detected(self):
        monitor = InvariantMonitor()
        monitor.note_submitted(request(1, 1, 0, "w", 5))
        monitor.note_terminal([1], "aborted")
        with pytest.raises(InvariantViolation) as excinfo:
            monitor.note_terminal([1], "granted")
        assert excinfo.value.kind == "double-terminal"

    def test_granted_but_never_submitted_is_lost(self):
        scheduler = DeclarativeScheduler.for_spec("ss2pl")
        monitor = InvariantMonitor()
        scheduler.monitor = monitor
        # Bypass submit(): the request appears in pending without the
        # monitor ever seeing a submission.
        scheduler.incoming.enqueue(request(1, 1, 0, "w", 5), 0.0)
        with pytest.raises(InvariantViolation) as excinfo:
            scheduler.step(0.0)
        assert excinfo.value.kind == "lost-request"

    def test_non_monotonic_batch_detected(self):
        monitor = InvariantMonitor()

        class FakeScheduler:
            steps_run = 1
            history = DeclarativeScheduler.for_spec("ss2pl").history

        class FakeResult:
            qualified = [request(1, 1, 1, "w", 5), request(2, 1, 0, "w", 6)]

        for r in FakeResult.qualified:
            monitor.note_submitted(r)
        with pytest.raises(InvariantViolation) as excinfo:
            monitor.after_step(FakeScheduler(), FakeResult(), 0.0)
        assert excinfo.value.kind == "non-monotonic-batch"

    def test_conflicting_grants_detected(self):
        monitor = InvariantMonitor(SS2PL_LOCKS)
        scheduler = DeclarativeScheduler.for_spec("fcfs")  # no locking!
        scheduler.monitor = monitor
        # Two concurrent writers of one object: fine under fcfs, but a
        # violation of the SS2PL lock model the monitor was given.
        scheduler.submit(request(1, 1, 0, "w", 5), 0.0)
        scheduler.submit(request(2, 2, 0, "w", 5), 0.0)
        with pytest.raises(InvariantViolation) as excinfo:
            scheduler.step(0.0)
        assert excinfo.value.kind == "conflicting-grants"

    def test_final_check_counts_and_totality(self):
        monitor = InvariantMonitor()
        monitor.note_submitted(request(1, 1, 0, "w", 5))
        monitor.note_terminal([1], "granted")
        monitor.note_submitted(request(2, 2, 0, "w", 6))
        counts = monitor.final_check(live_ids={2}, now=1.0)
        assert counts == {"granted": 1, "pending": 1}
        with pytest.raises(InvariantViolation):
            monitor.final_check(live_ids=set(), now=1.0)

    def test_violation_trace_is_replayable_prefix(self, tmp_path):
        violation = InvariantViolation("conflicting-grants", "demo", now=1.0)
        violation.trace.record(0.5, request(1, 1, 0, "w", 5))
        violation.attach_context(
            scenario="smoke", seed=1, duration=0.6, clients=8, cell="ss2pl"
        )
        path = tmp_path / "violation.trace"
        violation.write_trace(path)
        from repro.workload.traces import read_trace_file

        header, traces = read_trace_file(path)
        assert header["prefix"] is True
        assert header["violation"] == "conflicting-grants"
        assert [label for label, __ in traces] == ["ss2pl"]


# -- faulted closed-loop runs ----------------------------------------------

TINY = WorkloadSpec(reads_per_txn=2, writes_per_txn=2, table_rows=30)


def _run(seed=0, plan=None, **kwargs):
    sim = MiddlewareSimulation(
        build_protocol("ss2pl"),
        FillLevelTrigger(1),
        TINY,
        clients=6,
        seed=seed,
        faults=plan,
        **kwargs,
    )
    return sim.run(3.0)


class TestFaultedSimulation:
    def test_crashes_reaped_and_counted(self):
        plan = FaultPlan(specs=(crash(0.9, restart_after=0.8, window=(0.1, 0.5)),))
        result = _run(
            plan=plan,
            recovery=RecoveryPolicy(request_timeout=0.4, orphan_lease=0.5),
            check_invariants=True,
        )
        assert result.crashes > 0
        assert result.invariant_checks > 0
        assert result.committed_transactions > 0  # system keeps going

    def test_drops_retried(self):
        plan = FaultPlan(specs=(drop(0.2),))
        result = _run(
            plan=plan,
            recovery=RecoveryPolicy(request_timeout=0.4),
            check_invariants=True,
        )
        assert result.drops > 0
        assert result.committed_transactions > 0

    def test_step_faults_do_not_lose_requests(self):
        plan = FaultPlan(specs=(step_exception(0.2),))
        result = _run(plan=plan, check_invariants=True)
        assert result.step_faults > 0
        assert result.committed_transactions > 0

    def test_clock_jump_applied(self):
        plan = FaultPlan(specs=(clock_jump(2, 0.4),))
        result = _run(plan=plan, check_invariants=True)
        assert result.clock_jumps == 2

    def test_faulted_run_is_deterministic(self):
        plan = FaultPlan(
            specs=(crash(0.5, restart_after=0.6), stall(0.1, 0.3), drop(0.1))
        )
        kwargs = dict(
            recovery=RecoveryPolicy(request_timeout=0.3),
            admission=AdmissionPolicy(max_pending=8),
            record_trace=True,
        )
        a = _run(seed=11, plan=plan, **kwargs)
        b = _run(seed=11, plan=plan, **kwargs)
        from repro.workload.traces import canonical_entries

        assert canonical_entries(a.trace) == canonical_entries(b.trace)
        assert a.committed_transactions == b.committed_transactions
        assert a.retries == b.retries

    def test_goodput_not_above_throughput(self):
        plan = FaultPlan(specs=(drop(0.1),))
        result = _run(
            plan=plan, recovery=RecoveryPolicy(request_timeout=0.3)
        )
        assert result.goodput_statements <= result.completed_statements

    def test_legacy_counters_satellite(self):
        # Fault-free run still counts its no-progress re-arms and
        # deadlock aborts (observable stalls, satellite of issue 6).
        from repro.metrics.collector import MetricsCollector

        metrics = MetricsCollector()
        hot = WorkloadSpec(reads_per_txn=2, writes_per_txn=2, table_rows=4)
        sim = MiddlewareSimulation(
            build_protocol("ss2pl"),
            FillLevelTrigger(1),
            hot,
            clients=6,
            seed=2,
            deadlock_timeout=0.2,
            metrics=metrics,
        )
        result = sim.run(3.0)
        assert result.stall_rearms > 0
        assert result.deadlock_timeout_aborts > 0
        assert result.deadlock_timeout_aborts == result.timeout_aborts
        assert metrics.counters["sim.stall_rearms"] == result.stall_rearms
        assert (
            metrics.counters["sim.deadlock_timeout_aborts"]
            == result.deadlock_timeout_aborts
        )


# -- lifecycle totality sweep (satellite) ----------------------------------


def _random_plan(rng: random.Random) -> FaultPlan:
    specs = []
    if rng.random() < 0.5:
        specs.append(
            crash(
                probability=rng.uniform(0.2, 0.9),
                restart_after=rng.choice([None, rng.uniform(0.2, 0.8)]),
                window=(0.0, rng.uniform(0.4, 0.9)),
            )
        )
    if rng.random() < 0.5:
        specs.append(stall(rng.uniform(0.05, 0.3), rng.uniform(0.1, 0.5)))
    if rng.random() < 0.5:
        specs.append(drop(rng.uniform(0.05, 0.25)))
    if rng.random() < 0.3:
        specs.append(clock_jump(rng.randint(1, 2), rng.uniform(0.2, 0.6)))
    if rng.random() < 0.3:
        specs.append(step_exception(rng.uniform(0.05, 0.2)))
    if not specs:
        specs.append(drop(0.1))
    return FaultPlan(specs=tuple(specs))


class TestLifecycleTotalitySweep:
    @pytest.mark.parametrize("protocol", ["ss2pl", "read-committed", "fcfs"])
    def test_every_request_reaches_exactly_one_terminal_state(self, protocol):
        # 50 random fault plans per protocol; the invariant monitor
        # raises if any submitted request is lost or terminates twice
        # (its final_check runs totality at the end of each run).
        rng = random.Random(1234)
        for case in range(50):
            plan = _random_plan(rng)
            sim = MiddlewareSimulation(
                build_protocol(protocol),
                FillLevelTrigger(1),
                WorkloadSpec(reads_per_txn=1, writes_per_txn=2, table_rows=12),
                clients=4,
                seed=rng.randrange(2**31),
                faults=plan,
                recovery=RecoveryPolicy(
                    request_timeout=0.25, orphan_lease=0.4, retry_delay=0.02
                ),
                admission=AdmissionPolicy(max_pending=6),
                check_invariants=True,
            )
            result = sim.run(1.2)
            assert result.invariant_checks > 0, (protocol, case, plan.label)


# -- chaos scenarios (acceptance) ------------------------------------------


class TestChaosScenarios:
    def test_registered(self):
        for name in (
            "crash-storm",
            "stall-under-zipf-hotspot",
            "retry-thundering-herd",
        ):
            spec = get_scenario(name)
            assert spec.is_chaos
            assert spec.recovery is not None

    def test_crash_storm_recovery_metrics_nonzero(self):
        outcome = run_scenario(get_scenario("crash-storm"), check_invariants=True)
        result = outcome.cells[0].result
        assert result.aborts > 0
        assert result.retries > 0
        assert result.sheds > 0
        assert result.crashes > 0
        assert result.invariant_checks > 0
        assert result.committed_transactions > 0

    def test_crash_storm_clean_across_seeds(self):
        # A shortened slice of the 20-seed acceptance sweep (the full
        # sweep runs in CI via the CLI); every seed must be violation-
        # free AND actually exercise the recovery machinery.
        spec = get_scenario("crash-storm")
        for seed in range(5):
            outcome = run_scenario(
                spec, seed=seed, duration=2.0, check_invariants=True
            )
            result = outcome.cells[0].result
            assert result.invariant_checks > 0
            assert result.aborts + result.sheds > 0

    def test_chaos_report_has_recovery_table(self):
        from repro.scenarios import render_scenario_report

        outcome = run_scenario(
            get_scenario("retry-thundering-herd"), duration=1.5
        )
        report = render_scenario_report(outcome)
        assert "recovery metrics" in report
        assert "goodput/s" in report
        assert "faults=" in report

    def test_faulted_record_replay_roundtrip(self, tmp_path):
        from repro.scenarios import record_scenario, replay_scenario

        path = tmp_path / "chaos.trace"
        record_scenario(
            get_scenario("crash-storm"), path, duration=2.0,
            check_invariants=True,
        )
        outcome = replay_scenario(path)
        assert outcome.matches, outcome.mismatch
        assert outcome.entries > 0

    def test_violation_trace_prefix_replay(self, tmp_path):
        # Manufacture a violation trace for a real scenario: a prefix
        # of the smoke scenario's dispatch log must replay as a prefix.
        from repro.scenarios import record_scenario, replay_scenario
        from repro.workload.traces import read_trace_file

        full_path = tmp_path / "full.trace"
        record_scenario(get_scenario("smoke"), full_path)
        header, traces = read_trace_file(full_path)
        label, trace = traces[0]
        violation = InvariantViolation("demo", "synthetic", now=0.1)
        for time, req in trace.entries[:10]:
            violation.trace.record(time, req)
        violation.attach_context(cell=label, **header)
        prefix_path = tmp_path / "prefix.trace"
        violation.write_trace(prefix_path)
        outcome = replay_scenario(prefix_path)
        assert outcome.matches, outcome.mismatch
        assert outcome.entries == 10
