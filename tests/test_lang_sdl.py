"""SDL: parser, compiler, and protocol semantics."""

import random

import pytest

from repro.lang.ast import Condition, DenyRule, OrderBy
from repro.lang.compiler import compile_spec
from repro.lang.parser import SDLSyntaxError, parse_sdl
from repro.lang.protocol import SDL_READ_COMMITTED, SDL_SS2PL, SDLProtocol
from repro.protocols.relaxed import ReadCommittedProtocol
from repro.protocols.ss2pl import PaperListing1Protocol

from tests.conftest import random_scheduling_instance


class TestParser:
    def test_ss2pl_spec_parses(self):
        spec = parse_sdl(SDL_SS2PL)
        assert spec.name == "ss2pl"
        assert len(spec.rules) == 3
        assert spec.rules[0] == DenyRule(
            "any", [Condition("write_locked_by_other")]
        )

    def test_order_clause(self):
        spec = parse_sdl(
            "protocol p { deny any when batch_conflict; order by priority desc; }"
        )
        assert spec.order == OrderBy("priority", descending=True)

    def test_condition_argument(self):
        spec = parse_sdl(
            "protocol p { deny write when uncommitted_writers_at_least(5); }"
        )
        assert spec.rules[0].conditions[0].argument == 5

    def test_and_chains_conditions(self):
        spec = parse_sdl(
            "protocol p { deny write when write_locked_by_other and "
            "batch_write_conflict; }"
        )
        assert len(spec.rules[0].conditions) == 2

    def test_comments_ignored(self):
        spec = parse_sdl(
            """
            protocol p {
                // a comment
                deny any when batch_conflict;  # trailing comment
            }
            """
        )
        assert len(spec.rules) == 1

    def test_unknown_condition_rejected(self):
        with pytest.raises(SDLSyntaxError, match="unknown condition"):
            parse_sdl("protocol p { deny any when made_up_thing; }")

    def test_unknown_scope_rejected(self):
        with pytest.raises(SDLSyntaxError, match="unknown scope"):
            parse_sdl("protocol p { deny everything when batch_conflict; }")

    def test_missing_semicolon(self):
        with pytest.raises(SDLSyntaxError):
            parse_sdl("protocol p { deny any when batch_conflict }")

    def test_duplicate_order_rejected(self):
        with pytest.raises(SDLSyntaxError, match="duplicate order"):
            parse_sdl(
                "protocol p { order by arrival; order by priority; "
                "deny any when batch_conflict; }"
            )

    def test_argument_required_for_threshold_condition(self):
        with pytest.raises(SDLSyntaxError, match="requires an integer"):
            parse_sdl("protocol p { deny write when uncommitted_writers_at_least; }")

    def test_spec_str_reparses(self):
        spec = parse_sdl(SDL_SS2PL)
        assert parse_sdl(str(spec)) == spec


class TestCompiler:
    def test_emits_only_needed_preamble(self):
        spec = parse_sdl("protocol p { deny write when batch_write_conflict; }")
        __, source = compile_spec(spec)
        assert "wlocked" not in source
        assert "denied" in source

    def test_scope_restricts_operation(self):
        spec = parse_sdl("protocol p { deny write when write_locked_by_other; }")
        __, source = compile_spec(spec)
        assert 'Op = "w"' in source

    def test_empty_protocol_admits_everything(self):
        spec = parse_sdl("protocol open { }")
        program, source = compile_spec(spec)
        assert "denied" not in source
        assert program.rules[-1].head.pred == "qualified"

    def test_threshold_condition_compiles_aggregate(self):
        spec = parse_sdl(
            "protocol p { deny write when uncommitted_writers_at_least(3); }"
        )
        __, source = compile_spec(spec)
        assert "wcount" in source and "N >= 3" in source


class TestProtocolEquivalence:
    def test_sdl_ss2pl_equals_listing1(self, rng):
        reference = PaperListing1Protocol()
        sdl = SDLProtocol(SDL_SS2PL)
        for __ in range(25):
            requests, history = random_scheduling_instance(rng)
            expected = sorted(r.id for r in reference.schedule(requests, history).qualified)
            actual = sorted(r.id for r in sdl.schedule(requests, history).qualified)
            assert actual == expected

    def test_sdl_read_committed_equals_datalog_variant(self, rng):
        reference = ReadCommittedProtocol()
        sdl = SDLProtocol(SDL_READ_COMMITTED)
        for __ in range(25):
            requests, history = random_scheduling_instance(rng)
            expected = sorted(r.id for r in reference.schedule(requests, history).qualified)
            actual = sorted(r.id for r in sdl.schedule(requests, history).qualified)
            assert actual == expected

    def test_denials_reported(self, rng):
        sdl = SDLProtocol(SDL_SS2PL)
        requests, history = random_scheduling_instance(
            rng, pending=20, history_transactions=15, objects=5
        )
        decision = sdl.schedule(requests, history)
        qualified_ids = {r.id for r in decision.qualified}
        assert set(decision.denials).isdisjoint(qualified_ids)
        assert len(qualified_ids) + len(decision.denials) == len(requests)


class TestOrdering:
    def test_order_by_priority(self):
        from repro.core.stores import PendingStore
        from repro.model.request import Operation, Request, RequestAttributes

        store = PendingStore()
        low = Request(
            1, 1, 0, Operation.READ, 5,
            attrs=RequestAttributes(priority=1),
        )
        high = Request(
            2, 2, 0, Operation.READ, 6,
            attrs=RequestAttributes(priority=9),
        )
        store.insert_batch([low, high])
        protocol = SDLProtocol(
            "protocol p { deny any when batch_conflict; order by priority desc; }"
        )
        decision = protocol.schedule(store.table, PendingStore().table)
        assert [r.id for r in decision.qualified] == [2, 1]
