"""Incrementally maintained SS2PL: equivalence and state maintenance."""

import random

from repro.core.scheduler import DeclarativeScheduler, SchedulerConfig
from repro.model.request import make_transaction
from repro.protocols.ss2pl import PaperListing1Protocol
from repro.protocols.ss2pl_incremental import SS2PLIncrementalProtocol

from tests.conftest import (
    empty_history_table,
    random_scheduling_instance,
    request,
)


class TestResyncEquivalence:
    def test_one_shot_equivalence_after_resync(self, rng):
        reference = PaperListing1Protocol()
        for __ in range(20):
            requests, history = random_scheduling_instance(rng)
            incremental = SS2PLIncrementalProtocol()
            incremental.resync(history)
            expected = sorted(
                r.id for r in reference.schedule(requests, history).qualified
            )
            actual = sorted(
                r.id for r in incremental.schedule(requests, history).qualified
            )
            assert actual == expected


class TestIncrementalState:
    def test_observe_executed_tracks_locks(self):
        protocol = SS2PLIncrementalProtocol()
        protocol.observe_executed(
            [request(1, 1, 0, "w", 5), request(2, 2, 0, "r", 6)]
        )
        assert protocol._write_locks == {5: {1}}
        assert protocol._read_locks == {6: {2}}

    def test_write_subsumes_own_read(self):
        protocol = SS2PLIncrementalProtocol()
        protocol.observe_executed(
            [request(1, 1, 0, "r", 5), request(2, 1, 1, "w", 5)]
        )
        assert protocol._read_locks.get(5, set()) == set()
        assert protocol._write_locks == {5: {1}}

    def test_commit_releases_locks(self):
        protocol = SS2PLIncrementalProtocol()
        protocol.observe_executed(
            [request(1, 1, 0, "w", 5), request(2, 1, 1, "c")]
        )
        assert protocol._write_locks == {}

    def test_prune_clears_bookkeeping(self):
        protocol = SS2PLIncrementalProtocol()
        protocol.observe_executed(
            [request(1, 1, 0, "w", 5), request(2, 1, 1, "c")]
        )
        protocol.observe_pruned({1})
        assert protocol._writes_of == {}
        assert 1 not in protocol._finished

    def test_reset(self):
        protocol = SS2PLIncrementalProtocol()
        protocol.observe_executed([request(1, 1, 0, "w", 5)])
        protocol.reset()
        assert protocol._write_locks == {}


class TestSchedulerDrivenEquivalence:
    def test_batch_sequences_identical_under_live_load(self):
        # Clients submit one request at a time (the middleware's real
        # submission pattern); both protocols must emit identical batch
        # sequences across many steps, including commit/prune churn.
        from repro.bench.incremental_ablation import drive_steps

        recompute = drive_steps(
            PaperListing1Protocol(),
            clients=40, steps=15, ops_per_txn=4, table_rows=200, seed=21,
        )
        incremental = drive_steps(
            SS2PLIncrementalProtocol(),
            clients=40, steps=15, ops_per_txn=4, table_rows=200, seed=21,
        )
        assert recompute.batches == incremental.batches
        assert recompute.total_qualified > 0

    def test_incremental_survives_pruning(self):
        protocol = SS2PLIncrementalProtocol()
        scheduler = DeclarativeScheduler(
            protocol, config=SchedulerConfig(prune_history=True)
        )
        # T1 writes object 5 and commits; T2 then writes object 5.
        for req in make_transaction(1, [("w", 5)], start_id=1):
            scheduler.submit(req)
        scheduler.step()
        assert len(scheduler.history) == 0  # pruned
        for req in make_transaction(2, [("w", 5)], start_id=10):
            scheduler.submit(req)
        result = scheduler.step()
        assert len(result.qualified) == 2  # lock was released
