"""Bench-module behaviours at reduced scale (the full-scale versions
run under pytest-benchmark; these tests pin the logic)."""

import pytest

from repro.bench.crossover import CrossoverPoint, sweep_crossover
from repro.bench.declarative_overhead import (
    OverheadPoint,
    measure_scheduler_run,
    paper_snapshot,
)
from repro.bench.figure2 import Figure2Point, sweep_native
from repro.bench.incremental_ablation import drive_steps
from repro.protocols.ss2pl import PaperListing1Protocol


class TestPaperSnapshot:
    def test_shape(self):
        incoming, history = paper_snapshot(50)
        assert len(incoming) == 50
        assert len(history) == 50 * 20
        # One open request per transaction, next intrata.
        assert all(r.intrata == 20 for r in incoming)
        tas = {r.ta for r in incoming}
        assert len(tas) == 50

    def test_no_committed_transactions_in_history(self):
        __, history = paper_snapshot(30)
        assert all(r.operation.is_data_access for r in history)

    def test_conflict_rate_controls_qualified_share(self):
        low = measure_scheduler_run(
            60, repetitions=1, conflict_rate=0.1
        )
        high = measure_scheduler_run(
            60, repetitions=1, conflict_rate=0.9
        )
        assert low.returned_per_run > high.returned_per_run

    def test_paper_operating_point_half_qualified(self):
        point = measure_scheduler_run(100, repetitions=2)
        assert 0.35 * 100 < point.returned_per_run < 0.7 * 100


class TestOverheadPoint:
    def test_extrapolation_arithmetic(self):
        point = OverheadPoint(
            clients=300,
            per_run_seconds=0.1,
            returned_per_run=150,
            history_rows=6000,
            pending_rows=300,
        )
        assert point.runs_needed(15_000) == pytest.approx(100.0)
        assert point.total_overhead(15_000) == pytest.approx(10.0)

    def test_zero_returned_is_infinite(self):
        point = OverheadPoint(1, 0.1, 0.0, 0, 0)
        assert point.runs_needed(10) == float("inf")


class TestSweeps:
    def test_figure2_point_fields(self):
        points = sweep_native((5,), duration=2.0)
        assert isinstance(points[0], Figure2Point)
        assert points[0].clients == 5
        assert points[0].mu_seconds == 2.0
        assert points[0].ratio_percent > 100

    def test_crossover_points(self):
        points = sweep_crossover(client_counts=(5,), duration=2.0, repetitions=1)
        point = points[0]
        assert isinstance(point, CrossoverPoint)
        assert point.native_overhead_s > 0
        assert point.declarative_total_s > 0
        assert point.declarative_wins == (
            point.declarative_total_s < point.native_overhead_s
        )


class TestDriveSteps:
    def test_progress_and_determinism(self):
        a = drive_steps(
            PaperListing1Protocol(), clients=20, steps=8,
            ops_per_txn=3, table_rows=100, seed=5,
        )
        b = drive_steps(
            PaperListing1Protocol(), clients=20, steps=8,
            ops_per_txn=3, table_rows=100, seed=5,
        )
        assert a.batches == b.batches
        assert a.total_qualified > 0
        assert a.per_step_ms > 0
