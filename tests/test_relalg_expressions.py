"""Expression language: binding, evaluation, None semantics."""

from repro.relalg.expressions import (
    and_,
    col,
    func,
    is_null,
    lit,
    not_,
    or_,
    split_conjuncts,
)
from repro.relalg.schema import Column, Schema

SCHEMA = Schema([Column("a", "t"), Column("b", "t"), Column("c", "t")])


def run(expr, row):
    return expr.bind(SCHEMA)(row)


class TestBasics:
    def test_column_and_literal(self):
        assert run(col("a"), (1, 2, 3)) == 1
        assert run(lit(42), (1, 2, 3)) == 42

    def test_qualified_column_string(self):
        assert run(col("t.b"), (1, 2, 3)) == 2

    def test_comparisons(self):
        row = (1, 2, 2)
        assert run(col("a") < col("b"), row)
        assert run(col("b") <= col("c"), row)
        assert run(col("b") == col("c"), row)
        assert run(col("a") != col("b"), row)
        assert not run(col("a") > col("b"), row)
        assert run(col("c") >= col("b"), row)

    def test_arithmetic(self):
        row = (3, 4, 0)
        assert run(col("a") + col("b"), row) == 7
        assert run(col("a") - lit(1), row) == 2
        assert run(col("a") * col("b"), row) == 12

    def test_in_set(self):
        assert run(col("a").in_([1, 5]), (1, 0, 0))
        assert not run(col("a").in_([2, 5]), (1, 0, 0))


class TestNullSemantics:
    def test_comparison_with_none_is_false(self):
        assert not run(col("a") == col("b"), (None, None, 0))
        assert not run(col("a") < lit(5), (None, 0, 0))
        assert not run(col("a") != lit(5), (None, 0, 0))

    def test_is_null(self):
        assert run(is_null(col("a")), (None, 0, 0))
        assert not run(is_null(col("a")), (1, 0, 0))

    def test_arithmetic_propagates_none(self):
        assert run(col("a") + lit(1), (None, 0, 0)) is None


class TestBoolean:
    def test_and_or_not(self):
        row = (1, 2, 3)
        assert run((col("a") < col("b")) & (col("b") < col("c")), row)
        assert run((col("a") > col("b")) | (col("b") < col("c")), row)
        assert run(~(col("a") > col("b")), row)

    def test_nary_constructors(self):
        row = (1, 2, 3)
        assert run(and_(), row) is True
        assert run(or_(), row) is False
        assert run(and_(col("a") == lit(1), col("b") == lit(2)), row)
        assert run(or_(col("a") == lit(9), col("b") == lit(2)), row)
        assert not run(not_(col("a") == lit(1)), row)

    def test_and_flattens(self):
        expr = (col("a") == lit(1)) & (col("b") == lit(2)) & (col("c") == lit(3))
        assert len(split_conjuncts(expr)) == 3


class TestIntrospection:
    def test_referenced_columns(self):
        expr = (col("t.a") == col("b")) & (col("c") > lit(1))
        refs = expr.referenced_columns()
        assert ("t", "a") in refs
        assert (None, "b") in refs
        assert (None, "c") in refs

    def test_func_escape_hatch(self):
        double_sum = func(lambda a, b: a + b > 4, "a", "b", label="sumgt4")
        assert run(double_sum, (2, 3, 0))
        assert not run(double_sum, (1, 2, 0))
        assert (None, "a") in double_sum.referenced_columns()

    def test_reprs_are_informative(self):
        expr = (col("a") == lit(1)) & ~col("b").in_([2])
        text = repr(expr)
        assert "a" in text and "=" in text and "IN" in text
