"""End-to-end correctness: both schedulers emit legal schedules.

The strongest claim in the reproduction: the *native* simulated DBMS
(lock manager) and the *declarative* middleware (Listing 1 as a query)
both produce schedules that the textbook analyzers certify as
SS2PL-legal, conflict-serializable and strict — two completely
different mechanisms, same guarantee, checked by a third, independent
implementation of the theory (repro.model.schedule).
"""

import pytest

from repro.core.simulation import MiddlewareSimulation
from repro.core.triggers import HybridTrigger
from repro.model.schedule import (
    Schedule,
    is_conflict_serializable,
    is_legal_ss2pl_order,
    is_strict,
)
from repro.protocols.ss2pl import SS2PLRelalgProtocol
from repro.protocols.ss2pl_incremental import SS2PLIncrementalProtocol
from repro.server.engine import SimulatedDBMS
from repro.workload.spec import WorkloadSpec

HOT = WorkloadSpec(reads_per_txn=3, writes_per_txn=3, table_rows=40)


class TestNativeSchedulerCorrectness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_native_trace_is_ss2pl_legal(self, seed):
        dbms = SimulatedDBMS(HOT, seed=seed)
        result = dbms.run_multi_user(12, duration=2.0, record_trace=True)
        assert result.trace is not None and len(result.trace) > 0
        schedule = Schedule(result.trace.requests)
        assert is_legal_ss2pl_order(schedule)
        assert is_conflict_serializable(schedule)
        assert is_strict(schedule)

    def test_native_trace_with_deadlocks_still_legal(self):
        # Very hot workload to force deadlock aborts into the trace.
        very_hot = WorkloadSpec(reads_per_txn=2, writes_per_txn=6, table_rows=15)
        dbms = SimulatedDBMS(very_hot, seed=7)
        result = dbms.run_multi_user(15, duration=3.0, record_trace=True)
        assert result.deadlock_aborts > 0
        schedule = Schedule(result.trace.requests)
        assert is_legal_ss2pl_order(schedule)
        assert is_conflict_serializable(schedule)

    def test_trace_statement_count_matches_result(self):
        dbms = SimulatedDBMS(HOT, seed=4)
        result = dbms.run_multi_user(8, duration=2.0, record_trace=True)
        assert result.trace.statement_count() == result.executed_statements

    def test_trace_off_by_default(self):
        dbms = SimulatedDBMS(HOT, seed=4)
        assert dbms.run_multi_user(4, duration=0.5).trace is None


class TestMiddlewareCorrectness:
    @pytest.mark.parametrize(
        "protocol_factory",
        [SS2PLRelalgProtocol, SS2PLIncrementalProtocol],
        ids=["relalg", "incremental"],
    )
    @pytest.mark.parametrize("seed", [11, 12])
    def test_dispatch_order_is_ss2pl_legal(self, protocol_factory, seed):
        simulation = MiddlewareSimulation(
            protocol=protocol_factory(),
            trigger=HybridTrigger(0.02, 10),
            spec=HOT,
            clients=12,
            seed=seed,
            record_trace=True,
        )
        result = simulation.run(3.0)
        assert result.trace is not None and len(result.trace) > 0
        schedule = Schedule(result.trace.requests)
        assert is_legal_ss2pl_order(schedule)
        assert is_conflict_serializable(schedule)
        assert is_strict(schedule)

    def test_aborts_appear_in_trace(self):
        very_hot = WorkloadSpec(reads_per_txn=1, writes_per_txn=5, table_rows=10)
        simulation = MiddlewareSimulation(
            protocol=SS2PLRelalgProtocol(),
            trigger=HybridTrigger(0.02, 10),
            spec=very_hot,
            clients=10,
            seed=3,
            deadlock_timeout=0.15,
            record_trace=True,
        )
        result = simulation.run(3.0)
        assert result.timeout_aborts > 0
        aborts_in_trace = sum(
            1 for __, r in result.trace if r.is_abort
        )
        assert aborts_in_trace == result.timeout_aborts


class TestCrossSchedulerAgreement:
    def test_both_mechanisms_serialize_equivalent_conflicts(self):
        """Same hot workload through both stacks: each must settle on a
        serializable outcome (serialization orders may differ — both
        must merely exist)."""
        from repro.model.schedule import serialization_order

        native = SimulatedDBMS(HOT, seed=9).run_multi_user(
            10, duration=2.0, record_trace=True
        )
        middleware = MiddlewareSimulation(
            protocol=SS2PLRelalgProtocol(),
            trigger=HybridTrigger(0.02, 10),
            spec=HOT,
            clients=10,
            seed=9,
            record_trace=True,
        ).run(2.0)
        for trace in (native.trace, middleware.trace):
            assert serialization_order(Schedule(trace.requests)) is not None
