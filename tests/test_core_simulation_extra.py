"""Additional middleware-simulation scenarios: adaptive protocols in the
loop, batch caps, trigger interplay, and denial explanations."""

import pytest

from repro.core.scheduler import SchedulerConfig
from repro.core.simulation import MiddlewareSimulation
from repro.core.triggers import FillLevelTrigger, HybridTrigger, TimeLapseTrigger
from repro.protocols.adaptive import AdaptiveConsistencyProtocol
from repro.protocols.relaxed import ReadCommittedProtocol
from repro.protocols.ss2pl import SS2PLRelalgProtocol
from repro.protocols.ss2pl_datalog import SS2PLDatalogProtocol
from repro.workload.spec import WorkloadSpec

SPEC = WorkloadSpec(reads_per_txn=3, writes_per_txn=3, table_rows=400)


class TestAdaptiveInTheLoop:
    def test_adaptive_runs_and_reports_switches(self):
        protocol = AdaptiveConsistencyProtocol(
            strict=SS2PLRelalgProtocol(),
            relaxed=ReadCommittedProtocol(),
            high_watermark=15,
            low_watermark=5,
        )
        simulation = MiddlewareSimulation(
            protocol=protocol,
            trigger=HybridTrigger(0.05, 40),  # big batches to cross the mark
            spec=SPEC,
            clients=30,
            seed=2,
        )
        result = simulation.run(3.0)
        assert result.completed_statements > 0
        # With 30 clients and a 15-request watermark the protocol must
        # have degraded at least once.
        assert protocol.switches >= 1


class TestSchedulerConfigInLoop:
    def test_max_batch_respected(self):
        simulation = MiddlewareSimulation(
            protocol=SS2PLRelalgProtocol(),
            trigger=FillLevelTrigger(10),
            spec=SPEC,
            clients=20,
            seed=3,
            scheduler_config=SchedulerConfig(max_batch=5),
        )
        result = simulation.run(2.0)
        assert result.batch_sizes
        assert max(result.batch_sizes) <= 5

    def test_no_pruning_grows_history(self):
        keep = MiddlewareSimulation(
            protocol=SS2PLRelalgProtocol(),
            trigger=HybridTrigger(0.02, 10),
            spec=SPEC,
            clients=10,
            seed=4,
            scheduler_config=SchedulerConfig(prune_history=False),
        )
        result = keep.run(2.0)
        assert result.completed_statements > 0


class TestTriggerInterplay:
    def test_pure_time_trigger_progresses(self):
        simulation = MiddlewareSimulation(
            protocol=SS2PLRelalgProtocol(),
            trigger=TimeLapseTrigger(0.01),
            spec=SPEC,
            clients=10,
            seed=5,
        )
        result = simulation.run(2.0)
        assert result.committed_transactions > 0

    def test_pure_fill_trigger_progresses(self):
        simulation = MiddlewareSimulation(
            protocol=SS2PLRelalgProtocol(),
            trigger=FillLevelTrigger(10),
            spec=SPEC,
            clients=10,
            seed=5,
        )
        result = simulation.run(2.0)
        assert result.committed_transactions > 0

    def test_huge_fill_threshold_still_progresses(self):
        # Threshold larger than the client count: only the blocked-work
        # re-check path can fire the scheduler; the run must not stall.
        simulation = MiddlewareSimulation(
            protocol=SS2PLRelalgProtocol(),
            trigger=HybridTrigger(0.05, 10_000),
            spec=SPEC,
            clients=10,
            seed=6,
        )
        result = simulation.run(2.0)
        assert result.completed_statements > 0


class TestDenialExplanations:
    def test_datalog_protocol_explains_denials(self):
        from tests.conftest import empty_history_table, empty_requests_table, request

        protocol = SS2PLDatalogProtocol()
        requests = empty_requests_table()
        history = empty_history_table()
        history.insert(request(1, 1, 0, "w", 5).as_row())
        requests.insert(request(7, 2, 0, "r", 5).as_row())
        decision = protocol.schedule(requests, history)
        assert 7 in decision.denials
        explanation = protocol.explain_denial(7)
        assert "wlocked" in explanation
        assert "no fact finished" in explanation

    def test_explain_before_schedule_raises(self):
        with pytest.raises(RuntimeError, match="no schedule"):
            SS2PLDatalogProtocol().explain_denial(1)
