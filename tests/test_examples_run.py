"""Every shipped example must run clean (they assert their own claims)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: Fast examples run in CI-style tests; paper_experiments.py replays the
#: full evaluation (~1 minute) and is exercised by the bench suite
#: instead.
FAST_EXAMPLES = [
    "quickstart.py",
    "custom_consistency.py",
    "datalog_playground.py",
    "range_scans.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs_clean(name):
    script = EXAMPLES_DIR / name
    assert script.exists(), f"missing example {name}"
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example produced no output"


def test_all_examples_are_listed_somewhere():
    readme = (EXAMPLES_DIR.parent / "README.md").read_text()
    for script in EXAMPLES_DIR.glob("*.py"):
        assert script.name in readme, (
            f"example {script.name} missing from README"
        )
