"""Table storage, indexes and the catalog."""

import pytest

from repro.relalg.table import Catalog, Table, TableError


@pytest.fixture
def table() -> Table:
    t = Table("t", ["id", "ta", "object"])
    t.insert_many([(1, 10, 5), (2, 10, 6), (3, 11, 5)])
    return t


class TestMutation:
    def test_insert_checks_arity(self, table):
        with pytest.raises(TableError, match="arity"):
            table.insert((4, 12))

    def test_delete_where(self, table):
        removed = table.delete_where(lambda row: row[1] == 10)
        assert removed == 2
        assert len(table) == 1

    def test_delete_rows_bag_semantics(self):
        t = Table("t", ["a"])
        t.insert_many([(1,), (1,), (2,)])
        assert t.delete_rows([(1,)]) == 1
        assert sorted(t.rows) == [(1,), (2,)]

    def test_delete_missing_row_is_noop(self, table):
        assert table.delete_rows([(99, 99, 99)]) == 0

    def test_clear(self, table):
        table.clear()
        assert len(table) == 0


class TestIndexes:
    def test_lookup_with_index(self, table):
        table.create_index("ta")
        assert sorted(table.lookup(["ta"], [10])) == [(1, 10, 5), (2, 10, 6)]

    def test_lookup_without_index_scans(self, table):
        assert sorted(table.lookup(["object"], [5])) == [(1, 10, 5), (3, 11, 5)]

    def test_index_maintained_on_insert(self, table):
        table.create_index("ta")
        table.insert((4, 10, 7))
        assert len(table.lookup(["ta"], [10])) == 3

    def test_index_maintained_on_delete(self, table):
        table.create_index("ta")
        table.delete_where(lambda row: row[0] == 1)
        assert len(table.lookup(["ta"], [10])) == 1

    def test_composite_index(self, table):
        table.create_index("ta", "object")
        assert table.lookup(["ta", "object"], [11, 5]) == [(3, 11, 5)]

    def test_unknown_index_column(self, table):
        with pytest.raises(Exception):
            table.create_index("nope")


class TestRelationView:
    def test_as_relation_snapshot(self, table):
        relation = table.as_relation()
        assert relation.cardinality == 3
        assert relation.schema.resolve("ta", "t") == 1

    def test_as_relation_with_alias(self, table):
        relation = table.as_relation("x")
        assert relation.schema.resolve("ta", "x") == 1

    def test_column_values(self, table):
        assert table.as_relation().column_values("ta") == [10, 10, 11]


class TestCatalog:
    def test_create_get_drop(self):
        catalog = Catalog()
        created = catalog.create("t", ["a"])
        assert catalog.get("t") is created
        assert "t" in catalog
        catalog.drop("t")
        assert "t" not in catalog

    def test_duplicate_create_rejected(self):
        catalog = Catalog()
        catalog.create("t", ["a"])
        with pytest.raises(TableError, match="already exists"):
            catalog.create("t", ["a"])

    def test_unknown_get_raises(self):
        with pytest.raises(TableError, match="unknown table"):
            Catalog().get("missing")


class TestDeltaJournalLifetime:
    """A table must not accumulate journal deltas for consumers that no
    longer exist (regression: a registered-then-dropped compiled plan
    used to leave journaling on forever)."""

    def test_journal_records_while_consumer_alive(self, table):
        class Consumer:
            pass

        consumer = Consumer()
        table.register_delta_consumer(consumer)
        mark = table.delta_state()
        table.insert((4, 12, 7))
        assert table.delta_since(*mark) == [(True, (4, 12, 7))]

    def test_journal_pruned_after_consumer_dropped(self, table):
        import gc

        class Consumer:
            pass

        consumer = Consumer()
        table.register_delta_consumer(consumer)
        mark = table.delta_state()
        table.insert((4, 12, 7))
        assert table._log  # journaling active
        del consumer
        gc.collect()
        assert table._log == []  # pruned immediately, not on next write
        assert table._log_enabled is False
        for i in range(300):
            table.insert((100 + i, 13, 8))
        assert table._log == []  # and never grows again
        # The old marker span is gone: a late consumer must rebuild.
        assert table.delta_since(*mark) is None

    def test_journal_survives_while_one_of_two_consumers_lives(self, table):
        import gc

        class Consumer:
            pass

        first, second = Consumer(), Consumer()
        table.register_delta_consumer(first)
        table.register_delta_consumer(second)
        table.delta_state()
        del first
        gc.collect()
        table.insert((4, 12, 7))
        assert table._log_enabled is True
        assert table._log  # still recording for the survivor

    def test_compiled_plan_is_a_registered_consumer(self):
        """End-to-end: a PlanCache-owned plan keeps the journal alive;
        dropping the cache and plan prunes it."""
        import gc

        from repro.relalg.expressions import col, lit
        from repro.relalg.plan import PlanCache
        from repro.relalg.query import Query

        requests = Table(
            "requests", ["id", "ta", "intrata", "operation", "object"]
        )
        history = Table(
            "history", ["id", "ta", "intrata", "operation", "object"]
        )

        def build(requests, history):
            finished = (
                Query.from_(history, alias="f")
                .where(col("f.operation") == lit("c"))
                .select("f.ta")
                .distinct()
            )
            return Query.from_(requests, alias="r").anti_join(
                Query.from_(finished, alias="fin"),
                on=col("r.ta") == col("fin.ta"),
            )

        cache = PlanCache(build)
        plan = cache.get(requests, history)
        plan.execute()
        history.insert((1, 1, 0, "c", -1))
        plan.execute()
        assert history._log_consumers  # the cached build registered
        del plan
        cache.clear()
        gc.collect()
        assert history._log_consumers == []
        assert history._log_enabled is False
        history.insert((2, 2, 0, "c", -1))
        assert history._log == []
