"""Table storage, indexes and the catalog."""

import pytest

from repro.relalg.table import Catalog, Table, TableError


@pytest.fixture
def table() -> Table:
    t = Table("t", ["id", "ta", "object"])
    t.insert_many([(1, 10, 5), (2, 10, 6), (3, 11, 5)])
    return t


class TestMutation:
    def test_insert_checks_arity(self, table):
        with pytest.raises(TableError, match="arity"):
            table.insert((4, 12))

    def test_delete_where(self, table):
        removed = table.delete_where(lambda row: row[1] == 10)
        assert removed == 2
        assert len(table) == 1

    def test_delete_rows_bag_semantics(self):
        t = Table("t", ["a"])
        t.insert_many([(1,), (1,), (2,)])
        assert t.delete_rows([(1,)]) == 1
        assert sorted(t.rows) == [(1,), (2,)]

    def test_delete_missing_row_is_noop(self, table):
        assert table.delete_rows([(99, 99, 99)]) == 0

    def test_clear(self, table):
        table.clear()
        assert len(table) == 0


class TestIndexes:
    def test_lookup_with_index(self, table):
        table.create_index("ta")
        assert sorted(table.lookup(["ta"], [10])) == [(1, 10, 5), (2, 10, 6)]

    def test_lookup_without_index_scans(self, table):
        assert sorted(table.lookup(["object"], [5])) == [(1, 10, 5), (3, 11, 5)]

    def test_index_maintained_on_insert(self, table):
        table.create_index("ta")
        table.insert((4, 10, 7))
        assert len(table.lookup(["ta"], [10])) == 3

    def test_index_maintained_on_delete(self, table):
        table.create_index("ta")
        table.delete_where(lambda row: row[0] == 1)
        assert len(table.lookup(["ta"], [10])) == 1

    def test_composite_index(self, table):
        table.create_index("ta", "object")
        assert table.lookup(["ta", "object"], [11, 5]) == [(3, 11, 5)]

    def test_unknown_index_column(self, table):
        with pytest.raises(Exception):
            table.create_index("nope")


class TestRelationView:
    def test_as_relation_snapshot(self, table):
        relation = table.as_relation()
        assert relation.cardinality == 3
        assert relation.schema.resolve("ta", "t") == 1

    def test_as_relation_with_alias(self, table):
        relation = table.as_relation("x")
        assert relation.schema.resolve("ta", "x") == 1

    def test_column_values(self, table):
        assert table.as_relation().column_values("ta") == [10, 10, 11]


class TestCatalog:
    def test_create_get_drop(self):
        catalog = Catalog()
        created = catalog.create("t", ["a"])
        assert catalog.get("t") is created
        assert "t" in catalog
        catalog.drop("t")
        assert "t" not in catalog

    def test_duplicate_create_rejected(self):
        catalog = Catalog()
        catalog.create("t", ["a"])
        with pytest.raises(TableError, match="already exists"):
            catalog.create("t", ["a"])

    def test_unknown_get_raises(self):
        with pytest.raises(TableError, match="unknown table"):
            Catalog().get("missing")
