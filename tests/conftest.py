"""Shared fixtures and instance builders for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.model.request import Operation, Request
from repro.relalg.table import Table

REQUEST_COLUMNS = ["id", "ta", "intrata", "operation", "object"]


def empty_requests_table() -> Table:
    return Table("requests", REQUEST_COLUMNS)


def empty_history_table() -> Table:
    return Table("history", REQUEST_COLUMNS)


def random_scheduling_instance(
    rng: random.Random,
    pending: int = 15,
    history_transactions: int = 10,
    objects: int = 30,
    finished_probability: float = 0.3,
    pending_ops_per_txn: int = 1,
) -> tuple[Table, Table]:
    """A random (requests, history) pair in Table 2 schema.

    History transactions execute 1-4 random operations each and finish
    (commit/abort) with the given probability; pending requests belong
    to fresh transactions.
    """
    requests = empty_requests_table()
    history = empty_history_table()
    rid = 1
    for ta in range(1, history_transactions + 1):
        op_count = rng.randint(1, 4)
        for intrata in range(op_count):
            history.insert(
                (rid, ta, intrata, rng.choice(["r", "w"]), rng.randrange(objects))
            )
            rid += 1
        if rng.random() < finished_probability:
            history.insert((rid, ta, op_count, rng.choice(["c", "a"]), -1))
            rid += 1
    for k in range(pending):
        ta = history_transactions + 1 + k
        for intrata in range(pending_ops_per_txn):
            requests.insert(
                (rid, ta, intrata, rng.choice(["r", "w"]), rng.randrange(objects))
            )
            rid += 1
    return requests, history


def request(
    rid: int, ta: int, intrata: int, op: str, obj: int = -1
) -> Request:
    """Terse request constructor for tests."""
    return Request(rid, ta, intrata, Operation.from_code(op), obj)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
