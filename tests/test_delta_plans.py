"""Incremental delta plans vs full recomputation.

The delta engine (:mod:`repro.relalg.delta`) claims that after any
sequence of base-table inserts and deletes, ``DeltaPlan.refresh()``
yields exactly the relation a from-scratch evaluation of the same
logical plan would — per operator, under bag semantics, including
retraction paths.  These property tests drive every lowered operator
through randomized insert/delete sequences over small value domains
(forcing duplicate rows, group churn, and join-key collisions) and
compare multisets against the interpreted reference each step.

A second group pins the lowering *refusals* (order-dependent or
key-less shapes the engine cannot maintain exactly) and the bounded
delta journal the plans consume.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.relalg.delta import (
    DeltaLoweringError,
    DeltaPlan,
    lower_delta_plan,
)
from repro.relalg.expressions import col, is_null, lit
from repro.relalg.query import Query, cte
from repro.relalg.table import Table

COLUMNS = ["id", "ta", "intrata", "operation", "object"]


def _random_row(rng: random.Random) -> tuple:
    # Tiny domains on purpose: duplicates, key collisions and group
    # churn are the retraction-heavy paths worth exercising.
    return (
        rng.randrange(10),
        rng.randrange(1, 5),
        rng.randrange(3),
        rng.choice(["r", "w", "c"]),
        rng.randrange(6),
    )


def _mutate(rng: random.Random, tables: list[Table]) -> None:
    table = rng.choice(tables)
    action = rng.random()
    if action < 0.55 or not table.rows:
        table.insert_many(_random_row(rng) for __ in range(rng.randrange(1, 4)))
    elif action < 0.9:
        victim = rng.choice(table.rows)
        table.delete_rows([victim])
    else:
        obj = rng.randrange(6)
        pos = table.schema.resolve("object")
        table.delete_where(lambda row: row[pos] == obj)


def assert_incremental_matches(
    make_query, tables: list[Table], seed: int = 0, steps: int = 40
) -> DeltaPlan:
    """Drive *steps* random mutations; after each, the maintained plan
    must equal a fresh interpreted execution as a multiset."""
    rng = random.Random(seed)
    plan = lower_delta_plan(make_query())
    for step in range(steps):
        _mutate(rng, tables)
        got = Counter(plan.refresh().rows)
        want = Counter(make_query().execute().rows)
        assert got == want, f"divergence after mutation {step}"
    # The whole run must have been pure delta maintenance: one rebuild
    # (the initial seeding), never a fallback recomputation.
    assert plan.stats["rebuilds"] == 1
    return plan


@pytest.fixture
def requests() -> Table:
    return Table("requests", COLUMNS)


@pytest.fixture
def history() -> Table:
    return Table("history", COLUMNS)


class TestUnaryOperators:
    def test_filter_project(self, requests):
        assert_incremental_matches(
            lambda: Query.from_(requests, "r")
            .where(col("r.operation") == lit("w"))
            .select("r.id", "r.object"),
            [requests],
        )

    def test_project_keeps_duplicates(self, requests):
        assert_incremental_matches(
            lambda: Query.from_(requests, "r").select(
                "r.operation", "r.object"
            ),
            [requests],
            seed=1,
        )

    def test_extend(self, requests):
        assert_incremental_matches(
            lambda: Query.from_(requests, "r")
            .extend("load", col("r.object") + col("r.ta"))
            .select("r.ta", "load"),
            [requests],
            seed=2,
        )

    def test_distinct(self, requests):
        assert_incremental_matches(
            lambda: Query.from_(requests, "r")
            .select("r.operation", "r.object")
            .distinct(),
            [requests],
            seed=3,
        )

    def test_order_by_is_an_unordered_multiset(self, requests):
        # ORDER BY lowers to identity: delta outputs are unordered
        # multisets, equality is multiset equality.
        assert_incremental_matches(
            lambda: Query.from_(requests, "r")
            .select("r.id", "r.ta")
            .order_by("id"),
            [requests],
            seed=4,
        )


class TestAggregates:
    def test_grouped_aggregates(self, requests):
        assert_incremental_matches(
            lambda: Query.from_(requests, "r").aggregate(
                ["r.ta"],
                [
                    ("count", "*", "n"),
                    ("sum", "r.object", "total"),
                    ("min", "r.id", "lo"),
                    ("max", "r.id", "hi"),
                    ("avg", "r.object", "mean"),
                ],
            ),
            [requests],
            seed=5,
        )

    def test_global_aggregate_emits_empty_input_row(self, requests):
        # SQL semantics: a global aggregate yields one row even over an
        # empty input — including after deletions empty the table again.
        make = lambda: Query.from_(requests, "r").aggregate(
            [], [("count", "*", "n"), ("sum", "r.object", "total")]
        )
        plan = lower_delta_plan(make())
        assert Counter(plan.refresh().rows) == Counter(make().execute().rows)
        assert_incremental_matches(make, [requests], seed=6)


class TestJoins:
    def test_inner_join_with_residual(self, requests, history):
        assert_incremental_matches(
            lambda: Query.from_(requests, "r")
            .join(
                Query.from_(history, "h"),
                on=(col("r.object") == col("h.object"))
                & (col("r.ta") != col("h.ta")),
            )
            .select("r.id", "h.id"),
            [requests, history],
            seed=7,
        )

    def test_self_join(self, requests):
        assert_incremental_matches(
            lambda: Query.from_(requests, "a")
            .join(
                Query.from_(requests, "b"),
                on=(col("a.object") == col("b.object"))
                & (col("a.id") != col("b.id")),
            )
            .select("a.id", "b.id"),
            [requests],
            seed=8,
        )

    def test_left_join_pads_and_unpads(self, requests, history):
        assert_incremental_matches(
            lambda: Query.from_(requests, "r")
            .left_join(
                Query.from_(history, "h"),
                on=col("r.object") == col("h.object"),
            )
            .select("r.id", "h.id"),
            [requests, history],
            seed=9,
        )

    def test_left_join_null_filter_reduction(self, requests, history):
        # The NOT-EXISTS idiom: left join + IS NULL.  The optimizer's
        # outer-join reduction may rewrite this; either lowering must
        # match the interpreted result.
        assert_incremental_matches(
            lambda: Query.from_(requests, "r")
            .left_join(
                Query.from_(history, "h"),
                on=col("r.object") == col("h.object"),
            )
            .where(is_null(col("h.id")))
            .select("r.id"),
            [requests, history],
            seed=10,
        )

    def test_semi_join(self, requests, history):
        assert_incremental_matches(
            lambda: Query.from_(requests, "r")
            .semi_join(
                Query.from_(history, "h"),
                on=col("r.object") == col("h.object"),
            )
            .select("r.id"),
            [requests, history],
            seed=11,
        )

    def test_anti_join_equi(self, requests, history):
        assert_incremental_matches(
            lambda: Query.from_(requests, "r")
            .anti_join(
                Query.from_(history, "h"),
                on=col("r.object") == col("h.object"),
            )
            .select("r.id"),
            [requests, history],
            seed=12,
        )

    def test_anti_join_with_residual(self, requests, history):
        assert_incremental_matches(
            lambda: Query.from_(requests, "r")
            .anti_join(
                Query.from_(history, "h"),
                on=(col("r.object") == col("h.object"))
                & (col("r.ta") != col("h.ta")),
            )
            .select("r.id"),
            [requests, history],
            seed=13,
        )


class TestSetOps:
    @pytest.mark.parametrize(
        "kind", ["union_all", "union", "except_", "except_all", "intersect"]
    )
    def test_setop_matches_reference(self, kind, requests, history):
        def make():
            left = Query.from_(requests, "r").select("r.ta", "r.object")
            right = Query.from_(history, "h").select("h.ta", "h.object")
            return getattr(left, kind)(right)

        assert_incremental_matches(make, [requests, history], seed=14)


class TestCtes:
    def test_shared_cte_computed_once_and_consistent(self, requests):
        def make():
            writers = cte(
                Query.from_(requests, "r")
                .where(col("r.operation") == lit("w"))
                .select("r.ta", "r.object"),
                "Writers",
            )
            left = Query.from_(writers, "a").select("a.ta")
            right = Query.from_(writers, "b").select("b.ta")
            return left.union_all(right)

        assert_incremental_matches(make, [requests], seed=15)


class TestLoweringRefusals:
    def test_limit_refused(self, requests):
        query = Query.from_(requests, "r").limit(3)
        with pytest.raises(DeltaLoweringError):
            lower_delta_plan(query)

    def test_left_join_without_equi_keys_refused(self, requests, history):
        query = Query.from_(requests, "r").left_join(
            Query.from_(history, "h"),
            on=col("r.ta") != col("h.ta"),
        )
        with pytest.raises(DeltaLoweringError):
            lower_delta_plan(query)


class TestJournalStaysBounded:
    def test_bounded_over_ten_thousand_steps(self):
        """The regression the delta journal redesign pins: with a live
        plan consuming deltas every step — and a laggard cursor that
        stops consuming — a 10^4-step insert/delete run must not grow
        the journal past its compaction bound."""
        table = Table("requests", COLUMNS)
        rng = random.Random(42)
        plan = lower_delta_plan(
            Query.from_(table, "r")
            .where(col("r.operation") == lit("w"))
            .select("r.id", "r.object")
        )
        laggard = table.delta_cursor()
        laggard.take()  # positioned once, then never advanced again
        for step in range(10_000):
            table.insert(_random_row(rng))
            if len(table.rows) > 50:
                table.delete_rows([rng.choice(table.rows)])
            plan.refresh()
            bound = max(256, 4 * len(table.rows))
            assert len(table._log) <= bound, f"journal unbounded at {step}"
        # The laggard was compacted past, not kept as a leak: its next
        # take() reports a lost position (None) rather than stale data.
        assert laggard.take() is None
        assert plan.stats["rebuilds"] == 1
