"""Report rendering: fixed-width tables, ASCII plots, paper-vs-measured.

The benchmark harness prints the same rows/series the paper reports, so
each bench module ends with a table (Table 1/2 style) or a plot
(Figure 2 style) rendered by these helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table with a header rule."""
    columns = len(headers)
    cells = [[_fmt(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row}"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


@dataclass(frozen=True, slots=True)
class ComparisonRow:
    """One paper-vs-measured record for EXPERIMENTS.md."""

    quantity: str
    paper: object
    measured: object
    note: str = ""


def render_comparison(rows: Sequence[ComparisonRow], title: str = "") -> str:
    return render_table(
        ["quantity", "paper", "measured (this repo)", "note"],
        [[r.quantity, r.paper, r.measured, r.note] for r in rows],
        title=title,
    )


class AsciiPlot:
    """A small scatter/line plot on a character grid.

    Supports a log10 y-axis — Figure 2 plots the MU/SU ratio on a log
    scale from 100 % to 10000 %.
    """

    def __init__(
        self,
        width: int = 72,
        height: int = 20,
        log_y: bool = False,
        title: str = "",
        x_label: str = "",
        y_label: str = "",
    ) -> None:
        self.width = width
        self.height = height
        self.log_y = log_y
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self._series: list[tuple[str, list[tuple[float, float]]]] = []

    def add_series(self, marker: str, points: Sequence[tuple[float, float]]) -> None:
        if len(marker) != 1:
            raise ValueError("marker must be a single character")
        self._series.append((marker, [(float(x), float(y)) for x, y in points]))

    def _y_transform(self, y: float) -> float:
        if self.log_y:
            if y <= 0:
                raise ValueError("log-scale plot requires positive y values")
            return math.log10(y)
        return y

    def render(self) -> str:
        points = [p for __, series in self._series for p in series]
        if not points:
            return f"{self.title}\n(no data)"
        xs = [p[0] for p in points]
        ys = [self._y_transform(p[1]) for p in points]
        x_min, x_max = min(xs), max(xs)
        y_min, y_max = min(ys), max(ys)
        if x_max == x_min:
            x_max = x_min + 1
        if y_max == y_min:
            y_max = y_min + 1

        grid = [[" "] * self.width for __ in range(self.height)]
        for marker, series in self._series:
            for x, y in series:
                ty = self._y_transform(y)
                col = round((x - x_min) / (x_max - x_min) * (self.width - 1))
                row = round((ty - y_min) / (y_max - y_min) * (self.height - 1))
                grid[self.height - 1 - row][col] = marker

        lines = []
        if self.title:
            lines.append(self.title)
        for i, row_chars in enumerate(grid):
            level = y_max - (y_max - y_min) * i / (self.height - 1)
            value = 10**level if self.log_y else level
            axis = f"{value:>10.4g} |"
            lines.append(axis + "".join(row_chars))
        lines.append(" " * 11 + "+" + "-" * self.width)
        lines.append(
            " " * 11
            + f"{x_min:<10.4g}"
            + " " * max(0, self.width - 20)
            + f"{x_max:>10.4g}"
        )
        if self.x_label:
            lines.append(" " * 11 + self.x_label.center(self.width))
        legend = "   ".join(f"{m} = {i}" for i, (m, __) in enumerate(self._series))
        if self.y_label or legend:
            lines.append(f"y: {self.y_label}" if self.y_label else "")
        return "\n".join(lines)
