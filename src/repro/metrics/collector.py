"""Counters, gauges and timers for instrumenting runs.

Well-known metric families emitted by the schedulers (pass a collector
via ``api.make_scheduler(metrics=...)`` to receive them):

- ``scheduler.*`` — per-step core counters: batches, qualified
  requests, history gauge, ``orphan_reaps`` / ``timeout_aborts`` /
  ``sheds`` from the recovery and admission paths.
- ``scheduler.delta.*`` — incremental-maintenance timers/counters of
  the ``compiled-delta`` backend (rows consumed, rebuilds).
- ``scheduler.xshard.*`` — the sharded facade's cross-shard protocol:
  ``coordinated`` (transactions that spanned shards), ``broadcasts``
  (termination fan-outs), ``retries`` / ``giveups`` (two-phase
  abort-and-retry outcomes), ``stale_grants`` (grants from a
  superseded incarnation, dropped).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List

from repro.metrics.stats import Summary, summarize


class Timer:
    """Accumulates duration samples; usable as a context manager factory."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[float] = []

    @contextmanager
    def measure(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.samples.append(time.perf_counter() - start)

    def add(self, duration: float) -> None:
        self.samples.append(duration)

    @property
    def total(self) -> float:
        return sum(self.samples)

    def summary(self) -> Summary:
        return summarize(self.samples)


class MetricsCollector:
    """A namespace of counters, gauges and timers.

    The scheduler and server components accept an optional collector;
    when absent, instrumentation is skipped — callers use
    :meth:`MetricsCollector.null` discipline via plain ``None`` checks.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self._timers: Dict[str, Timer] = {}
        self.series: Dict[str, List[tuple[float, float]]] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def timer(self, name: str) -> Timer:
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    def record_point(self, series: str, x: float, y: float) -> None:
        """Append an (x, y) observation to a named series (for plots)."""
        self.series.setdefault(series, []).append((x, y))

    def record_maintenance(
        self, stats: Dict[str, object], prefix: str = "delta"
    ) -> None:
        """Fold one evaluation's delta-maintenance observation into the
        namespace: per-step delta sizes become counters, maintenance
        time (total and per operator) becomes timers, and plan-cache
        totals become gauges.

        ``stats`` is the dict a backend's ``maintenance_stats()``
        returns — cumulative counters plus a ``last`` per-step snapshot.
        Only the snapshot is accumulated here, so calling once per
        scheduler step never double-counts.
        """
        last = stats.get("last") or {}
        self.incr(f"{prefix}.inserts", int(last.get("inserts", 0)))
        self.incr(f"{prefix}.retracts", int(last.get("retracts", 0)))
        if last.get("rebuild"):
            self.incr(f"{prefix}.rebuilds")
        self.timer(f"{prefix}.maintain").add(float(last.get("maintain_s", 0.0)))
        for label, seconds in (last.get("operator_s") or {}).items():
            self.timer(f"{prefix}.op.{label}").add(float(seconds))
        self.gauge(f"{prefix}.cache_hits", float(stats.get("cache_hits", 0)))
        self.gauge(
            f"{prefix}.cache_misses", float(stats.get("cache_misses", 0))
        )

    def timers(self) -> Dict[str, Timer]:
        return dict(self._timers)

    def report(self) -> str:
        lines = []
        for name in sorted(self.counters):
            lines.append(f"counter {name} = {self.counters[name]}")
        for name in sorted(self.gauges):
            lines.append(f"gauge   {name} = {self.gauges[name]:.6g}")
        for name in sorted(self._timers):
            timer = self._timers[name]
            if timer.samples:
                lines.append(f"timer   {name}: {timer.summary()}")
        return "\n".join(lines)
