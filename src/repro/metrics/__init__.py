"""Measurement, statistics and report rendering.

Every experiment in :mod:`repro.bench` funnels its numbers through this
package: counters/timers during runs (:mod:`repro.metrics.collector`),
summary statistics (:mod:`repro.metrics.stats`), and rendering of the
paper's tables/figures as fixed-width text and ASCII plots
(:mod:`repro.metrics.reporting`).
"""

from repro.metrics.stats import Summary, summarize, percentile
from repro.metrics.collector import MetricsCollector, Timer
from repro.metrics.reporting import (
    AsciiPlot,
    ComparisonRow,
    render_comparison,
    render_table,
)

__all__ = [
    "Summary",
    "summarize",
    "percentile",
    "MetricsCollector",
    "Timer",
    "AsciiPlot",
    "ComparisonRow",
    "render_comparison",
    "render_table",
]
