"""Summary statistics over numeric samples."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100])."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    weight = rank - low
    return float(ordered[low] * (1 - weight) + ordered[high] * weight)


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-plus summary of a sample set."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float
    total: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.6g} sd={self.stdev:.3g} "
            f"min={self.minimum:.6g} p50={self.p50:.6g} p95={self.p95:.6g} "
            f"p99={self.p99:.6g} max={self.maximum:.6g}"
        )


def summarize(samples: Sequence[float]) -> Summary:
    """Compute a :class:`Summary`; raises on empty input."""
    if not samples:
        raise ValueError("cannot summarize an empty sample set")
    n = len(samples)
    mean = sum(samples) / n
    # Sample (Bessel-corrected) variance; a single observation has none.
    variance = (
        sum((x - mean) ** 2 for x in samples) / (n - 1) if n > 1 else 0.0
    )
    return Summary(
        count=n,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=float(min(samples)),
        p50=percentile(samples, 50),
        p95=percentile(samples, 95),
        p99=percentile(samples, 99),
        maximum=float(max(samples)),
        total=float(sum(samples)),
    )
