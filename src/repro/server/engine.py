"""Event-driven multi-user execution and single-user replay.

:class:`SimulatedDBMS` reproduces the paper's Section 4.2 measurement
method:

* :meth:`SimulatedDBMS.run_multi_user` — N closed-loop clients run
  OLTP transactions back-to-back under the native strict-2PL scheduler
  for a fixed virtual-time window (the paper used 240 s), counting
  committed work, lock waits and deadlock aborts;
* :func:`single_user_replay_time` — the time the logged (committed)
  statement sequence takes replayed as a single transaction holding one
  exclusive table lock, which the paper uses as the scheduling-overhead
  lower bound.

Throughput collapse at high client counts is *emergent*: blocked
transactions keep their locks (SS2PL), so waiting cascades, and deadlock
victims discard executed work.  The cost model only prices CPU actions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.model.request import Operation
from repro.server.costmodel import CostModel, PAPER_CALIBRATION
from repro.server.database import DataTable
from repro.server.locks import Grant, LockManager, LockMode
from repro.sim.simulator import Simulator
from repro.workload.generator import StatementProfile, TransactionFactory
from repro.workload.spec import WorkloadSpec
from repro.workload.traces import Trace


@dataclass
class MultiUserResult:
    """Outcome of one multi-user window."""

    clients: int
    duration: float
    committed_statements: int = 0
    committed_transactions: int = 0
    executed_statements: int = 0
    wasted_statements: int = 0
    deadlock_aborts: int = 0
    lock_waits: int = 0
    lock_acquisitions: int = 0
    su_replay_time: float = 0.0
    #: The produced schedule, when recording was requested ("In a
    #: separate run, we also logged the produced schedule" — §4.1).
    trace: Optional["Trace"] = None

    @property
    def throughput(self) -> float:
        """Committed statements per second."""
        return self.committed_statements / self.duration if self.duration else 0.0

    @property
    def mu_over_su_percent(self) -> float:
        """Figure 2's y-axis: MU execution time as % of SU replay time of
        the same (committed) statement sequence."""
        if self.su_replay_time <= 0:
            return float("inf")
        return 100.0 * self.duration / self.su_replay_time

    @property
    def scheduling_overhead(self) -> float:
        """Paper's overhead definition: MU window minus SU replay time."""
        return self.duration - self.su_replay_time


class _Client:
    """Closed-loop client state for the event-driven run."""

    __slots__ = ("index", "ta", "profile", "position", "factory")

    def __init__(self, index: int, factory: TransactionFactory) -> None:
        self.index = index
        self.factory = factory
        self.ta = -1
        self.profile: list[StatementProfile] = []
        self.position = 0

    @property
    def current(self) -> StatementProfile:
        return self.profile[self.position]

    @property
    def done(self) -> bool:
        return self.position >= len(self.profile)


class SimulatedDBMS:
    """The simulated server with its native internal scheduler."""

    def __init__(
        self,
        spec: WorkloadSpec,
        cost_model: CostModel = PAPER_CALIBRATION,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.cost = cost_model
        self.seed = seed

    # -- multi-user mode -------------------------------------------------------

    def run_multi_user(
        self,
        clients: int,
        duration: float,
        mpl_cap: Optional[int] = None,
        record_trace: bool = False,
    ) -> MultiUserResult:
        """Run *clients* concurrent closed-loop clients for *duration*
        virtual seconds under isolation level serializable.

        ``record_trace`` logs the produced schedule (every executed
        statement and termination, in completion order) into
        ``result.trace``, as the paper does for the SU replay and as the
        correctness tests do to verify the native scheduler emits
        SS2PL-legal schedules.

        ``mpl_cap`` enables EQMS-style *external* admission control
        (the paper's related work [20][21]): at most that many
        transactions are active inside the DBMS at once, the rest queue
        outside.  Capping the MPL below the machine's thrashing knee
        restores throughput at high client counts — the external-
        scheduling premise the declarative middleware builds on.
        """
        if clients <= 0:
            raise ValueError("clients must be positive")
        if mpl_cap is not None and mpl_cap <= 0:
            raise ValueError("mpl_cap must be positive when given")
        sim = Simulator()
        locks = LockManager()
        rng = random.Random(self.seed)
        result = MultiUserResult(clients=clients, duration=duration)
        cpu_free = 0.0
        ta_counter = 0
        client_of_ta: dict[int, _Client] = {}
        end = duration

        clients_list = [
            _Client(i, TransactionFactory(self.spec, random.Random(rng.randrange(2**63))))
            for i in range(clients)
        ]
        effective_mpl = clients if mpl_cap is None else min(clients, mpl_cap)
        statement_cost = self.cost.mu_statement_cost(effective_mpl)

        from collections import deque

        admission_queue: deque[_Client] = deque()
        admitted = 0
        trace = Trace() if record_trace else None
        trace_ids = 0

        def record(ta: int, intrata: int, operation: Operation, obj: int) -> None:
            nonlocal trace_ids
            if trace is None:
                return
            trace_ids += 1
            from repro.model.request import Request

            trace.record(
                sim.now, Request(trace_ids, ta, intrata, operation, obj)
            )

        def on_cpu(cost: float, action) -> None:
            nonlocal cpu_free
            start = max(sim.now, cpu_free)
            completion = start + cost
            cpu_free = completion
            if completion <= end:
                sim.schedule_at(completion, action)
            # Work that would finish past the window is cut off, like the
            # paper's in-flight transactions at the 240 s mark.

        def request_admission(client: _Client) -> None:
            nonlocal admitted
            if mpl_cap is None or admitted < mpl_cap:
                admitted += 1
                begin(client)
            else:
                admission_queue.append(client)

        def release_slot() -> None:
            nonlocal admitted
            admitted -= 1
            if admission_queue and sim.now < end:
                admitted += 1
                begin(admission_queue.popleft())

        def begin(client: _Client) -> None:
            nonlocal ta_counter
            ta_counter += 1
            client.ta = ta_counter
            client.profile = client.factory.next_profile()
            client.position = 0
            client_of_ta[client.ta] = client
            issue(client)

        def issue(client: _Client) -> None:
            if sim.now >= end:
                return
            stmt = client.current
            mode = LockMode.S if stmt.operation is Operation.READ else LockMode.X
            if locks.acquire(client.ta, stmt.obj, mode):
                on_cpu(statement_cost, lambda c=client: statement_done(c))
            else:
                cycle = locks.find_deadlock(client.ta)
                if cycle:
                    abort_victim(cycle)

        def statement_done(client: _Client) -> None:
            result.executed_statements += 1
            stmt = client.current
            record(client.ta, client.position, stmt.operation, stmt.obj)
            client.position += 1
            if client.done:
                on_cpu(self.cost.commit_cost, lambda c=client: commit(c))
            else:
                issue(client)

        def commit(client: _Client) -> None:
            result.committed_statements += len(client.profile)
            result.committed_transactions += 1
            record(client.ta, len(client.profile), Operation.COMMIT, -1)
            finish_transaction(client.ta)
            release_slot()
            request_admission(client)

        def finish_transaction(ta: int) -> None:
            client_of_ta.pop(ta, None)
            for grant in locks.release_all(ta):
                resume(grant)

        def resume(grant: Grant) -> None:
            client = client_of_ta.get(grant.ta)
            if client is None or client.done:
                return
            on_cpu(statement_cost, lambda c=client: statement_done(c))

        def abort_victim(cycle: list[int]) -> None:
            victim_ta = min(
                cycle,
                key=lambda ta: (
                    client_of_ta[ta].position if ta in client_of_ta else 0,
                    -ta,
                ),
            )
            victim = client_of_ta.pop(victim_ta, None)
            result.deadlock_aborts += 1
            if victim is not None:
                record(victim_ta, victim.position, Operation.ABORT, -1)
                result.wasted_statements += victim.position
                rollback_cost = self.cost.abort_cost * max(1, victim.position)
                for grant in locks.release_all(victim_ta):
                    resume(grant)
                restart_at = sim.now + self.cost.restart_delay + rollback_cost
                if restart_at <= end:
                    sim.schedule_at(restart_at, lambda c=victim: begin(c))

        for client in clients_list:
            request_admission(client)
        sim.run_until(end)

        result.lock_waits = locks.waits
        result.lock_acquisitions = locks.acquisitions
        result.su_replay_time = single_user_replay_time(
            result.committed_statements, self.cost
        )
        result.trace = trace
        return result

    # -- sweep convenience -------------------------------------------------------

    def sweep(
        self,
        client_counts,
        duration: float,
        mpl_cap: Optional[int] = None,
    ) -> list[MultiUserResult]:
        """Figure 2's x-axis sweep (optionally MPL-capped, E12)."""
        return [
            self.run_multi_user(n, duration, mpl_cap=mpl_cap)
            for n in client_counts
        ]


def single_user_replay_time(
    statements: int, cost_model: CostModel = PAPER_CALIBRATION
) -> float:
    """Virtual time to replay *statements* in single-user mode.

    Mirrors the paper's method: "we acquired an exclusive lock on the
    table to reduce locking overhead and processed the same statement
    sequence in a single transaction" — bare statement costs plus one
    commit.
    """
    if statements < 0:
        raise ValueError("statements must be non-negative")
    return cost_model.su_replay_time(statements, transactions=1)


class BatchServer:
    """Execution interface for the *external* declarative scheduler.

    The middleware sends batches of already-scheduled (conflict-free)
    requests; the server's own scheduling is bypassed as far as possible
    (paper Section 3.3), so a batch costs a fixed round-trip plus bare
    statement costs.  The server optionally applies write effects to a
    :class:`DataTable` so application-level invariants are observable.
    """

    def __init__(
        self,
        cost_model: CostModel = PAPER_CALIBRATION,
        table: Optional[DataTable] = None,
    ) -> None:
        self.cost = cost_model
        self.table = table
        self.batches_executed = 0
        self.statements_executed = 0
        self.busy_time = 0.0

    def execute_batch(self, batch) -> float:
        """Execute a batch of requests; returns the service time."""
        statements = sum(1 for r in batch if r.operation.is_data_access)
        service_time = self.cost.batch_execution_time(statements)
        if self.table is not None:
            for request in batch:
                if request.operation is Operation.WRITE:
                    self.table.update(request.obj, 1, ta=request.ta)
                elif request.operation is Operation.COMMIT:
                    self.table.commit(request.ta)
                elif request.operation is Operation.ABORT:
                    self.table.rollback(request.ta)
        self.batches_executed += 1
        self.statements_executed += statements
        self.busy_time += service_time
        return service_time
