"""Calibrated cost model for the simulated DBMS.

Calibration anchors come from the paper's own numbers (Section 4.2.2):

* Single-user replay: 550 055 statements in 194 s → 0.353 ms/statement;
  the 500-client trace replayed 48 267 statements in 15 s → 0.311 ms.
  We use **0.35 ms** as the bare statement cost (parse+execute+buffer
  access on the 2.8 GHz core, database memory-resident).
* Multi-user mode adds the native scheduler's work per statement: lock
  table access, latching, and per-client context-switch/bookkeeping
  pressure that grows with the multiprogramming level (the 2 GB machine
  juggling hundreds of connections).  At 300 clients the paper measured
  an overhead of 46 s over 550 055 statements ≈ 0.08 ms/statement.
* Lock *waiting*, deadlock aborts and restarts are not cost-model
  constants: they **emerge** from the lock-manager simulation.
* The catastrophic collapse between the paper's 300-client point
  (ratio 124 %) and its 500-client point (ratio 1600 %) is far larger
  than uniform row-lock contention alone can produce (with L = 40 locks
  per transaction over D = 100 000 rows, the analytic deadlock rate
  N·L⁴/4D² stays small at N = 500).  It is a **multiprogramming-level
  (MPL) overload** effect of the 2 GB single-core machine — the very
  phenomenon the paper's cited related work ([20], [21] Schroeder et
  al.) addresses by *externally* capping the MPL.  We model it as a
  super-linear per-statement penalty beyond an MPL knee
  (``thrash_coeff * max(0, clients - mpl_knee)**2``), calibrated so the
  300- and 500-client anchors land near the paper's ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CostModel:
    """Virtual-time costs (seconds) for server activities.

    Attributes
    ----------
    statement_cost:
        Bare execution cost of one SELECT/UPDATE, single-user mode.
    lock_overhead:
        Added lock-manager CPU per statement in multi-user mode.
    switch_overhead:
        Per-statement scheduling/context bookkeeping coefficient; the
        effective per-statement cost grows by
        ``switch_overhead * log2(1 + active_clients)``.
    commit_cost:
        Cost of a commit (log force etc.), both modes.
    abort_cost:
        CPU spent rolling back one *statement* of an aborted transaction.
    restart_delay:
        Pause before a deadlock victim restarts.
    deadlock_check_cost:
        CPU per waits-for-graph probe (charged on each block).
    batch_fixed_cost:
        Fixed per-batch round-trip cost for externally scheduled batch
        execution (the declarative middleware sends batches; the paper
        expects "a performance improvement" from batching).
    mpl_knee, thrash_coeff:
        MPL-overload model: beyond *mpl_knee* concurrently active
        clients, each statement pays ``thrash_coeff * (n - knee)**2``
        extra (memory pressure / paging / convoying on the saturated
        machine — see module docstring).
    """

    statement_cost: float = 0.35e-3
    lock_overhead: float = 0.02e-3
    switch_overhead: float = 0.004e-3
    commit_cost: float = 0.5e-3
    abort_cost: float = 0.05e-3
    restart_delay: float = 1.0e-3
    deadlock_check_cost: float = 0.01e-3
    batch_fixed_cost: float = 1.0e-3
    mpl_knee: int = 350
    thrash_coeff: float = 2.0e-7

    def mu_statement_cost(self, active_clients: int) -> float:
        """Multi-user CPU cost of one statement at the given MPL."""
        over_knee = max(0, active_clients - self.mpl_knee)
        return (
            self.statement_cost
            + self.lock_overhead
            + self.switch_overhead * math.log2(1 + max(0, active_clients))
            + self.thrash_coeff * over_knee * over_knee
        )

    def su_statement_cost(self) -> float:
        """Single-user replay cost (exclusive table lock, no row locks)."""
        return self.statement_cost

    def su_replay_time(self, statements: int, transactions: int = 1) -> float:
        """Paper's replay processes the whole sequence as a single
        transaction — one commit at the end."""
        return statements * self.su_statement_cost() + self.commit_cost * max(
            1, transactions
        )

    def batch_execution_time(self, statements: int) -> float:
        """Server-side time to execute a pre-scheduled, conflict-free
        batch with the internal scheduler bypassed."""
        return self.batch_fixed_cost + statements * self.statement_cost


#: Default calibration (see module docstring for the derivation).
PAPER_CALIBRATION = CostModel()
