"""Row-level lock manager: S/X modes, FIFO queues, deadlock detection.

This is the heart of the *native* scheduler whose overhead the paper's
Figure 2 measures.  Semantics follow strict 2PL as implemented by
classical lock-based DBMSs:

* shared (S) locks are compatible with S, exclusive (X) with nothing;
* requests queue FIFO per object; a request is granted when compatible
  with all current holders *and* no incompatible request is queued ahead
  (no starvation of writers behind readers);
* S→X upgrades are granted immediately when the requester is the sole
  holder, otherwise they wait at the front of the queue;
* a waiting transaction *waits for* the current holders and the owners
  of incompatible requests ahead of it — cycles in that relation are
  deadlocks, resolved by aborting a victim.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional


class LockMode(enum.Enum):
    S = "S"
    X = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.S and other is LockMode.S


class DeadlockError(Exception):
    """Raised (or reported) when a waits-for cycle is found."""

    def __init__(self, cycle: list[int]) -> None:
        super().__init__(f"deadlock cycle: {' -> '.join(map(str, cycle))}")
        self.cycle = cycle


@dataclass
class _LockRequest:
    ta: int
    mode: LockMode
    is_upgrade: bool = False


@dataclass
class _LockEntry:
    holders: dict[int, LockMode] = field(default_factory=dict)
    queue: deque = field(default_factory=deque)


@dataclass(frozen=True)
class Grant:
    """A lock grant handed back when a wait completes."""

    ta: int
    obj: int
    mode: LockMode


class LockManager:
    """Strict 2PL lock table over integer object ids."""

    def __init__(self) -> None:
        self._table: dict[int, _LockEntry] = {}
        self._held_by_ta: dict[int, set[int]] = {}
        self._waiting: dict[int, int] = {}  # ta -> obj it waits on
        self.acquisitions = 0
        self.waits = 0

    # -- acquisition ---------------------------------------------------------

    def acquire(self, ta: int, obj: int, mode: LockMode) -> bool:
        """Request a lock.  Returns True when granted immediately, False
        when the transaction must wait (it is queued)."""
        if ta in self._waiting:
            raise RuntimeError(f"transaction {ta} is already waiting")
        self.acquisitions += 1
        entry = self._table.setdefault(obj, _LockEntry())
        held = entry.holders.get(ta)

        if held is LockMode.X or held is mode:
            return True  # re-entrant / already sufficient
        if held is LockMode.S and mode is LockMode.X:
            # Upgrade: immediate when sole holder, else wait at the front.
            if len(entry.holders) == 1:
                entry.holders[ta] = LockMode.X
                return True
            entry.queue.appendleft(_LockRequest(ta, LockMode.X, is_upgrade=True))
            self._waiting[ta] = obj
            self.waits += 1
            return False

        if self._grantable(entry, ta, mode):
            entry.holders[ta] = mode
            self._held_by_ta.setdefault(ta, set()).add(obj)
            return True
        entry.queue.append(_LockRequest(ta, mode))
        self._waiting[ta] = obj
        self.waits += 1
        return False

    def _grantable(self, entry: _LockEntry, ta: int, mode: LockMode) -> bool:
        for holder, held_mode in entry.holders.items():
            if holder == ta:
                continue
            if not mode.compatible_with(held_mode):
                return False
        # FIFO fairness: an incompatible queued request blocks later ones.
        for queued in entry.queue:
            if queued.ta == ta:
                continue
            if not mode.compatible_with(queued.mode) or not queued.mode.compatible_with(mode):
                return False
        return True

    # -- release ---------------------------------------------------------------

    def release_all(self, ta: int) -> list[Grant]:
        """Release every lock held by *ta* (commit/abort under SS2PL) and
        remove any queued request of *ta*.  Returns the grants that became
        possible, in grant order."""
        # Remove queued requests first (aborted transaction may be waiting).
        waited_on = self._waiting.pop(ta, None)
        if waited_on is not None:
            entry = self._table.get(waited_on)
            if entry is not None:
                entry.queue = deque(q for q in entry.queue if q.ta != ta)
        grants: list[Grant] = []
        for obj in self._held_by_ta.pop(ta, set()):
            entry = self._table.get(obj)
            if entry is None:
                continue
            entry.holders.pop(ta, None)
            grants.extend(self._drain_queue(obj, entry))
            if not entry.holders and not entry.queue:
                del self._table[obj]
        return grants

    def _drain_queue(self, obj: int, entry: _LockEntry) -> list[Grant]:
        """Grant from the queue head while compatible."""
        grants: list[Grant] = []
        while entry.queue:
            head = entry.queue[0]
            compatible = all(
                head.mode.compatible_with(mode) or holder == head.ta
                for holder, mode in entry.holders.items()
            )
            if not compatible:
                break
            entry.queue.popleft()
            entry.holders[head.ta] = (
                LockMode.X
                if head.is_upgrade or head.mode is LockMode.X
                else head.mode
            )
            self._held_by_ta.setdefault(head.ta, set()).add(obj)
            self._waiting.pop(head.ta, None)
            grants.append(Grant(head.ta, obj, entry.holders[head.ta]))
        return grants

    # -- introspection -----------------------------------------------------------

    def holds(self, ta: int, obj: int) -> Optional[LockMode]:
        entry = self._table.get(obj)
        if entry is None:
            return None
        return entry.holders.get(ta)

    def locks_held(self, ta: int) -> int:
        return len(self._held_by_ta.get(ta, ()))

    def is_waiting(self, ta: int) -> bool:
        return ta in self._waiting

    @property
    def waiting_count(self) -> int:
        return len(self._waiting)

    def waits_for(self, ta: int) -> set[int]:
        """Transactions *ta* currently waits for: holders of the object it
        is queued on, plus owners of incompatible requests queued ahead."""
        obj = self._waiting.get(ta)
        if obj is None:
            return set()
        entry = self._table.get(obj)
        if entry is None:
            return set()
        my_request: Optional[_LockRequest] = None
        blockers: set[int] = set()
        for holder, mode in entry.holders.items():
            if holder != ta:
                blockers.add(holder)
        for queued in entry.queue:
            if queued.ta == ta:
                my_request = queued
                break
            blockers.add(queued.ta)
        del my_request
        # For S requests, S holders are not blockers unless an X sits
        # between — the FIFO rule already folds that into queue order, so
        # keep the conservative (superset) edge set: conservative edges
        # may flag a "deadlock" that FIFO drain would resolve, but victims
        # are chosen inside the cycle so progress is always preserved.
        return blockers

    def find_deadlock(self, start_ta: int) -> Optional[list[int]]:
        """DFS from *start_ta* over waits-for edges; returns a cycle as a
        transaction list (first == last omitted) or None."""
        path: list[int] = []
        on_path: set[int] = set()
        visited: set[int] = set()

        def dfs(ta: int) -> Optional[list[int]]:
            if ta in on_path:
                index = path.index(ta)
                return path[index:]
            if ta in visited:
                return None
            visited.add(ta)
            path.append(ta)
            on_path.add(ta)
            for blocker in self.waits_for(ta):
                cycle = dfs(blocker)
                if cycle is not None:
                    return cycle
            path.pop()
            on_path.discard(ta)
            return None

        return dfs(start_ta)
