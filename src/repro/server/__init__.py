"""Simulated single-node DBMS server.

Substitute for the commercial DBMS of the paper's Section 4.2 testbed
(2.8 GHz single core, 2 GB RAM, database resident in the buffer pool).
The server provides:

* a **native internal scheduler** — strict two-phase locking with S/X
  row locks, FIFO wait queues, waits-for deadlock detection and victim
  abort (:mod:`repro.server.locks`), driving multi-user runs under
  isolation level serializable (:mod:`repro.server.engine`),
* a **single-user replay mode** — the paper's lower-bound measurement:
  the logged statement sequence re-executed under one exclusive table
  lock (:func:`repro.server.engine.single_user_replay_time`), and
* a **batch execution interface** used by the external declarative
  scheduler, which sends pre-scheduled conflict-free batches and expects
  the server's own scheduling to be bypassed (paper Section 3.3).

All timing flows through a calibrated :class:`~repro.server.costmodel.
CostModel`; see that module for the calibration rationale.
"""

from repro.server.locks import LockManager, LockMode, DeadlockError
from repro.server.costmodel import CostModel, PAPER_CALIBRATION
from repro.server.database import DataTable
from repro.server.engine import (
    BatchServer,
    MultiUserResult,
    SimulatedDBMS,
    single_user_replay_time,
)

__all__ = [
    "LockManager",
    "LockMode",
    "DeadlockError",
    "CostModel",
    "PAPER_CALIBRATION",
    "DataTable",
    "BatchServer",
    "MultiUserResult",
    "SimulatedDBMS",
    "single_user_replay_time",
]
