"""The server's data: a single table of N rows.

The paper's workload runs "against a single table of 100000 rows" that
"fitted in the database buffer".  Values are irrelevant to scheduling
behaviour but we keep an integer value per row (with rollback support)
so application-specific consistency examples (e.g. non-negative
inventory) have real state to constrain.
"""

from __future__ import annotations

from typing import Iterable, Optional


class DataTable:
    """An integer-keyed row store with per-transaction undo logs."""

    def __init__(self, rows: int, initial_value: int = 0) -> None:
        if rows <= 0:
            raise ValueError("rows must be positive")
        self.rows = rows
        self._initial = initial_value
        self._values: dict[int, int] = {}
        self._undo: dict[int, list[tuple[int, int]]] = {}

    def _check(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise KeyError(f"row {row} out of range 0..{self.rows - 1}")

    def read(self, row: int) -> int:
        self._check(row)
        return self._values.get(row, self._initial)

    def write(self, row: int, value: int, ta: Optional[int] = None) -> None:
        """Write a value; when *ta* is given the old value is undo-logged
        so :meth:`rollback` can restore it."""
        self._check(row)
        if ta is not None:
            self._undo.setdefault(ta, []).append((row, self.read(row)))
        self._values[row] = value

    def update(self, row: int, delta: int, ta: Optional[int] = None) -> int:
        """Relative update (the workload's UPDATE statement); returns the
        new value."""
        new_value = self.read(row) + delta
        self.write(row, new_value, ta=ta)
        return new_value

    def commit(self, ta: int) -> None:
        self._undo.pop(ta, None)

    def rollback(self, ta: int) -> int:
        """Undo the transaction's writes (reverse order); returns the
        number of undone writes."""
        log = self._undo.pop(ta, [])
        for row, old_value in reversed(log):
            self._values[row] = old_value
        return len(log)

    def snapshot(self, rows: Iterable[int]) -> dict[int, int]:
        return {row: self.read(row) for row in rows}
