"""E11 — incremental view maintenance vs. per-step recomputation.

The paper's research question 4 asks how declaratively programmed
schedulers can be made faster *without changing the specification*.
This bench drives the live middleware for a fixed number of scheduler
steps with (a) the paper's Listing 1 re-evaluated from scratch each
step and (b) the incrementally maintained variant, on identical
request sequences, and reports per-step cost; a correctness pass
asserts both emit identical batches.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Optional

from repro.core.scheduler import DeclarativeScheduler, SchedulerConfig
from repro.core.triggers import FillLevelTrigger, TriggerPolicy
from repro.metrics.reporting import render_table
from repro.model.request import NO_OBJECT, Operation, Request
from repro.protocols.base import Protocol
from repro.protocols.legacy import PaperListing1Protocol
from repro.protocols.legacy import SS2PLIncrementalProtocol


@dataclass
class StepDriverResult:
    steps: int
    total_seconds: float
    total_qualified: int
    batches: list[tuple[int, ...]]

    @property
    def per_step_ms(self) -> float:
        return self.total_seconds / self.steps * 1000 if self.steps else 0.0


def drive_steps(
    protocol: Protocol,
    clients: int = 200,
    steps: int = 40,
    ops_per_txn: int = 20,
    table_rows: int = 100_000,
    seed: int = 13,
    trigger: Optional[TriggerPolicy] = None,
) -> StepDriverResult:
    """Run *steps* scheduler steps over a closed client population.

    Each step, every client submits its transaction's next request (a
    commit once ``ops_per_txn`` statements executed); the scheduler
    batch-evaluates and history evolves — exactly the load pattern that
    separates O(batch) incremental maintenance from O(history)
    recomputation.

    With an explicit ``trigger`` the driver becomes trigger-paced: each
    iteration is one virtual second, and the scheduler only steps when
    the policy fires (requests accumulate otherwise, recorded as an
    empty batch).  The default keeps the historical fire-every-
    iteration behavior.
    """
    rng = random.Random(seed)
    scheduler = DeclarativeScheduler(
        protocol,
        trigger=trigger if trigger is not None else FillLevelTrigger(1),
        config=SchedulerConfig(prune_history=True),
    )
    next_id = 1
    next_ta = clients + 1

    class _State:
        __slots__ = ("ta", "done")

        def __init__(self, ta: int) -> None:
            self.ta = ta
            self.done = 0

    states = [_State(client + 1) for client in range(clients)]
    state_of_ta = {state.ta: state for state in states}
    outstanding: set[int] = set()  # tas with a pending request

    batches: list[tuple[int, ...]] = []
    total_qualified = 0
    started = time.perf_counter()
    for step_index in range(steps):
        for state in states:
            if state.ta in outstanding:
                continue  # previous request still pending (blocked)
            if state.done >= ops_per_txn:
                request = Request(
                    next_id, state.ta, state.done, Operation.COMMIT, NO_OBJECT
                )
            else:
                op = Operation.WRITE if rng.random() < 0.5 else Operation.READ
                request = Request(
                    next_id, state.ta, state.done, op, rng.randrange(table_rows)
                )
            outstanding.add(state.ta)
            next_id += 1
            scheduler.submit(
                request, now=float(step_index) if trigger is not None else None
            )
        if trigger is not None:
            if not scheduler.should_run(now=float(step_index)):
                batches.append(())
                continue
            result = scheduler.step(now=float(step_index))
        else:
            result = scheduler.step()
        total_qualified += result.batch_size
        batches.append(tuple(r.id for r in result.qualified))
        for request in result.qualified:
            outstanding.discard(request.ta)
            state = state_of_ta.pop(request.ta, None)
            if state is None:
                continue
            if request.operation is Operation.COMMIT:
                state.ta = next_ta
                state.done = 0
                next_ta += 1
            else:
                state.done += 1
            state_of_ta[state.ta] = state
    total_seconds = time.perf_counter() - started
    return StepDriverResult(
        steps=steps,
        total_seconds=total_seconds,
        total_qualified=total_qualified,
        batches=batches,
    )


def run_incremental_ablation(
    clients: int = 200, steps: int = 30, seed: int = 13
) -> str:
    recompute = drive_steps(
        PaperListing1Protocol(compiled=False),
        clients=clients, steps=steps, seed=seed,
    )
    compiled = drive_steps(
        PaperListing1Protocol(compiled=True),
        clients=clients, steps=steps, seed=seed,
    )
    incremental = drive_steps(
        SS2PLIncrementalProtocol(), clients=clients, steps=steps, seed=seed
    )
    if recompute.batches != incremental.batches:
        raise AssertionError(
            "incremental SS2PL diverged from Listing 1 recomputation"
        )
    if recompute.batches != compiled.batches:
        raise AssertionError(
            "compiled plan diverged from Listing 1 recomputation"
        )
    speedup = (
        recompute.per_step_ms / incremental.per_step_ms
        if incremental.per_step_ms
        else float("inf")
    )
    table = render_table(
        ["evaluation strategy", "steps", "qualified total", "per-step (ms)"],
        [
            ("recompute Listing 1 each step (interpreted)", recompute.steps,
             recompute.total_qualified, round(recompute.per_step_ms, 2)),
            ("cached compiled plan (delta-maintained builds)",
             compiled.steps, compiled.total_qualified,
             round(compiled.per_step_ms, 2)),
            ("incremental lock-view maintenance", incremental.steps,
             incremental.total_qualified, round(incremental.per_step_ms, 2)),
        ],
        title=(
            f"Incremental-maintenance ablation ({clients} clients, "
            f"{steps} steps): same rule, same batches (verified), "
            "different evaluation strategy"
        ),
    )
    return table + f"\n\nspeedup: {speedup:.1f}x per scheduler step"
