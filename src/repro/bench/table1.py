"""E1 — regenerate the paper's Table 1 from implemented capabilities."""

from __future__ import annotations

from repro.baselines.related import PAPER_TABLE1, RELATED_APPROACHES, table1_rows
from repro.metrics.reporting import render_table


def run_table1() -> str:
    """Render Table 1 and check each implemented vector against the
    paper's published row."""
    rows = table1_rows(include_ours=True)
    table = render_table(
        ["Approach", "P", "QoS", "D", "F", "HS"],
        rows,
        title=(
            "Table 1: Related Approaches (P-Performance, QoS-Quality of "
            "Service,\nD-Declarativity, F-Flexibility, HS-High Scalability)"
        ),
    )
    mismatches = table1_mismatches()
    footer = (
        "\nall capability vectors match the paper's published Table 1"
        if not mismatches
        else "\nMISMATCHES vs paper: " + "; ".join(mismatches)
    )
    return table + footer


def table1_mismatches() -> list[str]:
    """Compare implemented capability vectors with the published table."""
    mismatches = []
    for approach in RELATED_APPROACHES:
        expected = PAPER_TABLE1[approach.name]
        actual = approach.capabilities.as_row()
        if actual != expected:
            mismatches.append(
                f"{approach.name}: paper {expected} vs implemented {actual}"
            )
    return mismatches
