"""Experiment harness: one module per paper table/figure + ablations.

Experiment ids (see DESIGN.md section 4):

=====  ==========================================================
E1     Table 1 — related-approach feature matrix
E2     Table 2 — request/history/rte schema
E3/E4  Figure 2 + Section 4.2.2 — native scheduler overhead sweep
E5     Section 4.3.2 — declarative scheduling overhead
E6     Section 4.4 — native-vs-declarative crossover
E7     trigger-policy ablation (Section 3.3's open question)
E8     declarative-language-backend ablation
E9     productivity: declarative vs imperative spec sizes
E10    SLA + adaptive consistency under load (Section 5)
E11    incremental view maintenance vs recomputation (RQ 4)
E12    external MPL admission control (EQMS premise, refs [20][21])
=====  ==========================================================

Each module exposes a ``run_*`` function returning a rendered report
string (and structured results); ``benchmarks/`` wires them into
pytest-benchmark.
"""

from repro.bench.table1 import run_table1
from repro.bench.table2 import run_table2
from repro.bench.figure2 import run_figure2, Figure2Point
from repro.bench.declarative_overhead import (
    run_declarative_overhead,
    OverheadPoint,
    paper_snapshot,
)
from repro.bench.crossover import run_crossover
from repro.bench.triggers_ablation import run_trigger_ablation
from repro.bench.language_ablation import run_language_ablation
from repro.bench.productivity import run_productivity
from repro.bench.sla_adaptive import run_sla_bench, run_adaptive_bench
from repro.bench.incremental_ablation import run_incremental_ablation, drive_steps
from repro.bench.mpl_ablation import run_mpl_ablation
from repro.bench.scheduler_step import (
    run_scheduler_step_bench,
    render_scheduler_step_report,
    write_scheduler_step_bench,
)
from repro.bench.matrix import run_backend_matrix

__all__ = [
    "run_table1",
    "run_table2",
    "run_figure2",
    "Figure2Point",
    "run_declarative_overhead",
    "OverheadPoint",
    "paper_snapshot",
    "run_crossover",
    "run_trigger_ablation",
    "run_language_ablation",
    "run_productivity",
    "run_sla_bench",
    "run_adaptive_bench",
    "run_incremental_ablation",
    "drive_steps",
    "run_mpl_ablation",
    "run_scheduler_step_bench",
    "render_scheduler_step_report",
    "write_scheduler_step_bench",
    "run_backend_matrix",
]
