"""E7 — trigger-policy ablation.

Paper Section 3.3: "The trigger condition can be configured
(dynamically).  The best condition has to be evaluated experimentally.
Possible conditions are, e.g. a lapse of time, a certain fill level of
the incoming queue or a hybrid version."  This bench runs that deferred
evaluation — it is now a thin report layer over the registered
``trigger-sweep`` scenario (:mod:`repro.scenarios`): throughput, step
counts and mean response time per trigger policy and parameter.
"""

from __future__ import annotations

from typing import Sequence

from repro.metrics.reporting import render_table
from repro.scenarios import (
    ScenarioCell,
    get_scenario,
    run_scenario,
    trigger_spec_of,
)
from repro.scenarios.library import MIDDLEWARE_WORKLOAD

#: Scaled-down workload: the virtual-time middleware stack runs every
#: scheduler query in real Python, so the ablation uses a smaller table
#: and shorter transactions than the paper's headline experiment.
ABLATION_WORKLOAD = MIDDLEWARE_WORKLOAD


def run_trigger_ablation(
    clients: int = 40,
    duration: float = 5.0,
    triggers: Sequence | None = None,
    seed: int = 5,
) -> str:
    """``triggers`` accepts :class:`TriggerSpec`s or instances of the
    three built-in policy families (they are described declaratively so
    the scenario runner can rebuild them per cell)."""
    scenario = get_scenario("trigger-sweep")
    if triggers is not None:
        cells = []
        seen: dict[str, int] = {}
        for trigger in triggers:
            spec = trigger_spec_of(trigger)
            count = seen.get(spec.label, 0)
            seen[spec.label] = count + 1
            label = spec.label if count == 0 else f"{spec.label} #{count + 1}"
            cells.append(ScenarioCell(label=label, trigger=spec))
        scenario = scenario.with_(cells=tuple(cells))
    outcome = run_scenario(
        scenario, clients=clients, duration=duration, seed=seed
    )
    rows = [
        (
            entry.cell.label,
            entry.result.completed_statements,
            round(entry.result.throughput, 1),
            entry.result.scheduler_runs,
            round(entry.result.mean_batch_size, 1),
            round(entry.result.mean_response() * 1000, 2),
            entry.result.timeout_aborts,
        )
        for entry in outcome.cells
    ]
    table = render_table(
        ["trigger", "stmts", "stmts/s", "runs", "mean batch",
         "mean resp (ms)", "aborts"],
        rows,
        title=(
            f"Trigger-policy ablation ({clients} clients, {duration:g}s "
            "virtual, SS2PL): batching amortizes query cost, time bounds "
            "latency — the hybrid should dominate both extremes"
        ),
    )
    return table
