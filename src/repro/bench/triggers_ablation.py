"""E7 — trigger-policy ablation.

Paper Section 3.3: "The trigger condition can be configured
(dynamically).  The best condition has to be evaluated experimentally.
Possible conditions are, e.g. a lapse of time, a certain fill level of
the incoming queue or a hybrid version."  This bench runs that deferred
evaluation on the closed-loop middleware: throughput and mean response
time per trigger policy and parameter.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.simulation import MiddlewareSimulation
from repro.core.triggers import FillLevelTrigger, HybridTrigger, TimeLapseTrigger, TriggerPolicy
from repro.metrics.reporting import render_table
from repro.protocols.ss2pl import SS2PLRelalgProtocol
from repro.workload.spec import WorkloadSpec

#: Scaled-down workload: the virtual-time middleware stack runs every
#: scheduler query in real Python, so the ablation uses a smaller table
#: and shorter transactions than the paper's headline experiment.
ABLATION_WORKLOAD = WorkloadSpec(
    reads_per_txn=4, writes_per_txn=4, table_rows=2_000
)


def default_triggers() -> list[TriggerPolicy]:
    return [
        TimeLapseTrigger(0.005),
        TimeLapseTrigger(0.02),
        TimeLapseTrigger(0.1),
        FillLevelTrigger(5),
        FillLevelTrigger(20),
        FillLevelTrigger(60),
        HybridTrigger(0.02, 20),
        HybridTrigger(0.1, 60),
    ]


def run_trigger_ablation(
    clients: int = 40,
    duration: float = 5.0,
    triggers: Sequence[TriggerPolicy] | None = None,
    seed: int = 5,
) -> str:
    triggers = list(triggers) if triggers is not None else default_triggers()
    rows = []
    for trigger in triggers:
        simulation = MiddlewareSimulation(
            protocol=SS2PLRelalgProtocol(),
            trigger=trigger,
            spec=ABLATION_WORKLOAD,
            clients=clients,
            seed=seed,
        )
        result = simulation.run(duration)
        rows.append(
            (
                trigger.name,
                result.completed_statements,
                round(result.throughput, 1),
                result.scheduler_runs,
                round(result.mean_batch_size, 1),
                round(result.mean_response() * 1000, 2),
                result.timeout_aborts,
            )
        )
    table = render_table(
        ["trigger", "stmts", "stmts/s", "runs", "mean batch",
         "mean resp (ms)", "aborts"],
        rows,
        title=(
            f"Trigger-policy ablation ({clients} clients, {duration:g}s "
            "virtual, SS2PL): batching amortizes query cost, time bounds "
            "latency — the hybrid should dominate both extremes"
        ),
    )
    return table
