"""E6 — Section 4.4: where declarative beats the native scheduler.

The paper's discussion composes its two measurements: at 300 clients
the native overhead (46 s) beats the declarative total (1314 s); at 500
clients declarative (106 s) beats native (225 s).  This bench runs both
sides over a client sweep on *the same workloads* and reports the
crossover point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bench.declarative_overhead import measure_scheduler_run
from repro.bench.figure2 import sweep_native
from repro.metrics.reporting import ComparisonRow, render_comparison, render_table


@dataclass(frozen=True, slots=True)
class CrossoverPoint:
    clients: int
    workload_statements: int
    native_overhead_s: float
    declarative_total_s: float

    @property
    def declarative_wins(self) -> bool:
        return self.declarative_total_s < self.native_overhead_s


def sweep_crossover(
    client_counts: Sequence[int] = (100, 200, 300, 400, 500, 600),
    duration: float = 240.0,
    repetitions: int = 3,
) -> list[CrossoverPoint]:
    """Both sides of Section 4.4 over a client sweep."""
    native_points = {p.clients: p for p in sweep_native(client_counts, duration)}
    out: list[CrossoverPoint] = []
    for clients in client_counts:
        native = native_points[clients]
        declarative = measure_scheduler_run(clients, repetitions=repetitions)
        statements = native.committed_statements
        out.append(
            CrossoverPoint(
                clients=clients,
                workload_statements=statements,
                native_overhead_s=native.mu_seconds - native.su_seconds,
                declarative_total_s=declarative.total_overhead(statements),
            )
        )
    return out


def run_crossover(
    client_counts: Sequence[int] = (100, 200, 300, 400, 500, 600),
    duration: float = 240.0,
) -> str:
    points = sweep_crossover(client_counts, duration)
    rows = [
        (
            p.clients,
            p.workload_statements,
            round(p.native_overhead_s, 1),
            round(p.declarative_total_s, 1),
            "declarative" if p.declarative_wins else "native",
        )
        for p in points
    ]
    table = render_table(
        ["clients", "workload stmts", "native overhead (s)",
         "declarative total (s)", "winner"],
        rows,
        title="Section 4.4: scheduling-overhead crossover",
    )

    crossover = next(
        (p.clients for p in points if p.declarative_wins), None
    )
    comparison = render_comparison(
        [
            ComparisonRow(
                "winner @ 300 clients",
                "native (46s vs 1314s)",
                _winner_text(points, 300),
            ),
            ComparisonRow(
                "winner @ 500 clients",
                "declarative (106s vs 225s)",
                _winner_text(points, 500),
            ),
            ComparisonRow(
                "crossover client count",
                "between 300 and 500",
                crossover if crossover is not None else "none observed",
            ),
        ],
        title="Section 4.4 qualitative claims (paper vs measured)",
    )
    return "\n\n".join([table, comparison])


def _winner_text(points: list[CrossoverPoint], clients: int) -> str:
    for p in points:
        if p.clients == clients:
            side = "declarative" if p.declarative_wins else "native"
            return (
                f"{side} ({p.declarative_total_s:.0f}s declarative vs "
                f"{p.native_overhead_s:.0f}s native)"
            )
    return "not measured"
