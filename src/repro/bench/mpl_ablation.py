"""E12 — external MPL admission control on the native server.

The Figure 2 collapse is an MPL-overload effect; the paper's related
work (EQMS, Schroeder et al. [20][21]) attacks it by *externally*
capping the multiprogramming level.  This bench runs the 500-client
workload with and without an external MPL cap, validating both the
cost model's thrashing knee and the external-scheduling premise the
declarative middleware builds on (it, too, sits outside the server and
controls what reaches it).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.metrics.reporting import render_table
from repro.scenarios.native import native_sweep
from repro.workload.spec import PAPER_WORKLOAD


def run_mpl_ablation(
    clients: int = 500,
    caps: Sequence[Optional[int]] = (None, 350, 300, 200, 100),
    duration: float = 240.0,
    seed: int = 42,
) -> str:
    rows = []
    for cap in caps:
        [result] = native_sweep(
            [clients], duration, spec=PAPER_WORKLOAD, seed=seed, mpl_cap=cap
        )
        rows.append(
            (
                "uncapped" if cap is None else str(cap),
                result.committed_statements,
                round(result.throughput, 1),
                round(result.mu_over_su_percent, 1),
                result.deadlock_aborts,
            )
        )
    table = render_table(
        ["MPL cap", "committed stmts", "stmts/s", "MU/SU (%)", "aborts"],
        rows,
        title=(
            f"External MPL admission control @ {clients} clients "
            f"({duration:g}s): capping below the thrashing knee restores "
            "throughput (EQMS premise, paper refs [20][21])"
        ),
    )
    return table
