"""E3/E4 — Figure 2 and the Section 4.2.2 anchors.

Method (paper Section 4.1/4.2): run the multi-user workload under
isolation level serializable for a fixed window at each client count;
replay the committed statement sequence in single-user mode; plot
MU time / SU time as a percentage (log y-axis), and report the
300-/500-client anchor numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.metrics.reporting import AsciiPlot, ComparisonRow, render_comparison, render_table
from repro.scenarios.native import native_sweep
from repro.server.costmodel import CostModel, PAPER_CALIBRATION
from repro.workload.spec import PAPER_WORKLOAD, WorkloadSpec

#: Client counts matching Figure 2's x-axis sampling.
DEFAULT_CLIENT_COUNTS = (1, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500, 550, 600)

#: The paper's Section 4.2.2 anchor numbers.
PAPER_ANCHORS = {
    300: {"statements": 550_055, "su_seconds": 194.0, "overhead": 46.0},
    500: {"statements": 48_267, "su_seconds": 15.0, "overhead": 225.0},
}


@dataclass(frozen=True, slots=True)
class Figure2Point:
    clients: int
    committed_statements: int
    mu_seconds: float
    su_seconds: float
    ratio_percent: float
    deadlock_aborts: int


def sweep_native(
    client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
    duration: float = 240.0,
    spec: WorkloadSpec = PAPER_WORKLOAD,
    cost_model: CostModel = PAPER_CALIBRATION,
    seed: int = 42,
) -> list[Figure2Point]:
    """Run the MU sweep and SU replays; returns one point per count."""
    results = native_sweep(
        client_counts, duration, spec=spec, cost_model=cost_model, seed=seed
    )
    return [
        Figure2Point(
            clients=clients,
            committed_statements=result.committed_statements,
            mu_seconds=duration,
            su_seconds=result.su_replay_time,
            ratio_percent=result.mu_over_su_percent,
            deadlock_aborts=result.deadlock_aborts,
        )
        for clients, result in zip(client_counts, results)
    ]


def run_figure2(
    client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
    duration: float = 240.0,
) -> str:
    """Full E3/E4 report: data table, ASCII Figure 2, anchor comparison."""
    points = sweep_native(client_counts, duration)

    data_table = render_table(
        ["clients", "committed stmts", "MU (s)", "SU replay (s)",
         "MU/SU (%)", "deadlock aborts"],
        [
            (
                p.clients,
                p.committed_statements,
                round(p.mu_seconds, 1),
                round(p.su_seconds, 1),
                round(p.ratio_percent, 1),
                p.deadlock_aborts,
            )
            for p in points
        ],
        title="Figure 2 data: multi-user vs single-user execution time",
    )

    plot = AsciiPlot(
        log_y=True,
        title=(
            "Figure 2: execution time MU / execution time SU (%), log scale "
            "(paper: flat ~100-125% to 300 clients, then sharp rise)"
        ),
        x_label="number of clients",
    )
    plot.add_series("*", [(p.clients, max(p.ratio_percent, 100.0)) for p in points])

    comparisons: list[ComparisonRow] = []
    by_clients = {p.clients: p for p in points}
    for clients, anchors in PAPER_ANCHORS.items():
        point = by_clients.get(clients)
        if point is None:
            continue
        comparisons.append(
            ComparisonRow(
                f"committed statements in {point.mu_seconds:.0f}s @ {clients} clients",
                anchors["statements"],
                point.committed_statements,
            )
        )
        comparisons.append(
            ComparisonRow(
                f"SU replay time @ {clients} clients (s)",
                anchors["su_seconds"],
                round(point.su_seconds, 1),
            )
        )
        comparisons.append(
            ComparisonRow(
                f"native scheduling overhead @ {clients} clients (s)",
                anchors["overhead"],
                round(point.mu_seconds - point.su_seconds, 1),
            )
        )
    anchor_table = render_comparison(
        comparisons, title="Section 4.2.2 anchors (paper vs measured)"
    )
    return "\n\n".join([data_table, plot.render(), anchor_table])
