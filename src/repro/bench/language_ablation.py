"""E8 — declarative-language-backend ablation.

The paper's research question 1 (Section 1): "To what extent can
existing query languages be used to capture typical constraints on
request schedules?" and question 2, their performance.  The same SS2PL
rule runs on four backends — our relational algebra (Listing 1 shape),
our Datalog engine, the compiled SDL mini-language, and sqlite3
executing the paper's literal SQL — over the same snapshots; results
are checked identical and timed.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.bench.declarative_overhead import paper_snapshot
from repro.core.stores import HistoryStore, PendingStore
from repro.lang.protocol import SDLProtocol, SDL_SS2PL
from repro.metrics.reporting import render_table
from repro.protocols.base import Protocol
from repro.protocols.ss2pl import PaperListing1Protocol
from repro.protocols.ss2pl_datalog import SS2PLDatalogProtocol
from repro.protocols.ss2pl_sql import SS2PLSqlProtocol
from repro.protocols.ss2pl_sqlfront import SqlFrontendSS2PLProtocol


def backends() -> list[Protocol]:
    return [
        PaperListing1Protocol(),
        SS2PLDatalogProtocol(),
        SDLProtocol(SDL_SS2PL),
        SS2PLSqlProtocol(),
        SqlFrontendSS2PLProtocol(),
    ]


def run_language_ablation(
    client_counts: Sequence[int] = (100, 300, 500),
    repetitions: int = 3,
    seed: int = 7,
) -> str:
    protocols = backends()
    rows = []
    for clients in client_counts:
        reference: list[int] | None = None
        for protocol in protocols:
            elapsed: list[float] = []
            qualified_count = 0
            for rep in range(repetitions):
                incoming, history = paper_snapshot(clients, seed=seed + rep)
                pending_store = PendingStore()
                history_store = HistoryStore()
                pending_store.insert_batch(incoming)
                history_store.record_batch(history)
                started = time.perf_counter()
                decision = protocol.schedule(
                    pending_store.table, history_store.table
                )
                elapsed.append(time.perf_counter() - started)
                qualified_count = len(decision.qualified)
                ids = sorted(r.id for r in decision.qualified)
                if rep == 0:
                    if reference is None:
                        reference = ids
                    elif ids != reference:
                        raise AssertionError(
                            f"backend {protocol.name} disagrees at "
                            f"{clients} clients: {len(ids)} vs "
                            f"{len(reference)} qualified"
                        )
            rows.append(
                (
                    clients,
                    protocol.name,
                    round(min(elapsed) * 1000, 2),
                    round(sum(elapsed) / len(elapsed) * 1000, 2),
                    qualified_count,
                )
            )
        reference = None
    table = render_table(
        ["clients", "backend", "best (ms)", "mean (ms)", "qualified"],
        rows,
        title=(
            "Language-backend ablation: identical SS2PL rule, five "
            "evaluators (outputs verified equal per client count)"
        ),
    )
    return table
