"""E8 — declarative-language-backend ablation.

The paper's research question 1 (Section 1): "To what extent can
existing query languages be used to capture typical constraints on
request schedules?" and question 2, their performance.  The same SS2PL
rule runs on several backends — our relational algebra (Listing 1
shape, both the interpreted pipeline and the cached compiled plan),
our Datalog engine, the compiled SDL mini-language, and sqlite3
executing the paper's literal SQL — over the same snapshots; results
are checked identical and timed.  Each backend gets one untimed warmup
evaluation per snapshot so plan-caching backends report steady-state
per-step cost (their one-time compilation happens in the warmup).
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.bench.declarative_overhead import paper_snapshot
from repro.core.stores import HistoryStore, PendingStore
from repro.lang.protocol import SDLProtocol, SDL_SS2PL
from repro.metrics.reporting import render_table
from repro.protocols.base import Protocol
from repro.protocols.legacy import PaperListing1Protocol
from repro.protocols.legacy import SS2PLDatalogProtocol
from repro.protocols.legacy import SS2PLSqlProtocol
from repro.protocols.legacy import SqlFrontendSS2PLProtocol


def backends() -> list[tuple[str, Protocol]]:
    """(label, protocol) pairs; labels disambiguate the two evaluation
    strategies of the relalg and SQL-frontend backends."""
    return [
        ("relalg interpreted", PaperListing1Protocol(compiled=False)),
        ("relalg compiled plan", PaperListing1Protocol(compiled=True)),
        ("datalog", SS2PLDatalogProtocol()),
        ("sdl", SDLProtocol(SDL_SS2PL)),
        ("sqlite3", SS2PLSqlProtocol()),
        ("sqlfront interpreted", SqlFrontendSS2PLProtocol(compiled=False)),
        ("sqlfront compiled plan", SqlFrontendSS2PLProtocol(compiled=True)),
    ]


def run_language_ablation(
    client_counts: Sequence[int] = (100, 300, 500),
    repetitions: int = 3,
    seed: int = 7,
) -> str:
    protocols = backends()
    rows = []
    for clients in client_counts:
        reference: list[int] | None = None
        for label, protocol in protocols:
            elapsed: list[float] = []
            qualified_count = 0
            for rep in range(repetitions):
                incoming, history = paper_snapshot(clients, seed=seed + rep)
                pending_store = PendingStore()
                history_store = HistoryStore()
                pending_store.insert_batch(incoming)
                history_store.record_batch(history)
                protocol.schedule(  # untimed warmup (plan compilation)
                    pending_store.table, history_store.table
                )
                started = time.perf_counter()
                decision = protocol.schedule(
                    pending_store.table, history_store.table
                )
                elapsed.append(time.perf_counter() - started)
                qualified_count = len(decision.qualified)
                ids = sorted(r.id for r in decision.qualified)
                if rep == 0:
                    if reference is None:
                        reference = ids
                    elif ids != reference:
                        raise AssertionError(
                            f"backend {label} disagrees at "
                            f"{clients} clients: {len(ids)} vs "
                            f"{len(reference)} qualified"
                        )
            rows.append(
                (
                    clients,
                    label,
                    round(min(elapsed) * 1000, 2),
                    round(sum(elapsed) / len(elapsed) * 1000, 2),
                    qualified_count,
                )
            )
        reference = None
    table = render_table(
        ["clients", "backend", "best (ms)", "mean (ms)", "qualified"],
        rows,
        title=(
            "Language-backend ablation: identical SS2PL rule, "
            "interpreted and compiled evaluators (outputs verified "
            "equal per client count)"
        ),
    )
    return table
