"""Per-step scheduler query cost: interpreted pipeline vs compiled plan.

The plan-compilation layer (:mod:`repro.relalg.plan`) claims that a
protocol's declarative query needs *analyzing* once and only
*executing* per scheduler step.  This bench pins that claim to a
number: it drives the live scheduler over the E5 operating point
(Section 4.3.1's snapshot — one open request per client, twenty
executed statements per transaction in history, no committed
transactions) for a fixed number of steps, once with the eager
interpreted Listing 1 pipeline and once with the cached compiled plan,
and reports the median per-step ``query_seconds`` of each at several
history sizes.

Outputs are written by ``benchmarks/bench_scheduler_step.py`` to
``BENCH_scheduler_step.json`` so future changes have a perf trajectory
to compare against.  Qualified batches are asserted identical between
the two modes — this is a pure evaluation-strategy ablation, the rule
never changes.
"""

from __future__ import annotations

import json
import random
import statistics
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.bench.declarative_overhead import paper_snapshot
from repro.core.scheduler import DeclarativeScheduler, SchedulerConfig
from repro.core.triggers import FillLevelTrigger
from repro.metrics.reporting import render_table
from repro.backends import build_protocol
from repro.model.request import NO_OBJECT, Operation, Request
from repro.protocols.base import Protocol


@dataclass
class StepCostResult:
    """Per-step query cost of one protocol over one driven workload."""

    clients: int
    steps: int
    history_rows: int
    query_seconds: list[float] = field(default_factory=list)
    batches: list[tuple[int, ...]] = field(default_factory=list)

    @property
    def median_seconds(self) -> float:
        """Median per-step query time, excluding the first step (which
        pays one-time plan compilation on the compiled path)."""
        tail = self.query_seconds[1:] or self.query_seconds
        return statistics.median(tail)

    @property
    def first_step_seconds(self) -> float:
        return self.query_seconds[0] if self.query_seconds else 0.0


def measure_step_costs(
    protocol: Protocol,
    clients: int,
    steps: int = 10,
    seed: int = 7,
    table_rows: int = 100_000,
) -> StepCostResult:
    """Drive *steps* scheduler steps at the E5 operating point.

    The scheduler starts from the paper's snapshot (``clients`` open
    requests over ``clients * 20`` history rows, pruning disabled as in
    Section 4.3.1) and each following step re-submits one next request
    per transaction that executed something — a steady stream at a
    roughly constant pending size over a growing history.
    """
    incoming, history = paper_snapshot(clients, seed=seed)
    return _drive_step_costs(
        protocol, incoming, history, steps=steps, seed=seed,
        table_rows=table_rows,
    )


def _drive_step_costs(
    protocol: Protocol,
    incoming: list[Request],
    history: list[Request],
    steps: int,
    seed: int,
    table_rows: int,
) -> StepCostResult:
    """The shared driving loop: preload *history*, then feed a steady
    wave of follow-up requests for *steps* scheduler steps."""
    scheduler = DeclarativeScheduler(
        protocol,
        trigger=FillLevelTrigger(1),
        config=SchedulerConfig(prune_history=False),
    )
    scheduler.history.record_batch(history)
    # Stateful protocols (e.g. the incremental backend) must observe the
    # preloaded snapshot exactly as if the scheduler had executed it.
    protocol.observe_executed(history)
    rng = random.Random(seed + 1)
    next_id = max(r.id for r in incoming) + 1
    next_intrata = {r.ta: r.intrata for r in incoming}

    result = StepCostResult(
        clients=len(incoming), steps=steps, history_rows=len(history)
    )
    wave = list(incoming)
    for __ in range(steps):
        for request in wave:
            scheduler.submit(request)
        step = scheduler.step()
        result.query_seconds.append(step.query_seconds)
        result.batches.append(tuple(r.id for r in step.qualified))
        wave = []
        for request in step.qualified:
            next_intrata[request.ta] = next_intrata.get(request.ta, 0) + 1
            op = Operation.WRITE if rng.random() < 0.5 else Operation.READ
            wave.append(
                Request(
                    next_id,
                    request.ta,
                    next_intrata[request.ta],
                    op,
                    rng.randrange(table_rows),
                )
            )
            next_id += 1
    result.history_rows = len(scheduler.history)
    return result


def large_history_snapshot(
    active_clients: int,
    history_rows: int,
    executed_per_txn: int = 20,
    seed: int = 7,
) -> tuple[list[Request], list[Request], int]:
    """The 10^5–10^6-row operating point: a small active working set
    over a deep history.

    The paper's E5 snapshot couples history size to the client count
    (``clients * 20`` rows); at 10^6 rows that would mean 50 000 open
    requests, which measures batch width, not history depth.  Here the
    active part stays at ``active_clients`` open transactions (the E5
    shape) and the rest of the history is filled with *committed*
    transactions — they hold no locks, so the per-step decision is
    unchanged, but every non-incremental backend still has to scan
    them.  Returns ``(incoming, history, table_rows)``; the object
    space scales with the history so lock conflicts stay at the E5
    rate.
    """
    table_rows = max(100_000, 2 * history_rows)
    incoming, history = paper_snapshot(
        active_clients, executed_per_txn, table_rows, seed=seed
    )
    rng = random.Random(seed + 99)
    rid = max(r.id for r in incoming) + 1
    ta = active_clients + 1
    filler: list[Request] = []
    budget = history_rows - len(history)
    while len(filler) < budget:
        span = min(executed_per_txn, budget - len(filler) - 1)
        for intrata in range(max(span, 1)):
            op = Operation.WRITE if rng.random() < 0.5 else Operation.READ
            filler.append(
                Request(rid, ta, intrata, op, rng.randrange(table_rows))
            )
            rid += 1
        filler.append(
            Request(rid, ta, span, Operation.COMMIT, NO_OBJECT)
        )
        rid += 1
        ta += 1
    # Interleave nothing: committed filler precedes the active snapshot
    # id-wise only in ta numbering; history order is irrelevant to the
    # specs (set semantics), so append keeps construction O(rows).
    return incoming, history + filler, table_rows


def measure_delta_step_costs(
    protocol: Protocol,
    history_rows: int,
    active_clients: int = 40,
    steps: int = 10,
    seed: int = 7,
) -> StepCostResult:
    """Drive *steps* steps over a preloaded *history_rows*-deep history."""
    incoming, history, table_rows = large_history_snapshot(
        active_clients, history_rows, seed=seed
    )
    return _drive_step_costs(
        protocol, incoming, history, steps=steps, seed=seed,
        table_rows=table_rows,
    )


def run_delta_scale_bench(
    history_sizes: Sequence[int] = (100_000, 1_000_000),
    active_clients: int = 40,
    steps: int = 10,
    seed: int = 7,
    protocol: str = "ss2pl",
    backend: str = "compiled-delta",
    baseline: str = "compiled",
) -> list[dict]:
    """Per-step cost of the delta backend vs a full-recompute baseline
    at 10^5–10^6 preloaded history rows.

    The baseline is the *compiled* backend, not the interpreted
    pipeline — at 10^6 rows the interpreted pipeline is infeasible to
    even sample.  Batches are asserted identical; the delta point also
    reports the per-step delta size and rebuild count from the
    backend's maintenance stats (one rebuild: the initial seeding).
    """
    points = []
    for history_rows in history_sizes:
        reference = measure_delta_step_costs(
            build_protocol(protocol, baseline),
            history_rows, active_clients=active_clients,
            steps=steps, seed=seed,
        )
        bound = build_protocol(protocol, backend)
        delta = measure_delta_step_costs(
            bound, history_rows, active_clients=active_clients,
            steps=steps, seed=seed,
        )
        if reference.batches != delta.batches:
            raise AssertionError(
                f"backend {backend!r} diverged from {baseline!r} at "
                f"{history_rows} preloaded history rows"
            )
        stats = bound.maintenance_stats() or {}
        speedup = (
            reference.median_seconds / delta.median_seconds
            if delta.median_seconds
            else float("inf")
        )
        per_step = (
            (stats.get("inserts", 0) + stats.get("retracts", 0))
            / stats["steps"]
            if stats.get("steps")
            else 0.0
        )
        points.append(
            {
                "history_rows": history_rows,
                "final_history_rows": delta.history_rows,
                "active_clients": active_clients,
                "steps": steps,
                "baseline_backend": baseline,
                "baseline_median_step_s": round(
                    reference.median_seconds, 6
                ),
                "delta_median_step_s": round(delta.median_seconds, 6),
                "delta_first_step_s": round(delta.first_step_seconds, 6),
                "speedup": round(speedup, 2),
                "delta_rows_per_step": round(per_step, 1),
                "rebuilds": stats.get("rebuilds", 0),
                "batches_identical": True,
            }
        )
    return points


def render_delta_scale_report(points: Sequence[dict]) -> str:
    rows = [
        (
            p["history_rows"],
            p["active_clients"],
            round(p["baseline_median_step_s"] * 1000, 2),
            round(p["delta_median_step_s"] * 1000, 3),
            round(p["delta_first_step_s"] * 1000, 1),
            p["delta_rows_per_step"],
            p["rebuilds"],
            f"{p['speedup']}x",
        )
        for p in points
    ]
    return render_table(
        ["history rows", "clients", "full recompute (ms)", "delta (ms)",
         "first step (ms)", "delta rows/step", "rebuilds", "speedup"],
        rows,
        title=(
            "Delta-driven scheduling at scale: compiled-delta vs full "
            "plan re-execution (identical batches verified)"
        ),
    )


def run_scheduler_step_bench(
    client_counts: Sequence[int] = (100, 300, 500),
    steps: int = 10,
    seed: int = 7,
    protocol: str = "ss2pl",
    backend: str = "compiled",
) -> dict:
    """Interpreted-vs-compiled per-step cost at several history sizes.

    Returns a JSON-serializable report; raises if the two evaluation
    strategies ever emit different batches.
    """
    points = []
    for clients in client_counts:
        interpreted = measure_step_costs(
            build_protocol(protocol, "interpreted"),
            clients, steps=steps, seed=seed,
        )
        compiled = measure_step_costs(
            build_protocol(protocol, backend), clients, steps=steps, seed=seed
        )
        if interpreted.batches != compiled.batches:
            raise AssertionError(
                f"backend {backend!r} diverged from the interpreted "
                f"reference at {clients} clients"
            )
        speedup = (
            interpreted.median_seconds / compiled.median_seconds
            if compiled.median_seconds
            else float("inf")
        )
        points.append(
            {
                "clients": clients,
                "initial_history_rows": clients * 20,
                "final_history_rows": compiled.history_rows,
                "steps": steps,
                "interpreted_median_step_s": round(
                    interpreted.median_seconds, 6
                ),
                "compiled_median_step_s": round(compiled.median_seconds, 6),
                "compiled_first_step_s": round(
                    compiled.first_step_seconds, 6
                ),
                "speedup": round(speedup, 2),
                "batches_identical": True,
            }
        )
    return {
        "benchmark": "scheduler_step",
        "protocol": protocol,
        "backend": backend,
        "workload": "E5 declarative-overhead snapshot, steady stream",
        "metric": "median per-step query_seconds (first step excluded)",
        "points": points,
    }


def render_scheduler_step_report(report: dict) -> str:
    rows = [
        (
            p["clients"],
            p["final_history_rows"],
            round(p["interpreted_median_step_s"] * 1000, 2),
            round(p["compiled_median_step_s"] * 1000, 2),
            f"{p['speedup']}x",
        )
        for p in report["points"]
    ]
    backend = report.get("backend", "compiled")
    return render_table(
        ["clients", "history rows", "interpreted (ms)", f"{backend} (ms)",
         "speedup"],
        rows,
        title=(
            f"Per-step protocol query cost: interpreted pipeline vs the "
            f"{backend!r} backend (identical batches verified)"
        ),
    )


def write_scheduler_step_bench(
    path: str,
    client_counts: Sequence[int] = (100, 300, 500),
    steps: int = 10,
    seed: int = 7,
    protocol: str = "ss2pl",
    backend: str = "compiled",
    delta_history_sizes: Sequence[int] = (),
    delta_backend: str = "compiled-delta",
) -> dict:
    """Run the bench and write *path* (``BENCH_scheduler_step.json``).

    ``delta_history_sizes`` adds the large-history delta points
    (:func:`run_delta_scale_bench`) under ``delta_points``; empty means
    the classic interpreted-vs-compiled sweep only.
    """
    report = run_scheduler_step_bench(
        client_counts, steps=steps, seed=seed,
        protocol=protocol, backend=backend,
    )
    if delta_history_sizes:
        report["delta_backend"] = delta_backend
        report["delta_points"] = run_delta_scale_bench(
            delta_history_sizes, steps=steps, seed=seed,
            protocol=protocol, backend=delta_backend,
        )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return report
