"""E5 — Section 4.3.2: the cost of declarative scheduling.

Method (paper Section 4.3.1): build a pending-request table with one
open request per concurrently active transaction and a history table
"filled with half of the requests of the corresponding workload ...
without requests of committed transactions"; measure the wall-clock
time of a full scheduler run — reading the incoming batch, inserting it
into the pending table, evaluating the SS2PL query, deleting qualified
rows and inserting them into history — and count tuples returned.

The paper observed roughly half the pending requests qualifying per
run; the snapshot builder's ``conflict_rate`` reproduces that operating
point (0.5 by default).  Total workload overhead is then extrapolated
exactly as the paper does: ``runs = statements / returned_per_run``,
``total = runs * per_run_time``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.scheduler import DeclarativeScheduler, SchedulerConfig
from repro.core.triggers import FillLevelTrigger
from repro.metrics.reporting import ComparisonRow, render_comparison, render_table
from repro.model.request import Operation, Request
from repro.protocols.base import Protocol
from repro.protocols.legacy import PaperListing1Protocol

#: The paper's Section 4.3.2 anchor numbers.
PAPER_OVERHEAD = {
    300: {"per_run_ms": 358.0, "returned": 150, "runs": 3668, "total_s": 1314.0},
    500: {"per_run_ms": 545.0, "returned": 250, "runs": 193, "total_s": 106.0},
}


@dataclass(frozen=True, slots=True)
class OverheadPoint:
    clients: int
    per_run_seconds: float
    returned_per_run: float
    history_rows: int
    pending_rows: int

    def runs_needed(self, workload_statements: int) -> float:
        if self.returned_per_run <= 0:
            return float("inf")
        return workload_statements / self.returned_per_run

    def total_overhead(self, workload_statements: int) -> float:
        return self.runs_needed(workload_statements) * self.per_run_seconds


def paper_snapshot(
    clients: int,
    executed_per_txn: int = 20,
    table_rows: int = 100_000,
    conflict_rate: float = 0.5,
    seed: int = 7,
) -> tuple[list[Request], list[Request]]:
    """Build (incoming, history) mirroring the paper's measurement point.

    History: *clients* active transactions, each having executed
    ``executed_per_txn`` statements (no committed transactions, as the
    paper states).  Incoming: one next request per transaction; with
    probability ``conflict_rate`` it targets an object some *other*
    transaction has locked, making the SS2PL query deny ~that share.
    """
    rng = random.Random(seed)
    history: list[Request] = []
    locked_by: dict[int, int] = {}  # object -> ta
    rid = 1
    for ta in range(1, clients + 1):
        objects = rng.sample(range(table_rows), executed_per_txn)
        for intrata, obj in enumerate(objects):
            op = Operation.WRITE if rng.random() < 0.5 else Operation.READ
            history.append(Request(rid, ta, intrata, op, obj))
            locked_by[obj] = ta
            rid += 1

    locked_objects = list(locked_by)
    incoming: list[Request] = []
    for ta in range(1, clients + 1):
        if rng.random() < conflict_rate and locked_objects:
            # Pick an object locked by a different transaction.
            for __ in range(8):
                obj = rng.choice(locked_objects)
                if locked_by[obj] != ta:
                    break
            op = Operation.WRITE  # writes conflict with both lock kinds
        else:
            obj = rng.randrange(table_rows)
            while obj in locked_by:
                obj = rng.randrange(table_rows)
            op = Operation.WRITE if rng.random() < 0.5 else Operation.READ
        incoming.append(Request(rid, ta, executed_per_txn, op, obj))
        rid += 1
    return incoming, history


def measure_scheduler_run(
    clients: int,
    protocol: Optional[Protocol] = None,
    repetitions: int = 3,
    conflict_rate: float = 0.5,
    seed: int = 7,
) -> OverheadPoint:
    """Time full scheduler runs (queue drain + insert + query + move) at
    the paper's measurement point; returns the averages.

    The default protocol is the *interpreted* Listing 1 pipeline — the
    naive evaluation the paper measured; the compiled-plan improvement
    is reported separately (:mod:`repro.bench.scheduler_step`)."""
    protocol = (
        protocol
        if protocol is not None
        else PaperListing1Protocol(compiled=False)
    )
    per_run: list[float] = []
    returned: list[int] = []
    history_rows = pending_rows = 0
    for rep in range(repetitions):
        incoming, history = paper_snapshot(
            clients, conflict_rate=conflict_rate, seed=seed + rep
        )
        scheduler = DeclarativeScheduler(
            protocol,
            trigger=FillLevelTrigger(1),
            config=SchedulerConfig(prune_history=False),
        )
        scheduler.history.record_batch(history)
        for request in incoming:
            scheduler.submit(request)
        history_rows = len(scheduler.history)
        pending_rows = len(incoming)
        started = time.perf_counter()
        result = scheduler.step()
        per_run.append(time.perf_counter() - started)
        returned.append(result.batch_size)
    return OverheadPoint(
        clients=clients,
        per_run_seconds=sum(per_run) / len(per_run),
        returned_per_run=sum(returned) / len(returned),
        history_rows=history_rows,
        pending_rows=pending_rows,
    )


def run_declarative_overhead(
    client_counts: Sequence[int] = (100, 200, 300, 400, 500),
    workload_statements: Optional[dict[int, int]] = None,
    repetitions: int = 3,
    include_compiled_comparison: bool = False,
) -> str:
    """Full E5 report.

    ``workload_statements`` maps client count to the MU statement count
    whose scheduling the overhead is extrapolated over; defaults to the
    paper's numbers at 300/500 and interpolation elsewhere.

    ``include_compiled_comparison`` appends the interpreted-vs-compiled
    per-step ablation (see :mod:`repro.bench.scheduler_step`) — the
    paper's Section 5 improvement hypothesis, measured.  Off by
    default so existing callers (and their tracked timings) keep
    measuring exactly the paper's naive operating point; the CLI's E5
    turns it on, and E13 runs the ablation standalone.
    """
    defaults = {300: 550_055, 500: 48_267}
    workload = dict(defaults)
    if workload_statements:
        workload.update(workload_statements)

    points = [
        measure_scheduler_run(clients, repetitions=repetitions)
        for clients in client_counts
    ]

    rows = []
    for point in points:
        statements = workload.get(point.clients)
        rows.append(
            (
                point.clients,
                round(point.per_run_seconds * 1000, 2),
                round(point.returned_per_run, 1),
                point.history_rows,
                round(point.runs_needed(statements), 0) if statements else "-",
                round(point.total_overhead(statements), 1) if statements else "-",
            )
        )
    data_table = render_table(
        ["clients", "per-run (ms)", "returned/run", "history rows",
         "runs needed", "total overhead (s)"],
        rows,
        title="Section 4.3.2: declarative scheduling overhead (relalg backend)",
    )

    comparisons: list[ComparisonRow] = []
    by_clients = {p.clients: p for p in points}
    for clients, anchors in PAPER_OVERHEAD.items():
        point = by_clients.get(clients)
        if point is None:
            continue
        statements = workload[clients]
        comparisons.extend(
            [
                ComparisonRow(
                    f"per-run query time @ {clients} clients (ms)",
                    anchors["per_run_ms"],
                    round(point.per_run_seconds * 1000, 2),
                    "2026 hardware is faster; shape is what matters",
                ),
                ComparisonRow(
                    f"tuples returned per run @ {clients} clients",
                    anchors["returned"],
                    round(point.returned_per_run, 1),
                    "paper: about half the client count",
                ),
                ComparisonRow(
                    f"scheduler runs for workload @ {clients} clients",
                    anchors["runs"],
                    round(point.runs_needed(statements)),
                ),
                ComparisonRow(
                    f"total declarative overhead @ {clients} clients (s)",
                    anchors["total_s"],
                    round(point.total_overhead(statements), 1),
                ),
            ]
        )
    anchor_table = render_comparison(
        comparisons, title="Section 4.3.2 anchors (paper vs measured)"
    )
    sections = [data_table, anchor_table]
    if include_compiled_comparison:
        from repro.bench.scheduler_step import (
            render_scheduler_step_report,
            run_scheduler_step_bench,
        )

        compiled_counts = tuple(
            c for c in client_counts if c in (100, 300, 500)
        ) or (300,)
        report = run_scheduler_step_bench(compiled_counts)
        sections.append(render_scheduler_step_report(report))
    return "\n\n".join(sections)
