"""E10 — SLAs and adaptive consistency under load (Section 5 directions).

Thin report layers over the registered ``mixed-sla`` and
``adaptive-load-step`` scenarios (:mod:`repro.scenarios`):

* **SLA**: premium vs free clients under SS2PL, with and without the
  SLA ordering layer — premium mean response time must improve markedly
  while aggregate throughput stays comparable (the paper's constraint
  class (2)).
* **Adaptive**: the consistency-rationing-style protocol under a load
  step — strict SS2PL at low load, relaxed read-committed beyond the
  watermark; throughput between the two pure arms, strictness preserved
  whenever load is below the watermark (the paper's "reduced
  consistency criteria may be used during times of high load").
"""

from __future__ import annotations

from repro.metrics.reporting import render_table
from repro.scenarios import get_scenario, run_scenario
from repro.scenarios.library import MIDDLEWARE_WORKLOAD

SLA_WORKLOAD = MIDDLEWARE_WORKLOAD


def run_sla_bench(clients: int = 40, duration: float = 5.0, seed: int = 9) -> str:
    outcome = run_scenario(
        get_scenario("mixed-sla"), clients=clients, duration=duration, seed=seed
    )
    rows = [
        (
            entry.cell.label,
            entry.result.completed_statements,
            round(entry.result.mean_response("premium") * 1000, 2),
            round(entry.result.mean_response("free") * 1000, 2),
            round(entry.result.mean_response() * 1000, 2),
        )
        for entry in outcome.cells
    ]
    return render_table(
        ["scheduler", "stmts", "premium resp (ms)", "free resp (ms)",
         "overall resp (ms)"],
        rows,
        title=(
            f"SLA bench ({clients} clients, 20% premium): the SLA layer "
            "must cut premium response time without collapsing throughput"
        ),
    )


def run_adaptive_bench(
    clients: int = 60, duration: float = 5.0, seed: int = 11
) -> str:
    outcome = run_scenario(
        get_scenario("adaptive-load-step"),
        clients=clients,
        duration=duration,
        seed=seed,
    )
    rows = [
        (
            entry.cell.label,
            entry.result.completed_statements,
            round(entry.result.throughput, 1),
            entry.result.timeout_aborts,
            round(entry.result.mean_response() * 1000, 2),
        )
        for entry in outcome.cells
    ]
    table = render_table(
        ["protocol", "stmts", "stmts/s", "aborts", "mean resp (ms)"],
        rows,
        title=(
            f"Adaptive-consistency bench ({clients} clients): the adaptive "
            "protocol should land between the pure arms"
        ),
    )
    adaptive = outcome.cell("adaptive (strict<->relaxed)").protocol
    return table + (
        f"\n\nadaptive protocol switched arms {adaptive.switches} time(s)"
    )
