"""E10 — SLAs and adaptive consistency under load (Section 5 directions).

Two sub-benches:

* **SLA**: premium vs free clients under SS2PL, with and without the
  SLA ordering layer — premium mean response time must improve markedly
  while aggregate throughput stays comparable (the paper's constraint
  class (2)).
* **Adaptive**: the consistency-rationing-style protocol under a load
  step — strict SS2PL at low load, relaxed read-committed beyond the
  watermark; throughput between the two pure arms, strictness preserved
  whenever load is below the watermark (the paper's "reduced
  consistency criteria may be used during times of high load").
"""

from __future__ import annotations

from repro.core.simulation import MiddlewareSimulation
from repro.core.triggers import HybridTrigger
from repro.metrics.reporting import render_table
from repro.protocols.adaptive import AdaptiveConsistencyProtocol
from repro.protocols.relaxed import ReadCommittedProtocol
from repro.protocols.sla import SLAOrderingProtocol
from repro.protocols.ss2pl import SS2PLRelalgProtocol
from repro.workload.clients import ClientPopulation, SLA_TIERS
from repro.workload.spec import WorkloadSpec

SLA_WORKLOAD = WorkloadSpec(reads_per_txn=4, writes_per_txn=4, table_rows=2_000)


def run_sla_bench(clients: int = 40, duration: float = 5.0, seed: int = 9) -> str:
    population = ClientPopulation(SLA_TIERS)
    rows = []
    for label, protocol in (
        ("ss2pl (no SLA layer)", SS2PLRelalgProtocol()),
        ("sla(ss2pl)", SLAOrderingProtocol(SS2PLRelalgProtocol())),
    ):
        simulation = MiddlewareSimulation(
            protocol=protocol,
            trigger=HybridTrigger(0.02, 20),
            spec=SLA_WORKLOAD,
            clients=clients,
            seed=seed,
            attrs_for_client=population.attributes_for,
        )
        result = simulation.run(duration)
        rows.append(
            (
                label,
                result.completed_statements,
                round(result.mean_response("premium") * 1000, 2),
                round(result.mean_response("free") * 1000, 2),
                round(result.mean_response() * 1000, 2),
            )
        )
    return render_table(
        ["scheduler", "stmts", "premium resp (ms)", "free resp (ms)",
         "overall resp (ms)"],
        rows,
        title=(
            f"SLA bench ({clients} clients, 20% premium): the SLA layer "
            "must cut premium response time without collapsing throughput"
        ),
    )


def run_adaptive_bench(
    clients: int = 60, duration: float = 5.0, seed: int = 11
) -> str:
    def adaptive() -> AdaptiveConsistencyProtocol:
        return AdaptiveConsistencyProtocol(
            strict=SS2PLRelalgProtocol(),
            relaxed=ReadCommittedProtocol(),
            high_watermark=clients,
            low_watermark=max(2, clients // 4),
        )

    rows = []
    adaptive_protocol = adaptive()
    for label, protocol in (
        ("ss2pl (always strict)", SS2PLRelalgProtocol()),
        ("read-committed (always relaxed)", ReadCommittedProtocol()),
        ("adaptive (strict<->relaxed)", adaptive_protocol),
    ):
        simulation = MiddlewareSimulation(
            protocol=protocol,
            trigger=HybridTrigger(0.02, 30),
            spec=SLA_WORKLOAD,
            clients=clients,
            seed=seed,
        )
        result = simulation.run(duration)
        rows.append(
            (
                label,
                result.completed_statements,
                round(result.throughput, 1),
                result.timeout_aborts,
                round(result.mean_response() * 1000, 2),
            )
        )
    table = render_table(
        ["protocol", "stmts", "stmts/s", "aborts", "mean resp (ms)"],
        rows,
        title=(
            f"Adaptive-consistency bench ({clients} clients): the adaptive "
            "protocol should land between the pure arms"
        ),
    )
    return table + f"\n\nadaptive protocol switched arms {adaptive_protocol.switches} time(s)"
