"""E9 — the productivity comparison (Section 3.4's study, measurable part).

The paper planned a user study comparing "function points as well as
lines of code" of declarative vs imperative protocol definitions.  The
study was never run; the measurable artifact is spec size.  This bench
counts non-empty specification lines for every formulation of SS2PL we
ship, plus the imperative baseline's code size, and the same for the
relaxed and application-specific protocols.
"""

from __future__ import annotations

import inspect

from repro.baselines.imperative import ImperativeSS2PLScheduler
from repro.lang.protocol import SDLProtocol, SDL_SS2PL, SDL_READ_COMMITTED
from repro.metrics.reporting import render_table
from repro.protocols.app_consistency import BoundedOversellProtocol
from repro.protocols.relaxed import ReadCommittedProtocol
from repro.protocols.legacy import PaperListing1Protocol
from repro.protocols.legacy import SS2PLDatalogProtocol


def _code_lines(obj) -> int:
    """Logical code lines of an implementation (comments/blank stripped)."""
    source = inspect.getsource(obj)
    count = 0
    in_docstring = False
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        quotes = stripped.count('"""') + stripped.count("'''")
        if in_docstring:
            if quotes:
                in_docstring = False
            continue
        if stripped.startswith(('"""', "'''")):
            if quotes != 2:
                in_docstring = True
            continue
        count += 1
    return count


def run_productivity() -> str:
    ss2pl_rows = [
        ("SS2PL", "SQL (paper Listing 1)", PaperListing1Protocol().spec_line_count()),
        ("SS2PL", "Datalog", SS2PLDatalogProtocol().spec_line_count()),
        ("SS2PL", "SDL (this work's language)", SDLProtocol(SDL_SS2PL).spec_line_count()),
        (
            "SS2PL",
            "imperative Python (hand-coded)",
            _code_lines(ImperativeSS2PLScheduler),
        ),
    ]
    other_rows = [
        ("read committed", "Datalog", ReadCommittedProtocol().spec_line_count()),
        (
            "read committed",
            "SDL",
            SDLProtocol(SDL_READ_COMMITTED).spec_line_count(),
        ),
        (
            "bounded oversell (app-specific)",
            "Datalog",
            BoundedOversellProtocol(3).spec_line_count(),
        ),
    ]
    table = render_table(
        ["protocol", "formulation", "spec lines"],
        ss2pl_rows + other_rows,
        title=(
            "Productivity (Section 3.4 stand-in): specification size per "
            "formulation — the declarative forms are a fraction of the "
            "imperative scheduler, and SDL is the most succinct"
        ),
    )
    sdl = ss2pl_rows[2][2]
    imperative = ss2pl_rows[3][2]
    ratio = imperative / sdl if sdl else float("inf")
    return table + (
        f"\n\nSS2PL: imperative/SDL size ratio = {ratio:.1f}x "
        f"({imperative} vs {sdl} lines)"
    )
