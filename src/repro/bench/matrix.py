"""E14 — the protocol × backend matrix.

The payoff of splitting specification from execution: the full matrix
of registered :class:`~repro.protocols.spec.ProtocolSpec`\\ s against
registered :class:`~repro.backends.base.ExecutionBackend`\\ s is a
for-loop, not a file per pairing.  For every supported combination this
bench drives the live scheduler over one shared workload, asserts the
batch sequence is identical to the spec's reference backend, and
reports per-step cost; unsupported combinations are reported as ``--``
(a backend *declares* what it cannot lower — the matrix test asserts
the declared skip list is exact).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.backends import BACKEND_REGISTRY, build_protocol, supported_backends
from repro.bench.incremental_ablation import drive_steps
from repro.metrics.reporting import render_table
from repro.protocols.spec import SPEC_REGISTRY


def run_backend_matrix(
    clients: int = 40,
    steps: int = 12,
    seed: int = 13,
    backends: Optional[Sequence[str]] = None,
    specs: Optional[Sequence[str]] = None,
    trigger: Optional[str] = None,
) -> str:
    """Per-step cost (ms) for every supported spec × backend pairing.

    ``trigger`` (a :func:`repro.api.make_trigger` spelling) makes every
    cell's driver trigger-paced instead of fire-every-iteration; each
    cell gets a fresh policy instance so trigger state never leaks
    between pairings.
    """
    backend_columns = list(backends) if backends else sorted(BACKEND_REGISTRY)
    spec_rows = list(specs) if specs else sorted(SPEC_REGISTRY)

    rows = []
    divergences: list[str] = []
    for spec_name in spec_rows:
        spec = SPEC_REGISTRY[spec_name]
        supported = set(supported_backends(spec)) & set(backend_columns)
        reference_batches = None
        cells = []
        for backend_name in backend_columns:
            if backend_name not in supported:
                cells.append("--")
                continue
            cell_trigger = None
            if trigger is not None:
                import repro.api as api

                cell_trigger = api.make_trigger(trigger)
            result = drive_steps(
                build_protocol(spec_name, backend_name),
                clients=clients, steps=steps, seed=seed,
                trigger=cell_trigger,
            )
            if reference_batches is None:
                reference_batches = result.batches
            elif result.batches != reference_batches:
                divergences.append(f"{spec_name} × {backend_name}")
            cells.append(f"{result.per_step_ms:.2f}")
        rows.append((spec_name, *cells))

    table = render_table(
        ["spec \\ backend", *backend_columns],
        rows,
        title=(
            f"Protocol × backend matrix: per-step cost in ms over "
            f"{steps} scheduler steps, {clients} clients "
            f"(-- = backend declares the spec unsupported)"
        ),
    )
    if divergences:
        table += "\nDIVERGED: " + ", ".join(divergences)
    else:
        table += (
            "\nall supported combinations emitted identical batch sequences"
        )
    return table
