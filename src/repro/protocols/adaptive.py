"""Adaptive consistency: switch protocols with load.

The paper's closing direction (Section 5): "One possibility is an
adaptive consistency scheduler which varies the applied consistency
protocols based on metadata and business application requirements", in
the spirit of Consistency Rationing [15] and of Section 1's "reduced
consistency criteria may be used during times of high load".

:class:`AdaptiveConsistencyProtocol` wraps two protocols — a strict one
and a relaxed one — and chooses per batch based on the pending-queue
length, with hysteresis so the scheduler does not flap at the
threshold.
"""

from __future__ import annotations

from repro.protocols.base import (
    Capabilities,
    Protocol,
    ProtocolDecision,
)
from repro.relalg.table import Table


class AdaptiveConsistencyProtocol(Protocol):
    """Strict protocol below the load threshold, relaxed above.

    Parameters
    ----------
    strict, relaxed:
        The two consistency arms (e.g. SS2PL and read-committed).
    high_watermark:
        Pending-set size at which the scheduler degrades to *relaxed*.
    low_watermark:
        Pending-set size at which it returns to *strict*; must be
        strictly below ``high_watermark`` (hysteresis band).
    """

    capabilities = Capabilities(
        performance=True, qos=True, declarative=True, flexible=True,
        high_scalability=True,
    )

    def __init__(
        self,
        strict: Protocol,
        relaxed: Protocol,
        high_watermark: int = 200,
        low_watermark: int = 100,
    ) -> None:
        if low_watermark >= high_watermark:
            raise ValueError("low_watermark must be below high_watermark")
        self.strict = strict
        self.relaxed = relaxed
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self._degraded = False
        self.switches = 0
        self.name = f"adaptive({strict.name}|{relaxed.name})"
        self.description = (
            f"{strict.name} under normal load, {relaxed.name} beyond "
            f"{high_watermark} pending requests (back below {low_watermark})"
        )
        self.declarative_source = (
            (strict.declarative_source or "")
            + f"% switch to relaxed arm when pending > {high_watermark}:\n"
            + (relaxed.declarative_source or "")
        )

    @property
    def active_arm(self) -> Protocol:
        return self.relaxed if self._degraded else self.strict

    def reset(self) -> None:
        self._degraded = False
        self.switches = 0
        self.strict.reset()
        self.relaxed.reset()

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        pending = len(requests)
        if not self._degraded and pending > self.high_watermark:
            self._degraded = True
            self.switches += 1
        elif self._degraded and pending < self.low_watermark:
            self._degraded = False
            self.switches += 1
        return self.active_arm.schedule(requests, history)
