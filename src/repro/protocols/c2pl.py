"""Conservative 2PL — compatibility shim.

A classical 2PL variant (deadlock-free by construction): a transaction's
first request is admitted only when *all* objects in the transaction's
declared access set are free of conflicting locks; once admitted, the
transaction's subsequent requests always qualify.  The middleware learns
the access set from the pending batch (workloads submitted
transaction-at-a-time satisfy this naturally).

Rules live in :mod:`repro.protocols.library` (``c2pl``); this class is
the historical name for ``build_protocol("c2pl", "datalog")``.
"""

from __future__ import annotations

from repro.backends import SpecProtocol
from repro.protocols.base import register_protocol
from repro.protocols.library import C2PL_DATALOG_RULES  # noqa: F401
from repro.protocols.spec import get_spec


class ConservativeTwoPLProtocol(SpecProtocol):
    """Conservative (static) 2PL as a Datalog rule set."""

    name = "c2pl"
    description = "conservative 2PL: all-or-nothing transaction admission"

    def __init__(self, backend: str = "datalog") -> None:
        super().__init__(
            get_spec("c2pl"),
            backend=backend,
            name=type(self).name,
            description=type(self).description,
        )


@register_protocol
def _make_c2pl() -> ConservativeTwoPLProtocol:
    return ConservativeTwoPLProtocol()
