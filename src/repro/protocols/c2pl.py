"""Conservative 2PL: transactions acquire their whole lock set at once.

A classical 2PL variant (deadlock-free by construction): a transaction's
first request is admitted only when *all* objects in the transaction's
declared access set are free of conflicting locks; once admitted, the
transaction's subsequent requests always qualify.

Conservative 2PL needs the transaction's full object set up front.  The
middleware learns it from the pending batch: all requests sharing a TA
in the pending table declare that transaction's (remaining) accesses —
workloads submitted transaction-at-a-time (the scheduler's batch mode)
satisfy this naturally.  The declarative formulation predeclares via the
``claims`` relation derived from the pending set.
"""

from __future__ import annotations

from repro.datalog.engine import Database, evaluate
from repro.datalog.program import Program
from repro.model.request import Request
from repro.protocols.base import (
    Capabilities,
    Protocol,
    ProtocolDecision,
    register_protocol,
)
from repro.relalg.table import Table

C2PL_DATALOG_RULES = """\
finished(Ta) :- history(_, Ta, _, "c", _).
finished(Ta) :- history(_, Ta, _, "a", _).
admitted(Ta) :- history(_, Ta, _, _, _), not finished(Ta).
locked(Obj, Ta, Op) :- history(_, Ta, _, Op, Obj), not finished(Ta).
claims(Obj, Ta, Op) :- requests(_, Ta, _, Op, Obj), not admitted(Ta).
claimconflict(Ta) :- claims(Obj, Ta, _), locked(Obj, Ta2, "w"), Ta != Ta2.
claimconflict(Ta) :- claims(Obj, Ta, "w"), locked(Obj, Ta2, "r"), Ta != Ta2.
claimconflict(Ta) :- claims(Obj, Ta, Op2), claims(Obj, Ta1, Op1), Ta > Ta1,
                     conflictops(Op1, Op2).
conflictops("w", "w").
conflictops("w", "r").
conflictops("r", "w").
qualified(Id, Ta, I, Op, Obj) :- requests(Id, Ta, I, Op, Obj), admitted(Ta).
qualified(Id, Ta, I, Op, Obj) :- requests(Id, Ta, I, Op, Obj),
                                 not admitted(Ta), not claimconflict(Ta).
"""


class ConservativeTwoPLProtocol(Protocol):
    """Conservative (static) 2PL as a Datalog rule set (see module doc)."""

    name = "c2pl"
    description = "conservative 2PL: all-or-nothing transaction admission"
    capabilities = Capabilities(
        performance=True, declarative=True, flexible=True, high_scalability=True
    )
    declarative_source = C2PL_DATALOG_RULES

    def __init__(self) -> None:
        self._program = Program.parse(C2PL_DATALOG_RULES)

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        db = Database()
        db.add_facts("requests", requests.rows)
        db.add_facts("history", history.rows)
        evaluate(self._program, db)
        rows = sorted(db.facts("qualified"))
        return ProtocolDecision(
            qualified=[Request.from_row(row) for row in rows]
        )


@register_protocol
def _make_c2pl() -> ConservativeTwoPLProtocol:
    return ConservativeTwoPLProtocol()
