"""Legacy SS2PL protocol classes — the pre-`repro.api` construction
surface, kept behavior-identical.

Each class here is the historical name for a ``build_protocol(spec,
backend)`` pairing (``SS2PLDatalogProtocol()`` ≡
``build_protocol("ss2pl-listing1", "datalog")``) plus whatever compat
accessors its era exposed (``_plans``, ``explain_denial``, ``resync``,
the maintained-view properties).  The five historical module paths
(``repro.protocols.ss2pl`` and friends) are deprecation stubs that
re-export from here with a :class:`DeprecationWarning`; new code should
construct through :mod:`repro.api` instead::

    import repro.api as api
    protocol = api.make_protocol("ss2pl-listing1", "datalog")

This module itself imports warning-free — the package ``__init__`` and
the class-name re-exports in :mod:`repro` go through it, so merely
importing ``repro`` never warns.
"""

from __future__ import annotations

from repro.backends import SpecProtocol
from repro.protocols.base import register_protocol
from repro.protocols.library import (  # noqa: F401  (re-exported API)
    LISTING1_SPEC,
    LISTING1_SQL,
    SS2PL_DATALOG_RULES,
    SS2PL_SPEC,
    gate_program_order,
    listing1_pipeline,
    listing1_query,
)
from repro.relalg.table import Table


class _Listing1Backed(SpecProtocol):
    """Listing 1 on the relalg engine with a switchable evaluation
    strategy: ``compiled=True`` (default) binds the compile-once
    backend, ``compiled=False`` the eager interpreted pipeline
    (benchmarks measure one against the other; tests assert
    byte-identical batches)."""

    spec_name = "ss2pl-listing1"

    def __init__(self, compiled: bool = True) -> None:
        from repro.protocols.spec import get_spec

        self.compiled = compiled
        super().__init__(
            get_spec(self.spec_name),
            backend="compiled" if compiled else "interpreted",
            name=type(self).name,
            description=type(self).description,
        )
        # In interpreted mode the evaluator holds no plans; EXPLAIN and
        # the historical ``_plans`` accessor still work through a
        # lazily built compiled view of the same spec.
        self._compat_plans = None

    @property
    def _plans(self):
        """The compiled plan cache for this protocol's query (compat
        accessor; available in both evaluation modes, as before the
        spec/backend split)."""
        plans = getattr(self._evaluator, "plans", None)
        if plans is not None:
            return plans
        if self._compat_plans is None:
            from repro.relalg.plan import PlanCache

            self._compat_plans = PlanCache(self.spec.relalg)
        return self._compat_plans

    def reset(self) -> None:
        super().reset()
        if self._compat_plans is not None:
            self._compat_plans.clear()

    def explain(self, requests: Table, history: Table) -> str:
        """Physical EXPLAIN of the cached plan for this table pair."""
        return self._plans.get(requests, history).explain()


class PaperListing1Protocol(_Listing1Backed):
    """Listing 1 exactly as published.

    Published semantics are kept untouched, including the naive aspects
    the paper acknowledges (Section 5 calls this approach "naive"): no
    program-order gating — a request can qualify before earlier
    statements of its own transaction have executed.  Termination
    requests (object ``-1``, operation ``c``/``a``) always qualify: they
    collide with no data object and the intra-batch rule requires a
    write on at least one side.
    """

    name = "ss2pl-listing1"
    description = "SS2PL via the paper's Listing 1 query, relalg backend"
    spec_name = "ss2pl-listing1"


class SS2PLRelalgProtocol(_Listing1Backed):
    """Listing 1 plus program-order and termination gating (the spec's
    ``post_process`` policy) — the variant the live middleware runs."""

    name = "ss2pl"
    description = "SS2PL (Listing 1 + program order), relalg backend"
    spec_name = "ss2pl"


class SS2PLDatalogProtocol(SpecProtocol):
    """SS2PL via the Datalog rule set.

    Result-equivalent to :class:`PaperListing1Protocol` on every
    pending/history instance (asserted by the cross-backend matrix
    test), while the specification is roughly a quarter of the SQL's
    size — the paper's succinctness hypothesis, made measurable
    (benchmark E9).
    """

    name = "ss2pl-datalog"
    description = "SS2PL as 12 Datalog rules"

    def __init__(self) -> None:
        from repro.protocols.spec import get_spec

        super().__init__(
            get_spec("ss2pl-listing1"),
            backend="datalog",
            name=type(self).name,
            description=type(self).description,
        )

    @property
    def _program(self):
        return self._evaluator.program

    def explain_denial(self, request_id: int) -> str:
        """Why-provenance for the last batch's denial of *request_id*.

        Returns a formatted derivation tree (see
        :mod:`repro.datalog.explain`); raises when the request was not
        denied in the most recent :meth:`schedule` call.
        """
        return self._evaluator.explain_denial(request_id)


class SS2PLIncrementalProtocol(SpecProtocol):
    """Listing 1 semantics with incrementally maintained lock views.

    Because the maintained state lives in the evaluator, it must
    observe *every* history change.  Driving it through
    :class:`~repro.core.scheduler.DeclarativeScheduler` guarantees
    that; for standalone use, call :meth:`resync` after loading history
    out-of-band.
    """

    name = "ss2pl-incremental"
    description = "SS2PL with incrementally maintained lock footprint"

    def __init__(self) -> None:
        from repro.protocols.spec import get_spec

        super().__init__(
            get_spec("ss2pl-listing1"),
            backend="incremental",
            name=type(self).name,
            description=type(self).description,
        )

    def resync(self, history: Table) -> None:
        """Rebuild the incremental state from a history table (for
        standalone use where history was loaded out-of-band)."""
        self._evaluator.resync(history)

    # -- compat accessors for the maintained views ------------------------

    @property
    def _write_locks(self):
        return self._evaluator._write_locks

    @property
    def _read_locks(self):
        return self._evaluator._read_locks

    @property
    def _reads_of(self):
        return self._evaluator._reads_of

    @property
    def _writes_of(self):
        return self._evaluator._writes_of

    @property
    def _finished(self):
        return self._evaluator._finished


class SS2PLSqlProtocol(SpecProtocol):
    """The paper's Listing 1 executed by sqlite3 (cross-validation and
    the SQL data point in the language ablation; each evaluation loads
    fresh snapshot tables by design — see the backend docstring)."""

    name = "ss2pl-sql"
    description = "SS2PL via Listing 1 on sqlite3"

    def __init__(self) -> None:
        from repro.protocols.spec import get_spec

        super().__init__(
            get_spec("ss2pl-listing1"),
            backend="sqlite",
            name=type(self).name,
            description=type(self).description,
        )


class SqlFrontendSS2PLProtocol(SpecProtocol):
    """Listing 1 parsed and planned by :class:`repro.relalg.sql.SqlPlanner`.

    The SQL text is parsed, planned and compiled **once** per
    (requests, history) table pair — each scheduler step only executes
    the cached physical plan; ``compiled=False`` re-parses and
    re-plans per step (the original behaviour, kept for the E8
    interpreted-vs-compiled ablation).
    """

    name = "ss2pl-sqlfront"
    description = "SS2PL: the paper's SQL text on our SQL frontend"

    def __init__(self, compiled: bool = True) -> None:
        from repro.protocols.spec import get_spec

        self.compiled = compiled
        super().__init__(
            get_spec("ss2pl-listing1"),
            backend="sqlfront",
            name=type(self).name,
            description=type(self).description,
            compiled=compiled,
        )

    @property
    def _plans(self):
        return self._evaluator.plans


@register_protocol
def _make_listing1() -> PaperListing1Protocol:
    return PaperListing1Protocol()


@register_protocol
def _make_ss2pl() -> SS2PLRelalgProtocol:
    return SS2PLRelalgProtocol()


@register_protocol
def _make_ss2pl_datalog() -> SS2PLDatalogProtocol:
    return SS2PLDatalogProtocol()


@register_protocol
def _make_ss2pl_incremental() -> SS2PLIncrementalProtocol:
    return SS2PLIncrementalProtocol()


@register_protocol
def _make_ss2pl_sql() -> SS2PLSqlProtocol:
    return SS2PLSqlProtocol()


@register_protocol
def _make_ss2pl_sqlfront() -> SqlFrontendSS2PLProtocol:
    return SqlFrontendSS2PLProtocol()
