"""Protocol abstraction: a declarative rule set the scheduler evaluates.

A protocol's job (paper Section 3.3, step 3): given the pending-request
table and the history table, produce "an ordered schedule of the next
requests qualified for execution".  The scheduler core is generic; all
policy lives in protocol objects.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from repro.model.request import Request
from repro.relalg.table import Table


@dataclass(frozen=True, slots=True)
class Capabilities:
    """Capability vector in the dimensions of the paper's Table 1.

    P = improves/ensures performance, QoS = quality-of-service support,
    D = declarative protocol definition, F = flexibility (changeable
    protocols), HS = targets high scalability.
    """

    performance: bool = False
    qos: bool = False
    declarative: bool = False
    flexible: bool = False
    high_scalability: bool = False

    def as_row(self) -> tuple[str, str, str, str, str]:
        def mark(flag: bool) -> str:
            return "+" if flag else "-"

        return (
            mark(self.performance),
            mark(self.qos),
            mark(self.declarative),
            mark(self.flexible),
            mark(self.high_scalability),
        )


@dataclass
class ProtocolDecision:
    """Result of one protocol evaluation over the pending set."""

    qualified: list[Request] = field(default_factory=list)
    #: Optional explanations for denied requests (request id -> reason),
    #: filled by protocols that can attribute denials cheaply.
    denials: dict[int, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.qualified)


class Protocol(abc.ABC):
    """A scheduling protocol evaluated set-at-a-time.

    Concrete protocols implement :meth:`schedule`.  ``requests`` and
    ``history`` use the paper's Table 2 schema
    ``(id, ta, intrata, operation, object)``.
    """

    #: Short machine name (used by registries and reports).
    name: str = "abstract"
    #: Human description of the rule set.
    description: str = ""
    #: Table 1 capability vector for this protocol/the system running it.
    capabilities: Capabilities = Capabilities()
    #: Lines of declarative specification, for the productivity study
    #: (E9).  Protocols backed by a rule text override this.
    declarative_source: Optional[str] = None

    @abc.abstractmethod
    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        """Return the ordered qualified requests for this batch."""

    def reset(self) -> None:
        """Clear any protocol-internal state (default: stateless)."""

    # -- incremental-maintenance hooks (optional) ---------------------------
    #
    # Stateless protocols re-derive everything from the history table each
    # step.  Stateful (incrementally maintained) protocols override these;
    # the scheduler calls them after moving qualified requests to history
    # and after pruning finished transactions, so the protocol's view
    # stays synchronized without rescanning (the paper's research
    # question 4: "How can the performance of declaratively programmed
    # schedulers be improved?").

    def observe_executed(self, batch: Sequence[Request]) -> None:
        """Called after *batch* was moved from pending to history."""

    def observe_pruned(self, transactions: set[int]) -> None:
        """Called after the listed transactions' rows were pruned from
        the history store."""

    def spec_line_count(self) -> int:
        """Number of non-empty lines in the declarative specification."""
        if not self.declarative_source:
            return 0
        return sum(
            1 for line in self.declarative_source.splitlines() if line.strip()
        )


#: name -> factory; populated by :func:`register_protocol` decorators.
PROTOCOL_REGISTRY: Dict[str, Callable[[], Protocol]] = {}


def register_protocol(factory: Callable[[], Protocol]) -> Callable[[], Protocol]:
    """Register a zero-argument protocol factory under its product's name."""
    instance = factory()
    PROTOCOL_REGISTRY[instance.name] = factory
    return factory


def requests_from_relation(rows: Sequence[Sequence]) -> list[Request]:
    """Convert Table 2-schema rows back into :class:`Request` objects."""
    return [Request.from_row(row) for row in rows]
