"""Declarative protocol specifications, decoupled from execution.

The paper's thesis is that a scheduling protocol is a *query* over the
pending-request and history relations, so "optimization techniques from
declarative query processing can be used to improve scheduler
performance without affecting the scheduler specification".  This
module is that separation made structural:

* :class:`ProtocolSpec` captures **what** a protocol is — its
  qualification query in one or more declarative dialects (a relalg
  logical-plan builder, SQL text, Datalog rules, a lock-conflict
  model), an optional batch post-processing policy, and metadata.  A
  spec contains **zero execution logic**: nothing in it knows how to
  scan a table, probe an index, or cache a plan.
* :mod:`repro.backends` holds the **how**: pluggable
  :class:`~repro.backends.base.ExecutionBackend` adapters, each of
  which knows how to lower a spec dialect it understands into something
  it can evaluate per scheduler step.

Any registered spec runs on any backend that supports one of its
dialects; the protocol × backend matrix is swept by the equivalence
test suite and by the E14 bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Mapping, Optional, TYPE_CHECKING

from repro.protocols.base import Capabilities, ProtocolDecision
from repro.relalg.table import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relalg.query import Query


@dataclass(frozen=True, slots=True)
class LockModel:
    """A protocol's conflict rules as a tiny declarative lock matrix.

    This is the dialect consumed by the *imperative* and *incremental*
    backends: both walk/maintain lock tables, and the four flags say
    which lock acquisitions and conflict checks the protocol performs.
    SS2PL is the all-default model; read committed drops read locks
    entirely; FCFS checks nothing; an exclusive-only 2PL treats reads
    as writes.
    """

    #: Reads acquire shared locks (and register intra-batch read claims).
    reads_take_locks: bool = True
    #: Reads are blocked by foreign write locks.
    reads_check_writers: bool = True
    #: Writes are blocked by foreign read locks.
    writes_check_readers: bool = True
    #: Writes are blocked by foreign write locks.
    writes_check_writers: bool = True
    #: Treat every read as a write (exclusive-only locking).
    reads_are_writes: bool = False


#: The lock models of the shipped specs, named for reuse.
SS2PL_LOCKS = LockModel()
READ_COMMITTED_LOCKS = LockModel(
    reads_take_locks=False,
    reads_check_writers=False,
    writes_check_readers=False,
)
NO_LOCKS = LockModel(
    reads_take_locks=False,
    reads_check_writers=False,
    writes_check_readers=False,
    writes_check_writers=False,
)
EXCLUSIVE_LOCKS = LockModel(reads_are_writes=True)


@dataclass(frozen=True)
class ProtocolSpec:
    """A declarative scheduling protocol: queries, policy, metadata.

    Every optional field is a *dialect* — an equivalent formulation of
    the same qualification rule.  A backend supports a spec when the
    spec carries a dialect the backend can lower (see
    :meth:`repro.backends.base.ExecutionBackend.supports`); all
    dialects of one spec must qualify identical request sets, which the
    cross-backend matrix test asserts on randomized workloads.
    """

    name: str
    description: str = ""
    capabilities: Capabilities = Capabilities()

    # -- query dialects ---------------------------------------------------
    #: Relalg logical-plan builder ``(requests, history) -> Query``.
    #: Purely declarative: builds the plan DAG, executes nothing.
    relalg: Optional[Callable[[Table, Table], "Query"]] = None
    #: Eager step-by-step relalg formulation (the paper's "naive" CTE-at-
    #: a-time evaluation); returns the qualified Table 2 rows.
    relalg_pipeline: Optional[Callable[[Table, Table], list]] = None
    #: SQL text over ``requests``/``history`` (Table 2 schema).
    sql: Optional[str] = None
    #: sqlite-compatible rendition of :attr:`sql` when the primary text
    #: uses constructs sqlite parses differently; defaults to ``sql``.
    sqlite_sql: Optional[str] = None
    #: Datalog rules deriving ``qualified(Id, Ta, I, Op, Obj)``.
    datalog: Optional[str] = None
    #: Lock-conflict matrix (imperative + incremental backends).
    lock_model: Optional[LockModel] = None
    #: Hand-written set-at-a-time fallback ``(requests, history) ->
    #: ProtocolDecision`` for protocols whose rule needs more than a
    #: lock matrix (counting, admission).  Policy, not execution: it may
    #: only read the two tables.
    imperative: Optional[Callable[[Table, Table], ProtocolDecision]] = None

    # -- policy -----------------------------------------------------------
    #: Batch post-processing applied to the backend's qualified set
    #: (id-ordered) before dispatch — e.g. program-order gating or an
    #: admission budget.  Runs identically on every backend.
    post_process: Optional[
        Callable[[ProtocolDecision, Table, Table], ProtocolDecision]
    ] = None

    # -- metadata ---------------------------------------------------------
    #: The formulation of record for productivity accounting (E9).
    declarative_source: Optional[str] = None
    #: Backend used when none is requested.
    default_backend: str = "compiled"
    metadata: Mapping[str, object] = field(default_factory=dict)

    def dialects(self) -> frozenset[str]:
        """Names of the query dialects this spec provides."""
        present = set()
        if self.relalg is not None:
            present.add("relalg")
        if self.relalg_pipeline is not None:
            present.add("relalg-pipeline")
        if self.sql is not None:
            present.add("sql")
        if self.sqlite_sql is not None or self.sql is not None:
            present.add("sqlite-sql")
        if self.datalog is not None:
            present.add("datalog")
        if self.lock_model is not None:
            present.add("lock-model")
        if self.imperative is not None:
            present.add("imperative")
        return frozenset(present)

    def sqlite_text(self) -> Optional[str]:
        return self.sqlite_sql if self.sqlite_sql is not None else self.sql

    def with_(self, **changes) -> "ProtocolSpec":
        """A copy of this spec with the given fields replaced."""
        return replace(self, **changes)

    def spec_line_count(self) -> int:
        """Non-empty lines of the declarative source of record."""
        if not self.declarative_source:
            return 0
        return sum(
            1
            for line in self.declarative_source.splitlines()
            if line.strip()
        )


#: name -> spec; populated by :func:`register_spec`.
SPEC_REGISTRY: Dict[str, ProtocolSpec] = {}


def register_spec(spec: ProtocolSpec) -> ProtocolSpec:
    """Register *spec* under its name (idempotent for identical names)."""
    SPEC_REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> ProtocolSpec:
    try:
        return SPEC_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol spec {name!r}; "
            f"registered: {', '.join(spec_names())}"
        ) from None


def spec_names() -> list[str]:
    return sorted(SPEC_REGISTRY)
