"""Deprecated module path — use :mod:`repro.api` (or
:mod:`repro.protocols.legacy` for the class name).

``SqlFrontendSS2PLProtocol()`` ≡ ``build_protocol("ss2pl-listing1",
"sqlfront")``; construct through ``repro.api.make_protocol`` instead.
Importing this module keeps working, behavior-identical, with a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.protocols.legacy import (  # noqa: F401  (re-exported API)
    LISTING1_SQL,
    SqlFrontendSS2PLProtocol,
)

warnings.warn(
    "repro.protocols.ss2pl_sqlfront is deprecated; build protocols via "
    "repro.api.make_protocol('ss2pl-listing1', 'sqlfront'), or import "
    "the class name from repro.protocols.legacy",
    DeprecationWarning,
    stacklevel=2,
)
