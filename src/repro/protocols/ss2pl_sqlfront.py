"""SS2PL via the paper's literal SQL — on our own engine.

Completes the language-question circle: the same Listing 1 *text* that
:mod:`repro.sqlbridge` feeds to sqlite3 parses and executes on this
repository's relational engine through :mod:`repro.relalg.sql`.  Where
:class:`~repro.protocols.ss2pl.PaperListing1Protocol` is a hand
transliteration of Listing 1 into the builder API, this protocol has no
hand-written plan at all — SQL in, schedule out.
"""

from __future__ import annotations

from repro.model.request import Request
from repro.protocols.base import (
    Capabilities,
    Protocol,
    ProtocolDecision,
    register_protocol,
)
from repro.protocols.ss2pl import LISTING1_SQL
from repro.relalg.sql import SqlPlanner
from repro.relalg.table import Table


class SqlFrontendSS2PLProtocol(Protocol):
    """Listing 1 parsed and planned by :class:`repro.relalg.sql.SqlPlanner`."""

    name = "ss2pl-sqlfront"
    description = "SS2PL: the paper's SQL text on our SQL frontend"
    capabilities = Capabilities(
        performance=True, qos=True, declarative=True, flexible=True,
        high_scalability=True,
    )
    declarative_source = LISTING1_SQL

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        planner = SqlPlanner({"requests": requests, "history": history})
        relation = planner.execute(LISTING1_SQL)
        qualified = sorted(
            (Request.from_row(row) for row in relation.rows),
            key=lambda r: r.id,
        )
        return ProtocolDecision(qualified=qualified)


@register_protocol
def _make_ss2pl_sqlfront() -> SqlFrontendSS2PLProtocol:
    return SqlFrontendSS2PLProtocol()
