"""SS2PL via the SQL frontend — compatibility shim.

The historical name for ``build_protocol("ss2pl-listing1", "sqlfront")``:
the same Listing 1 *text* that sqlite3 runs, parsed and planned by this
repository's own engine (no hand-written plan at all — SQL in,
schedule out).  Text in :mod:`repro.protocols.library`; planning in
:mod:`repro.backends.sqlfront`.
"""

from __future__ import annotations

from repro.backends import SpecProtocol
from repro.protocols.base import register_protocol
from repro.protocols.library import LISTING1_SQL  # noqa: F401
from repro.protocols.spec import get_spec


class SqlFrontendSS2PLProtocol(SpecProtocol):
    """Listing 1 parsed and planned by :class:`repro.relalg.sql.SqlPlanner`.

    The SQL text is parsed, planned and compiled **once** per
    (requests, history) table pair — each scheduler step only executes
    the cached physical plan; ``compiled=False`` re-parses and
    re-plans per step (the original behaviour, kept for the E8
    interpreted-vs-compiled ablation).
    """

    name = "ss2pl-sqlfront"
    description = "SS2PL: the paper's SQL text on our SQL frontend"

    def __init__(self, compiled: bool = True) -> None:
        self.compiled = compiled
        super().__init__(
            get_spec("ss2pl-listing1"),
            backend="sqlfront",
            name=type(self).name,
            description=type(self).description,
            compiled=compiled,
        )

    @property
    def _plans(self):
        return self._evaluator.plans


@register_protocol
def _make_ss2pl_sqlfront() -> SqlFrontendSS2PLProtocol:
    return SqlFrontendSS2PLProtocol()
