"""SS2PL via the paper's literal SQL — on our own engine.

Completes the language-question circle: the same Listing 1 *text* that
:mod:`repro.sqlbridge` feeds to sqlite3 parses and executes on this
repository's relational engine through :mod:`repro.relalg.sql`.  Where
:class:`~repro.protocols.ss2pl.PaperListing1Protocol` is a hand
transliteration of Listing 1 into the builder API, this protocol has no
hand-written plan at all — SQL in, schedule out.
"""

from __future__ import annotations

from repro.model.request import Request
from repro.protocols.base import (
    Capabilities,
    Protocol,
    ProtocolDecision,
    register_protocol,
)
from repro.protocols.ss2pl import LISTING1_SQL
from repro.relalg.plan import PlanCache
from repro.relalg.sql import SqlPlanner
from repro.relalg.table import Table


def _plan_listing1(requests: Table, history: Table):
    planner = SqlPlanner({"requests": requests, "history": history})
    return planner.plan(LISTING1_SQL, defer_ctes=True)


class SqlFrontendSS2PLProtocol(Protocol):
    """Listing 1 parsed and planned by :class:`repro.relalg.sql.SqlPlanner`.

    The SQL text is parsed, planned and compiled **once** per
    (requests, history) table pair — each scheduler step only executes
    the cached physical plan; ``compiled=False`` re-parses and
    re-plans per step (the original behaviour, kept for the E8
    interpreted-vs-compiled ablation).
    """

    name = "ss2pl-sqlfront"
    description = "SS2PL: the paper's SQL text on our SQL frontend"
    capabilities = Capabilities(
        performance=True, qos=True, declarative=True, flexible=True,
        high_scalability=True,
    )
    declarative_source = LISTING1_SQL

    def __init__(self, compiled: bool = True) -> None:
        self.compiled = compiled
        self._plans = PlanCache(_plan_listing1)

    def reset(self) -> None:
        self._plans.clear()

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        if self.compiled:
            relation = self._plans.get(requests, history).execute()
        else:
            planner = SqlPlanner({"requests": requests, "history": history})
            relation = planner.execute(LISTING1_SQL)
        qualified = sorted(
            (Request.from_row(row) for row in relation.rows),
            key=lambda r: r.id,
        )
        return ProtocolDecision(qualified=qualified)


@register_protocol
def _make_ss2pl_sqlfront() -> SqlFrontendSS2PLProtocol:
    return SqlFrontendSS2PLProtocol()
