"""Incrementally maintained SS2PL — answering research question 4.

The paper asks: "How can the performance of declaratively programmed
schedulers be improved?"  One classical answer from declarative query
processing is **incremental view maintenance**: Listing 1's
``WLockedObjects`` / ``RLockedObjects`` CTEs are views over the history
relation, and history changes only by (a) appending the executed batch
and (b) pruning finished transactions.  Both deltas are available to
the protocol through the scheduler's ``observe_*`` hooks, so the lock
footprint can be maintained in O(|batch|) per step instead of being
re-derived in O(|history|).

Semantics are identical to :class:`~repro.protocols.ss2pl.
PaperListing1Protocol`; the equivalence is asserted by tests and by the
E8 ablation bench, which also measures the speedup.

Because the state lives in the protocol, it must observe *every*
history change.  Driving it through :class:`~repro.core.scheduler.
DeclarativeScheduler` guarantees that; for standalone use, call
:meth:`resync` after loading history out-of-band.
"""

from __future__ import annotations

from typing import Sequence

from repro.model.request import Operation, Request
from repro.protocols.base import (
    Capabilities,
    Protocol,
    ProtocolDecision,
    register_protocol,
)
from repro.protocols.ss2pl import LISTING1_SQL
from repro.relalg.table import Table


class SS2PLIncrementalProtocol(Protocol):
    """Listing 1 semantics with incrementally maintained lock views."""

    name = "ss2pl-incremental"
    description = "SS2PL with incrementally maintained lock footprint"
    capabilities = Capabilities(
        performance=True, qos=True, declarative=True, flexible=True,
        high_scalability=True,
    )
    declarative_source = LISTING1_SQL  # same rule, faster evaluation plan

    def __init__(self) -> None:
        #: obj -> set of active writer transactions (WLockedObjects).
        self._write_locks: dict[int, set[int]] = {}
        #: obj -> set of active pure-reader transactions (RLockedObjects).
        self._read_locks: dict[int, set[int]] = {}
        #: ta -> objects it has read / written (for pruning and upgrades).
        self._reads_of: dict[int, set[int]] = {}
        self._writes_of: dict[int, set[int]] = {}
        self._finished: set[int] = set()

    # -- incremental maintenance -------------------------------------------------

    def observe_executed(self, batch: Sequence[Request]) -> None:
        for request in batch:
            ta = request.ta
            if request.operation is Operation.WRITE:
                self._writes_of.setdefault(ta, set()).add(request.obj)
                if ta not in self._finished:
                    self._write_locks.setdefault(request.obj, set()).add(ta)
                    # A write subsumes the transaction's own read lock.
                    readers = self._read_locks.get(request.obj)
                    if readers:
                        readers.discard(ta)
            elif request.operation is Operation.READ:
                self._reads_of.setdefault(ta, set()).add(request.obj)
                if ta not in self._finished and request.obj not in self._writes_of.get(
                    ta, ()
                ):
                    self._read_locks.setdefault(request.obj, set()).add(ta)
            else:  # commit/abort: release everything the transaction holds
                self._finished.add(ta)
                self._release(ta)

    def observe_pruned(self, transactions: set[int]) -> None:
        for ta in transactions:
            self._release(ta)
            self._reads_of.pop(ta, None)
            self._writes_of.pop(ta, None)
            self._finished.discard(ta)

    def _release(self, ta: int) -> None:
        for obj in self._writes_of.get(ta, ()):
            holders = self._write_locks.get(obj)
            if holders:
                holders.discard(ta)
                if not holders:
                    del self._write_locks[obj]
        for obj in self._reads_of.get(ta, ()):
            holders = self._read_locks.get(obj)
            if holders:
                holders.discard(ta)
                if not holders:
                    del self._read_locks[obj]

    def reset(self) -> None:
        self.__init__()

    def resync(self, history: Table) -> None:
        """Rebuild the incremental state from a history table (for
        standalone use where history was loaded out-of-band)."""
        self.reset()
        id_pos = history.schema.resolve("id")
        rows = sorted(history.rows, key=lambda row: row[id_pos])
        self.observe_executed([Request.from_row(row) for row in rows])

    # -- scheduling ---------------------------------------------------------------

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        """Same qualified set as Listing 1, from the maintained views.

        The *history* argument is ignored by design — the state already
        reflects it.  The intra-batch rule is evaluated per step like the
        imperative baseline: claims are registered in TA order whether
        or not the claiming request qualifies (Listing 1 joins the raw
        requests table).
        """
        decision = ProtocolDecision()
        ta_pos = requests.schema.resolve("ta")
        intrata_pos = requests.schema.resolve("intrata")
        rows = sorted(requests.rows, key=lambda r: (r[ta_pos], r[intrata_pos]))

        batch_read: dict[int, set[int]] = {}
        batch_write: dict[int, set[int]] = {}
        for row in rows:
            request = Request.from_row(row)
            if not request.operation.is_data_access:
                decision.qualified.append(request)
                continue
            obj, ta = request.obj, request.ta
            holders_w = self._write_locks.get(obj, set()) | batch_write.get(
                obj, set()
            )
            if request.operation is Operation.READ:
                granted = not (holders_w - {ta})
                reason = "write lock held"
                batch_read.setdefault(obj, set()).add(ta)
            else:
                holders_r = self._read_locks.get(obj, set()) | batch_read.get(
                    obj, set()
                )
                granted = not ((holders_w | holders_r) - {ta})
                reason = "conflicting lock held"
                batch_write.setdefault(obj, set()).add(ta)
            if granted:
                decision.qualified.append(request)
            else:
                decision.denials[request.id] = reason

        decision.qualified.sort(key=lambda r: r.id)
        return decision


@register_protocol
def _make_ss2pl_incremental() -> SS2PLIncrementalProtocol:
    return SS2PLIncrementalProtocol()
