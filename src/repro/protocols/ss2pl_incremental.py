"""Incrementally maintained SS2PL — compatibility shim.

The historical name for ``build_protocol("ss2pl-listing1",
"incremental")``: research question 4 answered with incremental view
maintenance of the lock footprint, now implemented once for *any*
lock-model spec in :mod:`repro.backends.incremental`.  Semantics are
identical to :class:`~repro.protocols.ss2pl.PaperListing1Protocol`;
the equivalence is asserted by the matrix test and measured by E11.

Because the maintained state lives in the evaluator, it must observe
*every* history change.  Driving it through
:class:`~repro.core.scheduler.DeclarativeScheduler` guarantees that;
for standalone use, call :meth:`SS2PLIncrementalProtocol.resync` after
loading history out-of-band.
"""

from __future__ import annotations

from repro.backends import SpecProtocol
from repro.protocols.base import register_protocol
from repro.protocols.spec import get_spec
from repro.relalg.table import Table


class SS2PLIncrementalProtocol(SpecProtocol):
    """Listing 1 semantics with incrementally maintained lock views."""

    name = "ss2pl-incremental"
    description = "SS2PL with incrementally maintained lock footprint"

    def __init__(self) -> None:
        super().__init__(
            get_spec("ss2pl-listing1"),
            backend="incremental",
            name=type(self).name,
            description=type(self).description,
        )

    def resync(self, history: Table) -> None:
        """Rebuild the incremental state from a history table (for
        standalone use where history was loaded out-of-band)."""
        self._evaluator.resync(history)

    # -- compat accessors for the maintained views ------------------------

    @property
    def _write_locks(self):
        return self._evaluator._write_locks

    @property
    def _read_locks(self):
        return self._evaluator._read_locks

    @property
    def _reads_of(self):
        return self._evaluator._reads_of

    @property
    def _writes_of(self):
        return self._evaluator._writes_of

    @property
    def _finished(self):
        return self._evaluator._finished


@register_protocol
def _make_ss2pl_incremental() -> SS2PLIncrementalProtocol:
    return SS2PLIncrementalProtocol()
