"""Strong strict 2PL as a declarative query — the paper's Listing 1.

:class:`PaperListing1Protocol` transliterates Listing 1 CTE-by-CTE onto
the relational-algebra engine; the class docstring of each pipeline step
quotes the corresponding SQL.  Like the paper, it assumes each
transaction accesses an object at most once.

:class:`SS2PLRelalgProtocol` extends the paper's query with two rules a
*running* (rather than trace-replaying) scheduler needs:

* program order — a request qualifies only when every earlier request of
  its transaction (lower INTRATA) has already executed;
* termination gating — a commit/abort qualifies only when all of its
  transaction's data accesses have executed.

Both classes produce batches that keep history + batch SS2PL-legal:
executing the qualified requests in the returned order violates no
SS2PL lock that Listing 1's semantics would have enforced.
"""

from __future__ import annotations

from repro.model.request import Operation
from repro.protocols.base import (
    Capabilities,
    Protocol,
    ProtocolDecision,
    register_protocol,
    requests_from_relation,
)
from repro.relalg.expressions import col, is_null, lit, or_
from repro.relalg.plan import PlanCache
from repro.relalg.query import Pipeline, Query, cte
from repro.relalg.table import Table

#: The literal SQL of the paper's Listing 1 (kept here as the protocol's
#: declarative source of record; executed verbatim by
#: :mod:`repro.sqlbridge` for cross-validation).
LISTING1_SQL = """\
WITH RLockedObjects AS
 (SELECT a.object, a.ta, a.operation
  FROM history a
  WHERE NOT EXISTS
   (SELECT * FROM history b
    WHERE (a.ta=b.ta AND a.object=b.object AND b.operation='w')
       OR (a.ta=b.ta AND (b.operation='a' OR b.operation='c')))),
WLockedObjects AS
 (SELECT DISTINCT a.object, a.ta, a.operation
  FROM history a LEFT JOIN
   (SELECT ta FROM history
    WHERE operation='a' OR operation='c') AS finishedTAs
   ON a.ta = finishedTAs.ta
  WHERE a.operation='w' AND finishedTAs.ta IS NULL),
OperationsOnWLockedObjects AS
 (SELECT r.ta, r.intrata
  FROM requests r, WLockedObjects wlo
  WHERE r.object=wlo.object AND r.ta<>wlo.ta),
OperationsOnRLockedObjects AS
 (SELECT wOpsOnRLObj.ta, wOpsOnRLObj.intrata
  FROM requests wOpsOnRLObj, RLockedObjects rl
  WHERE wOpsOnRLObj.object=rl.object
    AND wOpsOnRLObj.operation='w'
    AND wOpsOnRLObj.ta<>rl.ta),
OpsOnSameObjAsPriorSelectOps AS
 (SELECT r2.ta, r2.intrata
  FROM requests r2, requests r1
  WHERE r2.object=r1.object AND r2.ta>r1.ta
    AND ((r1.operation='w') OR (r2.operation='w'))),
QualifiedSS2PLOps AS
 ((SELECT ta, intrata FROM requests)
  EXCEPT (
   (SELECT * FROM OperationsOnWLockedObjects)
   UNION ALL
   (SELECT * FROM OpsOnSameObjAsPriorSelectOps)
   UNION ALL
   (SELECT * FROM OperationsOnRLockedObjects)))
SELECT r2.*
FROM requests r2, QualifiedSS2PLOps ss2PL
WHERE r2.ta=ss2PL.ta AND r2.intrata=ss2PL.intrata
"""


def listing1_pipeline(requests: Table, history: Table) -> Pipeline:
    """Evaluate Listing 1 on the relalg engine, one CTE per step.

    Returns the finished :class:`Pipeline`; the final step is named
    ``qualified_requests`` and has the full Table 2 schema.
    """
    p = Pipeline()
    p.add_table("requests", requests, alias="r")
    p.add_table("history", history, alias="h")

    # RLockedObjects: history rows `a` such that no row `b` of the same
    # transaction writes the same object or terminates the transaction —
    # i.e. read locks held by still-active transactions.
    history_a = Query.from_(history, alias="a")
    history_b = Query.from_(history, alias="b")
    writes_same_obj = history_b.where(col("b.operation") == lit("w")).select(
        "b.ta", "b.object"
    )
    finished = (
        Query.from_(history, alias="b")
        .where(or_(col("b.operation") == lit("a"), col("b.operation") == lit("c")))
        .select("b.ta")
        .distinct()
    )
    r_locked = (
        history_a.anti_join(
            Query.from_(writes_same_obj.execute(), alias="wso"),
            on=(col("a.ta") == col("wso.ta")) & (col("a.object") == col("wso.object")),
        )
        .anti_join(
            Query.from_(finished.execute(), alias="fin"),
            on=col("a.ta") == col("fin.ta"),
        )
        .select("a.object", "a.ta", "a.operation")
    )
    p.add("RLockedObjects", r_locked)

    # WLockedObjects: DISTINCT writes of transactions with no commit/abort
    # (the paper uses LEFT JOIN ... IS NULL; we keep that shape).
    finished_tas = (
        Query.from_(history, alias="f")
        .where(or_(col("f.operation") == lit("a"), col("f.operation") == lit("c")))
        .select("f.ta")
        .distinct()
    )
    w_locked = (
        Query.from_(history, alias="a")
        .left_join(
            Query.from_(finished_tas.execute(), alias="finishedTAs"),
            on=col("a.ta") == col("finishedTAs.ta"),
        )
        .where(
            (col("a.operation") == lit("w")) & is_null(col("finishedTAs.ta"))
        )
        .select("a.object", "a.ta", "a.operation")
        .distinct()
    )
    p.add("WLockedObjects", w_locked)

    # OperationsOnWLockedObjects: pending ops touching a write-locked
    # object of another transaction.
    ops_on_w = (
        p.ref("requests")
        .join(
            Query.from_(p["WLockedObjects"], alias="wlo"),
            on=(col("r.object") == col("wlo.object"))
            & (col("r.ta") != col("wlo.ta")),
        )
        .select("r.ta", "r.intrata")
    )
    p.add("OperationsOnWLockedObjects", ops_on_w)

    # OperationsOnRLockedObjects: pending WRITES touching a read-locked
    # object of another transaction.
    ops_on_r = (
        p.ref("requests")
        .where(col("r.operation") == lit("w"))
        .join(
            Query.from_(p["RLockedObjects"], alias="rl"),
            on=(col("r.object") == col("rl.object")) & (col("r.ta") != col("rl.ta")),
        )
        .select("r.ta", "r.intrata")
    )
    p.add("OperationsOnRLockedObjects", ops_on_r)

    # OpsOnSameObjAsPriorSelectOps: intra-batch conflicts — a pending op
    # of a *later* transaction conflicting with a pending op of an
    # earlier one (at least one of the two writes).
    intra_batch = (
        Query.from_(requests, alias="r2")
        .join(
            Query.from_(requests, alias="r1"),
            on=(col("r2.object") == col("r1.object")) & (col("r2.ta") > col("r1.ta")),
        )
        .where(
            or_(
                col("r1.operation") == lit("w"),
                col("r2.operation") == lit("w"),
            )
        )
        .select("r2.ta", "r2.intrata")
    )
    p.add("OpsOnSameObjAsPriorSelectOps", intra_batch)

    # QualifiedSS2PLOps: all pending (ta, intrata) EXCEPT the union of
    # the three denial sets (set semantics, as SQL EXCEPT).
    all_ops = p.ref("requests").select("r.ta", "r.intrata")
    denials = (
        p.ref("OperationsOnWLockedObjects")
        .union_all(p.ref("OpsOnSameObjAsPriorSelectOps"))
        .union_all(p.ref("OperationsOnRLockedObjects"))
    )
    qualified_keys = all_ops.except_(denials)
    p.add("QualifiedSS2PLOps", qualified_keys)

    # Final join back to the full request rows.
    qualified = (
        Query.from_(requests, alias="r2")
        .join(
            Query.from_(p["QualifiedSS2PLOps"], alias="q"),
            on=(col("r2.ta") == col("q.ta")) & (col("r2.intrata") == col("q.intrata")),
        )
        .select("r2.id", "r2.ta", "r2.intrata", "r2.operation", "r2.object")
        .order_by("id")
    )
    p.add("qualified_requests", qualified)
    return p


def listing1_query(requests: Table, history: Table) -> Query:
    """Listing 1 as one *deferred* plan DAG over live tables.

    Where :func:`listing1_pipeline` materializes each CTE eagerly (and
    therefore must be rebuilt per scheduler step), this form contains no
    snapshots: compiled once via :meth:`Query.compile`, the resulting
    plan is re-executable against the tables' current contents every
    step.  Shared CTEs (``FinishedTAs`` feeds both lock views) are
    single nodes, computed at most once per execution.
    """
    # Read locks: history rows `a` whose transaction neither wrote the
    # same object nor terminated.
    writes_same_obj = cte(
        Query.from_(history, alias="b")
        .where(col("b.operation") == lit("w"))
        .select("b.ta", "b.object"),
        "WritesSameObject",
    )
    finished = cte(
        Query.from_(history, alias="f")
        .where(or_(col("f.operation") == lit("a"), col("f.operation") == lit("c")))
        .select("f.ta")
        .distinct(),
        "FinishedTAs",
    )
    r_locked = cte(
        Query.from_(history, alias="a")
        .anti_join(
            Query.from_(writes_same_obj, alias="wso"),
            on=(col("a.ta") == col("wso.ta")) & (col("a.object") == col("wso.object")),
        )
        .anti_join(
            Query.from_(finished, alias="fin"),
            on=col("a.ta") == col("fin.ta"),
        )
        .select("a.object", "a.ta", "a.operation"),
        "RLockedObjects",
    )
    # Write locks: DISTINCT writes of unfinished transactions (the
    # paper's LEFT JOIN ... IS NULL shape).
    w_locked = cte(
        Query.from_(history, alias="a")
        .left_join(
            Query.from_(finished, alias="finishedTAs"),
            on=col("a.ta") == col("finishedTAs.ta"),
        )
        .where((col("a.operation") == lit("w")) & is_null(col("finishedTAs.ta")))
        .select("a.object", "a.ta", "a.operation")
        .distinct(),
        "WLockedObjects",
    )

    ops_on_w = (
        Query.from_(requests, alias="r")
        .join(
            Query.from_(w_locked, alias="wlo"),
            on=(col("r.object") == col("wlo.object")) & (col("r.ta") != col("wlo.ta")),
        )
        .select("r.ta", "r.intrata")
    )
    ops_on_r = (
        Query.from_(requests, alias="r")
        .where(col("r.operation") == lit("w"))
        .join(
            Query.from_(r_locked, alias="rl"),
            on=(col("r.object") == col("rl.object")) & (col("r.ta") != col("rl.ta")),
        )
        .select("r.ta", "r.intrata")
    )
    intra_batch = (
        Query.from_(requests, alias="r2")
        .join(
            Query.from_(requests, alias="r1"),
            on=(col("r2.object") == col("r1.object")) & (col("r2.ta") > col("r1.ta")),
        )
        .where(
            or_(
                col("r1.operation") == lit("w"),
                col("r2.operation") == lit("w"),
            )
        )
        .select("r2.ta", "r2.intrata")
    )

    all_ops = Query.from_(requests, alias="r").select("r.ta", "r.intrata")
    denials = ops_on_w.union_all(intra_batch).union_all(ops_on_r)
    qualified_keys = cte(all_ops.except_(denials), "QualifiedSS2PLOps")
    return (
        Query.from_(requests, alias="r2")
        .join(
            Query.from_(qualified_keys, alias="q"),
            on=(col("r2.ta") == col("q.ta")) & (col("r2.intrata") == col("q.intrata")),
        )
        .select("r2.id", "r2.ta", "r2.intrata", "r2.operation", "r2.object")
        .order_by("id")
    )


class _Listing1Backed(Protocol):
    """Shared machinery of the Listing 1 protocols: a per-table-pair
    cache of compiled plans, with the interpreted pipeline kept as a
    switchable reference path (benchmarks measure one against the
    other; tests assert byte-identical batches)."""

    def __init__(self, compiled: bool = True) -> None:
        self.compiled = compiled
        self._plans = PlanCache(listing1_query)

    def _qualified_rows(self, requests: Table, history: Table) -> list[tuple]:
        if self.compiled:
            return self._plans.get(requests, history).execute().rows
        return listing1_pipeline(requests, history)["qualified_requests"].rows

    def reset(self) -> None:
        self._plans.clear()

    def explain(self, requests: Table, history: Table) -> str:
        """Physical EXPLAIN of the cached plan for this table pair."""
        return self._plans.get(requests, history).explain()


class PaperListing1Protocol(_Listing1Backed):
    """Listing 1 exactly as published (see module docstring).

    Published semantics are kept untouched, including the naive aspects
    the paper acknowledges (Section 5 calls this approach "naive"): no
    program-order gating — a request can qualify before earlier
    statements of its own transaction have executed.  Termination
    requests (object ``-1``, operation ``c``/``a``) always qualify: they
    collide with no data object and the intra-batch rule requires a
    write on at least one side.

    By default the query is compiled once per (requests, history) table
    pair and only executed per step; ``compiled=False`` evaluates the
    eager interpreted pipeline instead (the paper's naive mode).
    """

    name = "ss2pl-listing1"
    description = "SS2PL via the paper's Listing 1 query, relalg backend"
    capabilities = Capabilities(
        performance=True, qos=True, declarative=True, flexible=True,
        high_scalability=True,
    )
    declarative_source = LISTING1_SQL

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        rows = self._qualified_rows(requests, history)
        return ProtocolDecision(qualified=requests_from_relation(rows))


class SS2PLRelalgProtocol(_Listing1Backed):
    """Listing 1 plus program-order and termination gating (see module
    docstring) — the variant the live middleware runs."""

    name = "ss2pl"
    description = "SS2PL (Listing 1 + program order), relalg backend"
    capabilities = Capabilities(
        performance=True, qos=True, declarative=True, flexible=True,
        high_scalability=True,
    )
    declarative_source = LISTING1_SQL

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        qualified = requests_from_relation(
            self._qualified_rows(requests, history)
        )
        if not qualified:
            return ProtocolDecision()

        # Program order: request r may run only when all earlier intratas
        # of its transaction are already in history, or ahead of r within
        # this batch.  Executed-count per transaction from history (the
        # stores maintain a hash index on ta; fall back to a scan for
        # bare tables):
        executed: dict[int, int] = {}
        ta_index = history.index_on("ta")
        if ta_index is not None:
            for key, bucket in ta_index.buckets.items():
                executed[key[0]] = len(bucket)
        else:
            history_ta_pos = history.schema.resolve("ta")
            for row in history.rows:
                ta = row[history_ta_pos]
                executed[ta] = executed.get(ta, 0) + 1

        decision = ProtocolDecision()
        progress = dict(executed)
        for request in qualified:
            done = progress.get(request.ta, 0)
            if request.intrata != done:
                decision.denials[request.id] = (
                    f"out of program order: intrata {request.intrata}, "
                    f"executed {done}"
                )
                continue
            if request.operation.is_termination or request.operation.is_data_access:
                decision.qualified.append(request)
                progress[request.ta] = done + 1
        return decision


@register_protocol
def _make_listing1() -> PaperListing1Protocol:
    return PaperListing1Protocol()


@register_protocol
def _make_ss2pl() -> SS2PLRelalgProtocol:
    return SS2PLRelalgProtocol()
