"""Deprecated module path — use :mod:`repro.api` (or
:mod:`repro.protocols.legacy` for the class names).

``PaperListing1Protocol()`` ≡ ``build_protocol("ss2pl-listing1",
"compiled")`` and ``SS2PLRelalgProtocol()`` ≡ ``build_protocol("ss2pl",
"compiled")``; construct through ``repro.api.make_protocol`` instead.
Importing this module keeps working, behavior-identical, with a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.protocols.legacy import (  # noqa: F401  (re-exported API)
    LISTING1_SPEC,
    LISTING1_SQL,
    PaperListing1Protocol,
    SS2PL_SPEC,
    SS2PLRelalgProtocol,
    _Listing1Backed,
    gate_program_order,
    listing1_pipeline,
    listing1_query,
)

warnings.warn(
    "repro.protocols.ss2pl is deprecated; build protocols via "
    "repro.api.make_protocol('ss2pl-listing1', backend) / "
    "make_protocol('ss2pl', backend), or import the class names from "
    "repro.protocols.legacy",
    DeprecationWarning,
    stacklevel=2,
)
