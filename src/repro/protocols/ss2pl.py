"""SS2PL protocol classes — thin shims over the spec layer.

The query logic formerly in this module (the paper's Listing 1 SQL, the
relalg transliterations, the Datalog rules) now lives in
:mod:`repro.protocols.library` as the single ``ss2pl-listing1`` /
``ss2pl`` :class:`~repro.protocols.spec.ProtocolSpec` pair; execution
strategy selection lives in :mod:`repro.backends`.  The classes here
keep the historical construction API (``compiled=`` flag, ``_plans``
plan cache, ``explain``) on top of ``spec + backend``.
"""

from __future__ import annotations

from repro.backends import SpecProtocol
from repro.protocols.base import register_protocol
from repro.protocols.library import (  # noqa: F401  (re-exported API)
    LISTING1_SPEC,
    LISTING1_SQL,
    SS2PL_SPEC,
    gate_program_order,
    listing1_pipeline,
    listing1_query,
)
from repro.relalg.table import Table


class _Listing1Backed(SpecProtocol):
    """Listing 1 on the relalg engine with a switchable evaluation
    strategy: ``compiled=True`` (default) binds the compile-once
    backend, ``compiled=False`` the eager interpreted pipeline
    (benchmarks measure one against the other; tests assert
    byte-identical batches)."""

    spec_name = "ss2pl-listing1"

    def __init__(self, compiled: bool = True) -> None:
        from repro.protocols.spec import get_spec

        self.compiled = compiled
        super().__init__(
            get_spec(self.spec_name),
            backend="compiled" if compiled else "interpreted",
            name=type(self).name,
            description=type(self).description,
        )
        # In interpreted mode the evaluator holds no plans; EXPLAIN and
        # the historical ``_plans`` accessor still work through a
        # lazily built compiled view of the same spec.
        self._compat_plans = None

    @property
    def _plans(self):
        """The compiled plan cache for this protocol's query (compat
        accessor; available in both evaluation modes, as before the
        spec/backend split)."""
        plans = getattr(self._evaluator, "plans", None)
        if plans is not None:
            return plans
        if self._compat_plans is None:
            from repro.relalg.plan import PlanCache

            self._compat_plans = PlanCache(self.spec.relalg)
        return self._compat_plans

    def reset(self) -> None:
        super().reset()
        if self._compat_plans is not None:
            self._compat_plans.clear()

    def explain(self, requests: Table, history: Table) -> str:
        """Physical EXPLAIN of the cached plan for this table pair."""
        return self._plans.get(requests, history).explain()


class PaperListing1Protocol(_Listing1Backed):
    """Listing 1 exactly as published.

    Published semantics are kept untouched, including the naive aspects
    the paper acknowledges (Section 5 calls this approach "naive"): no
    program-order gating — a request can qualify before earlier
    statements of its own transaction have executed.  Termination
    requests (object ``-1``, operation ``c``/``a``) always qualify: they
    collide with no data object and the intra-batch rule requires a
    write on at least one side.
    """

    name = "ss2pl-listing1"
    description = "SS2PL via the paper's Listing 1 query, relalg backend"
    spec_name = "ss2pl-listing1"


class SS2PLRelalgProtocol(_Listing1Backed):
    """Listing 1 plus program-order and termination gating (the spec's
    ``post_process`` policy) — the variant the live middleware runs."""

    name = "ss2pl"
    description = "SS2PL (Listing 1 + program order), relalg backend"
    spec_name = "ss2pl"


@register_protocol
def _make_listing1() -> PaperListing1Protocol:
    return PaperListing1Protocol()


@register_protocol
def _make_ss2pl() -> SS2PLRelalgProtocol:
    return SS2PLRelalgProtocol()
