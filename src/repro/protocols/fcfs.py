"""First-come-first-served — compatibility shim.

The no-consistency baseline protocol: qualifies every pending request
in arrival (id) order.  Spec in :mod:`repro.protocols.library`
(``fcfs``), runnable on every backend — useful as the lower bound on
declarative-scheduling overhead and as the consistency-free arm of the
adaptive protocol.
"""

from __future__ import annotations

from repro.backends import SpecProtocol
from repro.protocols.base import register_protocol
from repro.protocols.library import FCFS_RULES  # noqa: F401
from repro.protocols.spec import get_spec


class FCFSProtocol(SpecProtocol):
    """Admit everything, ordered by request id."""

    name = "fcfs"
    description = "first-come-first-served, no consistency constraints"

    def __init__(self, backend: str = "compiled") -> None:
        super().__init__(
            get_spec("fcfs"),
            backend=backend,
            name=type(self).name,
            description=type(self).description,
        )


@register_protocol
def _make_fcfs() -> FCFSProtocol:
    return FCFSProtocol()
