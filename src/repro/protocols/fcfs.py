"""First-come-first-served: the no-consistency baseline protocol.

Qualifies every pending request in arrival (id) order.  This is the
scheduler's "non-scheduling mode" expressed as a protocol — useful as
the lower bound on declarative-scheduling overhead and as the
consistency-free arm of the adaptive protocol.
"""

from __future__ import annotations

from repro.protocols.base import (
    Capabilities,
    Protocol,
    ProtocolDecision,
    register_protocol,
    requests_from_relation,
)
from repro.relalg.plan import PlanCache
from repro.relalg.query import Query
from repro.relalg.table import Table

FCFS_RULES = """\
qualified(Id, Ta, I, Op, Obj) :- requests(Id, Ta, I, Op, Obj).
"""


class FCFSProtocol(Protocol):
    """Admit everything, ordered by request id."""

    name = "fcfs"
    description = "first-come-first-served, no consistency constraints"
    capabilities = Capabilities(
        performance=True, declarative=True, flexible=True, high_scalability=True
    )
    declarative_source = FCFS_RULES

    def __init__(self) -> None:
        self._plans = PlanCache(
            lambda requests: Query.from_(requests).order_by("id")
        )

    def reset(self) -> None:
        self._plans.clear()

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        relation = self._plans.get(requests).execute()
        return ProtocolDecision(qualified=requests_from_relation(relation.rows))


@register_protocol
def _make_fcfs() -> FCFSProtocol:
    return FCFSProtocol()
