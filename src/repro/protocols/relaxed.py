"""Relaxed consistency (read committed) — compatibility shim.

The paper argues (Section 2, citing the CAP theorem, Amazon/Ebay
practice and Consistency Rationing) that "relaxed consistency is
necessary for highly scalable systems".  Relative to SS2PL this
protocol drops read locks entirely: reads are never blocked, writes
still conflict with uncommitted writes (no lost updates) — READ
COMMITTED with short read locks, three Datalog rules instead of a new
hand-written scheduler.

Spec in :mod:`repro.protocols.library` (``read-committed``), with
relalg/SQL/lock-model dialects alongside the Datalog formulation.
"""

from __future__ import annotations

from repro.backends import SpecProtocol
from repro.protocols.base import register_protocol
from repro.protocols.library import READ_COMMITTED_RULES  # noqa: F401
from repro.protocols.spec import get_spec


class ReadCommittedProtocol(SpecProtocol):
    """Write-write blocking only; reads always qualify."""

    name = "read-committed"
    description = "relaxed consistency: only write-write conflicts block"

    def __init__(self, backend: str = "datalog") -> None:
        super().__init__(
            get_spec("read-committed"),
            backend=backend,
            name=type(self).name,
            description=type(self).description,
        )


@register_protocol
def _make_read_committed() -> ReadCommittedProtocol:
    return ReadCommittedProtocol()
