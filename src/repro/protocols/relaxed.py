"""Relaxed consistency: a read-committed-style protocol.

The paper argues (Section 2, citing the CAP theorem, Amazon/Ebay
practice and Consistency Rationing) that "relaxed consistency is
necessary for highly scalable systems" and that its declarative
scheduler should make such levels definable as rules.  This protocol is
that demonstration: relative to SS2PL it drops read locks entirely —

* reads are never blocked (they may read committed-overwritten state),
* writes still conflict with uncommitted writes (no lost updates),

which matches the lock-based implementation of READ COMMITTED with
short read locks, stated in three Datalog rules instead of a new
hand-written scheduler.
"""

from __future__ import annotations

from repro.datalog.engine import Database, evaluate
from repro.datalog.program import Program
from repro.model.request import Request
from repro.protocols.base import (
    Capabilities,
    Protocol,
    ProtocolDecision,
    register_protocol,
)
from repro.relalg.table import Table

READ_COMMITTED_RULES = """\
finished(Ta) :- history(_, Ta, _, "c", _).
finished(Ta) :- history(_, Ta, _, "a", _).
wlocked(Obj, Ta) :- history(_, Ta, _, "w", Obj), not finished(Ta).
denied(Id) :- requests(Id, Ta, _, "w", Obj), wlocked(Obj, Ta2), Ta != Ta2.
denied(Id2) :- requests(Id2, Ta2, _, "w", Obj), requests(_, Ta1, _, "w", Obj),
               Ta2 > Ta1.
qualified(Id, Ta, I, Op, Obj) :- requests(Id, Ta, I, Op, Obj),
                                 not denied(Id).
"""


class ReadCommittedProtocol(Protocol):
    """Write-write blocking only; reads always qualify (see module doc)."""

    name = "read-committed"
    description = "relaxed consistency: only write-write conflicts block"
    capabilities = Capabilities(
        performance=True, declarative=True, flexible=True, high_scalability=True
    )
    declarative_source = READ_COMMITTED_RULES

    def __init__(self) -> None:
        self._program = Program.parse(READ_COMMITTED_RULES)

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        db = Database()
        db.add_facts("requests", requests.rows)
        db.add_facts("history", history.rows)
        evaluate(self._program, db)
        rows = sorted(db.facts("qualified"))
        return ProtocolDecision(
            qualified=[Request.from_row(row) for row in rows]
        )


@register_protocol
def _make_read_committed() -> ReadCommittedProtocol:
    return ReadCommittedProtocol()
