"""Declaratively specified scheduling protocols.

This package is the paper's deliverable: scheduling protocols defined as
declarative rules over the ``requests`` (pending) and ``history`` tables
rather than as hand-coded imperative schedulers.  It covers the paper's
three protocol classes (Section 3.1):

(a) **traditional consistency protocols** — SS2PL (the paper's Listing 1,
    provided in four interchangeable declarative backends: our relational
    algebra, Datalog, the SDL mini-language, and the paper's literal SQL
    on sqlite3) and conservative 2PL;
(b) **service-level agreements** — tier/priority ordering and
    earliest-deadline-first, composable with any consistency protocol;
(c) **application-specific consistency** — a relaxed read-committed-style
    protocol, a domain invariant example (bounded oversell), and an
    adaptive protocol that switches consistency levels with load
    (Section 5's "adaptive consistency scheduler").
"""

from repro.protocols.base import (
    Capabilities,
    Protocol,
    ProtocolDecision,
    PROTOCOL_REGISTRY,
    register_protocol,
)
from repro.protocols.ss2pl import SS2PLRelalgProtocol, PaperListing1Protocol
from repro.protocols.ss2pl_datalog import SS2PLDatalogProtocol, SS2PL_DATALOG_RULES
from repro.protocols.ss2pl_incremental import SS2PLIncrementalProtocol
from repro.protocols.ss2pl_sqlfront import SqlFrontendSS2PLProtocol
from repro.protocols.ss2pl_sql import SS2PLSqlProtocol
from repro.protocols.c2pl import ConservativeTwoPLProtocol
from repro.protocols.fcfs import FCFSProtocol
from repro.protocols.sla import SLAOrderingProtocol, EarliestDeadlineFirstProtocol
from repro.protocols.relaxed import ReadCommittedProtocol
from repro.protocols.app_consistency import BoundedOversellProtocol
from repro.protocols.adaptive import AdaptiveConsistencyProtocol

__all__ = [
    "Capabilities",
    "Protocol",
    "ProtocolDecision",
    "PROTOCOL_REGISTRY",
    "register_protocol",
    "SS2PLRelalgProtocol",
    "PaperListing1Protocol",
    "SS2PLDatalogProtocol",
    "SS2PL_DATALOG_RULES",
    "SS2PLIncrementalProtocol",
    "SS2PLSqlProtocol",
    "SqlFrontendSS2PLProtocol",
    "ConservativeTwoPLProtocol",
    "FCFSProtocol",
    "SLAOrderingProtocol",
    "EarliestDeadlineFirstProtocol",
    "ReadCommittedProtocol",
    "BoundedOversellProtocol",
    "AdaptiveConsistencyProtocol",
]
