"""Declaratively specified scheduling protocols.

This package is the paper's deliverable: scheduling protocols defined as
declarative rules over the ``requests`` (pending) and ``history`` tables
rather than as hand-coded imperative schedulers.  Since the
specification/execution split, it is layered:

* :mod:`repro.protocols.spec` — :class:`ProtocolSpec`, the declarative
  description of a protocol (queries in several dialects, batch policy,
  metadata) with zero execution logic, plus the spec registry;
* :mod:`repro.protocols.library` — the shipped specs: SS2PL (the
  paper's Listing 1, published and program-order-gated), C2PL, FCFS,
  read committed, exclusive-only 2PL, priority ceiling, and the
  bounded-oversell app-consistency family;
* :mod:`repro.backends` — pluggable execution backends; any spec runs
  on any backend that can lower one of its dialects
  (``build_protocol("ss2pl", "datalog")``);
* :mod:`repro.protocols.legacy` keeps the historical class names
  (``SS2PLDatalogProtocol()`` ≡ spec ``ss2pl-listing1`` on backend
  ``datalog``); the old per-protocol module paths
  (``repro.protocols.ss2pl*``) are deprecation stubs over it — new
  code constructs through :mod:`repro.api` — and
  :mod:`repro.protocols.sla` / :mod:`repro.protocols.adaptive` provide
  protocol *combinators* (SLA ordering, EDF, adaptive consistency)
  that wrap any bound protocol.
"""

from repro.protocols.base import (
    Capabilities,
    Protocol,
    ProtocolDecision,
    PROTOCOL_REGISTRY,
    register_protocol,
)
from repro.protocols.spec import (
    LockModel,
    ProtocolSpec,
    SPEC_REGISTRY,
    get_spec,
    register_spec,
    spec_names,
)
from repro.protocols import library  # noqa: F401  (registers the specs)
from repro.protocols.library import (
    SS2PL_DATALOG_RULES,
    make_bounded_oversell_spec,
)
from repro.protocols.legacy import (
    PaperListing1Protocol,
    SS2PLDatalogProtocol,
    SS2PLIncrementalProtocol,
    SS2PLRelalgProtocol,
    SS2PLSqlProtocol,
    SqlFrontendSS2PLProtocol,
)
from repro.protocols.c2pl import ConservativeTwoPLProtocol
from repro.protocols.fcfs import FCFSProtocol
from repro.protocols.sla import SLAOrderingProtocol, EarliestDeadlineFirstProtocol
from repro.protocols.relaxed import ReadCommittedProtocol
from repro.protocols.app_consistency import BoundedOversellProtocol
from repro.protocols.adaptive import AdaptiveConsistencyProtocol

__all__ = [
    "Capabilities",
    "Protocol",
    "ProtocolDecision",
    "PROTOCOL_REGISTRY",
    "register_protocol",
    "LockModel",
    "ProtocolSpec",
    "SPEC_REGISTRY",
    "get_spec",
    "register_spec",
    "spec_names",
    "make_bounded_oversell_spec",
    "SS2PLRelalgProtocol",
    "PaperListing1Protocol",
    "SS2PLDatalogProtocol",
    "SS2PL_DATALOG_RULES",
    "SS2PLIncrementalProtocol",
    "SS2PLSqlProtocol",
    "SqlFrontendSS2PLProtocol",
    "ConservativeTwoPLProtocol",
    "FCFSProtocol",
    "SLAOrderingProtocol",
    "EarliestDeadlineFirstProtocol",
    "ReadCommittedProtocol",
    "BoundedOversellProtocol",
    "AdaptiveConsistencyProtocol",
]
