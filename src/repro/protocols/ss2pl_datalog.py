"""Deprecated module path — use :mod:`repro.api` (or
:mod:`repro.protocols.legacy` for the class name).

``SS2PLDatalogProtocol()`` ≡ ``build_protocol("ss2pl-listing1",
"datalog")``; construct through ``repro.api.make_protocol`` instead.
Importing this module keeps working, behavior-identical, with a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.protocols.legacy import (  # noqa: F401  (re-exported API)
    SS2PL_DATALOG_RULES,
    SS2PLDatalogProtocol,
)

warnings.warn(
    "repro.protocols.ss2pl_datalog is deprecated; build protocols via "
    "repro.api.make_protocol('ss2pl-listing1', 'datalog'), or import "
    "the class name from repro.protocols.legacy",
    DeprecationWarning,
    stacklevel=2,
)
