"""SS2PL as a Datalog program — the succinct-language formulation.

The paper's Section 5: "Our next steps will focus on the search or
development of a suitable declarative scheduler language which is more
succinct than SQL."  The rule set below says the same thing as the 40+
line SQL of Listing 1 in a dozen lines, predicate by predicate:

* ``finished`` / ``wlocked`` / ``rlocked`` are exactly Listing 1's
  ``finishedTAs`` / ``WLockedObjects`` / ``RLockedObjects`` CTEs;
* the three ``denied`` rules are the three denial CTEs;
* ``qualified`` is the EXCEPT.
"""

from __future__ import annotations

from repro.datalog.engine import Database, evaluate
from repro.datalog.program import Program
from repro.protocols.base import (
    Capabilities,
    Protocol,
    ProtocolDecision,
    register_protocol,
)
from repro.model.request import Request
from repro.relalg.table import Table

SS2PL_DATALOG_RULES = """\
finished(Ta) :- history(_, Ta, _, "c", _).
finished(Ta) :- history(_, Ta, _, "a", _).
wlocked(Obj, Ta) :- history(_, Ta, _, "w", Obj), not finished(Ta).
rlocked(Obj, Ta) :- history(_, Ta, _, "r", Obj), not finished(Ta),
                    not wlocked(Obj, Ta).
denied(Id) :- requests(Id, Ta, _, _, Obj), wlocked(Obj, Ta2), Ta != Ta2.
denied(Id) :- requests(Id, Ta, _, "w", Obj), rlocked(Obj, Ta2), Ta != Ta2.
denied(Id2) :- requests(Id2, Ta2, _, Op2, Obj), requests(_, Ta1, _, Op1, Obj),
               Ta2 > Ta1, conflictops(Op1, Op2).
conflictops("w", "w").
conflictops("w", "r").
conflictops("r", "w").
qualified(Id, Ta, I, Op, Obj) :- requests(Id, Ta, I, Op, Obj),
                                 not denied(Id).
"""


class SS2PLDatalogProtocol(Protocol):
    """SS2PL via the Datalog rule set above.

    Result-equivalent to :class:`~repro.protocols.ss2pl.
    PaperListing1Protocol` on every pending/history instance (asserted by
    the cross-backend test and bench suites), while the specification is
    roughly a quarter of the SQL's size — the paper's succinctness
    hypothesis, made measurable (benchmark E9).
    """

    name = "ss2pl-datalog"
    description = "SS2PL as 12 Datalog rules"
    capabilities = Capabilities(
        performance=True, qos=True, declarative=True, flexible=True,
        high_scalability=True,
    )
    declarative_source = SS2PL_DATALOG_RULES

    def __init__(self) -> None:
        self._program = Program.parse(SS2PL_DATALOG_RULES)

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        db = Database()
        db.add_facts("requests", requests.rows)
        db.add_facts("history", history.rows)
        evaluate(self._program, db)
        self._last_db = db
        qualified_rows = sorted(db.facts("qualified"))  # id order
        decision = ProtocolDecision(
            qualified=[Request.from_row(row) for row in qualified_rows]
        )
        for fact in db.facts("denied"):
            decision.denials[fact[0]] = "denied by SS2PL rules"
        return decision

    def explain_denial(self, request_id: int) -> str:
        """Why-provenance for the last batch's denial of *request_id*.

        Returns a formatted derivation tree (see
        :mod:`repro.datalog.explain`); raises when the request was not
        denied in the most recent :meth:`schedule` call.
        """
        from repro.datalog.explain import explain

        db = getattr(self, "_last_db", None)
        if db is None:
            raise RuntimeError("no schedule() call to explain yet")
        return explain(self._program, db, "denied", (request_id,)).format()


@register_protocol
def _make_ss2pl_datalog() -> SS2PLDatalogProtocol:
    return SS2PLDatalogProtocol()
