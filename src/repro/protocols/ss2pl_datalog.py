"""SS2PL on the Datalog backend — compatibility shim.

The rule set (``SS2PL_DATALOG_RULES``, re-exported here) lives in
:mod:`repro.protocols.library`; evaluation lives in
:mod:`repro.backends.datalog`.  This class is the historical name for
``build_protocol("ss2pl-listing1", "datalog")`` plus why-provenance
(:meth:`explain_denial`).
"""

from __future__ import annotations

from repro.backends import SpecProtocol
from repro.protocols.base import register_protocol
from repro.protocols.library import SS2PL_DATALOG_RULES  # noqa: F401
from repro.protocols.spec import get_spec


class SS2PLDatalogProtocol(SpecProtocol):
    """SS2PL via the Datalog rule set.

    Result-equivalent to :class:`~repro.protocols.ss2pl.
    PaperListing1Protocol` on every pending/history instance (asserted
    by the cross-backend matrix test), while the specification is
    roughly a quarter of the SQL's size — the paper's succinctness
    hypothesis, made measurable (benchmark E9).
    """

    name = "ss2pl-datalog"
    description = "SS2PL as 12 Datalog rules"

    def __init__(self) -> None:
        super().__init__(
            get_spec("ss2pl-listing1"),
            backend="datalog",
            name=type(self).name,
            description=type(self).description,
        )

    @property
    def _program(self):
        return self._evaluator.program

    def explain_denial(self, request_id: int) -> str:
        """Why-provenance for the last batch's denial of *request_id*.

        Returns a formatted derivation tree (see
        :mod:`repro.datalog.explain`); raises when the request was not
        denied in the most recent :meth:`schedule` call.
        """
        return self._evaluator.explain_denial(request_id)


@register_protocol
def _make_ss2pl_datalog() -> SS2PLDatalogProtocol:
    return SS2PLDatalogProtocol()
