"""SS2PL on sqlite3 — compatibility shim.

The historical name for ``build_protocol("ss2pl-listing1", "sqlite")``:
the paper's literal SQL executed by a real SQL engine.  The SQL text
lives in :mod:`repro.protocols.library`; the loading/evaluation loop in
:mod:`repro.backends.sqlitebridge`.
"""

from __future__ import annotations

from repro.backends import SpecProtocol
from repro.protocols.base import register_protocol
from repro.protocols.library import LISTING1_SQL  # noqa: F401
from repro.protocols.spec import get_spec


class SS2PLSqlProtocol(SpecProtocol):
    """The paper's Listing 1 executed by sqlite3 (cross-validation and
    the SQL data point in the language ablation; each evaluation loads
    fresh snapshot tables by design — see the backend docstring)."""

    name = "ss2pl-sql"
    description = "SS2PL via Listing 1 on sqlite3"

    def __init__(self) -> None:
        super().__init__(
            get_spec("ss2pl-listing1"),
            backend="sqlite",
            name=type(self).name,
            description=type(self).description,
        )


@register_protocol
def _make_ss2pl_sql() -> SS2PLSqlProtocol:
    return SS2PLSqlProtocol()
