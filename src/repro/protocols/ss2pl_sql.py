"""SS2PL protocol backed by sqlite3 running the paper's literal SQL."""

from __future__ import annotations

from repro.protocols.base import (
    Capabilities,
    Protocol,
    ProtocolDecision,
    register_protocol,
)
from repro.protocols.ss2pl import LISTING1_SQL
from repro.relalg.table import Table
from repro.sqlbridge.bridge import SqliteScheduler


class SS2PLSqlProtocol(Protocol):
    """The paper's Listing 1 executed by a real SQL engine (sqlite3).

    Each evaluation loads the pending/history snapshots into fresh
    in-memory tables — deliberately so: this protocol exists to
    cross-validate the relalg/Datalog backends and to serve as the SQL
    data point in the language ablation, not to win benchmarks.  (A
    production deployment would keep the tables resident; see
    :class:`repro.sqlbridge.SqliteScheduler` for that mode.)
    """

    name = "ss2pl-sql"
    description = "SS2PL via Listing 1 on sqlite3"
    capabilities = Capabilities(
        performance=True, qos=True, declarative=True, flexible=True,
        high_scalability=True,
    )
    declarative_source = LISTING1_SQL

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        with SqliteScheduler() as backend:
            backend.load_rows("requests", requests.rows)
            backend.load_rows("history", history.rows)
            qualified = backend.qualified_requests()
        return ProtocolDecision(qualified=qualified)


@register_protocol
def _make_ss2pl_sql() -> SS2PLSqlProtocol:
    return SS2PLSqlProtocol()
