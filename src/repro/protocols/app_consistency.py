"""Application-specific consistency — compatibility shim.

The paper's motivating domains — "hotel or flight reservation systems,
or Internet shops like Amazon" (Section 2) — tolerate relaxed
consistency *except* for domain invariants like "do not oversell a
flight by more than the overbooking allowance".  With declarative
scheduling such an invariant is one extra rule, not a new scheduler.

The parameterized spec factory
(:func:`repro.protocols.library.make_bounded_oversell_spec`) carries
the Datalog rules; the exact intra-batch budget is the spec's
``post_process`` policy, enforced identically on every backend.
"""

from __future__ import annotations

from repro.backends import SpecProtocol
from repro.protocols.base import register_protocol
from repro.protocols.library import (  # noqa: F401
    BOUNDED_OVERSELL_RULES,
    make_bounded_oversell_spec,
)


class BoundedOversellProtocol(SpecProtocol):
    """At most *allowance* uncommitted reservations per object.

    Reads always qualify; writes qualify while the object's uncommitted
    reservation count is below the allowance — exactly, not merely
    between batches (the budget policy caps intra-batch admissions in
    arrival order).
    """

    def __init__(self, allowance: int = 3, backend: str = "datalog") -> None:
        self.allowance = allowance
        spec = make_bounded_oversell_spec(allowance)
        super().__init__(spec, backend=backend)


@register_protocol
def _make_bounded_oversell() -> BoundedOversellProtocol:
    return BoundedOversellProtocol()
