"""Application-specific consistency: the bounded-oversell rule.

The paper's motivating domains — "hotel or flight reservation systems,
or Internet shops like Amazon" (Section 2) — tolerate relaxed
consistency *except* for domain invariants like "do not oversell a
flight by more than the overbooking allowance".  With declarative
scheduling such an invariant is one extra rule, not a new scheduler:

    deny a pending ``w`` (reservation) on an object once the number of
    uncommitted reservations against that object reaches the allowance.

The protocol composes the rule with read-committed-style write-write
blocking dropped entirely — reservations on *different* objects never
interact, and concurrent reservations on the same object are allowed up
to the allowance, showcasing consistency *rationing* per object.
"""

from __future__ import annotations

from repro.datalog.engine import Database, evaluate
from repro.datalog.program import Program
from repro.model.request import Request
from repro.protocols.base import (
    Capabilities,
    Protocol,
    ProtocolDecision,
)
from repro.relalg.table import Table

BOUNDED_OVERSELL_RULES = """\
finished(Ta) :- history(_, Ta, _, "c", _).
finished(Ta) :- history(_, Ta, _, "a", _).
pendingres(Obj, Ta) :- history(_, Ta, _, "w", Obj), not finished(Ta).
rescount(Obj, count(Ta)) :- pendingres(Obj, Ta).
full(Obj) :- rescount(Obj, N), N >= {allowance}.
denied(Id) :- requests(Id, _, _, "w", Obj), full(Obj).
qualified(Id, Ta, I, Op, Obj) :- requests(Id, Ta, I, Op, Obj),
                                 not denied(Id).
"""


class BoundedOversellProtocol(Protocol):
    """At most *allowance* uncommitted reservations per object.

    Reads always qualify; writes qualify while the object's uncommitted
    reservation count is below the allowance.  The Datalog rules deny
    writes on already-full objects; a budget pass then caps intra-batch
    admissions (a batch of N concurrent reservations on one object may
    only take the remaining ``allowance - uncommitted`` slots, in
    arrival order) so the invariant holds *exactly*, not merely between
    batches.
    """

    capabilities = Capabilities(
        performance=True, qos=True, declarative=True, flexible=True,
        high_scalability=True,
    )

    def __init__(self, allowance: int = 3) -> None:
        if allowance < 1:
            raise ValueError("allowance must be at least 1")
        self.allowance = allowance
        self.name = f"bounded-oversell({allowance})"
        self.description = (
            f"app-specific consistency: <= {allowance} concurrent "
            "uncommitted reservations per object"
        )
        self.declarative_source = BOUNDED_OVERSELL_RULES.format(
            allowance=allowance
        )
        self._program = Program.parse(self.declarative_source)

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        db = Database()
        db.add_facts("requests", requests.rows)
        db.add_facts("history", history.rows)
        evaluate(self._program, db)
        rows = sorted(db.facts("qualified"))
        decision = ProtocolDecision()
        for fact in db.facts("denied"):
            decision.denials[fact[0]] = "object at oversell allowance"

        # Intra-batch budget: remaining slots per object, consumed in
        # arrival order.
        uncommitted: dict[int, int] = {}
        for obj, __ta in db.facts("pendingres"):
            uncommitted[obj] = uncommitted.get(obj, 0) + 1
        budget: dict[int, int] = {}
        for row in rows:
            request = Request.from_row(row)
            if request.is_write:
                remaining = budget.setdefault(
                    request.obj,
                    self.allowance - uncommitted.get(request.obj, 0),
                )
                if remaining <= 0:
                    decision.denials[request.id] = (
                        "batch would exceed oversell allowance"
                    )
                    continue
                budget[request.obj] = remaining - 1
            decision.qualified.append(request)
        return decision
