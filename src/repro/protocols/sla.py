"""SLA protocols: tier ordering and deadlines on top of consistency.

The paper's constraint class (2): schedules must respect service-level
agreements, "e.g. for premium vs. free customers" (Section 1).  SLA
concerns are *orthogonal* to consistency, so these protocols are
decorators: an inner protocol decides which requests are safe, the SLA
layer decides their order (and optionally holds back low-priority work).

Ordering keys come from the request side-car attributes
(:class:`repro.model.request.RequestAttributes`), which the middleware
stores alongside the Table 2 columns.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.model.request import Request
from repro.protocols.base import (
    Capabilities,
    Protocol,
    ProtocolDecision,
)
from repro.relalg.table import Table


def rehydrate_attrs(decision: ProtocolDecision, requests: Table) -> None:
    """Re-attach side-car attributes to the qualified requests.

    Inner protocols reconstruct requests from Table 2 rows, which carry
    no SLA attributes; the stores stash them on the table object as
    ``attrs_by_id`` (see :mod:`repro.core.stores`).
    """
    attrs_by_id = getattr(requests, "attrs_by_id", None)
    if not attrs_by_id:
        return
    decision.qualified = [
        dataclasses.replace(request, attrs=attrs_by_id[request.id])
        if request.id in attrs_by_id
        else request
        for request in decision.qualified
    ]

SLA_ORDER_RULES = """\
rank(Id, P) :- qualified(Id, _, _, _, _), priority(Id, P).
emit(Id) :- rank(Id, P)  ordered by P desc, Id asc.
"""


class SLAOrderingProtocol(Protocol):
    """Order an inner protocol's qualified set by SLA priority.

    Higher ``attrs.priority`` goes first; ties break by arrival (id).
    With ``reserve_share`` set (0..1), at most that fraction of each
    batch may be taken by the *lowest* tier when higher-tier requests
    are waiting — a simple starvation-free premium lane.
    """

    capabilities = Capabilities(
        performance=True, qos=True, declarative=True, flexible=True,
        high_scalability=True,
    )
    declarative_source = SLA_ORDER_RULES

    def __init__(
        self,
        inner: Protocol,
        reserve_share: Optional[float] = None,
    ) -> None:
        if reserve_share is not None and not 0 < reserve_share <= 1:
            raise ValueError("reserve_share must be in (0, 1]")
        self.inner = inner
        self.reserve_share = reserve_share
        self.name = f"sla({inner.name})"
        self.description = f"SLA priority ordering over {inner.name}"

    def reset(self) -> None:
        self.inner.reset()

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        decision = self.inner.schedule(requests, history)
        rehydrate_attrs(decision, requests)
        ordered = sorted(
            decision.qualified,
            key=lambda r: (-r.attrs.priority, r.id),
        )
        if self.reserve_share is not None and ordered:
            ordered = self._apply_reservation(ordered)
        decision.qualified = ordered
        return decision

    def _apply_reservation(self, ordered: list[Request]) -> list[Request]:
        priorities = {r.attrs.priority for r in ordered}
        if len(priorities) <= 1:
            return ordered
        lowest = min(priorities)
        cap = max(1, int(len(ordered) * self.reserve_share))
        kept: list[Request] = []
        low_taken = 0
        for request in ordered:
            if request.attrs.priority == lowest:
                if low_taken >= cap:
                    continue
                low_taken += 1
            kept.append(request)
        return kept


class EarliestDeadlineFirstProtocol(Protocol):
    """Order an inner protocol's qualified set by deadline (EDF).

    Requests without a deadline sort last, then by priority and arrival.
    """

    capabilities = Capabilities(
        performance=True, qos=True, declarative=True, flexible=True,
        high_scalability=True,
    )
    declarative_source = """\
emit(Id) :- qualified(Id, _, _, _, _), deadline(Id, D)
            ordered by D asc, Id asc.
"""

    def __init__(self, inner: Protocol) -> None:
        self.inner = inner
        self.name = f"edf({inner.name})"
        self.description = f"earliest-deadline-first over {inner.name}"

    def reset(self) -> None:
        self.inner.reset()

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        decision = self.inner.schedule(requests, history)
        rehydrate_attrs(decision, requests)
        decision.qualified = sorted(
            decision.qualified,
            key=lambda r: (
                r.attrs.deadline if r.attrs.deadline is not None else float("inf"),
                -r.attrs.priority,
                r.id,
            ),
        )
        return decision
