"""The protocol spec library: every shipped protocol, declaratively.

This module is the single home of protocol *query logic*.  Each
protocol is one :class:`~repro.protocols.spec.ProtocolSpec` carrying
every dialect we can state it in — a relalg logical-plan builder, SQL
text, Datalog rules, a lock model, and (where the rule needs counting
or admission) a hand-written set-at-a-time callable.  Execution lives
entirely in :mod:`repro.backends`; the historical per-backend modules
(``ss2pl_sql``, ``ss2pl_sqlfront``, ``ss2pl_datalog``,
``ss2pl_incremental``) are now compatibility shims over the single
``ss2pl-listing1`` spec plus backend selection.

Shipped specs (8, the protocol side of the protocol × backend matrix):

====================  ===================================================
ss2pl-listing1        the paper's Listing 1, published semantics
ss2pl                 Listing 1 + program-order/termination gating
fcfs                  first-come-first-served (no consistency)
read-committed        write-write blocking only
exclusive             2PL with exclusive-only locks (reads lock as writes)
priority-ceiling      object ceiling: oldest claimant wins the object
c2pl                  conservative 2PL (all-or-nothing admission)
bounded-oversell      app-specific: bounded concurrent reservations
====================  ===================================================
"""

from __future__ import annotations

from repro.model.request import Request
from repro.protocols.base import Capabilities, ProtocolDecision
from repro.protocols.spec import (
    EXCLUSIVE_LOCKS,
    NO_LOCKS,
    READ_COMMITTED_LOCKS,
    SS2PL_LOCKS,
    ProtocolSpec,
    register_spec,
)
from repro.relalg.expressions import col, is_null, lit, or_
from repro.relalg.query import Pipeline, Query, cte
from repro.relalg.table import Table
from repro.sqlbridge.bridge import LISTING1_SQLITE

#: Capability row shared by the declarative consistency specs.
_FULL_CAPS = Capabilities(
    performance=True, qos=True, declarative=True, flexible=True,
    high_scalability=True,
)
_NO_QOS_CAPS = Capabilities(
    performance=True, declarative=True, flexible=True, high_scalability=True
)


# ---------------------------------------------------------------------------
# SS2PL — the paper's Listing 1, in four dialects.
# ---------------------------------------------------------------------------

#: The literal SQL of the paper's Listing 1 (the protocol's declarative
#: source of record; executed verbatim by the sqlite backend through its
#: sqlite-compatible rendition).
LISTING1_SQL = """\
WITH RLockedObjects AS
 (SELECT a.object, a.ta, a.operation
  FROM history a
  WHERE NOT EXISTS
   (SELECT * FROM history b
    WHERE (a.ta=b.ta AND a.object=b.object AND b.operation='w')
       OR (a.ta=b.ta AND (b.operation='a' OR b.operation='c')))),
WLockedObjects AS
 (SELECT DISTINCT a.object, a.ta, a.operation
  FROM history a LEFT JOIN
   (SELECT ta FROM history
    WHERE operation='a' OR operation='c') AS finishedTAs
   ON a.ta = finishedTAs.ta
  WHERE a.operation='w' AND finishedTAs.ta IS NULL),
OperationsOnWLockedObjects AS
 (SELECT r.ta, r.intrata
  FROM requests r, WLockedObjects wlo
  WHERE r.object=wlo.object AND r.ta<>wlo.ta),
OperationsOnRLockedObjects AS
 (SELECT wOpsOnRLObj.ta, wOpsOnRLObj.intrata
  FROM requests wOpsOnRLObj, RLockedObjects rl
  WHERE wOpsOnRLObj.object=rl.object
    AND wOpsOnRLObj.operation='w'
    AND wOpsOnRLObj.ta<>rl.ta),
OpsOnSameObjAsPriorSelectOps AS
 (SELECT r2.ta, r2.intrata
  FROM requests r2, requests r1
  WHERE r2.object=r1.object AND r2.ta>r1.ta
    AND ((r1.operation='w') OR (r2.operation='w'))),
QualifiedSS2PLOps AS
 ((SELECT ta, intrata FROM requests)
  EXCEPT (
   (SELECT * FROM OperationsOnWLockedObjects)
   UNION ALL
   (SELECT * FROM OpsOnSameObjAsPriorSelectOps)
   UNION ALL
   (SELECT * FROM OperationsOnRLockedObjects)))
SELECT r2.*
FROM requests r2, QualifiedSS2PLOps ss2PL
WHERE r2.ta=ss2PL.ta AND r2.intrata=ss2PL.intrata
"""

#: SS2PL as a dozen Datalog rules — the succinct-language formulation
#: (paper Section 5), predicate by predicate equivalent to Listing 1.
SS2PL_DATALOG_RULES = """\
finished(Ta) :- history(_, Ta, _, "c", _).
finished(Ta) :- history(_, Ta, _, "a", _).
wlocked(Obj, Ta) :- history(_, Ta, _, "w", Obj), not finished(Ta).
rlocked(Obj, Ta) :- history(_, Ta, _, "r", Obj), not finished(Ta),
                    not wlocked(Obj, Ta).
denied(Id) :- requests(Id, Ta, _, _, Obj), wlocked(Obj, Ta2), Ta != Ta2.
denied(Id) :- requests(Id, Ta, _, "w", Obj), rlocked(Obj, Ta2), Ta != Ta2.
denied(Id2) :- requests(Id2, Ta2, _, Op2, Obj), requests(_, Ta1, _, Op1, Obj),
               Ta2 > Ta1, conflictops(Op1, Op2).
conflictops("w", "w").
conflictops("w", "r").
conflictops("r", "w").
qualified(Id, Ta, I, Op, Obj) :- requests(Id, Ta, I, Op, Obj),
                                 not denied(Id).
"""


def listing1_pipeline(requests: Table, history: Table) -> Pipeline:
    """Evaluate Listing 1 on the relalg engine, one CTE per step.

    Returns the finished :class:`Pipeline`; the final step is named
    ``qualified_requests`` and has the full Table 2 schema.  This is
    the paper's "naive" eager evaluation — each CTE materializes before
    the next starts, and nothing survives to the next scheduler step.
    """
    p = Pipeline()
    p.add_table("requests", requests, alias="r")
    p.add_table("history", history, alias="h")

    # RLockedObjects: history rows `a` such that no row `b` of the same
    # transaction writes the same object or terminates the transaction —
    # i.e. read locks held by still-active transactions.
    history_a = Query.from_(history, alias="a")
    history_b = Query.from_(history, alias="b")
    writes_same_obj = history_b.where(col("b.operation") == lit("w")).select(
        "b.ta", "b.object"
    )
    finished = (
        Query.from_(history, alias="b")
        .where(or_(col("b.operation") == lit("a"), col("b.operation") == lit("c")))
        .select("b.ta")
        .distinct()
    )
    r_locked = (
        history_a.anti_join(
            Query.from_(writes_same_obj.execute(), alias="wso"),
            on=(col("a.ta") == col("wso.ta")) & (col("a.object") == col("wso.object")),
        )
        .anti_join(
            Query.from_(finished.execute(), alias="fin"),
            on=col("a.ta") == col("fin.ta"),
        )
        .select("a.object", "a.ta", "a.operation")
    )
    p.add("RLockedObjects", r_locked)

    # WLockedObjects: DISTINCT writes of transactions with no commit/abort
    # (the paper uses LEFT JOIN ... IS NULL; we keep that shape).
    finished_tas = (
        Query.from_(history, alias="f")
        .where(or_(col("f.operation") == lit("a"), col("f.operation") == lit("c")))
        .select("f.ta")
        .distinct()
    )
    w_locked = (
        Query.from_(history, alias="a")
        .left_join(
            Query.from_(finished_tas.execute(), alias="finishedTAs"),
            on=col("a.ta") == col("finishedTAs.ta"),
        )
        .where(
            (col("a.operation") == lit("w")) & is_null(col("finishedTAs.ta"))
        )
        .select("a.object", "a.ta", "a.operation")
        .distinct()
    )
    p.add("WLockedObjects", w_locked)

    # OperationsOnWLockedObjects: pending ops touching a write-locked
    # object of another transaction.
    ops_on_w = (
        p.ref("requests")
        .join(
            Query.from_(p["WLockedObjects"], alias="wlo"),
            on=(col("r.object") == col("wlo.object"))
            & (col("r.ta") != col("wlo.ta")),
        )
        .select("r.ta", "r.intrata")
    )
    p.add("OperationsOnWLockedObjects", ops_on_w)

    # OperationsOnRLockedObjects: pending WRITES touching a read-locked
    # object of another transaction.
    ops_on_r = (
        p.ref("requests")
        .where(col("r.operation") == lit("w"))
        .join(
            Query.from_(p["RLockedObjects"], alias="rl"),
            on=(col("r.object") == col("rl.object")) & (col("r.ta") != col("rl.ta")),
        )
        .select("r.ta", "r.intrata")
    )
    p.add("OperationsOnRLockedObjects", ops_on_r)

    # OpsOnSameObjAsPriorSelectOps: intra-batch conflicts — a pending op
    # of a *later* transaction conflicting with a pending op of an
    # earlier one (at least one of the two writes).
    intra_batch = (
        Query.from_(requests, alias="r2")
        .join(
            Query.from_(requests, alias="r1"),
            on=(col("r2.object") == col("r1.object")) & (col("r2.ta") > col("r1.ta")),
        )
        .where(
            or_(
                col("r1.operation") == lit("w"),
                col("r2.operation") == lit("w"),
            )
        )
        .select("r2.ta", "r2.intrata")
    )
    p.add("OpsOnSameObjAsPriorSelectOps", intra_batch)

    # QualifiedSS2PLOps: all pending (ta, intrata) EXCEPT the union of
    # the three denial sets (set semantics, as SQL EXCEPT).
    all_ops = p.ref("requests").select("r.ta", "r.intrata")
    denials = (
        p.ref("OperationsOnWLockedObjects")
        .union_all(p.ref("OpsOnSameObjAsPriorSelectOps"))
        .union_all(p.ref("OperationsOnRLockedObjects"))
    )
    qualified_keys = all_ops.except_(denials)
    p.add("QualifiedSS2PLOps", qualified_keys)

    # Final join back to the full request rows.
    qualified = (
        Query.from_(requests, alias="r2")
        .join(
            Query.from_(p["QualifiedSS2PLOps"], alias="q"),
            on=(col("r2.ta") == col("q.ta")) & (col("r2.intrata") == col("q.intrata")),
        )
        .select("r2.id", "r2.ta", "r2.intrata", "r2.operation", "r2.object")
        .order_by("id")
    )
    p.add("qualified_requests", qualified)
    return p


def listing1_query(requests: Table, history: Table) -> Query:
    """Listing 1 as one *deferred* plan DAG over live tables.

    Where :func:`listing1_pipeline` materializes each CTE eagerly (and
    therefore must be rebuilt per scheduler step), this form contains no
    snapshots: compiled once via :meth:`Query.compile`, the resulting
    plan is re-executable against the tables' current contents every
    step.  Shared CTEs (``FinishedTAs`` feeds both lock views) are
    single nodes, computed at most once per execution.
    """
    # Read locks: history rows `a` whose transaction neither wrote the
    # same object nor terminated.
    writes_same_obj = cte(
        Query.from_(history, alias="b")
        .where(col("b.operation") == lit("w"))
        .select("b.ta", "b.object"),
        "WritesSameObject",
    )
    finished = cte(
        Query.from_(history, alias="f")
        .where(or_(col("f.operation") == lit("a"), col("f.operation") == lit("c")))
        .select("f.ta")
        .distinct(),
        "FinishedTAs",
    )
    r_locked = cte(
        Query.from_(history, alias="a")
        .anti_join(
            Query.from_(writes_same_obj, alias="wso"),
            on=(col("a.ta") == col("wso.ta")) & (col("a.object") == col("wso.object")),
        )
        .anti_join(
            Query.from_(finished, alias="fin"),
            on=col("a.ta") == col("fin.ta"),
        )
        .select("a.object", "a.ta", "a.operation"),
        "RLockedObjects",
    )
    # Write locks: DISTINCT writes of unfinished transactions (the
    # paper's LEFT JOIN ... IS NULL shape).
    w_locked = cte(
        Query.from_(history, alias="a")
        .left_join(
            Query.from_(finished, alias="finishedTAs"),
            on=col("a.ta") == col("finishedTAs.ta"),
        )
        .where((col("a.operation") == lit("w")) & is_null(col("finishedTAs.ta")))
        .select("a.object", "a.ta", "a.operation")
        .distinct(),
        "WLockedObjects",
    )

    ops_on_w = (
        Query.from_(requests, alias="r")
        .join(
            Query.from_(w_locked, alias="wlo"),
            on=(col("r.object") == col("wlo.object")) & (col("r.ta") != col("wlo.ta")),
        )
        .select("r.ta", "r.intrata")
    )
    ops_on_r = (
        Query.from_(requests, alias="r")
        .where(col("r.operation") == lit("w"))
        .join(
            Query.from_(r_locked, alias="rl"),
            on=(col("r.object") == col("rl.object")) & (col("r.ta") != col("rl.ta")),
        )
        .select("r.ta", "r.intrata")
    )
    intra_batch = (
        Query.from_(requests, alias="r2")
        .join(
            Query.from_(requests, alias="r1"),
            on=(col("r2.object") == col("r1.object")) & (col("r2.ta") > col("r1.ta")),
        )
        .where(
            or_(
                col("r1.operation") == lit("w"),
                col("r2.operation") == lit("w"),
            )
        )
        .select("r2.ta", "r2.intrata")
    )

    all_ops = Query.from_(requests, alias="r").select("r.ta", "r.intrata")
    denials = ops_on_w.union_all(intra_batch).union_all(ops_on_r)
    qualified_keys = cte(all_ops.except_(denials), "QualifiedSS2PLOps")
    return (
        Query.from_(requests, alias="r2")
        .join(
            Query.from_(qualified_keys, alias="q"),
            on=(col("r2.ta") == col("q.ta")) & (col("r2.intrata") == col("q.intrata")),
        )
        .select("r2.id", "r2.ta", "r2.intrata", "r2.operation", "r2.object")
        .order_by("id")
    )


def _listing1_pipeline_rows(requests: Table, history: Table) -> list[tuple]:
    return listing1_pipeline(requests, history)["qualified_requests"].rows


LISTING1_SPEC = register_spec(
    ProtocolSpec(
        name="ss2pl-listing1",
        description="SS2PL via the paper's Listing 1 query",
        capabilities=_FULL_CAPS,
        relalg=listing1_query,
        relalg_pipeline=_listing1_pipeline_rows,
        sql=LISTING1_SQL,
        sqlite_sql=LISTING1_SQLITE,
        datalog=SS2PL_DATALOG_RULES,
        lock_model=SS2PL_LOCKS,
        declarative_source=LISTING1_SQL,
    )
)


def gate_program_order(
    decision: ProtocolDecision, requests: Table, history: Table
) -> ProtocolDecision:
    """Program-order and termination gating over a qualified set.

    The two rules a *running* (rather than trace-replaying) scheduler
    needs on top of Listing 1's published semantics:

    * program order — a request qualifies only when every earlier
      request of its transaction (lower INTRATA) has already executed;
    * termination gating — a commit/abort qualifies only when all of
      its transaction's data accesses have executed.

    Pure batch policy: runs identically on every backend's candidates
    (which arrive id-ordered).
    """
    if not decision.qualified:
        return decision

    # Executed-count per transaction from history, for the transactions
    # in the candidate set only — the gate never reads any other ta, and
    # touching every history bucket would cost O(|history tas|) per step
    # (at 10^5+ preloaded rows that dwarfs the delta-maintained query
    # itself).  The stores maintain a hash index on ta; fall back to a
    # scan for bare tables.
    candidate_tas = {request.ta for request in decision.qualified}
    executed: dict[int, int] = {}
    ta_index = history.index_on("ta")
    if ta_index is not None:
        for ta in candidate_tas:
            bucket = ta_index.buckets.get((ta,))
            if bucket:
                executed[ta] = len(bucket)
    else:
        history_ta_pos = history.schema.resolve("ta")
        for row in history.rows:
            ta = row[history_ta_pos]
            if ta in candidate_tas:
                executed[ta] = executed.get(ta, 0) + 1

    gated = ProtocolDecision(denials=dict(decision.denials))
    progress = dict(executed)
    for request in decision.qualified:
        done = progress.get(request.ta, 0)
        if request.intrata != done:
            gated.denials[request.id] = (
                f"out of program order: intrata {request.intrata}, "
                f"executed {done}"
            )
            continue
        if request.operation.is_termination or request.operation.is_data_access:
            gated.qualified.append(request)
            progress[request.ta] = done + 1
    return gated


SS2PL_SPEC = register_spec(
    LISTING1_SPEC.with_(
        name="ss2pl",
        description="SS2PL (Listing 1 + program order)",
        post_process=gate_program_order,
    )
)


# ---------------------------------------------------------------------------
# FCFS — the no-consistency baseline.
# ---------------------------------------------------------------------------

FCFS_RULES = """\
qualified(Id, Ta, I, Op, Obj) :- requests(Id, Ta, I, Op, Obj).
"""

FCFS_SQL = """\
SELECT id, ta, intrata, operation, object FROM requests
"""


def _fcfs_query(requests: Table, history: Table) -> Query:
    return Query.from_(requests).order_by("id")


FCFS_SPEC = register_spec(
    ProtocolSpec(
        name="fcfs",
        description="first-come-first-served, no consistency constraints",
        capabilities=_NO_QOS_CAPS,
        relalg=_fcfs_query,
        sql=FCFS_SQL,
        datalog=FCFS_RULES,
        lock_model=NO_LOCKS,
        declarative_source=FCFS_RULES,
    )
)


# ---------------------------------------------------------------------------
# Read committed — relaxed consistency, write-write blocking only.
# ---------------------------------------------------------------------------

READ_COMMITTED_RULES = """\
finished(Ta) :- history(_, Ta, _, "c", _).
finished(Ta) :- history(_, Ta, _, "a", _).
wlocked(Obj, Ta) :- history(_, Ta, _, "w", Obj), not finished(Ta).
denied(Id) :- requests(Id, Ta, _, "w", Obj), wlocked(Obj, Ta2), Ta != Ta2.
denied(Id2) :- requests(Id2, Ta2, _, "w", Obj), requests(_, Ta1, _, "w", Obj),
               Ta2 > Ta1.
qualified(Id, Ta, I, Op, Obj) :- requests(Id, Ta, I, Op, Obj),
                                 not denied(Id).
"""

READ_COMMITTED_SQL = """\
WITH FinishedTAs AS
 (SELECT ta FROM history WHERE operation='a' OR operation='c'),
WLockedObjects AS
 (SELECT DISTINCT a.object AS object, a.ta AS ta
  FROM history a LEFT JOIN FinishedTAs f ON a.ta = f.ta
  WHERE a.operation='w' AND f.ta IS NULL),
DeniedOps AS
 (SELECT r.ta AS ta, r.intrata AS intrata
  FROM requests r, WLockedObjects w
  WHERE r.operation='w' AND r.object=w.object AND r.ta<>w.ta
  UNION ALL
  SELECT r2.ta AS ta, r2.intrata AS intrata
  FROM requests r2, requests r1
  WHERE r2.operation='w' AND r1.operation='w'
    AND r2.object=r1.object AND r2.ta>r1.ta),
QualifiedOps AS
 (SELECT ta, intrata FROM requests
  EXCEPT
  SELECT ta, intrata FROM DeniedOps)
SELECT r.id, r.ta, r.intrata, r.operation, r.object
FROM requests r, QualifiedOps q
WHERE r.ta=q.ta AND r.intrata=q.intrata
"""


def read_committed_query(requests: Table, history: Table) -> Query:
    """Write-write blocking only, as a deferred relalg plan."""
    finished = cte(
        Query.from_(history, alias="f")
        .where(or_(col("f.operation") == lit("a"), col("f.operation") == lit("c")))
        .select("f.ta")
        .distinct(),
        "FinishedTAs",
    )
    w_locked = cte(
        Query.from_(history, alias="a")
        .where(col("a.operation") == lit("w"))
        .anti_join(
            Query.from_(finished, alias="fin"),
            on=col("a.ta") == col("fin.ta"),
        )
        .select("a.object", "a.ta")
        .distinct(),
        "WLockedObjects",
    )
    ops_on_w = (
        Query.from_(requests, alias="r")
        .where(col("r.operation") == lit("w"))
        .join(
            Query.from_(w_locked, alias="wlo"),
            on=(col("r.object") == col("wlo.object")) & (col("r.ta") != col("wlo.ta")),
        )
        .select("r.ta", "r.intrata")
    )
    intra_batch = (
        Query.from_(requests, alias="r2")
        .where(col("r2.operation") == lit("w"))
        .join(
            Query.from_(requests, alias="r1"),
            on=(col("r2.object") == col("r1.object")) & (col("r2.ta") > col("r1.ta")),
        )
        .where(col("r1.operation") == lit("w"))
        .select("r2.ta", "r2.intrata")
    )
    all_ops = Query.from_(requests, alias="r").select("r.ta", "r.intrata")
    qualified_keys = cte(
        all_ops.except_(ops_on_w.union_all(intra_batch)), "QualifiedOps"
    )
    return (
        Query.from_(requests, alias="r2")
        .join(
            Query.from_(qualified_keys, alias="q"),
            on=(col("r2.ta") == col("q.ta")) & (col("r2.intrata") == col("q.intrata")),
        )
        .select("r2.id", "r2.ta", "r2.intrata", "r2.operation", "r2.object")
        .order_by("id")
    )


READ_COMMITTED_SPEC = register_spec(
    ProtocolSpec(
        name="read-committed",
        description="relaxed consistency: only write-write conflicts block",
        capabilities=_NO_QOS_CAPS,
        relalg=read_committed_query,
        sql=READ_COMMITTED_SQL,
        datalog=READ_COMMITTED_RULES,
        lock_model=READ_COMMITTED_LOCKS,
        declarative_source=READ_COMMITTED_RULES,
    )
)


# ---------------------------------------------------------------------------
# Exclusive-only 2PL — reads lock like writes.
# ---------------------------------------------------------------------------

EXCLUSIVE_RULES = """\
finished(Ta) :- history(_, Ta, _, "c", _).
finished(Ta) :- history(_, Ta, _, "a", _).
locked(Obj, Ta) :- history(_, Ta, _, "w", Obj), not finished(Ta).
locked(Obj, Ta) :- history(_, Ta, _, "r", Obj), not finished(Ta).
dataop("r").
dataop("w").
denied(Id) :- requests(Id, Ta, _, Op, Obj), dataop(Op),
              locked(Obj, Ta2), Ta != Ta2.
denied(Id2) :- requests(Id2, Ta2, _, Op2, Obj), dataop(Op2),
               requests(_, Ta1, _, Op1, Obj), dataop(Op1), Ta2 > Ta1.
qualified(Id, Ta, I, Op, Obj) :- requests(Id, Ta, I, Op, Obj),
                                 not denied(Id).
"""

EXCLUSIVE_SQL = """\
WITH FinishedTAs AS
 (SELECT ta FROM history WHERE operation='a' OR operation='c'),
LockedObjects AS
 (SELECT DISTINCT a.object AS object, a.ta AS ta
  FROM history a LEFT JOIN FinishedTAs f ON a.ta = f.ta
  WHERE (a.operation='r' OR a.operation='w') AND f.ta IS NULL),
DeniedOps AS
 (SELECT r.ta AS ta, r.intrata AS intrata
  FROM requests r, LockedObjects l
  WHERE (r.operation='r' OR r.operation='w')
    AND r.object=l.object AND r.ta<>l.ta
  UNION ALL
  SELECT r2.ta AS ta, r2.intrata AS intrata
  FROM requests r2, requests r1
  WHERE (r2.operation='r' OR r2.operation='w')
    AND (r1.operation='r' OR r1.operation='w')
    AND r2.object=r1.object AND r2.ta>r1.ta),
QualifiedOps AS
 (SELECT ta, intrata FROM requests
  EXCEPT
  SELECT ta, intrata FROM DeniedOps)
SELECT r.id, r.ta, r.intrata, r.operation, r.object
FROM requests r, QualifiedOps q
WHERE r.ta=q.ta AND r.intrata=q.intrata
"""


def exclusive_query(requests: Table, history: Table) -> Query:
    """Exclusive-only locking as a deferred relalg plan."""
    data_op = lambda c: or_(c == lit("r"), c == lit("w"))  # noqa: E731
    finished = cte(
        Query.from_(history, alias="f")
        .where(or_(col("f.operation") == lit("a"), col("f.operation") == lit("c")))
        .select("f.ta")
        .distinct(),
        "FinishedTAs",
    )
    locked = cte(
        Query.from_(history, alias="a")
        .where(data_op(col("a.operation")))
        .anti_join(
            Query.from_(finished, alias="fin"),
            on=col("a.ta") == col("fin.ta"),
        )
        .select("a.object", "a.ta")
        .distinct(),
        "LockedObjects",
    )
    ops_on_locked = (
        Query.from_(requests, alias="r")
        .where(data_op(col("r.operation")))
        .join(
            Query.from_(locked, alias="l"),
            on=(col("r.object") == col("l.object")) & (col("r.ta") != col("l.ta")),
        )
        .select("r.ta", "r.intrata")
    )
    intra_batch = (
        Query.from_(requests, alias="r2")
        .where(data_op(col("r2.operation")))
        .join(
            Query.from_(requests, alias="r1"),
            on=(col("r2.object") == col("r1.object")) & (col("r2.ta") > col("r1.ta")),
        )
        .where(data_op(col("r1.operation")))
        .select("r2.ta", "r2.intrata")
    )
    all_ops = Query.from_(requests, alias="r").select("r.ta", "r.intrata")
    qualified_keys = cte(
        all_ops.except_(ops_on_locked.union_all(intra_batch)), "QualifiedOps"
    )
    return (
        Query.from_(requests, alias="r2")
        .join(
            Query.from_(qualified_keys, alias="q"),
            on=(col("r2.ta") == col("q.ta")) & (col("r2.intrata") == col("q.intrata")),
        )
        .select("r2.id", "r2.ta", "r2.intrata", "r2.operation", "r2.object")
        .order_by("id")
    )


EXCLUSIVE_SPEC = register_spec(
    ProtocolSpec(
        name="exclusive",
        description="2PL with exclusive-only locks: reads lock like writes",
        capabilities=_NO_QOS_CAPS,
        relalg=exclusive_query,
        sql=EXCLUSIVE_SQL,
        datalog=EXCLUSIVE_RULES,
        lock_model=EXCLUSIVE_LOCKS,
        declarative_source=EXCLUSIVE_RULES,
    )
)


# ---------------------------------------------------------------------------
# Priority ceiling — oldest claimant owns the object.
# ---------------------------------------------------------------------------

PRIORITY_CEILING_RULES = """\
finished(Ta) :- history(_, Ta, _, "c", _).
finished(Ta) :- history(_, Ta, _, "a", _).
dataop("r").
dataop("w").
locked(Obj, Ta) :- history(_, Ta, _, Op, Obj), dataop(Op), not finished(Ta).
denied(Id) :- requests(Id, Ta, _, Op, Obj), dataop(Op),
              locked(Obj, Ta2), Ta != Ta2.
denied(Id) :- requests(Id, Ta, _, Op, Obj), dataop(Op),
              requests(_, Ta1, _, Op1, Obj), dataop(Op1), Ta1 < Ta.
qualified(Id, Ta, I, Op, Obj) :- requests(Id, Ta, I, Op, Obj),
                                 not denied(Id).
"""

PRIORITY_CEILING_SQL = """\
WITH FinishedTAs AS
 (SELECT ta FROM history WHERE operation='a' OR operation='c'),
LockedObjects AS
 (SELECT DISTINCT a.object AS object, a.ta AS ta
  FROM history a LEFT JOIN FinishedTAs f ON a.ta = f.ta
  WHERE (a.operation='r' OR a.operation='w') AND f.ta IS NULL),
DeniedOps AS
 (SELECT r.ta AS ta, r.intrata AS intrata
  FROM requests r, LockedObjects l
  WHERE (r.operation='r' OR r.operation='w')
    AND r.object=l.object AND r.ta<>l.ta
  UNION ALL
  SELECT r2.ta AS ta, r2.intrata AS intrata
  FROM requests r2, requests r1
  WHERE (r2.operation='r' OR r2.operation='w')
    AND (r1.operation='r' OR r1.operation='w')
    AND r2.object=r1.object AND r1.ta<r2.ta),
QualifiedOps AS
 (SELECT ta, intrata FROM requests
  EXCEPT
  SELECT ta, intrata FROM DeniedOps)
SELECT r.id, r.ta, r.intrata, r.operation, r.object
FROM requests r, QualifiedOps q
WHERE r.ta=q.ta AND r.intrata=q.intrata
"""


def _priority_ceiling_imperative(
    requests: Table, history: Table
) -> ProtocolDecision:
    """Reference evaluation of the priority-ceiling rules."""
    ta_pos = history.schema.resolve("ta")
    op_pos = history.schema.resolve("operation")
    obj_pos = history.schema.resolve("object")
    finished = {
        row[ta_pos] for row in history.rows if row[op_pos] in ("c", "a")
    }
    locked: dict[int, set[int]] = {}
    for row in history.rows:
        if row[ta_pos] in finished or row[op_pos] not in ("r", "w"):
            continue
        locked.setdefault(row[obj_pos], set()).add(row[ta_pos])

    r_ta = requests.schema.resolve("ta")
    r_op = requests.schema.resolve("operation")
    r_obj = requests.schema.resolve("object")
    oldest_claimant: dict[int, int] = {}
    for row in requests.rows:
        if row[r_op] not in ("r", "w"):
            continue
        obj, ta = row[r_obj], row[r_ta]
        if obj not in oldest_claimant or ta < oldest_claimant[obj]:
            oldest_claimant[obj] = ta

    decision = ProtocolDecision()
    for row in requests.rows:
        request = Request.from_row(row)
        if row[r_op] not in ("r", "w"):
            decision.qualified.append(request)
            continue
        obj, ta = row[r_obj], row[r_ta]
        if locked.get(obj, set()) - {ta}:
            decision.denials[request.id] = "object held by active transaction"
        elif oldest_claimant.get(obj, ta) < ta:
            decision.denials[request.id] = "older claimant below the ceiling"
        else:
            decision.qualified.append(request)
    decision.qualified.sort(key=lambda r: r.id)
    return decision


PRIORITY_CEILING_SPEC = register_spec(
    ProtocolSpec(
        name="priority-ceiling",
        description="object ceiling: the oldest claimant owns the object",
        capabilities=_FULL_CAPS,
        sql=PRIORITY_CEILING_SQL,
        datalog=PRIORITY_CEILING_RULES,
        imperative=_priority_ceiling_imperative,
        declarative_source=PRIORITY_CEILING_RULES,
        default_backend="datalog",
    )
)


# ---------------------------------------------------------------------------
# Conservative 2PL — all-or-nothing transaction admission.
# ---------------------------------------------------------------------------

C2PL_DATALOG_RULES = """\
finished(Ta) :- history(_, Ta, _, "c", _).
finished(Ta) :- history(_, Ta, _, "a", _).
admitted(Ta) :- history(_, Ta, _, _, _), not finished(Ta).
locked(Obj, Ta, Op) :- history(_, Ta, _, Op, Obj), not finished(Ta).
claims(Obj, Ta, Op) :- requests(_, Ta, _, Op, Obj), not admitted(Ta).
claimconflict(Ta) :- claims(Obj, Ta, _), locked(Obj, Ta2, "w"), Ta != Ta2.
claimconflict(Ta) :- claims(Obj, Ta, "w"), locked(Obj, Ta2, "r"), Ta != Ta2.
claimconflict(Ta) :- claims(Obj, Ta, Op2), claims(Obj, Ta1, Op1), Ta > Ta1,
                     conflictops(Op1, Op2).
conflictops("w", "w").
conflictops("w", "r").
conflictops("r", "w").
qualified(Id, Ta, I, Op, Obj) :- requests(Id, Ta, I, Op, Obj), admitted(Ta).
qualified(Id, Ta, I, Op, Obj) :- requests(Id, Ta, I, Op, Obj),
                                 not admitted(Ta), not claimconflict(Ta).
"""


def _ops_conflict(op1: str, op2: str) -> bool:
    return {op1, op2} <= {"r", "w"} and "w" in (op1, op2)


def _c2pl_imperative(requests: Table, history: Table) -> ProtocolDecision:
    """Reference evaluation of the C2PL admission rules."""
    ta_pos = history.schema.resolve("ta")
    op_pos = history.schema.resolve("operation")
    obj_pos = history.schema.resolve("object")
    finished = {
        row[ta_pos] for row in history.rows if row[op_pos] in ("c", "a")
    }
    admitted: set[int] = set()
    locked_w: dict[int, set[int]] = {}
    locked_r: dict[int, set[int]] = {}
    for row in history.rows:
        ta = row[ta_pos]
        if ta in finished:
            continue
        admitted.add(ta)
        if row[op_pos] == "w":
            locked_w.setdefault(row[obj_pos], set()).add(ta)
        elif row[op_pos] == "r":
            locked_r.setdefault(row[obj_pos], set()).add(ta)

    r_ta = requests.schema.resolve("ta")
    r_op = requests.schema.resolve("operation")
    r_obj = requests.schema.resolve("object")
    claims_by_obj: dict[int, list[tuple[int, str]]] = {}
    claims_by_ta: dict[int, list[tuple[int, str]]] = {}
    for row in requests.rows:
        ta = row[r_ta]
        if ta in admitted:
            continue
        claims_by_obj.setdefault(row[r_obj], []).append((ta, row[r_op]))
        claims_by_ta.setdefault(ta, []).append((row[r_obj], row[r_op]))

    conflicted: set[int] = set()
    for ta, claims in claims_by_ta.items():
        for obj, op in claims:
            if locked_w.get(obj, set()) - {ta}:
                conflicted.add(ta)
                break
            if op == "w" and locked_r.get(obj, set()) - {ta}:
                conflicted.add(ta)
                break
            if any(
                ta1 < ta and _ops_conflict(op1, op)
                for ta1, op1 in claims_by_obj.get(obj, ())
            ):
                conflicted.add(ta)
                break

    decision = ProtocolDecision()
    for row in requests.rows:
        request = Request.from_row(row)
        ta = row[r_ta]
        if ta in admitted or ta not in conflicted:
            decision.qualified.append(request)
        else:
            decision.denials[request.id] = "claim conflict: admission denied"
    decision.qualified.sort(key=lambda r: r.id)
    return decision


C2PL_SPEC = register_spec(
    ProtocolSpec(
        name="c2pl",
        description="conservative 2PL: all-or-nothing transaction admission",
        capabilities=_NO_QOS_CAPS,
        datalog=C2PL_DATALOG_RULES,
        imperative=_c2pl_imperative,
        declarative_source=C2PL_DATALOG_RULES,
        default_backend="datalog",
    )
)


# ---------------------------------------------------------------------------
# Bounded oversell — application-specific consistency.
# ---------------------------------------------------------------------------

BOUNDED_OVERSELL_RULES = """\
finished(Ta) :- history(_, Ta, _, "c", _).
finished(Ta) :- history(_, Ta, _, "a", _).
pendingres(Obj, Ta) :- history(_, Ta, _, "w", Obj), not finished(Ta).
rescount(Obj, count(Ta)) :- pendingres(Obj, Ta).
full(Obj) :- rescount(Obj, N), N >= {allowance}.
denied(Id) :- requests(Id, _, _, "w", Obj), full(Obj).
qualified(Id, Ta, I, Op, Obj) :- requests(Id, Ta, I, Op, Obj),
                                 not denied(Id).
"""


def _admit_all(requests: Table, history: Table) -> ProtocolDecision:
    """Everything is a candidate; the budget policy does the work."""
    return ProtocolDecision(
        qualified=[Request.from_row(row) for row in requests.rows]
    )


def _oversell_budget(allowance: int):
    """Post-process: cap concurrent uncommitted reservations per object.

    Counts distinct uncommitted reserving transactions per object from
    history, then admits candidate writes in arrival order while slots
    remain — so the invariant holds *exactly*, not merely between
    batches, on every backend.
    """

    def post(
        decision: ProtocolDecision, requests: Table, history: Table
    ) -> ProtocolDecision:
        ta_pos = history.schema.resolve("ta")
        op_pos = history.schema.resolve("operation")
        obj_pos = history.schema.resolve("object")
        finished = {
            row[ta_pos] for row in history.rows if row[op_pos] in ("c", "a")
        }
        reservations: set[tuple[int, int]] = {
            (row[obj_pos], row[ta_pos])
            for row in history.rows
            if row[op_pos] == "w" and row[ta_pos] not in finished
        }
        uncommitted: dict[int, int] = {}
        for obj, __ta in reservations:
            uncommitted[obj] = uncommitted.get(obj, 0) + 1

        gated = ProtocolDecision(denials=dict(decision.denials))
        budget: dict[int, int] = {}
        for request in decision.qualified:
            if request.is_write:
                remaining = budget.setdefault(
                    request.obj,
                    allowance - uncommitted.get(request.obj, 0),
                )
                if remaining <= 0:
                    gated.denials[request.id] = (
                        "batch would exceed oversell allowance"
                    )
                    continue
                budget[request.obj] = remaining - 1
            gated.qualified.append(request)
        return gated

    return post


def make_bounded_oversell_spec(allowance: int = 3) -> ProtocolSpec:
    """Parameterized app-consistency spec: at most *allowance*
    concurrent uncommitted reservations per object."""
    if allowance < 1:
        raise ValueError("allowance must be at least 1")
    rules = BOUNDED_OVERSELL_RULES.format(allowance=allowance)
    return ProtocolSpec(
        name=f"bounded-oversell({allowance})",
        description=(
            f"app-specific consistency: <= {allowance} concurrent "
            "uncommitted reservations per object"
        ),
        capabilities=_FULL_CAPS,
        datalog=rules,
        imperative=_admit_all,
        post_process=_oversell_budget(allowance),
        declarative_source=rules,
        default_backend="datalog",
    )


BOUNDED_OVERSELL_SPEC = register_spec(
    make_bounded_oversell_spec(3).with_(name="bounded-oversell")
)
