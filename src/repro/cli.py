"""Command-line interface.

Usage::

    python -m repro list                 # experiments and protocols
    python -m repro protocols            # registered protocol specs
    python -m repro backends             # registered execution backends
    python -m repro run E1 [E2 ...]      # regenerate paper artefacts
    python -m repro run all --quick      # everything, scaled down
    python -m repro run E13 --backend sqlfront
    python -m repro bench --protocol ss2pl --backend datalog
    python -m repro scenario list        # registered deterministic scenarios
    python -m repro scenario run zipf-hotspot --seed 7
    python -m repro scenario run smoke --record smoke.trace
    python -m repro scenario run smoke --backend compiled-delta
    python -m repro scenario run smoke --trigger fill:20
    python -m repro scenario replay smoke.trace
    python -m repro scenario compare trigger-sweep matrix-sweep
    python -m repro serve --backend compiled-delta   # asyncio serving layer
    python -m repro demo                 # the quickstart scenario
    python -m repro sql "SELECT ..."     # ad-hoc SQL over demo tables
    python -m repro analyze --strict     # static spec verifier + repo lint

Every experiment id maps to the corresponding ``repro.bench.run_*``
function; ``--quick`` substitutes scaled-down parameters so the whole
suite finishes in well under a minute.

The ``--protocol`` / ``--backend`` / ``--trigger`` flags are spelled,
defaulted and validated identically on every subcommand that takes them
(shared argparse parent parsers); all construction funnels through
:mod:`repro.api`, so a spec × backend pairing a backend declares
unsupported fails fast with the declared reason instead of falling
back silently.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.bench import (
    run_adaptive_bench,
    run_backend_matrix,
    run_crossover,
    run_declarative_overhead,
    run_figure2,
    run_incremental_ablation,
    run_language_ablation,
    run_mpl_ablation,
    run_productivity,
    run_scheduler_step_bench,
    render_scheduler_step_report,
    run_sla_bench,
    run_table1,
    run_table2,
    run_trigger_ablation,
)
from repro.protocols.base import PROTOCOL_REGISTRY


@dataclass(frozen=True)
class RunOptions:
    """The normalized cross-cutting flags handed to experiment runners."""

    protocol: Optional[str] = None
    backend: Optional[str] = None
    trigger: Optional[str] = None


#: Experiment ids whose runners honour ``--backend``.
BACKEND_AWARE = frozenset({"E13", "E14"})
#: Experiment ids whose runners honour ``--protocol``.
PROTOCOL_AWARE = frozenset({"E13", "E14"})
#: Experiment ids whose runners honour ``--trigger``.
TRIGGER_AWARE = frozenset({"E14"})
#: The spec a backend-aware experiment drives when ``--protocol`` is
#: not given — what ``--backend`` must support (fail-fast pairing).
DEFAULT_SPEC_OF = {"E13": "ss2pl"}

#: experiment id -> (description, full-scale runner, quick runner).
#: Runners take a :class:`RunOptions` (ignored unless the id is in the
#: ``*_AWARE`` sets above).
EXPERIMENTS: Dict[
    str, tuple[str, Callable[[RunOptions], str], Callable[[RunOptions], str]]
] = {
    "E1": (
        "Table 1: related-approach feature matrix",
        lambda opts: run_table1(),
        lambda opts: run_table1(),
    ),
    "E2": (
        "Table 2: request/history/rte schema",
        lambda opts: run_table2(),
        lambda opts: run_table2(),
    ),
    "E3": (
        "Figure 2: MU/SU ratio vs clients (native scheduler)",
        lambda opts: run_figure2(duration=240.0),
        lambda opts: run_figure2(client_counts=(1, 300, 500), duration=240.0),
    ),
    "E5": (
        "Section 4.3.2: declarative scheduling overhead",
        lambda opts: run_declarative_overhead(include_compiled_comparison=True),
        lambda opts: run_declarative_overhead(
            client_counts=(300, 500),
            repetitions=1,
            include_compiled_comparison=True,
        ),
    ),
    "E6": (
        "Section 4.4: native-vs-declarative crossover",
        lambda opts: run_crossover(),
        lambda opts: run_crossover(client_counts=(300, 500), duration=240.0),
    ),
    "E7": (
        "Ablation: trigger policies",
        lambda opts: run_trigger_ablation(),
        lambda opts: run_trigger_ablation(clients=20, duration=2.0),
    ),
    "E8": (
        "Ablation: declarative language backends",
        lambda opts: run_language_ablation(),
        lambda opts: run_language_ablation(client_counts=(300,), repetitions=1),
    ),
    "E9": (
        "Productivity: declarative vs imperative spec size",
        lambda opts: run_productivity(),
        lambda opts: run_productivity(),
    ),
    "E10": (
        "SLA tiers + adaptive consistency",
        lambda opts: run_sla_bench() + "\n\n" + run_adaptive_bench(),
        lambda opts: run_sla_bench(clients=20, duration=2.0)
        + "\n\n"
        + run_adaptive_bench(clients=30, duration=2.0),
    ),
    "E11": (
        "Ablation: incremental view maintenance",
        lambda opts: run_incremental_ablation(),
        lambda opts: run_incremental_ablation(clients=80, steps=10),
    ),
    "E12": (
        "Ablation: external MPL admission control",
        lambda opts: run_mpl_ablation(),
        lambda opts: run_mpl_ablation(duration=60.0, caps=(None, 300)),
    ),
    "E13": (
        "Ablation: interpreted pipeline vs compiled query plan",
        lambda opts: render_scheduler_step_report(
            run_scheduler_step_bench(
                protocol=opts.protocol or "ss2pl",
                backend=opts.backend or "compiled",
            )
        ),
        lambda opts: render_scheduler_step_report(
            run_scheduler_step_bench(
                client_counts=(100, 300), steps=6,
                protocol=opts.protocol or "ss2pl",
                backend=opts.backend or "compiled",
            )
        ),
    ),
    "E14": (
        "Protocol × backend matrix: per-step cost, identical batches",
        lambda opts: run_backend_matrix(
            backends=[opts.backend] if opts.backend else None,
            specs=[opts.protocol] if opts.protocol else None,
            trigger=opts.trigger,
        ),
        lambda opts: run_backend_matrix(
            clients=15, steps=6,
            backends=[opts.backend] if opts.backend else None,
            specs=[opts.protocol] if opts.protocol else None,
            trigger=opts.trigger,
        ),
    ),
}


def _experiment_order(key: str) -> int:
    return int(key.lstrip("E"))


# -- shared flag parents & validators ---------------------------------------
#
# One parent parser per cross-cutting flag, so --protocol/--backend/
# --trigger are spelled, documented and validated identically on every
# subcommand that takes them (run, bench, scenario run, serve, demo).


class _UsageError(Exception):
    """Validation failure already printed to stderr; main() exits 2."""


def _protocol_parent(default: Optional[str] = None) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--protocol",
        default=default,
        help="protocol spec name (see `repro protocols`); combinators: "
        "sla:<spec>, adaptive:<strict>,<relaxed>"
        + (f" (default: {default})" if default else ""),
    )
    return parent


def _backend_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--backend",
        help="execution backend (default: the spec's own; "
        "see `repro backends`)",
    )
    return parent


def _trigger_parent(default: Optional[str] = None) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--trigger",
        default=default,
        help="trigger policy: fill:<count>, time:<seconds>, or "
        "hybrid:<seconds>,<count>"
        + (f" (default: {default})" if default else ""),
    )
    return parent


def _check_backend(backend: Optional[str]) -> Optional[str]:
    """Exit code 2 with the valid choices on a bad backend name."""
    if backend is None:
        return None
    from repro.backends import BACKEND_REGISTRY, backend_names

    if backend not in BACKEND_REGISTRY:
        print(
            f"unknown backend {backend!r}; "
            f"valid backends: {', '.join(backend_names())}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return backend


def _check_protocol(protocol: Optional[str]) -> Optional[str]:
    """Exit code 2 with the registered specs on a bad protocol name.

    Combinator spellings (``sla:<spec>``, ``adaptive:<a>,<b>``) are
    validated by their inner spec names.
    """
    if protocol is None:
        return None
    from repro.protocols.spec import SPEC_REGISTRY, spec_names

    if ":" in protocol:
        inner = protocol.split(":", 1)[1].split(",")
    else:
        inner = [protocol]
    unknown = [name for name in inner if name not in SPEC_REGISTRY]
    if unknown:
        print(
            f"unknown protocol {protocol!r}; "
            f"registered specs: {', '.join(spec_names())}",
            file=sys.stderr,
        )
        raise _UsageError
    return protocol


def _check_trigger(trigger: Optional[str]) -> Optional[str]:
    """Exit code 2 with the accepted spellings on a bad trigger."""
    if trigger is None:
        return None
    import repro.api as api

    try:
        api.make_trigger(trigger)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        raise _UsageError from error
    return trigger


def _check_pairing(protocol: Optional[str], backend: Optional[str]) -> None:
    """Exit code 2 with the backend's declared skip reason when it
    cannot run the chosen spec — never fall back silently."""
    if protocol is None or backend is None:
        return
    import repro.api as api
    from repro.backends import BackendError

    try:
        api.validate_pairing(protocol, backend)
    except BackendError as error:
        print(str(error), file=sys.stderr)
        raise _UsageError from error


# -- subcommands ------------------------------------------------------------


def _cmd_list() -> int:
    print("experiments:")
    for key in sorted(EXPERIMENTS, key=_experiment_order):
        description = EXPERIMENTS[key][0]
        print(f"  {key:4s} {description}")
    print("\nregistered protocols:")
    for name in sorted(PROTOCOL_REGISTRY):
        protocol = PROTOCOL_REGISTRY[name]()
        print(f"  {name:20s} {protocol.description}")
    print(
        "\n(see `repro protocols` / `repro backends` for the "
        "spec × backend matrix)"
    )
    return 0


def _cmd_protocols() -> int:
    """The spec registry: every protocol and where it can run."""
    from repro.backends import supported_backends
    from repro.protocols.spec import SPEC_REGISTRY

    print("registered protocol specs:")
    for name in sorted(SPEC_REGISTRY):
        spec = SPEC_REGISTRY[name]
        backends = ", ".join(supported_backends(spec)) or "(none)"
        print(f"  {name:18s} {spec.description}")
        print(f"  {'':18s}   dialects: {', '.join(sorted(spec.dialects()))}")
        print(f"  {'':18s}   backends: {backends} "
              f"(default: {spec.default_backend})")
    return 0


def _cmd_backends() -> int:
    """The backend registry: every execution strategy."""
    from repro.backends import BACKEND_REGISTRY
    from repro.protocols.spec import SPEC_REGISTRY

    print("registered execution backends:")
    for name in sorted(BACKEND_REGISTRY):
        backend = BACKEND_REGISTRY[name]()
        supported = [
            spec_name
            for spec_name in sorted(SPEC_REGISTRY)
            if backend.supports(SPEC_REGISTRY[spec_name])
        ]
        print(f"  {name:12s} {backend.description}")
        print(f"  {'':12s}   consumes: {', '.join(backend.consumes)}")
        print(f"  {'':12s}   runs: {', '.join(supported)}")
    return 0


def _cmd_run(ids: Sequence[str], quick: bool, opts: RunOptions) -> int:
    _check_backend(opts.backend)
    _check_protocol(opts.protocol)
    _check_trigger(opts.trigger)
    wanted = list(ids)
    if len(wanted) == 1 and wanted[0].lower() == "all":
        wanted = sorted(EXPERIMENTS, key=_experiment_order)
    unknown = [i for i in wanted if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    if opts.backend is not None:
        # Fail fast before any experiment runs: a backend that declares
        # the driven spec unsupported exits here with the declared
        # reason, instead of a silent fallback (or a mid-run crash).
        for experiment_id in wanted:
            if experiment_id not in BACKEND_AWARE:
                continue
            spec = opts.protocol or DEFAULT_SPEC_OF.get(experiment_id)
            _check_pairing(spec, opts.backend)
    for experiment_id in wanted:
        description, full, fast = EXPERIMENTS[experiment_id]
        print("=" * 78)
        print(f"{experiment_id} — {description}")
        print("=" * 78)
        runner = fast if quick else full
        for flag, value, aware in (
            ("--protocol", opts.protocol, PROTOCOL_AWARE),
            ("--backend", opts.backend, BACKEND_AWARE),
            ("--trigger", opts.trigger, TRIGGER_AWARE),
        ):
            if value is not None and experiment_id not in aware:
                print(f"({flag} {value} has no effect on {experiment_id})")
        print(runner(opts))
        print()
    return 0


def _cmd_bench(
    protocol: str,
    backend: Optional[str],
    trigger: Optional[str],
    clients: int,
    steps: int,
) -> int:
    """Drive one protocol × backend pairing through the live scheduler."""
    _check_protocol(protocol)
    _check_backend(backend)
    _check_pairing(protocol, backend)
    _check_trigger(trigger)
    import repro.api as api
    from repro.backends import BackendError
    from repro.bench.incremental_ablation import drive_steps

    try:
        bound = api.make_protocol(protocol, backend, clients=clients)
    except BackendError as error:
        print(str(error), file=sys.stderr)
        return 2
    result = drive_steps(
        bound, clients=clients, steps=steps,
        trigger=api.make_trigger(trigger) if trigger else None,
    )
    print(
        f"{bound.name}: {result.steps} steps, {clients} clients -> "
        f"{result.total_qualified} qualified, "
        f"{result.per_step_ms:.3f} ms/step"
    )
    return 0


def _cmd_scenario(args) -> int:
    """The deterministic scenario subsystem (`scenario list|run|replay|compare`)."""
    from repro.scenarios import (
        SCENARIO_REGISTRY,
        get_scenario,
        record_scenario,
        render_scenario_comparison,
        render_scenario_report,
        replay_scenario,
        run_scenario,
        scenario_names,
    )

    if args.scenario_command == "list":
        print("registered scenarios:")
        for name in scenario_names():
            spec = SCENARIO_REGISTRY[name]
            print(f"  {name:18s} {spec.description}")
            print(
                f"  {'':18s}   cells: {len(spec.cells)}, "
                f"clients: {spec.clients}, duration: {spec.duration:g}s, "
                f"seed: {spec.seed}"
            )
        return 0

    if args.scenario_command in ("run", "compare"):
        names = (
            [args.name]
            if args.scenario_command == "run"
            else list(args.names)
        )
        try:
            specs = [get_scenario(name) for name in names]
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
        overrides = dict(
            seed=args.seed, duration=args.duration, clients=args.clients
        )
        # `scenario compare` has no --backend/--trigger; only `run` does.
        backend = _check_backend(getattr(args, "backend", None))
        trigger = _check_trigger(getattr(args, "trigger", None))
        try:
            if args.scenario_command == "run":
                from repro.backends import BackendError
                from repro.faults import InvariantViolation

                try:
                    if args.record:
                        outcome = record_scenario(
                            specs[0],
                            args.record,
                            check_invariants=args.check_invariants,
                            backend=backend,
                            trigger=trigger,
                            **overrides,
                        )
                    else:
                        outcome = run_scenario(
                            specs[0],
                            check_invariants=args.check_invariants,
                            backend=backend,
                            trigger=trigger,
                            **overrides,
                        )
                    print(render_scenario_report(outcome))
                    if args.check_invariants:
                        checks = sum(
                            entry.result.invariant_checks
                            for entry in outcome.cells
                        )
                        print(
                            f"\ninvariants OK: {checks} checks, 0 violations"
                        )
                    if args.record:
                        print(f"\ntrace recorded to {args.record}")
                except BackendError as error:
                    print(str(error), file=sys.stderr)
                    return 2
                except InvariantViolation as violation:
                    print(f"INVARIANT VIOLATION: {violation}", file=sys.stderr)
                    trace_path = f"{specs[0].name}.violation.trace"
                    entries = violation.write_trace(trace_path)
                    print(
                        f"violation trace ({entries} dispatches) written to "
                        f"{trace_path}; inspect or re-verify with "
                        f"`repro scenario replay {trace_path}`",
                        file=sys.stderr,
                    )
                    return 1
                return 0
            outcomes = [run_scenario(spec, **overrides) for spec in specs]
            print(render_scenario_comparison(outcomes))
            return 0
        except OSError as error:
            print(f"cannot record trace: {error}", file=sys.stderr)
            return 2
        except ValueError as error:
            print(f"invalid scenario parameters: {error}", file=sys.stderr)
            return 2

    if args.scenario_command == "replay":
        try:
            outcome = replay_scenario(args.trace)
        except (OSError, ValueError, KeyError) as error:
            message = error.args[0] if error.args else str(error)
            print(f"replay failed: {message}", file=sys.stderr)
            return 2
        if outcome.result is not None:
            print(render_scenario_report(outcome.result))
        if outcome.matches:
            print(
                f"\nreplay OK: {outcome.scenario} reproduced all "
                f"{outcome.entries} recorded dispatches exactly"
            )
            return 0
        print(
            f"\nreplay MISMATCH for {outcome.scenario}: {outcome.mismatch}",
            file=sys.stderr,
        )
        return 1
    return 2  # pragma: no cover


def _cmd_serve(args) -> int:
    """Run the asyncio serving layer over a seeded scenario workload."""
    import asyncio
    import dataclasses
    import json
    import random

    import repro.api as api
    from repro.backends import BackendError
    from repro.faults import InvariantViolation
    from repro.scenarios import get_scenario
    from repro.serve import drive_workload
    from repro.workload.generator import TransactionFactory

    protocol = _check_protocol(args.protocol)
    backend = _check_backend(args.backend)
    _check_pairing(protocol, backend)
    trigger = _check_trigger(args.trigger)
    try:
        scenario = get_scenario(args.workload)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    if min(args.requests, args.sessions, args.pipeline) <= 0:
        print(
            "--requests/--sessions/--pipeline must be positive",
            file=sys.stderr,
        )
        return 2
    if args.shards is not None and args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2

    workload = scenario.workload
    # Seeded sizing: enough transactions that statements + commits
    # reach the requested request count (the same draw drive_workload
    # replays, so the run stays fully determined by (workload, seed)).
    factory = TransactionFactory(workload, random.Random(args.seed))
    transactions = 0
    planned_requests = 0
    while planned_requests < args.requests:
        planned_requests += len(factory.next_profile()) + 1
        transactions += 1

    admission = (
        api.AdmissionPolicy(max_pending=args.max_pending)
        if args.max_pending
        else None
    )
    try:
        service = api.open_service(
            protocol,
            backend,
            trigger=trigger,
            admission=admission,
            max_sessions=args.sessions,
            max_pipeline=args.pipeline,
            check_invariants=args.check_invariants,
            shards=args.shards,
            shard_route=args.shard_route,
        )
    except (BackendError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2

    async def _serve():
        async with service:
            report = await drive_workload(
                service,
                workload,
                transactions=transactions,
                sessions=args.sessions,
                seed=args.seed,
            )
            final = service.final_check()
        return report, final

    sharding = (
        f", {args.shards} shards ({args.shard_route})"
        if args.shards is not None
        else ""
    )
    print(
        f"serving workload {args.workload!r} via {protocol}"
        f"{' on ' + backend if backend else ''}: "
        f"{transactions} transactions (~{planned_requests} requests), "
        f"{args.sessions} sessions × pipeline {args.pipeline}"
        f"{', trigger ' + trigger if trigger else ''}{sharding}"
    )
    try:
        report, final = asyncio.run(_serve())
    except InvariantViolation as violation:
        print(f"INVARIANT VIOLATION: {violation}", file=sys.stderr)
        return 1
    stats = service.stats()
    rejected = stats["rejected"]
    latency = stats["grant_latency_s"]
    print(
        f"submitted {stats['submitted']}, granted {stats['granted']}, "
        f"rejected {sum(rejected.values())} "
        f"(timeout {rejected.get('timeout', 0)}, "
        f"orphan {rejected.get('orphan', 0)}, shed {rejected.get('shed', 0)})"
    )
    print(
        f"transactions: {report.committed} committed, "
        f"{report.aborted} aborted of {report.transactions}"
    )
    print(
        f"throughput: {stats['grants_per_s']:.0f} grants/s over "
        f"{stats['duration_s']:.3f}s ({stats['steps']} scheduler steps)"
    )
    print(
        "grant latency ms: "
        f"p50 {latency['p50'] * 1e3:.3f}, p99 {latency['p99'] * 1e3:.3f}, "
        f"p99.9 {latency['p99.9'] * 1e3:.3f}, max {latency['max'] * 1e3:.3f}"
    )
    if args.check_invariants:
        summary = ", ".join(
            f"{state}: {count}" for state, count in sorted(final.items())
        )
        print(f"invariants OK: no lost requests ({summary})")
    if args.json:
        payload = {
            "workload": args.workload,
            "protocol": protocol,
            "backend": backend,
            "trigger": trigger,
            "seed": args.seed,
            "sessions": args.sessions,
            "pipeline": args.pipeline,
            "transactions": transactions,
            "requests_target": args.requests,
            "report": dataclasses.asdict(report),
            "stats": stats,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"stats written to {args.json}")
    return 0


def _cmd_demo(protocol: str, backend: Optional[str]) -> int:
    _check_protocol(protocol)
    _check_backend(backend)
    _check_pairing(protocol, backend)
    import repro.api as api
    from repro import (
        Schedule,
        is_conflict_serializable,
        is_strict,
        make_transaction,
    )
    from repro.backends import BackendError

    try:
        scheduler = api.make_scheduler(protocol, backend)
    except BackendError as error:
        print(str(error), file=sys.stderr)
        return 2
    for txn in (
        make_transaction(1, [("r", 10), ("w", 10)], start_id=1),
        make_transaction(2, [("w", 10), ("w", 20)], start_id=100),
        make_transaction(3, [("r", 30)], start_id=200),
    ):
        for request in txn:
            scheduler.submit(request)
    emitted = Schedule()
    step = 0
    while len(scheduler.incoming) or len(scheduler.pending):
        step += 1
        batch = scheduler.step(now=float(step)).qualified
        emitted.extend(batch)
        print(f"step {step}: {' '.join(map(str, batch)) or '(blocked)'}")
    print(f"\nschedule: {emitted}")
    print(f"conflict serializable: {is_conflict_serializable(emitted)}")
    print(f"strict:                {is_strict(emitted)}")
    return 0


def _cmd_analyze(args) -> int:
    """Static analysis: spec/plan verifier + repo determinism lint."""
    import json

    from repro.analysis import RULES, run_analysis

    run_specs = not args.skip_specs
    run_repo = not args.skip_repo
    if not (run_specs or run_repo):
        print("--skip-specs and --skip-repo exclude everything", file=sys.stderr)
        return 2
    report = run_analysis(specs=run_specs, repo=run_repo)

    if report.findings:
        by_rule: Dict[str, list] = {}
        for finding in report.findings:
            by_rule.setdefault(finding.rule, []).append(finding)
        for rule in sorted(by_rule):
            severity, title = RULES[rule]
            print(f"{rule} ({severity}): {title}")
            for finding in by_rule[rule]:
                where = f"  [{finding.location}]" if finding.location else ""
                print(f"  {finding.subject}: {finding.message}{where}")
    if report.matrix:
        supported = sum(
            1 for row in report.matrix.values() for ok in row.values() if ok
        )
        pairs = sum(len(row) for row in report.matrix.values())
        print(
            f"spec × backend matrix: {supported}/{pairs} pairs statically "
            f"predicted supported, all agreeing with the live backends"
            if not any(f.rule == "D100" for f in report.findings)
            else f"spec × backend matrix: {supported}/{pairs} pairs "
            f"predicted supported — WITH DISAGREEMENTS (see D100)"
        )
    errors, warnings = len(report.errors), len(report.warnings)
    print(f"analyze: {errors} error(s), {warnings} warning(s)")

    if args.json:
        payload = report.as_dict()
        payload["strict"] = args.strict
        payload["ok"] = report.ok(strict=args.strict)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.json}")
    return 0 if report.ok(strict=args.strict) else 1


def _cmd_sql(query: str) -> int:
    from repro.bench.declarative_overhead import paper_snapshot
    from repro.core.stores import HistoryStore, PendingStore
    from repro.relalg.sql import SqlError, execute_sql

    incoming, history = paper_snapshot(20)
    pending_store = PendingStore()
    history_store = HistoryStore()
    pending_store.insert_batch(incoming)
    history_store.record_batch(history)
    try:
        relation = execute_sql(
            query,
            {"requests": pending_store.table, "history": history_store.table},
        )
    except SqlError as error:
        print(f"SQL error: {error}", file=sys.stderr)
        return 1
    print("  ".join(c.qualified_name for c in relation.schema))
    for row in relation.rows[:50]:
        print("  ".join(str(v) for v in row))
    if len(relation) > 50:
        print(f"... {len(relation) - 50} more rows")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Declarative Scheduling in Highly Scalable Systems — "
        "reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list experiments and protocols")
    subparsers.add_parser(
        "protocols", help="list registered protocol specs and their backends"
    )
    subparsers.add_parser(
        "backends", help="list registered execution backends"
    )
    run_parser = subparsers.add_parser(
        "run",
        help="run experiments",
        parents=[_protocol_parent(), _backend_parent(), _trigger_parent()],
    )
    run_parser.add_argument("ids", nargs="+", help="experiment ids or 'all'")
    run_parser.add_argument(
        "--quick", action="store_true", help="scaled-down parameters"
    )
    bench_parser = subparsers.add_parser(
        "bench",
        help="drive one protocol × backend pairing",
        parents=[
            _protocol_parent("ss2pl"),
            _backend_parent(),
            _trigger_parent(),
        ],
    )
    bench_parser.add_argument("--clients", type=int, default=100)
    bench_parser.add_argument("--steps", type=int, default=20)
    scenario_parser = subparsers.add_parser(
        "scenario", help="deterministic scenario subsystem"
    )
    scenario_sub = scenario_parser.add_subparsers(
        dest="scenario_command", required=True
    )
    scenario_sub.add_parser("list", help="list registered scenarios")

    def _scenario_overrides(sub) -> None:
        sub.add_argument("--seed", type=int, help="override the spec's seed")
        sub.add_argument(
            "--duration", type=float, help="override virtual duration (s)"
        )
        sub.add_argument(
            "--clients", type=int, help="override the client count"
        )

    scenario_run = scenario_sub.add_parser(
        "run",
        help="run one scenario deterministically",
        parents=[_backend_parent(), _trigger_parent()],
    )
    scenario_run.add_argument("name", help="registered scenario name")
    _scenario_overrides(scenario_run)
    scenario_run.add_argument(
        "--record", metavar="PATH", help="record the dispatch trace to PATH"
    )
    scenario_run.add_argument(
        "--check-invariants",
        action="store_true",
        help="assert scheduler safety invariants after every step "
        "(exit 1 with a replayable trace on any violation)",
    )
    scenario_replay = scenario_sub.add_parser(
        "replay", help="re-run a recorded trace and verify it reproduces"
    )
    scenario_replay.add_argument("trace", help="trace file from `scenario run --record`")
    scenario_compare = scenario_sub.add_parser(
        "compare", help="run several scenarios and compare their cells"
    )
    scenario_compare.add_argument("names", nargs="+", help="scenario names")
    _scenario_overrides(scenario_compare)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the asyncio serving layer over a scenario workload",
        parents=[
            # The gated ss2pl spec, NOT raw ss2pl-listing1: pipelined
            # sessions need program-order gating (see DESIGN.md §6).
            _protocol_parent("ss2pl"),
            _backend_parent(),
            _trigger_parent("hybrid:0.005,16"),
        ],
    )
    serve_parser.add_argument(
        "--workload",
        default="zipf-hotspot",
        help="scenario whose workload spec to serve "
        "(default: zipf-hotspot; see `repro scenario list`)",
    )
    serve_parser.add_argument(
        "--requests", type=int, default=1000,
        help="approximate total requests to drive (default: 1000)",
    )
    serve_parser.add_argument(
        "--sessions", type=int, default=8,
        help="session-pool size / concurrent clients (default: 8)",
    )
    serve_parser.add_argument(
        "--pipeline", type=int, default=8,
        help="per-session in-flight request cap (default: 8)",
    )
    serve_parser.add_argument(
        "--seed", type=int, default=17, help="workload seed (default: 17)"
    )
    serve_parser.add_argument(
        "--max-pending", type=int, default=None,
        help="admission cap: submit blocks (and the scheduler sheds) "
        "beyond this many undispatched requests",
    )
    serve_parser.add_argument(
        "--check-invariants",
        action="store_true",
        help="attach the invariant monitor and assert zero lost "
        "requests at shutdown",
    )
    serve_parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="serve from N hash-partitioned scheduler shards instead "
        "of one (multi-object requests take the --shard-route path)",
    )
    serve_parser.add_argument(
        "--shard-route",
        choices=("two-phase", "home"),
        default="two-phase",
        help="cross-shard routing for multi-object transactions: "
        "two-phase reserve/commit (default, sound) or home-shard "
        "(comparison baseline; unsound for cross-object conflicts)",
    )
    serve_parser.add_argument(
        "--json", metavar="PATH", help="write the run's stats as JSON"
    )

    subparsers.add_parser(
        "demo",
        help="run the quickstart scenario",
        parents=[_protocol_parent("ss2pl"), _backend_parent()],
    )
    sql_parser = subparsers.add_parser(
        "sql", help="run ad-hoc SQL over a demo requests/history instance"
    )
    sql_parser.add_argument("query")
    analyze_parser = subparsers.add_parser(
        "analyze",
        help="static spec/plan verifier + repo determinism lint",
    )
    analyze_parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on warnings too, not just errors (the CI gate)",
    )
    analyze_parser.add_argument(
        "--json", metavar="PATH", help="write the full report as JSON"
    )
    analyze_parser.add_argument(
        "--skip-specs",
        action="store_true",
        help="skip the spec/plan verifier half",
    )
    analyze_parser.add_argument(
        "--skip-repo",
        action="store_true",
        help="skip the repo determinism lint half",
    )

    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "protocols":
            return _cmd_protocols()
        if args.command == "backends":
            return _cmd_backends()
        if args.command == "run":
            return _cmd_run(
                args.ids,
                args.quick,
                RunOptions(
                    protocol=args.protocol,
                    backend=args.backend,
                    trigger=args.trigger,
                ),
            )
        if args.command == "bench":
            return _cmd_bench(
                args.protocol,
                args.backend,
                args.trigger,
                args.clients,
                args.steps,
            )
        if args.command == "scenario":
            return _cmd_scenario(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "demo":
            return _cmd_demo(args.protocol, args.backend)
        if args.command == "sql":
            return _cmd_sql(args.query)
        if args.command == "analyze":
            return _cmd_analyze(args)
    except _UsageError:
        return 2
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
