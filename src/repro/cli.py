"""Command-line interface.

Usage::

    python -m repro list                 # experiments and protocols
    python -m repro run E1 [E2 ...]      # regenerate paper artefacts
    python -m repro run all --quick      # everything, scaled down
    python -m repro demo                 # the quickstart scenario
    python -m repro sql "SELECT ..."     # ad-hoc SQL over demo tables

Every experiment id maps to the corresponding ``repro.bench.run_*``
function; ``--quick`` substitutes scaled-down parameters so the whole
suite finishes in well under a minute.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.bench import (
    run_adaptive_bench,
    run_crossover,
    run_declarative_overhead,
    run_figure2,
    run_incremental_ablation,
    run_language_ablation,
    run_mpl_ablation,
    run_productivity,
    run_scheduler_step_bench,
    render_scheduler_step_report,
    run_sla_bench,
    run_table1,
    run_table2,
    run_trigger_ablation,
)
from repro.protocols.base import PROTOCOL_REGISTRY

#: experiment id -> (description, full-scale runner, quick runner).
EXPERIMENTS: Dict[str, tuple[str, Callable[[], str], Callable[[], str]]] = {
    "E1": (
        "Table 1: related-approach feature matrix",
        run_table1,
        run_table1,
    ),
    "E2": (
        "Table 2: request/history/rte schema",
        run_table2,
        run_table2,
    ),
    "E3": (
        "Figure 2: MU/SU ratio vs clients (native scheduler)",
        lambda: run_figure2(duration=240.0),
        lambda: run_figure2(client_counts=(1, 300, 500), duration=240.0),
    ),
    "E5": (
        "Section 4.3.2: declarative scheduling overhead",
        lambda: run_declarative_overhead(include_compiled_comparison=True),
        lambda: run_declarative_overhead(
            client_counts=(300, 500),
            repetitions=1,
            include_compiled_comparison=True,
        ),
    ),
    "E6": (
        "Section 4.4: native-vs-declarative crossover",
        lambda: run_crossover(),
        lambda: run_crossover(client_counts=(300, 500), duration=240.0),
    ),
    "E7": (
        "Ablation: trigger policies",
        lambda: run_trigger_ablation(),
        lambda: run_trigger_ablation(clients=20, duration=2.0),
    ),
    "E8": (
        "Ablation: declarative language backends",
        lambda: run_language_ablation(),
        lambda: run_language_ablation(client_counts=(300,), repetitions=1),
    ),
    "E9": (
        "Productivity: declarative vs imperative spec size",
        run_productivity,
        run_productivity,
    ),
    "E10": (
        "SLA tiers + adaptive consistency",
        lambda: run_sla_bench() + "\n\n" + run_adaptive_bench(),
        lambda: run_sla_bench(clients=20, duration=2.0)
        + "\n\n"
        + run_adaptive_bench(clients=30, duration=2.0),
    ),
    "E11": (
        "Ablation: incremental view maintenance",
        lambda: run_incremental_ablation(),
        lambda: run_incremental_ablation(clients=80, steps=10),
    ),
    "E12": (
        "Ablation: external MPL admission control",
        lambda: run_mpl_ablation(),
        lambda: run_mpl_ablation(duration=60.0, caps=(None, 300)),
    ),
    "E13": (
        "Ablation: interpreted pipeline vs compiled query plan",
        lambda: render_scheduler_step_report(run_scheduler_step_bench()),
        lambda: render_scheduler_step_report(
            run_scheduler_step_bench(client_counts=(100, 300), steps=6)
        ),
    ),
}


def _experiment_order(key: str) -> int:
    return int(key.lstrip("E"))


def _cmd_list() -> int:
    print("experiments:")
    for key in sorted(EXPERIMENTS, key=_experiment_order):
        description = EXPERIMENTS[key][0]
        print(f"  {key:4s} {description}")
    print("\nregistered protocols:")
    for name in sorted(PROTOCOL_REGISTRY):
        protocol = PROTOCOL_REGISTRY[name]()
        print(f"  {name:20s} {protocol.description}")
    return 0


def _cmd_run(ids: Sequence[str], quick: bool) -> int:
    wanted = list(ids)
    if len(wanted) == 1 and wanted[0].lower() == "all":
        wanted = sorted(EXPERIMENTS, key=_experiment_order)
    unknown = [i for i in wanted if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    for experiment_id in wanted:
        description, full, fast = EXPERIMENTS[experiment_id]
        print("=" * 78)
        print(f"{experiment_id} — {description}")
        print("=" * 78)
        runner = fast if quick else full
        print(runner())
        print()
    return 0


def _cmd_demo() -> int:
    from repro import (
        DeclarativeScheduler,
        Schedule,
        SS2PLRelalgProtocol,
        is_conflict_serializable,
        is_strict,
        make_transaction,
    )

    scheduler = DeclarativeScheduler(SS2PLRelalgProtocol())
    for txn in (
        make_transaction(1, [("r", 10), ("w", 10)], start_id=1),
        make_transaction(2, [("w", 10), ("w", 20)], start_id=100),
        make_transaction(3, [("r", 30)], start_id=200),
    ):
        for request in txn:
            scheduler.submit(request)
    emitted = Schedule()
    step = 0
    while len(scheduler.incoming) or len(scheduler.pending):
        step += 1
        batch = scheduler.step(now=float(step)).qualified
        emitted.extend(batch)
        print(f"step {step}: {' '.join(map(str, batch)) or '(blocked)'}")
    print(f"\nschedule: {emitted}")
    print(f"conflict serializable: {is_conflict_serializable(emitted)}")
    print(f"strict:                {is_strict(emitted)}")
    return 0


def _cmd_sql(query: str) -> int:
    from repro.bench.declarative_overhead import paper_snapshot
    from repro.core.stores import HistoryStore, PendingStore
    from repro.relalg.sql import SqlError, execute_sql

    incoming, history = paper_snapshot(20)
    pending_store = PendingStore()
    history_store = HistoryStore()
    pending_store.insert_batch(incoming)
    history_store.record_batch(history)
    try:
        relation = execute_sql(
            query,
            {"requests": pending_store.table, "history": history_store.table},
        )
    except SqlError as error:
        print(f"SQL error: {error}", file=sys.stderr)
        return 1
    print("  ".join(c.qualified_name for c in relation.schema))
    for row in relation.rows[:50]:
        print("  ".join(str(v) for v in row))
    if len(relation) > 50:
        print(f"... {len(relation) - 50} more rows")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Declarative Scheduling in Highly Scalable Systems — "
        "reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list experiments and protocols")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument("ids", nargs="+", help="experiment ids or 'all'")
    run_parser.add_argument(
        "--quick", action="store_true", help="scaled-down parameters"
    )
    subparsers.add_parser("demo", help="run the quickstart scenario")
    sql_parser = subparsers.add_parser(
        "sql", help="run ad-hoc SQL over a demo requests/history instance"
    )
    sql_parser.add_argument("query")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.ids, args.quick)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "sql":
        return _cmd_sql(args.query)
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
