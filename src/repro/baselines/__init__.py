"""Imperative baselines and the related-approach catalogue (Table 1).

Two kinds of comparators live here:

* :mod:`repro.baselines.imperative` — a hand-coded, lock-table-based
  SS2PL middleware scheduler.  It computes the same qualified sets as
  the declarative formulations (asserted by tests) but is written the
  way the paper says the state of the art writes schedulers: imperative
  one-request-at-a-time code.  It doubles as the imperative arm of the
  productivity comparison (E9) and as a performance comparator (E8).
* :mod:`repro.baselines.related` — executable sketches of the seven
  related approaches of the paper's Table 1 (EQMS, Ganymed, WLMS,
  C-JDBC, GP, WebQoS, QShuffler), each exposing the scheduling policy
  that defines it plus its capability vector.  Table 1 is regenerated
  from these vectors (bench E1) rather than hard-coded prose.
"""

from repro.baselines.imperative import ImperativeSS2PLScheduler
from repro.baselines.related import (
    RELATED_APPROACHES,
    RelatedApproach,
    table1_rows,
)

__all__ = [
    "ImperativeSS2PLScheduler",
    "RELATED_APPROACHES",
    "RelatedApproach",
    "table1_rows",
]
