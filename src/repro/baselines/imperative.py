"""Hand-coded SS2PL middleware scheduler (the imperative baseline).

This is what the paper argues *against* writing: a one-request-at-a-time
scheduler with an explicit lock table, manual upgrade handling and
bookkeeping.  It implements exactly the semantics of Listing 1 plus the
intra-batch TA-order rule, so its output is comparable request-for-
request with the declarative backends — and its line count is the
imperative side of the productivity study (E9).
"""

from __future__ import annotations

from repro.model.request import Operation, Request
from repro.protocols.base import (
    Capabilities,
    Protocol,
    ProtocolDecision,
)
from repro.relalg.table import Table


class ImperativeSS2PLScheduler(Protocol):
    """Set-at-a-time facade over request-at-a-time imperative logic.

    For each batch it rebuilds its lock table from the history relation
    (write lock per uncommitted write, read lock per uncommitted read
    not upgraded by a write), then walks the pending requests in TA
    order applying classical grant rules.
    """

    name = "ss2pl-imperative"
    description = "hand-coded lock-table SS2PL (imperative baseline)"
    capabilities = Capabilities(performance=True, high_scalability=True)
    declarative_source = None  # imperative by definition

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        read_locks, write_locks = self._locks_from_history(history)
        decision = ProtocolDecision()

        # Walk pending requests in (ta, intrata) order: the same
        # tie-breaking Listing 1's "r2.ta > r1.ta" rule implies.
        id_pos = requests.schema.resolve("id")
        ta_pos = requests.schema.resolve("ta")
        intrata_pos = requests.schema.resolve("intrata")
        op_pos = requests.schema.resolve("operation")
        obj_pos = requests.schema.resolve("object")
        rows = sorted(
            requests.rows, key=lambda r: (r[ta_pos], r[intrata_pos])
        )

        # Locks granted to earlier pending requests within this batch.
        batch_read: dict[int, set[int]] = {}
        batch_write: dict[int, set[int]] = {}

        for row in rows:
            request = Request.from_row(
                (row[id_pos], row[ta_pos], row[intrata_pos], row[op_pos], row[obj_pos])
            )
            if not request.operation.is_data_access:
                decision.qualified.append(request)
                continue
            obj, ta = request.obj, request.ta
            holders_w = write_locks.get(obj, set()) | batch_write.get(obj, set())
            holders_r = read_locks.get(obj, set()) | batch_read.get(obj, set())
            if request.operation is Operation.READ:
                granted = not (holders_w - {ta})
                reason = "write lock held"
                batch_read.setdefault(obj, set()).add(ta)
            else:
                granted = not ((holders_w | holders_r) - {ta})
                reason = "conflicting lock held"
                batch_write.setdefault(obj, set()).add(ta)
            # NOTE: the claim is registered whether or not the request is
            # granted — Listing 1's intra-batch rule denies against *all*
            # earlier-TA pending requests, including themselves-denied
            # ones (its OpsOnSameObjAsPriorSelectOps joins the raw
            # requests table, not the qualified set).
            if granted:
                decision.qualified.append(request)
            else:
                decision.denials[request.id] = reason

        decision.qualified.sort(key=lambda r: r.id)
        return decision

    @staticmethod
    def _locks_from_history(history: Table) -> tuple[dict, dict]:
        ta_pos = history.schema.resolve("ta")
        op_pos = history.schema.resolve("operation")
        obj_pos = history.schema.resolve("object")

        finished: set[int] = set()
        for row in history.rows:
            if row[op_pos] in ("c", "a"):
                finished.add(row[ta_pos])

        read_locks: dict[int, set[int]] = {}
        write_locks: dict[int, set[int]] = {}
        for row in history.rows:
            ta = row[ta_pos]
            if ta in finished:
                continue
            if row[op_pos] == "w":
                write_locks.setdefault(row[obj_pos], set()).add(ta)
        for row in history.rows:
            ta = row[ta_pos]
            if ta in finished or row[op_pos] != "r":
                continue
            obj = row[obj_pos]
            if ta in write_locks.get(obj, set()):
                continue  # upgraded: the write lock subsumes the read
            read_locks.setdefault(obj, set()).add(ta)
        return read_locks, write_locks
