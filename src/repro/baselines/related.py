"""Executable sketches of the related approaches in the paper's Table 1.

Each entry implements the *defining* scheduling/admission idea of the
cited system as a small policy over our middleware primitives, declares
the capability vector the paper assigns it, and cites the paper's
characterization.  Table 1 (bench E1) is regenerated from these vectors;
the policies themselves serve as running comparators in the SLA bench.

The policies operate on a simple shared interface: given the list of
queued requests (with SLA attributes) and a capacity for this dispatch
round, return the requests to send, in order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.model.request import Request
from repro.protocols.base import Capabilities


@dataclass(frozen=True)
class RelatedApproach:
    """One row of Table 1: a named approach with its capability vector
    and an executable dispatch policy."""

    name: str
    citation: str
    capabilities: Capabilities
    #: (queued requests, capacity) -> dispatched requests (ordered).
    policy: Callable[[Sequence[Request], int], list[Request]]
    summary: str = ""


# -- policies -----------------------------------------------------------------


def _fifo(queue: Sequence[Request], capacity: int) -> list[Request]:
    return list(queue)[:capacity]


def _eqms_policy(queue: Sequence[Request], capacity: int) -> list[Request]:
    """EQMS (Schroeder et al. [20][21]): external queue + MPL cap +
    priority classes.  Dispatch highest-priority first, never exceeding
    the (externally tuned) MPL — here the capacity stands for the MPL."""
    ordered = sorted(queue, key=lambda r: (-r.attrs.priority, r.id))
    return ordered[:capacity]


def _ganymed_policy(queue: Sequence[Request], capacity: int) -> list[Request]:
    """Ganymed (Plattner/Alonso [19]): separate update from read-only
    work — updates go to the master (dispatch first, serialized),
    read-only transactions scale out over replicas (fill the rest)."""
    updates = [r for r in queue if r.is_write]
    reads = [r for r in queue if not r.is_write]
    return (updates + reads)[:capacity]


def _wlms_policy(queue: Sequence[Request], capacity: int) -> list[Request]:
    """WLMS (Krompass et al. [16]): classify queries and penalize
    problem queries depending on SLA conformance.  Long/expensive work
    (here: writes, as the costlier class) is penalized when the queue is
    congested."""
    congested = len(queue) > capacity
    def key(r: Request):
        penalty = 1 if (congested and r.is_write) else 0
        return (penalty, -r.attrs.priority, r.id)
    return sorted(queue, key=key)[:capacity]


def _cjdbc_policy(queue: Sequence[Request], capacity: int) -> list[Request]:
    """C-JDBC (Cecchet et al. [4]): RAIDb clustering — balance requests
    round-robin across backends for availability/performance; no
    request differentiation.  Round-robin here = plain FIFO dispatch."""
    return _fifo(queue, capacity)


def _gatekeeper_policy(queue: Sequence[Request], capacity: int) -> list[Request]:
    """Gatekeeper proxy (Elnikety et al. [7]): admission control — under
    overload, *admit nothing new beyond capacity* and shed the excess
    (we model shedding as leaving it queued), SJF-style ordering for
    admitted requests."""
    ordered = sorted(queue, key=lambda r: (0 if not r.is_write else 1, r.id))
    return ordered[:capacity]


def _webqos_policy(queue: Sequence[Request], capacity: int) -> list[Request]:
    """WebQoS (Bhatti/Friedrich [2]): tiered services — premium requests
    are admitted preferentially; basic requests are dropped first under
    overload (here: left queued)."""
    ordered = sorted(queue, key=lambda r: (-r.attrs.priority, r.id))
    return ordered[:capacity]


def _qshuffler_policy(queue: Sequence[Request], capacity: int) -> list[Request]:
    """QShuffler (Ahmad et al. [1]): order a batch to minimize total
    completion time by exploiting query interactions — approximated by
    grouping requests touching the same object together (shared work)."""
    ordered = sorted(queue, key=lambda r: (r.obj, r.id))
    return ordered[:capacity]


# -- the Table 1 catalogue -------------------------------------------------------

RELATED_APPROACHES: tuple[RelatedApproach, ...] = (
    RelatedApproach(
        name="EQMS",
        citation="Schroeder et al., ICDE 2006 [20][21]",
        capabilities=Capabilities(performance=True, qos=True),
        policy=_eqms_policy,
        summary="external queue management + MPL tuning + prioritization",
    ),
    RelatedApproach(
        name="Ganymed",
        citation="Plattner & Alonso, Middleware 2004 [19]",
        capabilities=Capabilities(performance=True, high_scalability=True),
        policy=_ganymed_policy,
        summary="replication middleware separating updates from reads",
    ),
    RelatedApproach(
        name="WLMS",
        citation="Krompass et al., VLDB 2007 [16]",
        capabilities=Capabilities(performance=True, qos=True),
        policy=_wlms_policy,
        summary="SLO-aware workload management, problem-query penalties",
    ),
    RelatedApproach(
        name="C-JDBC",
        citation="Cecchet et al., USENIX ATEC 2004 [4]",
        capabilities=Capabilities(performance=True, high_scalability=True),
        policy=_cjdbc_policy,
        summary="RAIDb database clustering behind a single view",
    ),
    RelatedApproach(
        name="GP",
        citation="Elnikety et al., WWW 2004 [7]",
        capabilities=Capabilities(performance=True),
        policy=_gatekeeper_policy,
        summary="gatekeeper proxy: admission control + scheduling",
    ),
    RelatedApproach(
        name="WebQoS",
        citation="Bhatti & Friedrich, IEEE Network 1999 [2]",
        capabilities=Capabilities(performance=True, qos=True, flexible=True),
        policy=_webqos_policy,
        summary="tiered web server QoS with policy-based scheduling",
    ),
    RelatedApproach(
        name="QShuffler",
        citation="Ahmad et al., CIKM 2008 [1]",
        capabilities=Capabilities(performance=True),
        policy=_qshuffler_policy,
        summary="batch query ordering exploiting query interactions",
    ),
)

#: The paper's published Table 1 values, for the bench's paper-vs-
#: measured check (P, QoS, D, F, HS).
PAPER_TABLE1 = {
    "EQMS": ("+", "+", "-", "-", "-"),
    "Ganymed": ("+", "-", "-", "-", "+"),
    "WLMS": ("+", "+", "-", "-", "-"),
    "C-JDBC": ("+", "-", "-", "-", "+"),
    "GP": ("+", "-", "-", "-", "-"),
    "WebQoS": ("+", "+", "-", "+", "-"),
    "QShuffler": ("+", "-", "-", "-", "-"),
}


def table1_rows(include_ours: bool = True) -> list[tuple[str, str, str, str, str, str]]:
    """Regenerate Table 1 from the implemented capability vectors.

    Returns rows of (Approach, P, QoS, D, F, HS); with ``include_ours``
    a final row for this system's declarative scheduler is appended
    (the paper's implicit last row: all plus)."""
    rows = [
        (approach.name, *approach.capabilities.as_row())
        for approach in RELATED_APPROACHES
    ]
    if include_ours:
        from repro.protocols.legacy import SS2PLRelalgProtocol

        ours = SS2PLRelalgProtocol().capabilities
        rows.append(("Declarative scheduler (this work)", *ours.as_row()))
    return rows
