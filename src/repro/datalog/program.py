"""Program-level validation: safety and stratification.

*Safety*: every variable appearing in a rule head, a negated literal or a
comparison must also appear in some positive body literal — otherwise the
rule would denote an infinite relation.

*Stratification*: negation and aggregation must not occur inside a
recursive cycle.  We build the predicate dependency graph, mark edges
through ``not`` (and through aggregate heads) as negative, reject
programs with a negative edge inside a strongly connected component, and
otherwise emit strata in evaluation order.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx

from repro.datalog.ast import Aggregate, Atom, Comparison, Literal, Rule, Var


class SafetyError(Exception):
    """A rule uses a variable not bound by any positive literal."""


class StratificationError(Exception):
    """Negation/aggregation through recursion — no stratification exists."""


def check_rule_safety(rule: Rule) -> None:
    bound: set[Var] = set()
    for literal in rule.positive_literals:
        bound |= literal.variables
    head_vars = {
        t for t in rule.head.terms if isinstance(t, Var) and not t.is_anonymous
    }
    head_vars |= {
        agg.var for agg in rule.head.aggregates if not agg.var.is_anonymous
    }
    unbound_head = head_vars - bound
    if unbound_head:
        raise SafetyError(
            f"head variables {sorted(v.name for v in unbound_head)} of rule "
            f"{rule} are not bound by any positive body literal"
        )
    for literal in rule.negative_literals:
        unbound = literal.variables - bound
        if unbound:
            raise SafetyError(
                f"negated literal {literal} in rule {rule} uses unbound "
                f"variables {sorted(v.name for v in unbound)}"
            )
    for comparison in rule.comparisons:
        unbound = comparison.variables - bound
        if unbound:
            raise SafetyError(
                f"comparison {comparison} in rule {rule} uses unbound "
                f"variables {sorted(v.name for v in unbound)}"
            )
    # Aggregates may only appear in heads; Atom construction in bodies
    # goes through term() which cannot produce Aggregate, but programs
    # can also be built programmatically — check defensively.
    for literal in rule.positive_literals + rule.negative_literals:
        if any(isinstance(t, Aggregate) for t in literal.atom.terms):
            raise SafetyError(f"aggregate term in body literal {literal}")


class Program:
    """A validated, stratified Datalog program.

    >>> p = Program.parse('''
    ...     finished(Ta) :- history(_, Ta, _, "c", _).
    ...     active(Ta)   :- history(_, Ta, _, _, _), not finished(Ta).
    ... ''')
    >>> [sorted(s) for s in p.strata]
    [['finished'], ['active']]
    """

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)
        for rule in self.rules:
            check_rule_safety(rule)
        self.idb: set[str] = {rule.head.pred for rule in self.rules}
        self.strata: list[set[str]] = self._stratify()

    @classmethod
    def parse(cls, source: str) -> "Program":
        from repro.datalog.parser import parse_program

        return cls(parse_program(source))

    def rules_for(self, preds: Iterable[str]) -> list[Rule]:
        wanted = set(preds)
        return [rule for rule in self.rules if rule.head.pred in wanted]

    @property
    def edb_predicates(self) -> set[str]:
        """Predicates referenced in bodies but never defined by a rule —
        these must be supplied as extensional facts."""
        referenced: set[str] = set()
        for rule in self.rules:
            for item in rule.body:
                if isinstance(item, Literal):
                    referenced.add(item.atom.pred)
        return referenced - self.idb

    def _stratify(self) -> list[set[str]]:
        graph = nx.DiGraph()
        graph.add_nodes_from(self.idb)
        negative_edges: set[tuple[str, str]] = set()
        for rule in self.rules:
            head = rule.head.pred
            # A rule with head aggregates depends on its entire body as if
            # negatively: the aggregate needs the body relation complete.
            aggregating = rule.has_aggregates
            for item in rule.body:
                if not isinstance(item, Literal):
                    continue
                dep = item.atom.pred
                if dep not in self.idb:
                    continue
                graph.add_edge(dep, head)
                if item.negated or aggregating:
                    negative_edges.add((dep, head))
        # Reject negative edges within a strongly connected component.
        for component in nx.strongly_connected_components(graph):
            if len(component) == 1:
                node = next(iter(component))
                if (node, node) in negative_edges:
                    raise StratificationError(
                        f"predicate {node!r} depends negatively on itself"
                    )
                continue
            for dep, head in negative_edges:
                if dep in component and head in component:
                    raise StratificationError(
                        f"negation/aggregation inside recursive component "
                        f"{sorted(component)} (edge {dep} -> {head})"
                    )
        # Build the condensation and emit strata in topological order,
        # greedily merging components connected only by positive edges.
        condensation = nx.condensation(graph)
        order = list(nx.topological_sort(condensation))
        stratum_of: dict[str, int] = {}
        current = 0
        for comp_id in order:
            members = condensation.nodes[comp_id]["members"]
            level = 0
            for member in members:
                for dep, __head in (
                    (d, h) for d, h in graph.in_edges(member)
                ):
                    if dep in stratum_of:
                        dep_level = stratum_of[dep]
                        negative = (dep, member) in negative_edges
                        required = dep_level + 1 if negative else dep_level
                        level = max(level, required)
            for member in members:
                stratum_of[member] = level
            current = max(current, level)
        strata: list[set[str]] = [set() for __ in range(current + 1)]
        for pred, level in stratum_of.items():
            strata[level].add(pred)
        return [s for s in strata if s]

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)
