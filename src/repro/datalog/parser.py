"""Lexer and recursive-descent parser for Datalog programs.

Grammar (conventional Datalog with comparisons and head aggregates)::

    program     := (rule)*
    rule        := atom ( ":-" body )? "."
    body        := body_item ("," body_item)*
    body_item   := "not" atom | atom | comparison
    comparison  := term cmp_op term
    atom        := IDENT "(" head_term ("," head_term)* ")"
    head_term   := aggregate | term            (aggregates head-only; the
    aggregate   := ("count"|"sum"|"min"|"max") "(" var ")"    program
                                               validator rejects body use)
    term        := VAR | NUMBER | STRING | IDENT (lowercase ident = symbol
                                                  constant)

Comments run from ``%`` or ``#`` to end of line.  Variables start with an
uppercase letter or ``_``.
"""

from __future__ import annotations

import re
from typing import Iterator, Optional

from repro.datalog.ast import (
    Aggregate,
    Atom,
    COMPARISON_OPS,
    Comparison,
    Const,
    Literal,
    Rule,
    Var,
)

AGGREGATE_FNS = ("count", "sum", "min", "max")


class DatalogSyntaxError(Exception):
    """Raised with line/column context on malformed input."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


_TOKEN_SPEC = [
    ("WS", r"[ \t\r]+"),
    ("NEWLINE", r"\n"),
    ("COMMENT", r"[%#][^\n]*"),
    ("NUMBER", r"-?\d+\.\d+|-?\d+"),
    ("STRING", r'"(?:[^"\\]|\\.)*"'),
    ("IMPLIES", r":-"),
    ("CMP", r"!=|<=|>=|=|<|>"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("DOT", r"\."),
    ("IDENT", r"[a-z][A-Za-z0-9_]*"),
    ("VAR", r"[A-Z_][A-Za-z0-9_]*"),
]

_MASTER_RE = re.compile("|".join(f"(?P<{name}>{rx})" for name, rx in _TOKEN_SPEC))


class Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source: str) -> Iterator[Token]:
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _MASTER_RE.match(source, pos)
        if match is None:
            raise DatalogSyntaxError(
                f"unexpected character {source[pos]!r}", line, pos - line_start + 1
            )
        kind = match.lastgroup or ""
        text = match.group()
        if kind == "NEWLINE":
            line += 1
            line_start = match.end()
        elif kind not in ("WS", "COMMENT"):
            yield Token(kind, text, line, pos - line_start + 1)
        pos = match.end()
    yield Token("EOF", "", line, pos - line_start + 1)


class _Parser:
    def __init__(self, source: str) -> None:
        self._tokens = list(tokenize(source))
        self._pos = 0

    # -- token utilities ---------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        self._pos += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._current
        if token.kind != kind:
            raise DatalogSyntaxError(
                f"expected {kind}, found {token.kind} ({token.text!r})",
                token.line,
                token.column,
            )
        return self._advance()

    def _accept(self, kind: str) -> Optional[Token]:
        if self._current.kind == kind:
            return self._advance()
        return None

    # -- grammar -------------------------------------------------------------

    def program(self) -> list[Rule]:
        rules: list[Rule] = []
        while self._current.kind != "EOF":
            rules.append(self.rule())
        return rules

    def rule(self) -> Rule:
        head = self.atom(allow_aggregates=True)
        body: list = []
        if self._accept("IMPLIES"):
            body.append(self.body_item())
            while self._accept("COMMA"):
                body.append(self.body_item())
        self._expect("DOT")
        return Rule(head, body)

    def body_item(self):
        token = self._current
        if token.kind == "IDENT" and token.text == "not":
            self._advance()
            return Literal(self.atom(), negated=True)
        # Lookahead: IDENT "(" is an atom; otherwise it may be the left
        # term of a comparison (symbol constant) or a plain atom misuse.
        if token.kind == "IDENT" and self._peek_kind(1) == "LPAREN":
            return Literal(self.atom())
        # Comparison: term CMP term.
        left = self.term()
        cmp_token = self._expect("CMP")
        right = self.term()
        if cmp_token.text not in COMPARISON_OPS:
            raise DatalogSyntaxError(
                f"unknown comparison {cmp_token.text!r}",
                cmp_token.line,
                cmp_token.column,
            )
        return Comparison(cmp_token.text, left, right)

    def _peek_kind(self, offset: int) -> str:
        index = self._pos + offset
        if index < len(self._tokens):
            return self._tokens[index].kind
        return "EOF"

    def atom(self, allow_aggregates: bool = False) -> Atom:
        name = self._expect("IDENT")
        self._expect("LPAREN")
        terms: list = [self.head_term() if allow_aggregates else self.term()]
        while self._accept("COMMA"):
            terms.append(self.head_term() if allow_aggregates else self.term())
        self._expect("RPAREN")
        return Atom(name.text, terms)

    def head_term(self):
        token = self._current
        if (
            token.kind == "IDENT"
            and token.text in AGGREGATE_FNS
            and self._peek_kind(1) == "LPAREN"
        ):
            self._advance()
            self._expect("LPAREN")
            var_token = self._expect("VAR")
            self._expect("RPAREN")
            return Aggregate(token.text, Var(var_token.text))
        return self.term()

    def term(self):
        token = self._advance()
        if token.kind == "VAR":
            return Var(token.text)
        if token.kind == "NUMBER":
            value = float(token.text) if "." in token.text else int(token.text)
            return Const(value)
        if token.kind == "STRING":
            raw = token.text[1:-1]
            return Const(raw.replace('\\"', '"').replace("\\\\", "\\"))
        if token.kind == "IDENT":
            # Lowercase identifier used as a term is a symbol constant
            # (e.g. operation codes could be written unquoted).
            return Const(token.text)
        raise DatalogSyntaxError(
            f"expected a term, found {token.kind} ({token.text!r})",
            token.line,
            token.column,
        )


def parse_program(source: str) -> list[Rule]:
    """Parse a whole program (sequence of rules/facts)."""
    return _Parser(source).program()


def parse_rule(source: str) -> Rule:
    """Parse exactly one rule."""
    parser = _Parser(source)
    rule = parser.rule()
    trailing = parser._current
    if trailing.kind != "EOF":
        raise DatalogSyntaxError(
            f"unexpected trailing input {trailing.text!r}",
            trailing.line,
            trailing.column,
        )
    return rule
