"""A from-scratch Datalog engine.

The paper's future-work section (Section 5) calls for "a suitable
declarative scheduler language which is more succinct than SQL"; its
research objective 4 is to "design a specialized language and system".
Datalog is the natural candidate (rules over relations, recursion,
stratified negation) and the calibration hint for this reproduction
points at it explicitly.  This package implements:

* the term/atom/rule AST (:mod:`repro.datalog.ast`),
* a lexer and recursive-descent parser for conventional Datalog syntax
  (:mod:`repro.datalog.parser`) — ``head(X) :- body(X, Y), not bad(Y),
  X > Y.`` — with strings, numbers, comments, comparisons and head
  aggregates,
* safety validation and stratification for negation/aggregation
  (:mod:`repro.datalog.program`), and
* semi-naive bottom-up evaluation (:mod:`repro.datalog.engine`).

Scheduling protocols written in Datalog live in
:mod:`repro.protocols`; they evaluate against extensional relations
(``requests``, ``history``) loaded from the scheduler's stores.
"""

from repro.datalog.ast import Aggregate, Atom, Comparison, Const, Literal, Rule, Var
from repro.datalog.parser import parse_program, parse_rule, DatalogSyntaxError
from repro.datalog.program import Program, SafetyError, StratificationError
from repro.datalog.engine import Database, evaluate
from repro.datalog.explain import Derivation, ExplainError, explain

__all__ = [
    "Aggregate",
    "Atom",
    "Comparison",
    "Const",
    "Literal",
    "Rule",
    "Var",
    "parse_program",
    "parse_rule",
    "DatalogSyntaxError",
    "Program",
    "SafetyError",
    "StratificationError",
    "Database",
    "evaluate",
    "Derivation",
    "ExplainError",
    "explain",
]
