"""Datalog abstract syntax: terms, atoms, literals, rules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union


@dataclass(frozen=True, slots=True)
class Var:
    """A logic variable.  The anonymous variable ``_`` unifies with
    anything and never binds (each occurrence is independent)."""

    name: str

    @property
    def is_anonymous(self) -> bool:
        return self.name == "_"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const:
    """A constant term (int, float, str or bool)."""

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Aggregate:
    """A head aggregate like ``count(X)`` / ``min(X)``.

    Only allowed in rule heads; the remaining head variables act as the
    GROUP BY key.
    """

    fn: str  # count | sum | min | max
    var: Var

    def __str__(self) -> str:
        return f"{self.fn}({self.var})"


Term = Union[Var, Const]
HeadTerm = Union[Var, Const, Aggregate]


@dataclass(frozen=True, slots=True)
class Atom:
    """``pred(t1, ..., tn)``.  Head atoms may carry aggregates."""

    pred: str
    terms: tuple

    def __init__(self, pred: str, terms: Sequence) -> None:
        object.__setattr__(self, "pred", pred)
        object.__setattr__(self, "terms", tuple(terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    @property
    def variables(self) -> set[Var]:
        return {
            t for t in self.terms if isinstance(t, Var) and not t.is_anonymous
        }

    @property
    def aggregates(self) -> list[Aggregate]:
        return [t for t in self.terms if isinstance(t, Aggregate)]

    def __str__(self) -> str:
        return f"{self.pred}({', '.join(str(t) for t in self.terms)})"


@dataclass(frozen=True, slots=True)
class Literal:
    """A possibly-negated body atom."""

    atom: Atom
    negated: bool = False

    @property
    def variables(self) -> set[Var]:
        return self.atom.variables

    def __str__(self) -> str:
        return f"not {self.atom}" if self.negated else str(self.atom)


#: Comparison operators usable in rule bodies.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True, slots=True)
class Comparison:
    """An infix comparison between two terms, e.g. ``X > Y`` or
    ``Op = "w"``.  Both sides must be bound by positive literals (or be
    constants) by the time the comparison is checked."""

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    @property
    def variables(self) -> set[Var]:
        out = set()
        for side in (self.left, self.right):
            if isinstance(side, Var) and not side.is_anonymous:
                out.add(side)
        return out

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


BodyItem = Union[Literal, Comparison]


@dataclass(frozen=True, slots=True)
class Rule:
    """``head :- body.``  A rule with an empty body is a fact."""

    head: Atom
    body: tuple

    def __init__(self, head: Atom, body: Sequence = ()) -> None:
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))

    @property
    def is_fact(self) -> bool:
        return not self.body

    @property
    def positive_literals(self) -> list[Literal]:
        return [
            item
            for item in self.body
            if isinstance(item, Literal) and not item.negated
        ]

    @property
    def negative_literals(self) -> list[Literal]:
        return [
            item for item in self.body if isinstance(item, Literal) and item.negated
        ]

    @property
    def comparisons(self) -> list[Comparison]:
        return [item for item in self.body if isinstance(item, Comparison)]

    @property
    def has_aggregates(self) -> bool:
        return bool(self.head.aggregates)

    def __str__(self) -> str:
        if self.is_fact:
            return f"{self.head}."
        body = ", ".join(str(item) for item in self.body)
        return f"{self.head} :- {body}."
