"""Semi-naive bottom-up evaluation of stratified Datalog programs.

The evaluator processes one stratum at a time.  Within a stratum,
non-recursive derivations seed the relation and the semi-naive delta
loop adds tuples until fixpoint; negated literals and aggregates only
ever consult strata already complete, which stratification guarantees.

Rule bodies are evaluated by a greedy binder: at each step the next body
item whose variables are ready is applied — positive literals extend the
binding set (via per-predicate hash indexes on the bound positions),
comparisons and negations filter it.  Safety validation guarantees this
always terminates with every item applied.
"""

from __future__ import annotations

import operator
from typing import Iterable, Iterator, Optional, Sequence

from repro.datalog.ast import (
    Aggregate,
    Atom,
    Comparison,
    Const,
    Literal,
    Rule,
    Var,
)
from repro.datalog.program import Program

_CMP_FUNCS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

Binding = dict[Var, object]


class Database:
    """Extensional + derived fact storage: predicate -> set of tuples.

    Facts are plain Python tuples; predicates are namespaced only by
    name.  Hash indexes over arbitrary position subsets are built lazily
    and invalidated on mutation.
    """

    def __init__(self) -> None:
        self._facts: dict[str, set[tuple]] = {}
        self._indexes: dict[tuple[str, tuple[int, ...]], dict] = {}
        self._versions: dict[str, int] = {}

    def add_fact(self, pred: str, fact: Sequence) -> bool:
        """Insert one fact; returns True if it was new."""
        store = self._facts.setdefault(pred, set())
        tup = tuple(fact)
        if tup in store:
            return False
        store.add(tup)
        self._versions[pred] = self._versions.get(pred, 0) + 1
        return True

    def add_facts(self, pred: str, facts: Iterable[Sequence]) -> int:
        added = 0
        for fact in facts:
            if self.add_fact(pred, fact):
                added += 1
        return added

    def facts(self, pred: str) -> set[tuple]:
        return self._facts.get(pred, set())

    def predicates(self) -> list[str]:
        return sorted(self._facts)

    def remove_predicate(self, pred: str) -> None:
        self._facts.pop(pred, None)
        self._versions[pred] = self._versions.get(pred, 0) + 1

    def copy(self) -> "Database":
        clone = Database()
        for pred, facts in self._facts.items():
            clone._facts[pred] = set(facts)
        return clone

    def index(self, pred: str, positions: tuple[int, ...]) -> dict:
        """Hash index mapping value-tuples at *positions* to fact lists."""
        key = (pred, positions)
        cached = self._indexes.get(key)
        version = self._versions.get(pred, 0)
        if cached is not None and cached.get("__version__") == version:
            return cached["buckets"]
        buckets: dict[tuple, list[tuple]] = {}
        for fact in self._facts.get(pred, ()):
            buckets.setdefault(tuple(fact[p] for p in positions), []).append(fact)
        self._indexes[key] = {"__version__": version, "buckets": buckets}
        return buckets

    def __contains__(self, item: tuple[str, tuple]) -> bool:
        pred, fact = item
        return tuple(fact) in self._facts.get(pred, set())


def _match_literal(
    atom: Atom,
    binding: Binding,
    db: Database,
    delta: Optional[set[tuple]] = None,
) -> Iterator[Binding]:
    """Yield extended bindings for each fact matching *atom*.

    When *delta* is given, match against that fact set instead of the
    database (semi-naive evaluation)."""
    bound_positions: list[int] = []
    bound_values: list[object] = []
    free_positions: list[tuple[int, Var]] = []
    checks: list[tuple[int, int]] = []  # repeated-variable equality checks
    seen_vars: dict[Var, int] = {}
    for pos, term in enumerate(atom.terms):
        if isinstance(term, Const):
            bound_positions.append(pos)
            bound_values.append(term.value)
        elif isinstance(term, Var):
            if term.is_anonymous:
                continue
            if term in binding:
                bound_positions.append(pos)
                bound_values.append(binding[term])
            elif term in seen_vars:
                checks.append((seen_vars[term], pos))
            else:
                seen_vars[term] = pos
                free_positions.append((pos, term))
        else:  # pragma: no cover - parser prevents aggregates in bodies
            raise TypeError(f"unexpected body term {term!r}")

    if delta is not None:
        candidates: Iterable[tuple] = delta
        if bound_positions:
            key = tuple(bound_values)
            candidates = [
                fact
                for fact in delta
                if tuple(fact[p] for p in bound_positions) == key
            ]
    elif bound_positions:
        candidates = db.index(atom.pred, tuple(bound_positions)).get(
            tuple(bound_values), ()
        )
    else:
        candidates = db.facts(atom.pred)

    for fact in candidates:
        if len(fact) != atom.arity:
            continue
        if any(fact[a] != fact[b] for a, b in checks):
            continue
        extended = dict(binding)
        for pos, var in free_positions:
            extended[var] = fact[pos]
        yield extended


def _term_value(term, binding: Binding):
    if isinstance(term, Const):
        return term.value
    return binding[term]


def _check_comparison(comparison: Comparison, binding: Binding) -> bool:
    left = _term_value(comparison.left, binding)
    right = _term_value(comparison.right, binding)
    try:
        return _CMP_FUNCS[comparison.op](left, right)
    except TypeError:
        # Mixed-type ordering comparisons are false rather than fatal —
        # mirrors the relalg engine's None-propagating comparisons.
        return False


def _check_negation(literal: Literal, binding: Binding, db: Database) -> bool:
    """True when the negated literal has NO matching fact."""
    for __ in _match_literal(literal.atom, binding, db):
        return False
    return True


def _solve_body(
    rule: Rule,
    db: Database,
    delta_pred: Optional[str] = None,
    delta: Optional[set[tuple]] = None,
    initial: Optional[Binding] = None,
) -> Iterator[Binding]:
    """Yield all bindings satisfying the rule body.

    When *delta_pred* is set, exactly one positive occurrence of that
    predicate is bound to the delta set — the caller iterates over which
    occurrence (standard semi-naive rewriting).  *initial* seeds the
    binding (used by the provenance explainer to constrain body
    solutions to a given head fact).
    """
    items = list(rule.body)
    seed: Binding = dict(initial) if initial else {}

    def extend(binding: Binding, remaining: list, delta_used: bool) -> Iterator[Binding]:
        if not remaining:
            if delta_pred is None or delta_used:
                yield binding
            return
        # Greedily pick the next applicable item: a positive literal, or a
        # filter whose variables are all bound.
        for index, item in enumerate(remaining):
            if isinstance(item, Literal) and not item.negated:
                rest = remaining[:index] + remaining[index + 1 :]
                use_delta = (
                    delta_pred is not None
                    and not delta_used
                    and item.atom.pred == delta_pred
                )
                if use_delta:
                    # Branch: this occurrence from delta, or full relation
                    # with delta consumed by a later occurrence.
                    for ext in _match_literal(item.atom, binding, db, delta):
                        yield from extend(ext, rest, True)
                    later = any(
                        isinstance(o, Literal)
                        and not o.negated
                        and o.atom.pred == delta_pred
                        for o in rest
                    )
                    if later:
                        for ext in _match_literal(item.atom, binding, db):
                            yield from extend(ext, rest, False)
                    return
                for ext in _match_literal(item.atom, binding, db):
                    yield from extend(ext, rest, delta_used)
                return
            if isinstance(item, Comparison) and item.variables <= binding.keys():
                rest = remaining[:index] + remaining[index + 1 :]
                if _check_comparison(item, binding):
                    yield from extend(binding, rest, delta_used)
                return
            if (
                isinstance(item, Literal)
                and item.negated
                and item.variables <= binding.keys()
            ):
                rest = remaining[:index] + remaining[index + 1 :]
                if _check_negation(item, binding, db):
                    yield from extend(binding, rest, delta_used)
                return
        # Only filters with unbound variables remain — impossible for safe
        # rules once all positive literals are consumed.
        raise RuntimeError(
            f"rule {rule} has unprocessable body items {remaining}; "
            "was safety checked?"
        )

    yield from extend(seed, items, False)


def _head_tuple(head: Atom, binding: Binding) -> tuple:
    values = []
    for term in head.terms:
        if isinstance(term, Const):
            values.append(term.value)
        elif isinstance(term, Var):
            values.append(binding[term])
        else:  # pragma: no cover
            raise TypeError(f"aggregate in non-aggregate head: {term}")
    return tuple(values)


def _evaluate_aggregate_rule(rule: Rule, db: Database) -> set[tuple]:
    """Evaluate an aggregate-head rule over the completed lower strata.

    Aggregates use set semantics: per group, the function ranges over the
    *distinct* values the aggregated variable takes in body solutions.
    """
    head_terms = rule.head.terms
    group_positions = [
        i for i, t in enumerate(head_terms) if not isinstance(t, Aggregate)
    ]
    agg_positions = [
        (i, t) for i, t in enumerate(head_terms) if isinstance(t, Aggregate)
    ]
    groups: dict[tuple, list[set]] = {}
    for binding in _solve_body(rule, db):
        key = tuple(
            _term_value(head_terms[i], binding) for i in group_positions
        )
        value_sets = groups.setdefault(key, [set() for __ in agg_positions])
        for slot, (__, agg) in enumerate(agg_positions):
            value_sets[slot].add(binding[agg.var])

    results: set[tuple] = set()
    for key, value_sets in groups.items():
        row: list = []
        key_iter = iter(key)
        set_iter = iter(value_sets)
        for term in head_terms:
            if isinstance(term, Aggregate):
                values = next(set_iter)
                row.append(_apply_aggregate(term.fn, values))
            else:
                row.append(next(key_iter))
        results.add(tuple(row))
    return results


def _apply_aggregate(fn: str, values: set):
    if fn == "count":
        return len(values)
    if fn == "sum":
        return sum(values)
    if fn == "min":
        return min(values)
    if fn == "max":
        return max(values)
    raise ValueError(f"unknown aggregate {fn!r}")  # pragma: no cover


def evaluate(program: Program, db: Database) -> Database:
    """Evaluate *program* against *db* in place (and return it).

    Derived predicates accumulate into the same database, so extensional
    facts for IDB predicates (if any) join the derivation seamlessly.
    """
    for stratum in program.strata:
        rules = program.rules_for(stratum)
        plain = [r for r in rules if not r.has_aggregates]
        aggregating = [r for r in rules if r.has_aggregates]

        # Aggregate rules depend only on lower strata (enforced by the
        # stratifier), so a single pass suffices — run them first so
        # same-stratum plain rules can consume their output.
        for rule in aggregating:
            db.add_facts(rule.head.pred, _evaluate_aggregate_rule(rule, db))

        # Seed: full evaluation of every plain rule once.  Derived facts
        # are buffered and inserted after the bindings are drained — the
        # binder iterates live fact sets, which must not grow mid-scan.
        delta: dict[str, set[tuple]] = {pred: set() for pred in stratum}
        for rule in plain:
            derived = [
                _head_tuple(rule.head, binding)
                for binding in _solve_body(rule, db)
            ]
            for fact in derived:
                if db.add_fact(rule.head.pred, fact):
                    delta[rule.head.pred].add(fact)

        # Semi-naive loop: re-fire only rules referencing changed preds.
        recursive = [
            rule
            for rule in plain
            if any(
                lit.atom.pred in stratum for lit in rule.positive_literals
            )
        ]
        while any(delta.values()):
            new_delta: dict[str, set[tuple]] = {pred: set() for pred in stratum}
            for rule in recursive:
                body_preds = {
                    lit.atom.pred for lit in rule.positive_literals
                }
                for pred in body_preds & set(stratum):
                    if not delta.get(pred):
                        continue
                    derived = [
                        _head_tuple(rule.head, binding)
                        for binding in _solve_body(
                            rule, db, delta_pred=pred, delta=delta[pred]
                        )
                    ]
                    for fact in derived:
                        if db.add_fact(rule.head.pred, fact):
                            new_delta[rule.head.pred].add(fact)
            delta = new_delta
    return db


def query(
    program: Program, db: Database, pred: str, arity: Optional[int] = None
) -> set[tuple]:
    """Evaluate and return the facts of one predicate."""
    evaluate(program, db)
    facts = db.facts(pred)
    if arity is not None:
        return {f for f in facts if len(f) == arity}
    return set(facts)
