"""Derivation explanations (why-provenance) for derived facts.

Scheduling decisions should be auditable: when the declarative
scheduler denies a request, "because ``denied(17)`` is derivable" is
not an answer an operator can act on.  :func:`explain` reconstructs one
derivation tree for a derived fact — the rule that produced it, the
ground body facts it used (recursively explained), and the negated
facts whose *absence* it relied on.

The database must already be evaluated (the explainer searches existing
facts; it never derives new ones).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.datalog.ast import Aggregate, Atom, Comparison, Const, Literal, Rule, Var
from repro.datalog.engine import Binding, Database, _solve_body, _term_value
from repro.datalog.program import Program


@dataclass
class Derivation:
    """One node of a derivation tree."""

    pred: str
    fact: tuple
    #: The rule that derived the fact; None for extensional facts.
    rule: Optional[Rule] = None
    #: Recursively explained positive body facts.
    children: list["Derivation"] = field(default_factory=list)
    #: Ground negated atoms whose absence the rule relied on.
    absent: list[str] = field(default_factory=list)
    #: Satisfied ground comparisons.
    checks: list[str] = field(default_factory=list)

    @property
    def is_extensional(self) -> bool:
        return self.rule is None

    def format(self, indent: int = 0) -> str:
        pad = "  " * indent
        head = f"{pad}{self.pred}{self.fact}"
        if self.is_extensional:
            return head + "   [given]"
        lines = [head + f"   [via: {self.rule}]"]
        for check in self.checks:
            lines.append(f"{pad}  ✓ {check}")
        for note in self.absent:
            lines.append(f"{pad}  ✓ no fact {note}")
        for child in self.children:
            lines.append(child.format(indent + 1))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


class ExplainError(Exception):
    """The fact is not present / not derivable from the evaluated DB."""


def explain(
    program: Program, db: Database, pred: str, fact: tuple
) -> Derivation:
    """Explain one fact of an evaluated database.

    Returns a :class:`Derivation`; raises :class:`ExplainError` when the
    fact is absent.  For facts with multiple derivations an arbitrary
    one is returned (the first found in rule order).
    """
    fact = tuple(fact)
    if fact not in db.facts(pred):
        raise ExplainError(f"{pred}{fact} is not a fact of the database")
    return _explain(program, db, pred, fact, depth=0)


_MAX_DEPTH = 64


def _explain(
    program: Program, db: Database, pred: str, fact: tuple, depth: int
) -> Derivation:
    if depth > _MAX_DEPTH:  # pragma: no cover - cyclic EDB/IDB overlap
        return Derivation(pred=pred, fact=fact)
    if pred not in program.idb:
        return Derivation(pred=pred, fact=fact)

    for rule in program.rules_for([pred]):
        if rule.has_aggregates:
            derivation = _explain_aggregate(program, db, rule, pred, fact, depth)
            if derivation is not None:
                return derivation
            continue
        initial = _unify_head(rule.head, fact)
        if initial is None:
            continue
        for binding in _solve_body(rule, db, initial=initial):
            return _build_node(program, db, rule, pred, fact, binding, depth)
    # Derived fact with no reconstructable derivation: the fact may have
    # been inserted extensionally into an IDB predicate.
    return Derivation(pred=pred, fact=fact)


def _build_node(
    program: Program,
    db: Database,
    rule: Rule,
    pred: str,
    fact: tuple,
    binding: Binding,
    depth: int,
) -> Derivation:
    node = Derivation(pred=pred, fact=fact, rule=rule)
    for literal in rule.positive_literals:
        ground = _find_matching_fact(literal.atom, binding, db)
        if ground is None:  # pragma: no cover - binding came from body
            continue
        node.children.append(
            _explain(program, db, literal.atom.pred, ground, depth + 1)
        )
    for literal in rule.negative_literals:
        ground = _ground_atom(literal.atom, binding, partial=True)
        node.absent.append(f"{literal.atom.pred}{ground}")
    for comparison in rule.comparisons:
        left = _term_value(comparison.left, binding)
        right = _term_value(comparison.right, binding)
        node.checks.append(f"{left!r} {comparison.op} {right!r}")
    return node


def _explain_aggregate(
    program: Program,
    db: Database,
    rule: Rule,
    pred: str,
    fact: tuple,
    depth: int,
) -> Optional[Derivation]:
    """Aggregates: verify the group key matches and cite contributing
    body solutions (up to a handful) as children."""
    initial: Binding = {}
    for term, value in zip(rule.head.terms, fact):
        if isinstance(term, Aggregate):
            continue
        if isinstance(term, Const):
            if term.value != value:
                return None
        elif isinstance(term, Var) and not term.is_anonymous:
            if term in initial and initial[term] != value:
                return None
            initial[term] = value
    node = Derivation(pred=pred, fact=fact, rule=rule)
    contributors = 0
    for binding in _solve_body(rule, db, initial=initial):
        for literal in rule.positive_literals:
            ground = _find_matching_fact(literal.atom, binding, db)
            if ground is None:  # pragma: no cover
                continue
            node.children.append(
                _explain(program, db, literal.atom.pred, ground, depth + 1)
            )
        contributors += 1
        if contributors >= 3:
            node.checks.append("... (further contributors elided)")
            break
    if contributors == 0:
        return None
    return node


def _unify_head(head: Atom, fact: tuple) -> Optional[Binding]:
    if head.arity != len(fact):
        return None
    binding: Binding = {}
    for term, value in zip(head.terms, fact):
        if isinstance(term, Const):
            if term.value != value:
                return None
        elif isinstance(term, Var):
            if term.is_anonymous:
                continue
            if term in binding and binding[term] != value:
                return None
            binding[term] = value
        else:  # pragma: no cover
            return None
    return binding


def _find_matching_fact(
    atom: Atom, binding: Binding, db: Database
) -> Optional[tuple]:
    """First stored fact of ``atom.pred`` matching the bound pattern —
    needed because anonymous variables are not recorded in bindings."""
    for fact in db.facts(atom.pred):
        if len(fact) != atom.arity:
            continue
        local: Binding = {}
        matched = True
        for term, value in zip(atom.terms, fact):
            if isinstance(term, Const):
                matched = term.value == value
            elif isinstance(term, Var):
                if term.is_anonymous:
                    continue
                if term in binding:
                    matched = binding[term] == value
                elif term in local:
                    matched = local[term] == value
                else:
                    local[term] = value
            if not matched:
                break
        if matched:
            return fact
    return None


def _ground_atom(atom: Atom, binding: Binding, partial: bool = False) -> tuple:
    values = []
    for term in atom.terms:
        if isinstance(term, Const):
            values.append(term.value)
        elif isinstance(term, Var):
            if term.is_anonymous or term not in binding:
                if partial:
                    values.append("_")
                    continue
                raise ExplainError(
                    f"unbound variable {term} grounding {atom}"
                )
            values.append(binding[term])
    return tuple(values)
