"""Workload generation: the paper's OLTP workload and extensions.

Section 4.2.1 defines the evaluation workload: "transactions with 20
SELECT and 20 UPDATE statements against a single table of 100000 rows.
Each statement affected exactly one random row, with a uniform
probability for each row."  :class:`WorkloadSpec` captures those knobs
(and optional Zipf skew / different mixes for the ablations), and the
generators below produce statement sequences, request streams for the
middleware scheduler, and SLA-tiered client populations.
"""

from repro.workload.spec import WorkloadSpec, PAPER_WORKLOAD
from repro.workload.generator import (
    StatementProfile,
    TransactionFactory,
    request_stream,
)
from repro.workload.clients import ClientPopulation, ClientProfile, SLA_TIERS
from repro.workload.traces import Trace, record_trace, replay_statement_count

__all__ = [
    "WorkloadSpec",
    "PAPER_WORKLOAD",
    "StatementProfile",
    "TransactionFactory",
    "request_stream",
    "ClientPopulation",
    "ClientProfile",
    "SLA_TIERS",
    "Trace",
    "record_trace",
    "replay_statement_count",
]
