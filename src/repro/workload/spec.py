"""Workload specifications."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Parameters of an OLTP-style workload.

    Attributes
    ----------
    reads_per_txn, writes_per_txn:
        Number of SELECT / UPDATE statements per transaction.
    table_rows:
        Size of the single target table (objects are row numbers).
    zipf_theta:
        ``None`` for the paper's uniform row choice; otherwise the theta
        of a Zipf(θ) distribution over rows (hot-spot ablations).
    interleave:
        ``"shuffled"`` mixes reads and writes randomly within the
        transaction (default), ``"reads_first"`` issues all reads then
        all writes, ``"alternating"`` alternates r/w.
    distinct_objects:
        When True (default), a transaction touches each object at most
        once — the paper's Listing 1 "assume[s] that each transaction
        accesses an object only once".
    """

    reads_per_txn: int = 20
    writes_per_txn: int = 20
    table_rows: int = 100_000
    zipf_theta: Optional[float] = None
    interleave: str = "shuffled"
    distinct_objects: bool = True

    def __post_init__(self) -> None:
        if self.reads_per_txn < 0 or self.writes_per_txn < 0:
            raise ValueError("statement counts must be non-negative")
        if self.reads_per_txn + self.writes_per_txn == 0:
            raise ValueError("a transaction needs at least one statement")
        if self.table_rows <= 0:
            raise ValueError("table_rows must be positive")
        if self.interleave not in ("shuffled", "reads_first", "alternating"):
            raise ValueError(f"unknown interleave mode {self.interleave!r}")
        if (
            self.distinct_objects
            and self.reads_per_txn + self.writes_per_txn > self.table_rows
        ):
            raise ValueError(
                "distinct_objects requires table_rows >= statements per txn"
            )

    @property
    def statements_per_txn(self) -> int:
        return self.reads_per_txn + self.writes_per_txn


#: The exact workload of the paper's Section 4.2.1.
PAPER_WORKLOAD = WorkloadSpec(
    reads_per_txn=20,
    writes_per_txn=20,
    table_rows=100_000,
    zipf_theta=None,
    interleave="shuffled",
    distinct_objects=True,
)
