"""Transaction and request-stream generators."""

from __future__ import annotations

import bisect
import itertools
import math
import random
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.model.request import NO_OBJECT, Operation, Request, RequestAttributes
from repro.workload.spec import WorkloadSpec


@dataclass(frozen=True, slots=True)
class StatementProfile:
    """One statement of a transaction profile: operation + target row."""

    operation: Operation
    obj: int


class _ZipfSampler:
    """Zipf(θ) sampler over 0..n-1 via inverse-CDF on precomputed weights.

    Used only for skewed ablation workloads, so an O(log n) bisect per
    sample over a precomputed prefix array is fine.
    """

    def __init__(self, n: int, theta: float, rng: random.Random) -> None:
        if theta <= 0:
            raise ValueError("zipf theta must be positive")
        self._rng = rng
        weights = [1.0 / math.pow(rank + 1, theta) for rank in range(n)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        # Float accumulation can leave the last entry slightly below 1.0,
        # in which case a draw above it would bisect past the end and
        # become an invalid object id; pin the upper bound exactly.
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample(self) -> int:
        u = self._rng.random()
        index = bisect.bisect_left(self._cumulative, u)
        return min(index, len(self._cumulative) - 1)


class TransactionFactory:
    """Generates transaction *profiles* (statement sequences) per spec.

    The factory is deterministic given its RNG; the simulated server and
    the middleware experiments both draw from it so MU/SU comparisons and
    native-vs-declarative comparisons see identical workloads.
    """

    def __init__(self, spec: WorkloadSpec, rng: random.Random) -> None:
        self.spec = spec
        self._rng = rng
        self._zipf = (
            _ZipfSampler(spec.table_rows, spec.zipf_theta, rng)
            if spec.zipf_theta is not None
            else None
        )

    def _sample_object(self) -> int:
        if self._zipf is not None:
            return self._zipf.sample()
        return self._rng.randrange(self.spec.table_rows)

    def _sample_objects(self, count: int) -> list[int]:
        if not self.spec.distinct_objects:
            return [self._sample_object() for __ in range(count)]
        chosen: set[int] = set()
        while len(chosen) < count:
            chosen.add(self._sample_object())
        objects = list(chosen)
        self._rng.shuffle(objects)
        return objects

    def next_profile(self) -> list[StatementProfile]:
        """One transaction's data-access statements, in program order."""
        spec = self.spec
        total = spec.statements_per_txn
        objects = self._sample_objects(total)
        operations = [Operation.READ] * spec.reads_per_txn + [
            Operation.WRITE
        ] * spec.writes_per_txn
        if spec.interleave == "shuffled":
            self._rng.shuffle(operations)
        elif spec.interleave == "alternating":
            operations = _alternate(spec.reads_per_txn, spec.writes_per_txn)
        # reads_first: keep as constructed.
        return [
            StatementProfile(op, obj) for op, obj in zip(operations, objects)
        ]


def _alternate(reads: int, writes: int) -> list[Operation]:
    out: list[Operation] = []
    r, w = reads, writes
    while r or w:
        if r:
            out.append(Operation.READ)
            r -= 1
        if w:
            out.append(Operation.WRITE)
            w -= 1
    return out


def request_stream(
    spec: WorkloadSpec,
    rng: random.Random,
    clients: int,
    transactions_per_client: Optional[int] = None,
    attrs_for_client=None,
    start_ta: int = 1,
    start_id: int = 1,
) -> Iterator[Request]:
    """Yield the requests of a closed population of clients, round-robin.

    Each client runs transactions back-to-back; the stream interleaves
    clients one request at a time, which is how concurrent submissions
    reach the middleware's incoming queue.  ``attrs_for_client`` maps a
    client index to :class:`RequestAttributes` (for SLA experiments).

    The stream is infinite unless ``transactions_per_client`` is given.
    """
    ids = itertools.count(start_id)
    tas = itertools.count(start_ta)

    class _ClientState:
        __slots__ = ("factory", "pending", "remaining", "attrs")

        def __init__(self, index: int) -> None:
            child = random.Random(rng.randrange(2**63))
            self.factory = TransactionFactory(spec, child)
            #: queued (ta, intrata, operation, obj) — IDs are assigned at
            #: emission so the stream's ID order is arrival order (the
            #: paper's "consecutive request number").
            self.pending: list[tuple] = []
            self.remaining = transactions_per_client
            self.attrs = (
                attrs_for_client(index)
                if attrs_for_client is not None
                else RequestAttributes(client_id=index)
            )

        def refill(self) -> bool:
            if self.remaining is not None:
                if self.remaining <= 0:
                    return False
                self.remaining -= 1
            ta = next(tas)
            profile = self.factory.next_profile()
            self.pending = [
                (ta, i, stmt.operation, stmt.obj)
                for i, stmt in enumerate(profile)
            ]
            self.pending.append(
                (ta, len(profile), Operation.COMMIT, NO_OBJECT)
            )
            return True

        def emit(self) -> Request:
            ta, intrata, operation, obj = self.pending.pop(0)
            return Request(
                id=next(ids),
                ta=ta,
                intrata=intrata,
                operation=operation,
                obj=obj,
                attrs=self.attrs,
            )

    states = [_ClientState(i) for i in range(clients)]
    live = list(range(clients))
    while live:
        next_live: list[int] = []
        for index in live:
            state = states[index]
            if not state.pending and not state.refill():
                continue
            yield state.emit()
            next_live.append(index)
        live = next_live
