"""Trace recording and single-user replay accounting.

The paper's method (Section 4.1): "In a separate run, we also logged the
produced schedule.  We then reran this schedule with a single concurrent
transaction, and locking disabled as much as possible."  A
:class:`Trace` is that logged schedule; :func:`replay_statement_count`
extracts what the single-user rerun needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.model.request import Operation, Request


@dataclass
class Trace:
    """An executed-statement log with timestamps."""

    entries: list[tuple[float, Request]] = field(default_factory=list)

    def record(self, time: float, request: Request) -> None:
        self.entries.append((time, request))

    @property
    def requests(self) -> list[Request]:
        return [request for __, request in self.entries]

    def statement_count(self, committed_only: bool = False) -> int:
        """Number of data-access statements in the trace."""
        if not committed_only:
            return sum(
                1 for __, r in self.entries if r.operation.is_data_access
            )
        committed = {
            r.ta for __, r in self.entries if r.operation is Operation.COMMIT
        }
        return sum(
            1
            for __, r in self.entries
            if r.operation.is_data_access and r.ta in committed
        )

    def __iter__(self) -> Iterator[tuple[float, Request]]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


def record_trace(requests: Iterable[Request], times: Iterable[float]) -> Trace:
    """Zip requests with completion times into a trace."""
    trace = Trace()
    for time, request in zip(times, requests):
        trace.record(time, request)
    return trace


def replay_statement_count(trace: Trace) -> int:
    """Statements the single-user replay must process — the paper replays
    the full logged sequence (committed work; the native run's aborted
    work does not appear in the produced schedule)."""
    return trace.statement_count(committed_only=True)
