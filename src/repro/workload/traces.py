"""Trace recording and single-user replay accounting.

The paper's method (Section 4.1): "In a separate run, we also logged the
produced schedule.  We then reran this schedule with a single concurrent
transaction, and locking disabled as much as possible."  A
:class:`Trace` is that logged schedule; :func:`replay_statement_count`
extracts what the single-user rerun needs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.model.request import Operation, Request, RequestAttributes


@dataclass
class Trace:
    """An executed-statement log with timestamps."""

    entries: list[tuple[float, Request]] = field(default_factory=list)

    def record(self, time: float, request: Request) -> None:
        self.entries.append((time, request))

    @property
    def requests(self) -> list[Request]:
        return [request for __, request in self.entries]

    def statement_count(self, committed_only: bool = False) -> int:
        """Number of data-access statements in the trace."""
        if not committed_only:
            return sum(
                1 for __, r in self.entries if r.operation.is_data_access
            )
        committed = {
            r.ta for __, r in self.entries if r.operation is Operation.COMMIT
        }
        return sum(
            1
            for __, r in self.entries
            if r.operation.is_data_access and r.ta in committed
        )

    def __iter__(self) -> Iterator[tuple[float, Request]]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


def record_trace(requests: Iterable[Request], times: Iterable[float]) -> Trace:
    """Zip requests with completion times into a trace."""
    trace = Trace()
    for time, request in zip(times, requests):
        trace.record(time, request)
    return trace


def replay_statement_count(trace: Trace) -> int:
    """Statements the single-user replay must process — the paper replays
    the full logged sequence (committed work; the native run's aborted
    work does not appear in the produced schedule)."""
    return trace.statement_count(committed_only=True)


# -- on-disk trace format -------------------------------------------------
#
# Line-oriented JSON: the first line is a header object (``format``,
# ``version`` plus caller metadata such as scenario name/seed); every
# following line is one dispatched request.  JSON floats round-trip
# exactly (``repr`` shortest-form), so a re-run of the same deterministic
# scenario reproduces the file bit-identically.

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


def _entry_fields(time: float, request: Request) -> dict:
    """Every field of one trace entry — the single source for both the
    on-disk line format and the replay comparison key, so divergence
    detection can never silently lag behind what gets recorded."""
    return {
        "t": time,
        "id": request.id,
        "ta": request.ta,
        "intrata": request.intrata,
        "op": request.operation.value,
        "obj": request.obj,
        "client": request.attrs.client_id,
        "sla": request.attrs.sla_class,
        "prio": request.attrs.priority,
    }


def canonical_entries(trace: Trace) -> list[tuple]:
    """The comparison key of a trace: every field replay must reproduce
    (virtual time, the Table 2 row, and the SLA side-car)."""
    return [
        tuple(_entry_fields(time, request).values())
        for time, request in trace.entries
    ]


def _entry_line(label: str, time: float, request: Request) -> str:
    return json.dumps(
        {"cell": label, **_entry_fields(time, request)}, sort_keys=True
    )


def write_trace_file(
    path,
    traces: Sequence[tuple[str, Trace]],
    header: dict | None = None,
) -> int:
    """Write labelled traces as line-oriented JSON; returns the entry
    count.  ``header`` carries caller metadata (scenario name, seed, …)
    so :func:`read_trace_file` callers can re-run the recorded setup."""
    head = {"format": TRACE_FORMAT, "version": TRACE_VERSION}
    head.update(header or {})
    entries = 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(head, sort_keys=True) + "\n")
        for label, trace in traces:
            for time, request in trace.entries:
                handle.write(_entry_line(label, time, request) + "\n")
                entries += 1
    return entries


def read_trace_file(path) -> tuple[dict, list[tuple[str, Trace]]]:
    """Inverse of :func:`write_trace_file`: header plus labelled traces
    (labels in first-appearance order)."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"empty trace file: {path}")
    header = json.loads(lines[0])
    if header.get("format") != TRACE_FORMAT:
        raise ValueError(
            f"{path} is not a {TRACE_FORMAT} file "
            f"(format={header.get('format')!r})"
        )
    traces: dict[str, Trace] = {}
    for line in lines[1:]:
        record = json.loads(line)
        request = Request(
            id=int(record["id"]),
            ta=int(record["ta"]),
            intrata=int(record["intrata"]),
            operation=Operation.from_code(record["op"]),
            obj=int(record["obj"]),
            attrs=RequestAttributes(
                client_id=int(record.get("client", 0)),
                sla_class=str(record.get("sla", "standard")),
                priority=int(record.get("prio", 0)),
            ),
        )
        traces.setdefault(str(record["cell"]), Trace()).record(
            float(record["t"]), request
        )
    return header, list(traces.items())
