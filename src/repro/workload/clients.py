"""Client populations with SLA tiers.

The paper motivates SLAs with "premium vs. free customers in Web
applications" (Section 1).  A :class:`ClientPopulation` assigns each
simulated client a :class:`ClientProfile` so SLA-aware protocols can
differentiate them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.model.request import RequestAttributes


@dataclass(frozen=True, slots=True)
class ClientProfile:
    """A service tier: a name, a scheduling priority, and an optional
    relative response-time target (used for SLA-violation accounting)."""

    name: str
    priority: int
    response_target: Optional[float] = None
    share: float = 1.0


#: Conventional two-tier split used in the SLA experiments.
SLA_TIERS: tuple[ClientProfile, ...] = (
    ClientProfile(name="premium", priority=10, response_target=0.5, share=0.2),
    ClientProfile(name="free", priority=1, response_target=5.0, share=0.8),
)


class ClientPopulation:
    """Deterministic assignment of tiers to client indices.

    Tiers are interleaved proportionally to their ``share`` so any prefix
    of clients approximates the target mix (useful when sweeping client
    counts).
    """

    def __init__(
        self,
        tiers: Sequence[ClientProfile] = SLA_TIERS,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not tiers:
            raise ValueError("at least one tier required")
        total = sum(t.share for t in tiers)
        if total <= 0:
            raise ValueError("tier shares must sum to a positive value")
        self.tiers = tuple(tiers)
        self._weights = [t.share / total for t in tiers]
        self._rng = rng

    def profile_for(self, client_index: int) -> ClientProfile:
        """Tier of the given client (deterministic unless an RNG was
        supplied, in which case assignment is random per call)."""
        if self._rng is not None:
            return self._rng.choices(self.tiers, weights=self._weights)[0]
        # Deterministic proportional interleaving: tier j owns client i
        # when adding client i advances floor(cumulative_weight_j * n)
        # for j — i.e. largest-remainder apportionment, so any prefix of
        # clients matches the target mix within one client per tier.
        n = client_index + 1
        previous_counts = self._apportion(client_index)
        new_counts = self._apportion(n)
        for tier, before, after in zip(self.tiers, previous_counts, new_counts):
            if after > before:
                return tier
        return self.tiers[-1]

    def _apportion(self, n: int) -> list[int]:
        """Target client counts per tier for a population of size n."""
        acc = 0.0
        boundaries: list[int] = []
        for weight in self._weights:
            acc += weight
            boundaries.append(int(round(acc * n)))
        counts: list[int] = []
        previous = 0
        for boundary in boundaries:
            counts.append(boundary - previous)
            previous = boundary
        return counts

    def attributes_for(self, client_index: int) -> RequestAttributes:
        profile = self.profile_for(client_index)
        return RequestAttributes(
            client_id=client_index,
            sla_class=profile.name,
            priority=profile.priority,
            deadline=None,
        )

    def counts(self, clients: int) -> dict[str, int]:
        """How many of the first *clients* clients land in each tier."""
        out: dict[str, int] = {t.name: 0 for t in self.tiers}
        for index in range(clients):
            out[self.profile_for(index).name] += 1
        return out
