"""The one closed-loop scenario runner.

Every registered scenario runs through the same wiring — workload
generator → incoming queue → trigger → declarative scheduler →
simulated batch server → metrics — under the virtual clock, so two
invocations with the same spec and seed produce bit-identical results
(and bit-identical trace files when recording).

The bench modules that used to duplicate this setup (`triggers_ablation`,
`sla_adaptive`, …) are now thin spec + report layers over
:func:`run_scenario`; record/replay lives here too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import repro.api as api
from repro.core.scheduler import SchedulerConfig, SchedulerCostModel
from repro.core.simulation import MiddlewareResult, MiddlewareSimulation
from repro.faults.invariants import InvariantViolation
from repro.protocols.base import Protocol
from repro.scenarios.spec import ScenarioCell, ScenarioSpec, get_scenario
from repro.server.costmodel import CostModel, PAPER_CALIBRATION
from repro.workload.clients import ClientPopulation, SLA_TIERS
from repro.workload.traces import (
    canonical_entries,
    read_trace_file,
    write_trace_file,
)


@dataclass
class CellResult:
    """One cell's outcome: the built protocol plus its middleware run."""

    cell: ScenarioCell
    protocol: Protocol
    result: MiddlewareResult


@dataclass
class ScenarioResult:
    """All cell results of one scenario run."""

    spec: ScenarioSpec
    seed: int
    duration: float
    clients: int
    #: Backend override applied to every cell (None = each cell's own).
    backend: Optional[str] = None
    #: Trigger override applied to every cell (CLI spelling, e.g.
    #: ``"fill:20"``; None = each cell's own).
    trigger: Optional[str] = None
    cells: list[CellResult] = field(default_factory=list)

    def cell(self, label: str) -> CellResult:
        for entry in self.cells:
            if entry.cell.label == label:
                return entry
        raise KeyError(f"no cell labelled {label!r} in {self.spec.name}")

    def traces(self) -> list[tuple[str, "object"]]:
        return [
            (entry.cell.label, entry.result.trace)
            for entry in self.cells
            if entry.result.trace is not None
        ]


def build_cell_protocol(
    cell: ScenarioCell, clients: int, backend: Optional[str] = None
) -> Protocol:
    """Resolve a cell's protocol string into a live Protocol object.

    ``backend`` (the CLI ``--backend`` flag) overrides the cell's own
    backend choice, so any scenario can be re-run on a different
    execution engine — byte-identical traces are the cross-backend
    equivalence check.
    """
    resolved = backend if backend is not None else cell.backend
    return api.make_protocol(cell.protocol, resolved, clients=clients)


def run_scenario(
    spec: ScenarioSpec,
    *,
    seed: Optional[int] = None,
    duration: Optional[float] = None,
    clients: Optional[int] = None,
    record: bool = False,
    cost_model: CostModel = PAPER_CALIBRATION,
    scheduler_cost: SchedulerCostModel = SchedulerCostModel(),
    check_invariants: bool = False,
    backend: Optional[str] = None,
    trigger: Optional[str] = None,
) -> ScenarioResult:
    """Run every cell of *spec* under the virtual clock.

    ``seed``/``duration``/``clients`` override the spec's defaults (the
    CLI flags); all cells share them, so sweep cells see the identical
    workload draw.  ``backend`` overrides every cell's execution
    backend and ``trigger`` every cell's trigger policy (the
    ``--backend``/``--trigger`` flags, same spellings as
    :func:`repro.api.make_trigger`); the recorded trace header carries
    both so replays re-run on the same engine and pacing.

    With ``check_invariants``, every cell runs under an
    :class:`~repro.faults.invariants.InvariantMonitor`; a violation
    raises :class:`~repro.faults.invariants.InvariantViolation` with the
    scenario context (name/seed/duration/clients/cell) attached, so its
    trace file replays through :func:`replay_scenario`.
    """
    seed = spec.seed if seed is None else seed
    duration = spec.duration if duration is None else duration
    clients = spec.clients if clients is None else clients
    if duration <= 0:
        raise ValueError("duration must be positive")
    if clients <= 0:
        raise ValueError("clients must be positive")

    attrs_for_client = None
    if spec.population == "sla-tiers":
        attrs_for_client = ClientPopulation(SLA_TIERS).attributes_for
    start_delay = (
        spec.start_delay if spec.burst_size is not None else None
    )

    outcome = ScenarioResult(
        spec=spec,
        seed=seed,
        duration=duration,
        clients=clients,
        backend=backend,
        trigger=trigger,
    )
    for cell in spec.cells:
        protocol = build_cell_protocol(cell, clients, backend=backend)
        # The override builds one fresh (stateful) policy per cell.
        cell_trigger = (
            api.make_trigger(trigger)
            if trigger is not None
            else cell.trigger.build()
        )
        simulation = MiddlewareSimulation(
            protocol=protocol,
            trigger=cell_trigger,
            spec=spec.workload,
            clients=clients,
            seed=seed,
            cost_model=cost_model,
            scheduler_cost=scheduler_cost,
            deadlock_timeout=spec.deadlock_timeout,
            attrs_for_client=attrs_for_client,
            scheduler_config=SchedulerConfig(max_batch=cell.max_batch),
            record_trace=record,
            start_delay_for_client=start_delay,
            faults=spec.faults,
            recovery=spec.recovery,
            admission=spec.admission,
            check_invariants=check_invariants,
        )
        try:
            cell_result = simulation.run(duration)
        except InvariantViolation as violation:
            raise violation.attach_context(
                scenario=spec.name,
                seed=seed,
                duration=duration,
                clients=clients,
                cell=cell.label,
            )
        outcome.cells.append(
            CellResult(cell=cell, protocol=protocol, result=cell_result)
        )
    return outcome


# -- record / replay -------------------------------------------------------


def record_scenario(
    spec: ScenarioSpec,
    path,
    *,
    seed: Optional[int] = None,
    duration: Optional[float] = None,
    clients: Optional[int] = None,
    check_invariants: bool = False,
    backend: Optional[str] = None,
    trigger: Optional[str] = None,
) -> ScenarioResult:
    """Run with trace recording on and persist the dispatch log plus the
    header needed to re-run it (:func:`replay_scenario`)."""
    outcome = run_scenario(
        spec,
        seed=seed,
        duration=duration,
        clients=clients,
        record=True,
        check_invariants=check_invariants,
        backend=backend,
        trigger=trigger,
    )
    header = {
        "scenario": spec.name,
        "seed": outcome.seed,
        "duration": outcome.duration,
        "clients": outcome.clients,
    }
    if backend is not None:
        header["backend"] = backend
    if trigger is not None:
        header["trigger"] = trigger
    write_trace_file(path, outcome.traces(), header=header)
    return outcome


@dataclass
class ReplayOutcome:
    """Result of re-running a recorded scenario against its trace."""

    scenario: str
    matches: bool
    entries: int
    mismatch: str = ""
    result: Optional[ScenarioResult] = None


def replay_scenario(path) -> ReplayOutcome:
    """Re-run the scenario named in a trace file's header (same seed,
    duration and client count) and compare the produced dispatch log
    entry-by-entry against the recorded one.

    Trace files whose header carries ``prefix: true`` (invariant-
    violation traces, cut off at the failing step) are verified as a
    *prefix* of the produced log instead of requiring full equality."""
    header, recorded = read_trace_file(path)
    name = header.get("scenario")
    if not name:
        raise ValueError(f"trace {path} has no scenario in its header")
    prefix = bool(header.get("prefix"))
    spec = get_scenario(name)
    outcome = run_scenario(
        spec,
        seed=int(header["seed"]),
        duration=float(header["duration"]),
        clients=int(header["clients"]),
        record=True,
        backend=header.get("backend") or None,
        trigger=header.get("trigger") or None,
    )
    produced = {label: trace for label, trace in outcome.traces()}
    recorded_map = {label: trace for label, trace in recorded}
    entries = sum(len(trace) for trace in recorded_map.values())

    produced_labels = [
        entry.cell.label
        for entry in outcome.cells
        if len(entry.result.trace or ()) > 0
    ]
    if prefix:
        # A violation trace covers a single cell, cut off mid-run; the
        # other cells of the scenario may legitimately be absent.
        missing = sorted(set(recorded_map) - set(produced_labels))
        if missing:
            return ReplayOutcome(
                scenario=name,
                matches=False,
                entries=entries,
                mismatch=f"recorded cells missing from replay: {missing}",
                result=outcome,
            )
    elif sorted(recorded_map) != sorted(produced_labels):
        return ReplayOutcome(
            scenario=name,
            matches=False,
            entries=entries,
            mismatch=(
                f"cell labels differ: recorded {sorted(recorded_map)}, "
                f"produced {sorted(produced_labels)}"
            ),
            result=outcome,
        )
    for label, trace in recorded_map.items():
        want = canonical_entries(trace)
        got = canonical_entries(produced[label])
        if prefix:
            got = got[: len(want)]
        if want != got:
            detail = f"{len(want)} vs {len(got)} entries"
            for index, (a, b) in enumerate(zip(want, got)):
                if a != b:
                    detail = f"first divergence at entry {index}: {a} != {b}"
                    break
            return ReplayOutcome(
                scenario=name,
                matches=False,
                entries=entries,
                mismatch=f"cell {label!r}: {detail}",
                result=outcome,
            )
    return ReplayOutcome(
        scenario=name, matches=True, entries=entries, result=outcome
    )
