"""Deterministic scenario reports.

Every number in a scenario report is derived from virtual-time metrics
(statement counts, virtual seconds, batch sizes), never from wall-clock
measurements, so ``repro scenario run <name> --seed S`` renders the
byte-identical report on every invocation.
"""

from __future__ import annotations

from typing import Sequence

from repro.metrics.reporting import render_table
from repro.scenarios.runner import CellResult, ScenarioResult


def _cell_row(entry: CellResult) -> list[object]:
    result = entry.result
    return [
        entry.cell.label,
        entry.protocol.name,
        entry.cell.trigger.label,
        result.completed_statements,
        round(result.throughput, 1),
        result.committed_transactions,
        result.scheduler_runs,
        round(result.mean_batch_size, 2),
        round(result.mean_response() * 1000, 3),
        result.timeout_aborts,
    ]


def _recovery_row(entry: CellResult) -> list[object]:
    result = entry.result
    return [
        entry.cell.label,
        result.deadlock_timeout_aborts,
        result.reaped_orphans,
        result.retries,
        result.retry_budget_exhausted,
        result.sheds,
        result.crashes,
        result.stalls,
        result.drops,
        result.step_faults,
        round(result.mean_recovery_time * 1000, 3),
        round(result.goodput, 1),
    ]


def _delta_rows(outcome: ScenarioResult) -> list[list[object]]:
    """Delta-maintenance counters for cells whose backend keeps
    incrementally maintained state.  Counts only — the wall-clock
    ``maintain_s`` timers stay out of the report so same-seed runs
    remain byte-identical (CI diffs these reports)."""
    rows = []
    for entry in outcome.cells:
        stats = entry.result.delta_maintenance
        if not stats:
            continue
        steps = stats.get("steps", 0)
        inserts = stats.get("inserts", 0)
        retracts = stats.get("retracts", 0)
        per_step = (inserts + retracts) / steps if steps else 0.0
        rows.append(
            [
                entry.cell.label,
                steps,
                inserts,
                retracts,
                round(per_step, 2),
                stats.get("rebuilds", 0),
                stats.get("cache_hits", 0),
                stats.get("cache_misses", 0),
            ]
        )
    return rows


def _tier_rows(outcome: ScenarioResult) -> list[list[object]]:
    rows = []
    for entry in outcome.cells:
        for tier in sorted(entry.result.response_times):
            rows.append(
                [
                    entry.cell.label,
                    tier,
                    len(entry.result.response_times[tier]),
                    round(entry.result.mean_response(tier) * 1000, 3),
                ]
            )
    return rows


def render_scenario_report(outcome: ScenarioResult) -> str:
    """The canonical report of one scenario run."""
    spec = outcome.spec
    header = (
        f"scenario {spec.name} — {spec.description}\n"
        f"clients={outcome.clients} duration={outcome.duration:g}s "
        f"seed={outcome.seed} population={spec.population} "
        f"workload=r{spec.workload.reads_per_txn}w{spec.workload.writes_per_txn}"
        f"/{spec.workload.table_rows}rows"
        + (
            f" zipf={spec.workload.zipf_theta:g}"
            if spec.workload.zipf_theta is not None
            else ""
        )
        + (
            f" bursts={spec.burst_size}@{spec.burst_gap:g}s"
            if spec.burst_size is not None
            else ""
        )
        + (f" faults={spec.faults.label}" if spec.faults is not None else "")
    )
    table = render_table(
        ["cell", "protocol", "trigger", "stmts", "stmts/s", "commits",
         "runs", "mean batch", "mean resp (ms)", "aborts"],
        [_cell_row(entry) for entry in outcome.cells],
    )
    parts = [header, table]
    delta_rows = _delta_rows(outcome)
    if delta_rows:
        parts.append(
            render_table(
                ["cell", "steps", "inserts", "retracts", "delta/step",
                 "rebuilds", "plan hits", "plan misses"],
                delta_rows,
                title="delta maintenance",
            )
        )
    if spec.is_chaos:
        parts.append(
            render_table(
                ["cell", "timeouts", "orphans", "retries", "gave up",
                 "sheds", "crashes", "stalls", "drops", "step faults",
                 "mean ttr (ms)", "goodput/s"],
                [_recovery_row(entry) for entry in outcome.cells],
                title="recovery metrics",
            )
        )
    if spec.population == "sla-tiers":
        parts.append(
            render_table(
                ["cell", "tier", "responses", "mean resp (ms)"],
                _tier_rows(outcome),
                title="per-tier response times",
            )
        )
    return "\n\n".join(parts)


def render_scenario_comparison(outcomes: Sequence[ScenarioResult]) -> str:
    """Side-by-side cell rows of several scenario runs."""
    rows = []
    for outcome in outcomes:
        for entry in outcome.cells:
            rows.append([outcome.spec.name] + _cell_row(entry))
    return render_table(
        ["scenario", "cell", "protocol", "trigger", "stmts", "stmts/s",
         "commits", "runs", "mean batch", "mean resp (ms)", "aborts"],
        rows,
        title="scenario comparison",
    )
