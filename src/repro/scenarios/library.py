"""The registered scenario library.

Importing this module populates :data:`~repro.scenarios.spec.SCENARIO_REGISTRY`
with the built-in scenarios: the paper-shaped baseline, the hot-spot /
bursty / mixed-SLA workloads the harness makes cheap, the E7 trigger
sweep, a protocol × backend × trigger matrix, and the adaptive
load-step.  Everything runs on the scaled-down middleware workload
(virtual-time simulation executes every scheduler query in real
Python, so the registered specs use small tables and short
transactions; the CLI's ``--clients``/``--duration`` flags scale any
of them up).
"""

from __future__ import annotations

from repro.faults import (
    AdmissionPolicy,
    FaultPlan,
    RecoveryPolicy,
    crash,
    drop,
    stall,
)
from repro.scenarios.spec import (
    ScenarioCell,
    ScenarioSpec,
    TriggerSpec,
    register_scenario,
)
from repro.workload.spec import WorkloadSpec

#: Scaled-down middleware workload shared by most scenarios (the same
#: shape the E7/E10 benches always used).
MIDDLEWARE_WORKLOAD = WorkloadSpec(
    reads_per_txn=4, writes_per_txn=4, table_rows=2_000
)

_HYBRID = TriggerSpec("hybrid", interval=0.02, threshold=20)


SMOKE = register_scenario(
    ScenarioSpec(
        name="smoke",
        description="tiny deterministic run for CI and replay round-trips",
        workload=WorkloadSpec(reads_per_txn=2, writes_per_txn=2, table_rows=500),
        cells=(ScenarioCell(label="ss2pl", trigger=_HYBRID),),
        clients=8,
        duration=0.6,
        seed=1,
    )
)

PAPER_BASELINE = register_scenario(
    ScenarioSpec(
        name="paper-baseline",
        description="uniform paper-shaped workload under SS2PL, hybrid trigger",
        workload=MIDDLEWARE_WORKLOAD,
        cells=(ScenarioCell(label="ss2pl", trigger=_HYBRID),),
        clients=40,
        duration=5.0,
        seed=42,
    )
)

ZIPF_HOTSPOT = register_scenario(
    ScenarioSpec(
        name="zipf-hotspot",
        description="Zipf(0.9) hot rows: contention concentrates on few objects",
        workload=WorkloadSpec(
            reads_per_txn=4,
            writes_per_txn=4,
            table_rows=2_000,
            zipf_theta=0.9,
        ),
        cells=(
            ScenarioCell(label="ss2pl", trigger=_HYBRID),
            ScenarioCell(
                label="read-committed",
                protocol="read-committed",
                trigger=_HYBRID,
            ),
        ),
        clients=30,
        duration=4.0,
        seed=17,
    )
)

BURSTY_ARRIVALS = register_scenario(
    ScenarioSpec(
        name="bursty-arrivals",
        description="clients join in waves of 10 every 0.5s (open arrivals)",
        workload=MIDDLEWARE_WORKLOAD,
        cells=(
            ScenarioCell(label="hybrid", trigger=_HYBRID),
            ScenarioCell(
                label="fill(20)", trigger=TriggerSpec("fill", threshold=20)
            ),
        ),
        clients=40,
        duration=5.0,
        seed=23,
        burst_size=10,
        burst_gap=0.5,
    )
)

MIXED_SLA = register_scenario(
    ScenarioSpec(
        name="mixed-sla",
        description="premium vs free tiers, with and without the SLA layer",
        workload=MIDDLEWARE_WORKLOAD,
        cells=(
            ScenarioCell(label="ss2pl (no SLA layer)", trigger=_HYBRID),
            ScenarioCell(
                label="sla(ss2pl)",
                protocol="sla:ss2pl-listing1",
                trigger=_HYBRID,
            ),
        ),
        clients=40,
        duration=5.0,
        seed=9,
        population="sla-tiers",
    )
)

TRIGGER_SWEEP = register_scenario(
    ScenarioSpec(
        name="trigger-sweep",
        description="E7: time vs fill vs hybrid trigger policies (Section 3.3)",
        workload=MIDDLEWARE_WORKLOAD,
        cells=(
            ScenarioCell(
                label="time(0.005s)", trigger=TriggerSpec("time", interval=0.005)
            ),
            ScenarioCell(
                label="time(0.02s)", trigger=TriggerSpec("time", interval=0.02)
            ),
            ScenarioCell(
                label="time(0.1s)", trigger=TriggerSpec("time", interval=0.1)
            ),
            ScenarioCell(
                label="fill(5)", trigger=TriggerSpec("fill", threshold=5)
            ),
            ScenarioCell(
                label="fill(20)", trigger=TriggerSpec("fill", threshold=20)
            ),
            ScenarioCell(
                label="fill(60)", trigger=TriggerSpec("fill", threshold=60)
            ),
            ScenarioCell(
                label="hybrid(0.02s|20)",
                trigger=TriggerSpec("hybrid", interval=0.02, threshold=20),
            ),
            ScenarioCell(
                label="hybrid(0.1s|60)",
                trigger=TriggerSpec("hybrid", interval=0.1, threshold=60),
            ),
        ),
        clients=40,
        duration=5.0,
        seed=5,
    )
)

MATRIX_SWEEP = register_scenario(
    ScenarioSpec(
        name="matrix-sweep",
        description="protocol × backend × trigger sweep on one workload",
        workload=MIDDLEWARE_WORKLOAD,
        cells=(
            ScenarioCell(
                label="ss2pl/compiled/hybrid",
                backend="compiled",
                trigger=_HYBRID,
            ),
            ScenarioCell(
                label="ss2pl/interpreted/hybrid",
                backend="interpreted",
                trigger=_HYBRID,
            ),
            ScenarioCell(
                label="ss2pl/incremental/hybrid",
                backend="incremental",
                trigger=_HYBRID,
            ),
            ScenarioCell(
                label="ss2pl/compiled/fill(20)",
                backend="compiled",
                trigger=TriggerSpec("fill", threshold=20),
            ),
            ScenarioCell(
                label="fcfs/compiled/hybrid",
                protocol="fcfs",
                backend="compiled",
                trigger=_HYBRID,
            ),
            ScenarioCell(
                label="read-committed/compiled/hybrid",
                protocol="read-committed",
                backend="compiled",
                trigger=_HYBRID,
            ),
        ),
        clients=25,
        duration=3.0,
        seed=3,
    )
)

# -- chaos scenarios -------------------------------------------------------
#
# Deterministic fault-injection runs: every fault decision comes from
# the run seed, so `repro scenario record/replay` round-trips these
# exactly like the fault-free scenarios.  Their reports add the
# recovery metrics (aborts, retries, sheds, time-to-recover, goodput).

CRASH_STORM = register_scenario(
    ScenarioSpec(
        name="crash-storm",
        description="clients crash mid-transaction and reconnect; orphans reaped",
        workload=WorkloadSpec(reads_per_txn=3, writes_per_txn=3, table_rows=60),
        cells=(ScenarioCell(label="ss2pl", trigger=_HYBRID),),
        clients=16,
        duration=4.0,
        seed=7,
        faults=FaultPlan(
            specs=(
                crash(probability=0.7, restart_after=0.9, window=(0.05, 0.7)),
                stall(probability=0.08, duration=0.5),
                drop(probability=0.04),
            )
        ),
        recovery=RecoveryPolicy(
            request_timeout=0.25,
            backoff_factor=2.0,
            max_retries=3,
            orphan_lease=0.6,
            retry_delay=0.02,
        ),
        admission=AdmissionPolicy(max_pending=10),
    )
)

STALL_UNDER_ZIPF_HOTSPOT = register_scenario(
    ScenarioSpec(
        name="stall-under-zipf-hotspot",
        description="GC-pause stalls while Zipf(1.1) hot rows concentrate conflicts",
        workload=WorkloadSpec(
            reads_per_txn=3,
            writes_per_txn=3,
            table_rows=200,
            zipf_theta=1.1,
        ),
        cells=(ScenarioCell(label="ss2pl", trigger=_HYBRID),),
        clients=20,
        duration=4.0,
        seed=13,
        faults=FaultPlan(specs=(stall(probability=0.15, duration=0.6),)),
        recovery=RecoveryPolicy(
            request_timeout=0.3,
            max_retries=4,
            orphan_lease=0.8,
            retry_delay=0.02,
        ),
        admission=AdmissionPolicy(max_pending=12),
    )
)

RETRY_THUNDERING_HERD = register_scenario(
    ScenarioSpec(
        name="retry-thundering-herd",
        description="drops + tiny hot table force synchronized retry waves",
        workload=WorkloadSpec(reads_per_txn=2, writes_per_txn=4, table_rows=24),
        cells=(ScenarioCell(label="ss2pl", trigger=_HYBRID),),
        clients=24,
        duration=4.0,
        seed=29,
        faults=FaultPlan(
            specs=(
                drop(probability=0.10),
                stall(probability=0.05, duration=0.3),
            )
        ),
        recovery=RecoveryPolicy(
            request_timeout=0.2,
            backoff_factor=2.0,
            max_retries=5,
            orphan_lease=0.8,
            retry_delay=0.01,
        ),
        admission=AdmissionPolicy(max_pending=14),
    )
)

ADAPTIVE_LOAD_STEP = register_scenario(
    ScenarioSpec(
        name="adaptive-load-step",
        description="strict vs relaxed vs load-adaptive consistency arms",
        workload=MIDDLEWARE_WORKLOAD,
        cells=(
            ScenarioCell(
                label="ss2pl (always strict)",
                trigger=TriggerSpec("hybrid", interval=0.02, threshold=30),
            ),
            ScenarioCell(
                label="read-committed (always relaxed)",
                protocol="read-committed",
                trigger=TriggerSpec("hybrid", interval=0.02, threshold=30),
            ),
            ScenarioCell(
                label="adaptive (strict<->relaxed)",
                protocol="adaptive:ss2pl-listing1,read-committed",
                trigger=TriggerSpec("hybrid", interval=0.02, threshold=30),
            ),
        ),
        clients=60,
        duration=5.0,
        seed=11,
    )
)
