"""Declarative scenario specifications and their registry.

A :class:`ScenarioSpec` is the full recipe of one closed-loop
middleware experiment: workload shape + client population + trigger
policy + protocol/backend pairing + cost models + duration/seed.  Every
piece is data (no live objects), so a spec can be registered once,
listed from the CLI, serialized into a trace header, and re-built
bit-identically for record/replay.

A spec holds one or more *cells* — (protocol, backend, trigger)
pairings all sharing the spec's workload, population and seed — so a
single scenario can be a lone run ("zipf-hotspot") or a sweep
("matrix-sweep" runs protocol × backend × trigger on one workload).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.triggers import (
    FillLevelTrigger,
    HybridTrigger,
    TimeLapseTrigger,
    TriggerPolicy,
)
from repro.faults.admission import AdmissionPolicy
from repro.faults.recovery import RecoveryPolicy
from repro.faults.spec import FaultPlan
from repro.workload.spec import WorkloadSpec

#: Client-population kinds understood by the runner.
POPULATIONS = ("uniform", "sla-tiers")


@dataclass(frozen=True, slots=True)
class TriggerSpec:
    """Declarative trigger description (build one fresh per run —
    trigger policies are stateful)."""

    kind: str  # "time" | "fill" | "hybrid"
    interval: Optional[float] = None
    threshold: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("time", "fill", "hybrid"):
            raise ValueError(f"unknown trigger kind {self.kind!r}")
        if self.kind in ("time", "hybrid") and not self.interval:
            raise ValueError(f"trigger kind {self.kind!r} needs an interval")
        if self.kind in ("fill", "hybrid") and not self.threshold:
            raise ValueError(f"trigger kind {self.kind!r} needs a threshold")

    def build(self) -> TriggerPolicy:
        if self.kind == "time":
            return TimeLapseTrigger(self.interval)
        if self.kind == "fill":
            return FillLevelTrigger(self.threshold)
        return HybridTrigger(self.interval, self.threshold)

    @property
    def label(self) -> str:
        return self.build().name


@dataclass(frozen=True, slots=True)
class ScenarioCell:
    """One protocol × backend × trigger pairing inside a scenario.

    ``protocol`` is a registered spec name (``ss2pl-listing1``, ``fcfs``,
    …) or one of the wrapper forms the runner knows how to build:
    ``sla:<spec>`` (SLA priority ordering over the inner spec) and
    ``adaptive:<strict-spec>,<relaxed-spec>`` (load-adaptive switching
    with watermarks derived from the client count).
    """

    label: str
    protocol: str = "ss2pl-listing1"
    backend: Optional[str] = None
    trigger: TriggerSpec = TriggerSpec("hybrid", interval=0.02, threshold=20)
    max_batch: Optional[int] = None


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """The declarative recipe of one deterministic closed-loop run."""

    name: str
    description: str
    workload: WorkloadSpec
    cells: Tuple[ScenarioCell, ...]
    clients: int = 40
    duration: float = 5.0
    seed: int = 0
    population: str = "uniform"
    deadlock_timeout: float = 0.5
    #: Bursty open arrivals: clients join in waves of ``burst_size``
    #: every ``burst_gap`` virtual seconds (``None`` = all at t=0).
    burst_size: Optional[int] = None
    burst_gap: float = 0.0
    #: Chaos side of the scenario: deterministic fault injection plus
    #: the recovery/admission policies that are supposed to absorb it.
    #: All pure data (frozen), so faulted scenarios stay replayable.
    faults: Optional[FaultPlan] = None
    recovery: Optional[RecoveryPolicy] = None
    admission: Optional[AdmissionPolicy] = None

    @property
    def is_chaos(self) -> bool:
        """True when the scenario injects faults."""
        return self.faults is not None

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError("a scenario needs at least one cell")
        if self.clients <= 0:
            raise ValueError("clients must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.population not in POPULATIONS:
            raise ValueError(
                f"unknown population {self.population!r}; "
                f"known: {', '.join(POPULATIONS)}"
            )
        if self.burst_size is not None and (
            self.burst_size <= 0 or self.burst_gap <= 0
        ):
            raise ValueError("bursty arrivals need burst_size/burst_gap > 0")
        labels = [cell.label for cell in self.cells]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate cell labels in {self.name}: {labels}")

    def with_(self, **overrides) -> "ScenarioSpec":
        """A copy with the given fields replaced (CLI overrides)."""
        return dataclasses.replace(self, **overrides)

    def start_delay(self, client_index: int) -> float:
        """Virtual start time of a client under the burst pattern."""
        if self.burst_size is None:
            return 0.0
        return (client_index // self.burst_size) * self.burst_gap


def trigger_spec_of(trigger) -> TriggerSpec:
    """Coerce a live :class:`TriggerPolicy` (or a ready spec) into a
    :class:`TriggerSpec` — lets callers that built policy objects (the
    historical bench signatures) feed the declarative runner."""
    if isinstance(trigger, TriggerSpec):
        return trigger
    if isinstance(trigger, HybridTrigger):
        return TriggerSpec(
            "hybrid", interval=trigger.interval, threshold=trigger.threshold
        )
    if isinstance(trigger, TimeLapseTrigger):
        return TriggerSpec("time", interval=trigger.interval)
    if isinstance(trigger, FillLevelTrigger):
        return TriggerSpec("fill", threshold=trigger.threshold)
    raise TypeError(f"cannot describe trigger {trigger!r} declaratively")


# -- registry --------------------------------------------------------------

SCENARIO_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    if spec.name in SCENARIO_REGISTRY:
        raise ValueError(f"scenario {spec.name!r} already registered")
    SCENARIO_REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIO_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; "
            f"registered: {', '.join(scenario_names())}"
        ) from None


def scenario_names() -> list[str]:
    return sorted(SCENARIO_REGISTRY)
