"""Deterministic scenario subsystem.

One declarative :class:`~repro.scenarios.spec.ScenarioSpec` registry +
one closed-loop runner + deterministic reports + trace record/replay.
Importing this package registers the built-in scenario library; the CLI
exposes it as ``repro scenario list|run|replay|compare``.
"""

from repro.scenarios.spec import (
    SCENARIO_REGISTRY,
    ScenarioCell,
    ScenarioSpec,
    TriggerSpec,
    get_scenario,
    register_scenario,
    scenario_names,
    trigger_spec_of,
)
from repro.scenarios.runner import (
    CellResult,
    ReplayOutcome,
    ScenarioResult,
    build_cell_protocol,
    record_scenario,
    replay_scenario,
    run_scenario,
)
from repro.scenarios.report import (
    render_scenario_comparison,
    render_scenario_report,
)
from repro.scenarios.native import native_sweep

# Importing the library registers the built-in scenarios.
from repro.scenarios import library as _library  # noqa: F401

__all__ = [
    "SCENARIO_REGISTRY",
    "ScenarioCell",
    "ScenarioSpec",
    "TriggerSpec",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "trigger_spec_of",
    "CellResult",
    "ReplayOutcome",
    "ScenarioResult",
    "build_cell_protocol",
    "record_scenario",
    "replay_scenario",
    "run_scenario",
    "render_scenario_comparison",
    "render_scenario_report",
    "native_sweep",
]
