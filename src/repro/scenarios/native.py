"""Shared native-server sweep used by the E3/E6/E12 report layers.

The Figure 2, crossover and MPL-ablation benches all drive the
*native* simulated DBMS (its internal scheduler, not the declarative
middleware) over a client sweep; this module holds the one sweep loop
so those bench modules stay thin spec + report layers, mirroring what
:mod:`repro.scenarios.runner` does for the closed-loop middleware
scenarios.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.server.costmodel import CostModel, PAPER_CALIBRATION
from repro.server.engine import MultiUserResult, SimulatedDBMS
from repro.workload.spec import PAPER_WORKLOAD, WorkloadSpec


def native_sweep(
    client_counts: Sequence[int],
    duration: float = 240.0,
    spec: WorkloadSpec = PAPER_WORKLOAD,
    cost_model: CostModel = PAPER_CALIBRATION,
    seed: int = 42,
    mpl_cap: Optional[int] = None,
) -> list[MultiUserResult]:
    """One :class:`MultiUserResult` per client count, in input order."""
    dbms = SimulatedDBMS(spec, cost_model=cost_model, seed=seed)
    return dbms.sweep(client_counts, duration, mpl_cap=mpl_cap)
