"""Heuristic plan optimization.

Two rewrites, both classical and both directly motivated by the paper's
claim that "optimization techniques from declarative query processing can
be used to improve scheduler performance without affecting the scheduler
specification" (Section 1):

* **Predicate pushdown** — filters sink below joins to whichever side
  covers their columns, shrinking hash-join inputs.
* **Equi-key extraction** — at join execution, equality conjuncts whose
  two sides resolve on opposite inputs become hash keys; the remainder
  evaluates as a residual filter.  This turns Listing 1's self-joins into
  linear-time hash joins instead of quadratic nested loops.
"""

from __future__ import annotations

from typing import Optional

from repro.relalg.expressions import (
    And,
    ColumnRef,
    Compare,
    Expr,
    and_,
    split_conjuncts,
)
from repro.relalg.query import (
    FilterNode,
    JoinNode,
    PlanNode,
)
from repro.relalg.schema import Schema, SchemaError


def _covers(schema: Schema, expr: Expr) -> bool:
    """True when every column the expression references resolves
    unambiguously in *schema*."""
    refs = expr.referenced_columns()
    if not refs:
        return True
    for qualifier, name in refs:
        try:
            schema.resolve(name, qualifier)
        except SchemaError:
            return False
    return True


def split_join_predicate(
    predicate: Optional[Expr],
    left_schema: Schema,
    right_schema: Schema,
) -> tuple[list[str], list[str], Optional[Expr]]:
    """Split a join predicate into hash keys plus residual.

    Returns ``(left_keys, right_keys, residual)`` where keys are
    qualified column names usable by the hash-join operators.  An
    equality conjunct ``a = b`` qualifies when one side's columns resolve
    only on the left input and the other side's only on the right.
    """
    if predicate is None:
        return [], [], None
    left_keys: list[str] = []
    right_keys: list[str] = []
    residual: list[Expr] = []
    for conjunct in split_conjuncts(predicate):
        pair = _equi_pair(conjunct, left_schema, right_schema)
        if pair is not None:
            left_keys.append(pair[0])
            right_keys.append(pair[1])
        else:
            residual.append(conjunct)
    residual_expr = and_(*residual) if residual else None
    return left_keys, right_keys, residual_expr


def _equi_pair(
    conjunct: Expr, left_schema: Schema, right_schema: Schema
) -> Optional[tuple[str, str]]:
    if not isinstance(conjunct, Compare) or conjunct.symbol != "=":
        return None
    lhs, rhs = conjunct.left, conjunct.right
    if not isinstance(lhs, ColumnRef) or not isinstance(rhs, ColumnRef):
        return None
    lhs_name = _qualified(lhs)
    rhs_name = _qualified(rhs)
    lhs_on_left = _resolves_only(left_schema, right_schema, lhs)
    rhs_on_left = _resolves_only(left_schema, right_schema, rhs)
    if lhs_on_left is True and rhs_on_left is False:
        return lhs_name, rhs_name
    if lhs_on_left is False and rhs_on_left is True:
        return rhs_name, lhs_name
    return None


def _qualified(ref: ColumnRef) -> str:
    return f"{ref.qualifier}.{ref.name}" if ref.qualifier else ref.name


def _resolves_only(
    left_schema: Schema, right_schema: Schema, ref: ColumnRef
) -> Optional[bool]:
    """True if ref resolves only on the left, False if only on the right,
    None if ambiguous/unresolvable."""
    on_left = _resolvable(left_schema, ref)
    on_right = _resolvable(right_schema, ref)
    if on_left and not on_right:
        return True
    if on_right and not on_left:
        return False
    return None


def _resolvable(schema: Schema, ref: ColumnRef) -> bool:
    try:
        schema.resolve(ref.name, ref.qualifier)
    except SchemaError:
        return False
    return True


def optimize_plan(plan: PlanNode) -> PlanNode:
    """Apply pushdown rewrites bottom-up.  The plan is treated as
    immutable; rewritten nodes are fresh objects.

    The traversal memoizes by node identity, so plans that are DAGs —
    a :class:`~repro.relalg.query.CTENode` referenced from several
    parents — keep the shared node shared in the rewritten plan (the
    compiled execution path relies on that identity to compute each CTE
    once per step)."""
    return _push_filters(plan, {})


def _push_filters(node: PlanNode, memo: dict[int, PlanNode]) -> PlanNode:
    done = memo.get(id(node))
    if done is not None:
        return done
    original = node
    # Recurse first so child subtrees are already optimized.
    node = _rebuild_with_children(
        node, [_push_filters(c, memo) for c in node.children()]
    )

    if isinstance(node, FilterNode) and isinstance(node.child, JoinNode):
        join = node.child
        if join.how in ("inner",):
            left_schema = join.left.output_schema()
            right_schema = join.right.output_schema()
            to_left: list[Expr] = []
            to_right: list[Expr] = []
            spanning: list[Expr] = []
            for conjunct in split_conjuncts(node.predicate):
                if _covers(left_schema, conjunct):
                    to_left.append(conjunct)
                elif _covers(right_schema, conjunct):
                    to_right.append(conjunct)
                else:
                    spanning.append(conjunct)
            if to_left or to_right or spanning:
                new_left = (
                    FilterNode(join.left, and_(*to_left)) if to_left else join.left
                )
                new_right = (
                    FilterNode(join.right, and_(*to_right)) if to_right else join.right
                )
                # Conjuncts spanning both sides merge into the join
                # predicate — this is what turns SQL's comma-join +
                # WHERE (a cross product under a filter) into a hash
                # join at execution time.
                merged = (
                    and_(join.predicate, *spanning)
                    if join.predicate is not None
                    else and_(*spanning)
                    if spanning
                    else None
                )
                node = JoinNode(new_left, new_right, merged, join.how)
                memo[id(original)] = node
                return node
    if isinstance(node, FilterNode) and isinstance(node.child, FilterNode):
        # Merge stacked filters into one conjunction.
        inner = node.child
        node = FilterNode(inner.child, and_(node.predicate, inner.predicate))
    memo[id(original)] = node
    return node


def _rebuild_with_children(node: PlanNode, new_children: list[PlanNode]) -> PlanNode:
    """Return a copy of *node* with children replaced (shallow rebuild)."""
    old_children = node.children()
    if not old_children or all(a is b for a, b in zip(old_children, new_children)):
        return node
    clone = object.__new__(type(node))
    clone.__dict__.update(getattr(node, "__dict__", {}))
    # Nodes keep children in well-known attribute names.
    if hasattr(node, "child"):
        clone.child = new_children[0]
    if hasattr(node, "left"):
        clone.left = new_children[0]
        clone.right = new_children[1]
    return clone
