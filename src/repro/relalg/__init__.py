"""A from-scratch relational algebra engine.

The paper proposes "to employ database query processing techniques to
produce high-quality schedules" (abstract).  Its experiments run the
SS2PL scheduling rule of Listing 1 as a SQL query on a commercial DBMS.
This package is our query processor: a small but complete relational
engine with

* :class:`~repro.relalg.schema.Schema` / :class:`~repro.relalg.table.Table`
  row storage with hash indexes,
* a composable expression language (:mod:`repro.relalg.expressions`),
* physical operators — selection, projection, hash/nested-loop joins,
  outer joins, semi/anti joins, set operations, aggregation, sorting
  (:mod:`repro.relalg.operators`),
* a fluent :class:`~repro.relalg.query.Query` builder with named
  subqueries mirroring SQL's ``WITH`` clause,
* a heuristic optimizer (:mod:`repro.relalg.optimizer`), and
* a plan compiler (:mod:`repro.relalg.plan`): one-time lowering to
  physical operators with compiled expressions, index-aware joins and
  delta-maintained build tables — analyze once, execute per step.

The scheduling protocols in :mod:`repro.protocols` are written against
this API; :mod:`repro.sqlbridge` cross-checks results against sqlite3
running the paper's literal SQL.
"""

from repro.relalg.schema import Column, Schema
from repro.relalg.table import Table
from repro.relalg.relation import Relation
from repro.relalg.expressions import (
    Expr,
    col,
    lit,
    and_,
    or_,
    not_,
    compile_expr,
)
from repro.relalg.query import Query, Pipeline, cte
from repro.relalg.plan import CompiledPlan, PlanCache

__all__ = [
    "Column",
    "Schema",
    "Table",
    "Relation",
    "Expr",
    "col",
    "lit",
    "and_",
    "or_",
    "not_",
    "compile_expr",
    "Query",
    "Pipeline",
    "cte",
    "CompiledPlan",
    "PlanCache",
]
