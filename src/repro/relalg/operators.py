"""Physical relational operators.

Each operator is a function ``Relation -> Relation`` (or binary).  The
set covers what the paper's Listing 1 needs — CTE composition, self-joins,
``NOT EXISTS`` (anti-join), ``LEFT JOIN ... IS NULL``, ``EXCEPT``,
``UNION ALL``, ``DISTINCT`` — plus aggregation/sorting for the SLA and
metrics queries.

Joins prefer hash-based algorithms when an equality predicate is
available; the optimizer (:mod:`repro.relalg.optimizer`) extracts
equi-join keys from predicates automatically.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.relalg.expressions import Bound, Expr
from repro.relalg.relation import Relation
from repro.relalg.schema import Column, Schema


# -- unary operators ----------------------------------------------------------


def select(relation: Relation, predicate: Expr) -> Relation:
    """σ — keep rows satisfying *predicate*."""
    test = predicate.bind(relation.schema)
    return Relation(relation.schema, [row for row in relation.rows if test(row)])


def project(relation: Relation, columns: Sequence[str]) -> Relation:
    """π — keep the named columns (bag semantics; duplicates retained)."""
    positions = [relation.schema.resolve(*_split(name)) for name in columns]
    out_schema = Schema(
        [Column(_split(name)[0]) for name in columns]
    )
    rows = [tuple(row[p] for p in positions) for row in relation.rows]
    return Relation(out_schema, rows)


def extend(relation: Relation, name: str, expr: Expr) -> Relation:
    """Append a computed column (SQL's ``SELECT *, expr AS name``)."""
    fn = expr.bind(relation.schema)
    out_schema = Schema(list(relation.schema.columns) + [Column(name)])
    rows = [row + (fn(row),) for row in relation.rows]
    return Relation(out_schema, rows)


def rename(relation: Relation, alias: str) -> Relation:
    """ρ — re-qualify every column with *alias* (``FROM x AS alias``)."""
    return Relation(relation.schema.qualify(alias), relation.rows)


def distinct(relation: Relation) -> Relation:
    """δ — duplicate elimination, preserving first-seen order."""
    seen: set[tuple] = set()
    rows: list[tuple] = []
    for row in relation.rows:
        if row not in seen:
            seen.add(row)
            rows.append(row)
    return Relation(relation.schema, rows)


def order_by(
    relation: Relation,
    keys: Sequence[str | tuple[str, bool]],
) -> Relation:
    """Sort rows.  Each key is a column name or ``(name, descending)``.

    Sorting is stable, so multi-key ordering can also be achieved by
    chaining calls from least- to most-significant key.
    """
    # Resolve every sort key up front (one schema lookup per key, not
    # one per pass), then apply them right-to-left relying on stability.
    resolved = resolve_sort_keys(relation.schema, keys)
    rows = list(relation.rows)
    for pos, descending in reversed(resolved):
        rows.sort(key=lambda row: row[pos], reverse=descending)
    return Relation(relation.schema, rows)


def resolve_sort_keys(
    schema: Schema, keys: Sequence[str | tuple[str, bool]]
) -> list[tuple[int, bool]]:
    """Resolve ``name | (name, descending)`` sort keys to
    ``(position, descending)`` pairs — shared by the interpreted
    :func:`order_by` and the compiled plan's OrderBy operator."""
    resolved: list[tuple[int, bool]] = []
    for key in keys:
        if isinstance(key, tuple):
            name, descending = key
        else:
            name, descending = key, False
        resolved.append((schema.resolve(*_split(name)), descending))
    return resolved


def limit(relation: Relation, n: int) -> Relation:
    return Relation(relation.schema, relation.rows[:n])


# -- joins --------------------------------------------------------------------


def cross_join(left: Relation, right: Relation) -> Relation:
    schema = left.schema.concat(right.schema)
    rows = [lr + rr for lr in left.rows for rr in right.rows]
    return Relation(schema, rows)


def nested_loop_join(left: Relation, right: Relation, predicate: Expr) -> Relation:
    """θ-join by nested loops — fallback when no equi-key exists."""
    schema = left.schema.concat(right.schema)
    test = predicate.bind(schema)
    rows = [
        combined
        for lr in left.rows
        for rr in right.rows
        if test(combined := lr + rr)
    ]
    return Relation(schema, rows)


def hash_join(
    left: Relation,
    right: Relation,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    residual: Optional[Expr] = None,
) -> Relation:
    """Equi-join via build/probe hash table (build side = right)."""
    left_pos = [left.schema.resolve(*_split(k)) for k in left_keys]
    right_pos = [right.schema.resolve(*_split(k)) for k in right_keys]
    schema = left.schema.concat(right.schema)
    residual_test = residual.bind(schema) if residual is not None else None

    buckets: dict[tuple, list[tuple]] = {}
    for rr in right.rows:
        buckets.setdefault(tuple(rr[p] for p in right_pos), []).append(rr)

    rows: list[tuple] = []
    for lr in left.rows:
        key = tuple(lr[p] for p in left_pos)
        for rr in buckets.get(key, ()):
            combined = lr + rr
            if residual_test is None or residual_test(combined):
                rows.append(combined)
    return Relation(schema, rows)


def left_outer_join(
    left: Relation,
    right: Relation,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    residual: Optional[Expr] = None,
) -> Relation:
    """LEFT OUTER equi-join; unmatched left rows pad the right side with
    None — exactly what Listing 1's ``LEFT JOIN ... IS NULL`` idiom needs."""
    left_pos = [left.schema.resolve(*_split(k)) for k in left_keys]
    right_pos = [right.schema.resolve(*_split(k)) for k in right_keys]
    schema = left.schema.concat(right.schema)
    residual_test = residual.bind(schema) if residual is not None else None
    null_pad = (None,) * right.schema.arity

    buckets: dict[tuple, list[tuple]] = {}
    for rr in right.rows:
        buckets.setdefault(tuple(rr[p] for p in right_pos), []).append(rr)

    rows: list[tuple] = []
    for lr in left.rows:
        key = tuple(lr[p] for p in left_pos)
        matched = False
        for rr in buckets.get(key, ()):
            combined = lr + rr
            if residual_test is None or residual_test(combined):
                rows.append(combined)
                matched = True
        if not matched:
            rows.append(lr + null_pad)
    return Relation(schema, rows)


def semi_join(
    left: Relation,
    right: Relation,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
) -> Relation:
    """Left rows with at least one key match on the right (SQL EXISTS)."""
    left_pos = [left.schema.resolve(*_split(k)) for k in left_keys]
    right_pos = [right.schema.resolve(*_split(k)) for k in right_keys]
    keys = {tuple(rr[p] for p in right_pos) for rr in right.rows}
    rows = [
        lr for lr in left.rows if tuple(lr[p] for p in left_pos) in keys
    ]
    return Relation(left.schema, rows)


def anti_join(
    left: Relation,
    right: Relation,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    residual: Optional[Expr] = None,
) -> Relation:
    """Left rows with no key match on the right (SQL NOT EXISTS).

    With a *residual* predicate, a left row is dropped only when some
    key match also satisfies the residual (evaluated over the
    concatenated schema) — the hash-based decorrelation of
    ``NOT EXISTS`` subqueries with mixed equality/other conjuncts.
    """
    left_pos = [left.schema.resolve(*_split(k)) for k in left_keys]
    right_pos = [right.schema.resolve(*_split(k)) for k in right_keys]
    if residual is None:
        keys = {tuple(rr[p] for p in right_pos) for rr in right.rows}
        rows = [
            lr
            for lr in left.rows
            if tuple(lr[p] for p in left_pos) not in keys
        ]
        return Relation(left.schema, rows)
    combined = left.schema.concat(right.schema)
    test = residual.bind(combined)
    buckets: dict[tuple, list[tuple]] = {}
    for rr in right.rows:
        buckets.setdefault(tuple(rr[p] for p in right_pos), []).append(rr)
    rows = [
        lr
        for lr in left.rows
        if not any(
            test(lr + rr)
            for rr in buckets.get(tuple(lr[p] for p in left_pos), ())
        )
    ]
    return Relation(left.schema, rows)


def anti_join_predicate(left: Relation, right: Relation, predicate: Expr) -> Relation:
    """General NOT EXISTS with an arbitrary correlation predicate
    (quadratic; used when no pure equi-key form exists)."""
    schema = left.schema.concat(right.schema)
    test = predicate.bind(schema)
    rows = [
        lr
        for lr in left.rows
        if not any(test(lr + rr) for rr in right.rows)
    ]
    return Relation(left.schema, rows)


# -- set operations -----------------------------------------------------------


def _check_union_compatible(a: Relation, b: Relation, op: str) -> None:
    if a.schema.arity != b.schema.arity:
        raise ValueError(
            f"{op}: arity mismatch {a.schema.arity} vs {b.schema.arity}"
        )


def union_all(a: Relation, b: Relation) -> Relation:
    _check_union_compatible(a, b, "UNION ALL")
    return Relation(a.schema, list(a.rows) + list(b.rows))


def union(a: Relation, b: Relation) -> Relation:
    _check_union_compatible(a, b, "UNION")
    return distinct(union_all(a, b))


def except_(a: Relation, b: Relation) -> Relation:
    """Set EXCEPT (distinct result), as in SQL's default EXCEPT — the
    semantics Listing 1's ``QualifiedSS2PLOps`` relies on."""
    _check_union_compatible(a, b, "EXCEPT")
    remove = set(b.rows)
    seen: set[tuple] = set()
    rows: list[tuple] = []
    for row in a.rows:
        if row in remove or row in seen:
            continue
        seen.add(row)
        rows.append(row)
    return Relation(a.schema, rows)


def except_all(a: Relation, b: Relation) -> Relation:
    """Bag EXCEPT ALL (each b-row cancels one a-row)."""
    _check_union_compatible(a, b, "EXCEPT ALL")
    counts: dict[tuple, int] = {}
    for row in b.rows:
        counts[row] = counts.get(row, 0) + 1
    rows: list[tuple] = []
    for row in a.rows:
        pending = counts.get(row, 0)
        if pending > 0:
            counts[row] = pending - 1
        else:
            rows.append(row)
    return Relation(a.schema, rows)


def intersect(a: Relation, b: Relation) -> Relation:
    _check_union_compatible(a, b, "INTERSECT")
    keep = set(b.rows)
    seen: set[tuple] = set()
    rows: list[tuple] = []
    for row in a.rows:
        if row in keep and row not in seen:
            seen.add(row)
            rows.append(row)
    return Relation(a.schema, rows)


# -- aggregation ---------------------------------------------------------------

#: name -> (initial factory, step, finalize)
_AGGREGATES: dict[str, tuple[Callable[[], Any], Callable, Callable]] = {
    "count": (lambda: 0, lambda acc, v: acc + 1, lambda acc: acc),
    "sum": (lambda: 0, lambda acc, v: acc + v, lambda acc: acc),
    "min": (
        lambda: None,
        lambda acc, v: v if acc is None or v < acc else acc,
        lambda acc: acc,
    ),
    "max": (
        lambda: None,
        lambda acc, v: v if acc is None or v > acc else acc,
        lambda acc: acc,
    ),
    "avg": (
        lambda: (0, 0),
        lambda acc, v: (acc[0] + v, acc[1] + 1),
        lambda acc: acc[0] / acc[1] if acc[1] else None,
    ),
}


def aggregate(
    relation: Relation,
    group_by: Sequence[str],
    aggregations: Sequence[tuple[str, str, str]],
) -> Relation:
    """GROUP BY with the classic aggregates.

    ``aggregations`` is a list of ``(function, input_column, output_name)``
    where function is one of count/sum/min/max/avg.  ``input_column`` is
    ignored for ``count`` (pass any column or ``"*"``).

    With an empty ``group_by`` the result is a single global-aggregate row
    (even over an empty input, as in SQL).
    """
    group_pos = [relation.schema.resolve(*_split(g)) for g in group_by]
    agg_specs = []
    for fn_name, input_col, output_name in aggregations:
        if fn_name not in _AGGREGATES:
            raise ValueError(f"unknown aggregate {fn_name!r}")
        if fn_name == "count" and input_col == "*":
            pos = None
        else:
            pos = relation.schema.resolve(*_split(input_col))
        agg_specs.append((fn_name, pos, output_name))

    groups: dict[tuple, list[Any]] = {}
    for row in relation.rows:
        key = tuple(row[p] for p in group_pos)
        accs = groups.get(key)
        if accs is None:
            accs = [_AGGREGATES[fn][0]() for fn, __, __ in agg_specs]
            groups[key] = accs
        for i, (fn_name, pos, __) in enumerate(agg_specs):
            value = row[pos] if pos is not None else 1
            accs[i] = _AGGREGATES[fn_name][1](accs[i], value)

    if not group_pos and not groups:
        groups[()] = [_AGGREGATES[fn][0]() for fn, __, __ in agg_specs]

    out_schema = Schema(
        [Column(_split(g)[0]) for g in group_by]
        + [Column(name) for __, __, name in agg_specs]
    )
    rows = [
        key + tuple(
            _AGGREGATES[fn][2](acc)
            for (fn, __, __), acc in zip(agg_specs, accs)
        )
        for key, accs in groups.items()
    ]
    return Relation(out_schema, rows)


def _split(name: str) -> tuple[str, Optional[str]]:
    """``"alias.col"`` -> ("col", "alias"); ``"col"`` -> ("col", None)."""
    if "." in name:
        qualifier, base = name.split(".", 1)
        return base, qualifier
    return name, None
