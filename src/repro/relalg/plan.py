"""Compile-once physical plans.

The interpreted path (:meth:`Query.execute`) re-derives everything per
call: it re-runs the optimizer, re-resolves every column reference,
re-extracts equi-join keys, re-binds every expression into a closure
tree, and rebuilds every hash-join build table from raw rows.  For the
scheduler that is pure overhead — a protocol's query is *fixed*; only
the table contents change between steps.

:class:`CompiledPlan` splits the two concerns:

* **compile (once)** — optimize the logical plan, resolve all schemas
  and column positions, extract hash-join keys, compile every
  expression to a generated Python function
  (:func:`repro.relalg.expressions.compile_expr`), and pick a build
  strategy for each keyed join;
* **execute (per step)** — run the physical operators against the
  *current* contents of the base tables.

Joins additionally avoid re-hashing their build side per execution:

* when the build side is a base-table scan and the table has a matching
  :class:`~repro.relalg.table.HashIndex`, the live index buckets are
  used directly (zero build cost, always current);
* when the build side is a filter/project chain over one base table,
  the build table is **materialized once and maintained across steps**
  by replaying the table's delta journal
  (:meth:`~repro.relalg.table.Table.delta_since`) — exactly the
  append/prune deltas the scheduler produces each step;
* otherwise the build side is rebuilt per execution (still with
  compiled expressions).

Plans that are DAGs — shared :class:`~repro.relalg.query.CTENode`
subplans — are compiled node-for-node, and each CTE is computed at most
once per execution.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Optional, Sequence, Union

from repro.relalg.expressions import (
    Bound,
    ColumnRef,
    Expr,
    IsNull,
    and_,
    compile_expr,
    split_conjuncts,
)
from repro.relalg.query import (
    AggregateNode,
    CTENode,
    DistinctNode,
    ExtendNode,
    FilterNode,
    JoinNode,
    LimitNode,
    OrderByNode,
    PlanNode,
    ProjectNode,
    Query,
    SetOpNode,
    SourceNode,
    _AliasNode,
)
from repro.relalg import operators as _ops
from repro.relalg.operators import _AGGREGATES, _split
from repro.relalg.relation import Relation
from repro.relalg.schema import Column, Schema
from repro.relalg.table import Table


class ExecContext:
    """Per-execution scratch state: memoized CTE results."""

    __slots__ = ("cte_rows",)

    def __init__(self) -> None:
        self.cte_rows: dict[int, list[tuple]] = {}


def _key_fn(positions: Sequence[int], scalar: bool) -> Callable[[tuple], Any]:
    """Fast key extractor: a bare itemgetter where possible.

    ``itemgetter(p)`` returns the scalar, ``itemgetter(p, q, ...)`` the
    tuple — single-column builds use scalar keys (cheaper to hash) and
    multi-column builds tuples; ``scalar=False`` forces 1-tuples for
    compatibility with :class:`~repro.relalg.table.HashIndex` keys.
    """
    if len(positions) == 1 and scalar:
        return operator.itemgetter(positions[0])
    if len(positions) == 1:
        p = positions[0]
        return lambda row: (row[p],)
    return operator.itemgetter(*positions)


def _row_projector(positions: Sequence[int]) -> Callable[[tuple], tuple]:
    """Tuple-producing projector (itemgetter except for arity 1/0)."""
    if len(positions) == 1:
        p = positions[0]
        return lambda row: (row[p],)
    if not positions:
        return lambda row: ()
    return operator.itemgetter(*positions)


class PhysicalNode:
    """Base class of physical operators.

    A physical node knows its output :attr:`schema` (computed at compile
    time) and produces rows on demand; any state it keeps across
    executions (cached build tables) is synchronized lazily from table
    delta journals.
    """

    schema: Schema

    def rows(self, ctx: ExecContext) -> list[tuple]:
        raise NotImplementedError

    def children(self) -> list["PhysicalNode"]:
        return []

    def describe(self) -> str:
        return type(self).__name__

    def explain(self, depth: int = 0) -> str:
        line = "  " * depth + self.describe()
        return "\n".join(
            [line] + [child.explain(depth + 1) for child in self.children()]
        )


# -- leaves -------------------------------------------------------------------


class PTableScan(PhysicalNode):
    """Read the current rows of a live base table (O(1) snapshot)."""

    def __init__(self, table: Table, alias: Optional[str]) -> None:
        self.table = table
        self.alias = alias
        self.schema = table.schema.qualify(alias) if alias else table.schema

    def rows(self, ctx: ExecContext) -> list[tuple]:
        return self.table.rows

    def describe(self) -> str:
        alias = f" AS {self.alias}" if self.alias else ""
        return f"Scan({self.table.name}{alias})"


class PStatic(PhysicalNode):
    """A pre-computed relation (frozen at compile time)."""

    def __init__(self, relation: Relation, alias: Optional[str]) -> None:
        self.schema = (
            relation.schema.qualify(alias) if alias else relation.schema
        )
        self._rows = list(relation.rows)

    def rows(self, ctx: ExecContext) -> list[tuple]:
        return self._rows

    def describe(self) -> str:
        return f"Static({len(self._rows)} rows)"


# -- unary --------------------------------------------------------------------


class PPassthrough(PhysicalNode):
    """Schema re-qualification (alias); rows flow through unchanged."""

    def __init__(self, child: PhysicalNode, schema: Schema) -> None:
        self.child = child
        self.schema = schema

    def rows(self, ctx: ExecContext) -> list[tuple]:
        return self.child.rows(ctx)

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        return "Alias"


class PCTE(PhysicalNode):
    """Shared subplan: computed at most once per execution."""

    def __init__(self, child: PhysicalNode, name: str) -> None:
        self.child = child
        self.name = name
        self.schema = child.schema

    def rows(self, ctx: ExecContext) -> list[tuple]:
        cached = ctx.cte_rows.get(id(self))
        if cached is None:
            cached = self.child.rows(ctx)
            ctx.cte_rows[id(self)] = cached
        return cached

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        return f"CTE({self.name})"


class PFilter(PhysicalNode):
    def __init__(self, child: PhysicalNode, predicate: Expr) -> None:
        self.child = child
        self.schema = child.schema
        self.predicate = predicate
        self.test = compile_expr(predicate, child.schema, predicate=True)

    def rows(self, ctx: ExecContext) -> list[tuple]:
        test = self.test
        return [row for row in self.child.rows(ctx) if test(row)]

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Filter({self.predicate!r})"


class PProject(PhysicalNode):
    def __init__(self, child: PhysicalNode, columns: Sequence[str]) -> None:
        self.child = child
        self.positions = tuple(
            child.schema.resolve(*_split(name)) for name in columns
        )
        self.schema = Schema([Column(_split(name)[0]) for name in columns])
        self.projector = _row_projector(self.positions)

    def rows(self, ctx: ExecContext) -> list[tuple]:
        projector = self.projector
        return [projector(row) for row in self.child.rows(ctx)]

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Project{self.positions}"


class PExtend(PhysicalNode):
    def __init__(self, child: PhysicalNode, name: str, expr: Expr) -> None:
        self.child = child
        self.expr = expr
        self.fn = compile_expr(expr, child.schema)
        self.schema = Schema(list(child.schema.columns) + [Column(name)])

    def rows(self, ctx: ExecContext) -> list[tuple]:
        fn = self.fn
        return [row + (fn(row),) for row in self.child.rows(ctx)]

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Extend({self.expr!r})"


class PDistinct(PhysicalNode):
    def __init__(self, child: PhysicalNode) -> None:
        self.child = child
        self.schema = child.schema

    def rows(self, ctx: ExecContext) -> list[tuple]:
        return _ops.distinct(
            Relation(self.schema, self.child.rows(ctx))
        ).rows

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        return "Distinct"


class POrderBy(PhysicalNode):
    """Sort keys are resolved to positions once at compile time."""

    def __init__(self, child: PhysicalNode, keys: Sequence) -> None:
        self.child = child
        self.schema = child.schema
        self.keys = _ops.resolve_sort_keys(child.schema, keys)

    def rows(self, ctx: ExecContext) -> list[tuple]:
        out = list(self.child.rows(ctx))
        for pos, descending in reversed(self.keys):
            out.sort(key=lambda row: row[pos], reverse=descending)
        return out

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        return f"OrderBy({self.keys})"


class PLimit(PhysicalNode):
    def __init__(self, child: PhysicalNode, n: int) -> None:
        self.child = child
        self.schema = child.schema
        self.n = n

    def rows(self, ctx: ExecContext) -> list[tuple]:
        return self.child.rows(ctx)[: self.n]

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Limit({self.n})"


class PAggregate(PhysicalNode):
    def __init__(
        self,
        child: PhysicalNode,
        group_by: Sequence[str],
        aggregations: Sequence[tuple[str, str, str]],
    ) -> None:
        self.child = child
        self.group_pos = tuple(
            child.schema.resolve(*_split(g)) for g in group_by
        )
        specs = []
        for fn_name, input_col, output_name in aggregations:
            if fn_name not in _AGGREGATES:
                raise ValueError(f"unknown aggregate {fn_name!r}")
            if fn_name == "count" and input_col == "*":
                pos = None
            else:
                pos = child.schema.resolve(*_split(input_col))
            specs.append((fn_name, pos, output_name))
        self.agg_specs = specs
        self.schema = Schema(
            [Column(_split(g)[0]) for g in group_by]
            + [Column(name) for __, __, name in specs]
        )

    def rows(self, ctx: ExecContext) -> list[tuple]:
        group_pos, agg_specs = self.group_pos, self.agg_specs
        groups: dict[tuple, list[Any]] = {}
        for row in self.child.rows(ctx):
            key = tuple(row[p] for p in group_pos)
            accs = groups.get(key)
            if accs is None:
                accs = [_AGGREGATES[fn][0]() for fn, __, __ in agg_specs]
                groups[key] = accs
            for i, (fn_name, pos, __) in enumerate(agg_specs):
                value = row[pos] if pos is not None else 1
                accs[i] = _AGGREGATES[fn_name][1](accs[i], value)
        if not group_pos and not groups:
            groups[()] = [_AGGREGATES[fn][0]() for fn, __, __ in agg_specs]
        return [
            key
            + tuple(
                _AGGREGATES[fn][2](acc)
                for (fn, __, __), acc in zip(agg_specs, accs)
            )
            for key, accs in groups.items()
        ]

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Aggregate(by={self.group_pos}, {self.agg_specs})"


# -- set operations -----------------------------------------------------------


class PSetOp(PhysicalNode):
    """Set operations delegate to the interpreted operators — one
    authoritative implementation of union/except/intersect semantics
    keeps the interpreted-vs-compiled equivalence contract by
    construction."""

    def __init__(self, kind: str, left: PhysicalNode, right: PhysicalNode) -> None:
        self.kind = kind
        self.left = left
        self.right = right
        self.fn = SetOpNode._FUNCS[kind]
        if left.schema.arity != right.schema.arity:
            raise ValueError(
                f"{kind}: arity mismatch {left.schema.arity} vs "
                f"{right.schema.arity}"
            )
        self.schema = left.schema

    def rows(self, ctx: ExecContext) -> list[tuple]:
        return self.fn(
            Relation(self.left.schema, self.left.rows(ctx)),
            Relation(self.right.schema, self.right.rows(ctx)),
        ).rows

    def children(self) -> list[PhysicalNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return f"SetOp[{self.kind}]"


# -- build strategies for keyed joins ----------------------------------------


class _FreshBuild:
    """Rebuild the hash table from the build side on every execution —
    the fallback when the build side cannot be cached."""

    scalar_keys = True

    def __init__(self, source: PhysicalNode, positions: Sequence[int]) -> None:
        self.source = source
        self.key_of = _key_fn(positions, scalar=True)

    def buckets(self, ctx: ExecContext) -> dict:
        key_of = self.key_of
        buckets: dict = {}
        for row in self.source.rows(ctx):
            buckets.setdefault(key_of(row), []).append(row)
        return buckets

    def keys(self, ctx: ExecContext):
        key_of = self.key_of
        return {key_of(row) for row in self.source.rows(ctx)}

    def describe(self) -> str:
        return "build=fresh"


class _IndexBuild:
    """Reuse a base table's live :class:`HashIndex` — the index is
    maintained by the table on every mutation, so there is nothing to
    build or synchronize."""

    scalar_keys = False  # HashIndex buckets are keyed by tuples

    def __init__(self, table: Table, column_names: tuple[str, ...]) -> None:
        self.table = table
        self.column_names = column_names

    def buckets(self, ctx: ExecContext) -> dict[tuple, list[tuple]]:
        return self.table.index_on(*self.column_names).buckets

    keys = buckets  # dict membership == key set membership

    def describe(self) -> str:
        return f"build=index({self.table.name}.{','.join(self.column_names)})"


class _CachedBuild:
    """Materialized build table maintained across executions by
    replaying the base table's delta journal through the build side's
    filter/project chain.

    ``mode="buckets"`` keeps key -> [build rows] (hash/left/anti+residual
    joins); ``mode="keys"`` keeps key -> multiplicity (semi/anti joins,
    membership only).
    """

    scalar_keys = True

    def __init__(
        self,
        table: Table,
        transform: Callable[[tuple], Optional[tuple]],
        positions: Sequence[int],
        mode: str,
    ) -> None:
        self.table = table
        self.transform = transform
        self.key_of = _key_fn(positions, scalar=True)
        self.mode = mode
        self.state: Optional[dict] = None
        self.rebuilds = 0
        self.delta_rows_applied = 0
        # The cursor is also the journal-lifetime token: journaling
        # stops (and the journal is pruned) once every consumer — e.g.
        # this build, after its plan is evicted from a PlanCache — has
        # been collected.  Consuming via a cursor lets the table prune
        # the journal prefix eagerly, so it stays bounded by the
        # slowest *live* consumer instead of growing until compaction.
        self._cursor = table.delta_cursor()

    # -- synchronization --------------------------------------------------

    def _sync(self) -> dict:
        deltas = self._cursor.take()
        if deltas is None or self.state is None:
            self._rebuild()
        elif deltas:
            try:
                self._apply(deltas)
            except ValueError:  # removal of an untracked row: resync
                self._rebuild()
        return self.state

    def _rebuild(self) -> None:
        self.rebuilds += 1
        transform, key_of = self.transform, self.key_of
        state: dict = {}
        if self.mode == "buckets":
            for raw in self.table.rows:
                row = transform(raw)
                if row is not None:
                    state.setdefault(key_of(row), []).append(row)
        else:
            for raw in self.table.rows:
                row = transform(raw)
                if row is not None:
                    key = key_of(row)
                    state[key] = state.get(key, 0) + 1
        self.state = state

    def _apply(self, deltas: list[tuple[bool, tuple]]) -> None:
        transform, key_of, state = self.transform, self.key_of, self.state
        self.delta_rows_applied += len(deltas)
        for added, raw in deltas:
            row = transform(raw)
            if row is None:
                continue
            key = key_of(row)
            if self.mode == "buckets":
                if added:
                    state.setdefault(key, []).append(row)
                else:
                    bucket = state.get(key)
                    if bucket is None:
                        raise ValueError("untracked bucket")
                    bucket.remove(row)  # ValueError -> caller rebuilds
                    if not bucket:
                        del state[key]
            else:
                if added:
                    state[key] = state.get(key, 0) + 1
                else:
                    count = state.get(key, 0)
                    if count <= 1:
                        state.pop(key, None)
                    else:
                        state[key] = count - 1

    def buckets(self, ctx: ExecContext) -> dict[tuple, list[tuple]]:
        return self._sync()

    keys = buckets

    def describe(self) -> str:
        return f"build=cached[{self.mode}]({self.table.name})"


def _unwrap(node: PhysicalNode) -> PhysicalNode:
    """Skip row-preserving wrappers (alias re-qualification, CTE)."""
    while isinstance(node, (PPassthrough, PCTE)):
        node = node.child
    return node


def _delta_pipeline(
    node: PhysicalNode, allow_distinct: bool
) -> Optional[tuple[Table, Callable[[tuple], Optional[tuple]]]]:
    """If *node* is a filter/project chain over a single base-table
    scan, return ``(table, transform)`` where ``transform`` maps a raw
    table row to the chain's output row (or None when filtered out) —
    the per-delta maintenance function of a cached build.

    ``Distinct`` stages are admitted only for key-membership caches
    (``allow_distinct``): they never change the key *set*, but they do
    change bucket multiplicities.
    """
    steps: list[tuple[str, Any]] = []
    while True:
        if isinstance(node, (PPassthrough, PCTE)):
            node = node.child
        elif isinstance(node, PFilter):
            steps.append(("filter", node.test))
            node = node.child
        elif isinstance(node, PProject):
            steps.append(("project", node.positions))
            node = node.child
        elif isinstance(node, PDistinct):
            if not allow_distinct:
                return None
            node = node.child
        elif isinstance(node, PTableScan):
            break
        else:
            return None
    table = node.table
    steps.reverse()  # innermost (closest to the scan) first

    def transform(row: tuple) -> Optional[tuple]:
        for kind, arg in steps:
            if kind == "filter":
                if not arg(row):
                    return None
            else:
                row = tuple(row[p] for p in arg)
        return row

    return table, transform


def _choose_build(
    right: PhysicalNode, right_pos: Sequence[int], mode: str
) -> Union[_FreshBuild, _IndexBuild, _CachedBuild]:
    """Pick the cheapest build strategy available for a keyed join."""
    base = _unwrap(right)
    if isinstance(base, PTableScan):
        names = tuple(base.table.schema.columns[p].name for p in right_pos)
        if base.table.index_on(*names) is not None:
            return _IndexBuild(base.table, names)
    pipeline = _delta_pipeline(right, allow_distinct=(mode == "keys"))
    if pipeline is not None:
        table, transform = pipeline
        return _CachedBuild(table, transform, right_pos, mode)
    return _FreshBuild(right, right_pos)


# -- joins --------------------------------------------------------------------


class PHashJoin(PhysicalNode):
    """Inner/left-outer equi-join; build side strategy chosen at
    compile time (live index / delta-cached / fresh)."""

    def __init__(
        self,
        left: PhysicalNode,
        right: PhysicalNode,
        left_pos: Sequence[int],
        right_pos: Sequence[int],
        residual: Optional[Expr],
        how: str,
    ) -> None:
        self.left = left
        self.right = right
        self.left_pos = tuple(left_pos)
        self.how = how
        self.schema = left.schema.concat(right.schema)
        self.residual = residual
        self.residual_test: Optional[Bound] = (
            compile_expr(residual, self.schema, predicate=True)
            if residual is not None
            else None
        )
        self.build = _choose_build(right, right_pos, "buckets")
        self.key_of_left = _key_fn(self.left_pos, self.build.scalar_keys)
        self.null_pad = (None,) * right.schema.arity

    def rows(self, ctx: ExecContext) -> list[tuple]:
        buckets = self.build.buckets(ctx)
        key_of_left, residual_test = self.key_of_left, self.residual_test
        out: list[tuple] = []
        outer = self.how == "left"
        empty: tuple = ()
        for lr in self.left.rows(ctx):
            matched = False
            for rr in buckets.get(key_of_left(lr), empty):
                combined = lr + rr
                if residual_test is None or residual_test(combined):
                    out.append(combined)
                    matched = True
            if outer and not matched:
                out.append(lr + self.null_pad)
        return out

    def children(self) -> list[PhysicalNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return (
            f"HashJoin[{self.how}](keys={self.left_pos}, "
            f"{self.build.describe()}, residual={self.residual!r})"
        )


class PSemiJoin(PhysicalNode):
    """Key-membership semi join (EXISTS with pure equi-correlation)."""

    def __init__(
        self,
        left: PhysicalNode,
        right: PhysicalNode,
        left_pos: Sequence[int],
        right_pos: Sequence[int],
    ) -> None:
        self.left = left
        self.right = right
        self.left_pos = tuple(left_pos)
        self.schema = left.schema
        self.build = _choose_build(right, right_pos, "keys")
        self.key_of_left = _key_fn(self.left_pos, self.build.scalar_keys)

    def rows(self, ctx: ExecContext) -> list[tuple]:
        keys = self.build.keys(ctx)
        key_of_left = self.key_of_left
        return [lr for lr in self.left.rows(ctx) if key_of_left(lr) in keys]

    def children(self) -> list[PhysicalNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return f"SemiJoin(keys={self.left_pos}, {self.build.describe()})"


class PAntiJoin(PhysicalNode):
    """Key-based anti join (NOT EXISTS), with optional residual."""

    def __init__(
        self,
        left: PhysicalNode,
        right: PhysicalNode,
        left_pos: Sequence[int],
        right_pos: Sequence[int],
        residual: Optional[Expr],
    ) -> None:
        self.left = left
        self.right = right
        self.left_pos = tuple(left_pos)
        self.schema = left.schema
        self.residual = residual
        if residual is None:
            self.residual_test = None
            self.build = _choose_build(right, right_pos, "keys")
        else:
            self.residual_test = compile_expr(
                residual, left.schema.concat(right.schema), predicate=True
            )
            self.build = _choose_build(right, right_pos, "buckets")
        self.key_of_left = _key_fn(self.left_pos, self.build.scalar_keys)

    def rows(self, ctx: ExecContext) -> list[tuple]:
        key_of_left = self.key_of_left
        if self.residual_test is None:
            keys = self.build.keys(ctx)
            return [
                lr for lr in self.left.rows(ctx) if key_of_left(lr) not in keys
            ]
        buckets = self.build.buckets(ctx)
        test = self.residual_test
        empty: tuple = ()
        return [
            lr
            for lr in self.left.rows(ctx)
            if not any(
                test(lr + rr)
                for rr in buckets.get(key_of_left(lr), empty)
            )
        ]

    def children(self) -> list[PhysicalNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return (
            f"AntiJoin(keys={self.left_pos}, {self.build.describe()}, "
            f"residual={self.residual!r})"
        )


class PCrossJoin(PhysicalNode):
    def __init__(self, left: PhysicalNode, right: PhysicalNode) -> None:
        self.left = left
        self.right = right
        self.schema = left.schema.concat(right.schema)

    def rows(self, ctx: ExecContext) -> list[tuple]:
        right_rows = self.right.rows(ctx)
        return [lr + rr for lr in self.left.rows(ctx) for rr in right_rows]

    def children(self) -> list[PhysicalNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return "CrossJoin"


class PNestedLoopJoin(PhysicalNode):
    """θ-join fallback when no equi-key exists."""

    def __init__(
        self, left: PhysicalNode, right: PhysicalNode, predicate: Expr
    ) -> None:
        self.left = left
        self.right = right
        self.predicate = predicate
        self.schema = left.schema.concat(right.schema)
        self.test = compile_expr(predicate, self.schema, predicate=True)

    def rows(self, ctx: ExecContext) -> list[tuple]:
        test = self.test
        right_rows = self.right.rows(ctx)
        return [
            combined
            for lr in self.left.rows(ctx)
            for rr in right_rows
            if test(combined := lr + rr)
        ]

    def children(self) -> list[PhysicalNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return f"NestedLoopJoin({self.predicate!r})"


class PAntiNestedLoop(PhysicalNode):
    """General NOT EXISTS with arbitrary correlation predicate."""

    def __init__(
        self, left: PhysicalNode, right: PhysicalNode, predicate: Expr
    ) -> None:
        self.left = left
        self.right = right
        self.predicate = predicate
        self.test = compile_expr(
            predicate, left.schema.concat(right.schema), predicate=True
        )
        self.schema = left.schema

    def rows(self, ctx: ExecContext) -> list[tuple]:
        test = self.test
        right_rows = self.right.rows(ctx)
        return [
            lr
            for lr in self.left.rows(ctx)
            if not any(test(lr + rr) for rr in right_rows)
        ]

    def children(self) -> list[PhysicalNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return f"AntiNestedLoop({self.predicate!r})"


class PPrefix(PhysicalNode):
    """Truncate every row to the first *width* columns (used by the
    general semi-join lowering: join, keep the left columns, distinct)."""

    def __init__(self, child: PhysicalNode, schema: Schema) -> None:
        self.child = child
        self.schema = schema
        self.width = schema.arity

    def rows(self, ctx: ExecContext) -> list[tuple]:
        width = self.width
        return [row[:width] for row in self.child.rows(ctx)]

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Prefix({self.width})"


class PUncorrelatedExists(PhysicalNode):
    """(NOT) EXISTS with no correlation: all-or-nothing filter."""

    def __init__(
        self, left: PhysicalNode, right: PhysicalNode, negated: bool
    ) -> None:
        self.left = left
        self.right = right
        self.negated = negated
        self.schema = left.schema

    def rows(self, ctx: ExecContext) -> list[tuple]:
        keep = bool(self.right.rows(ctx)) != self.negated
        return self.left.rows(ctx) if keep else []

    def children(self) -> list[PhysicalNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return f"UncorrelatedExists(negated={self.negated})"


class PLogicalFallback(PhysicalNode):
    """Wrap an unrecognized logical node: execute it interpreted.

    Keeps the compiler total over user-defined PlanNode subclasses —
    compilation is then a per-subtree optimization, never a constraint.
    """

    def __init__(self, node: PlanNode) -> None:
        self.node = node
        self.schema = node.output_schema()

    def rows(self, ctx: ExecContext) -> list[tuple]:
        return self.node.execute().rows

    def describe(self) -> str:
        return f"Interpreted({self.node._describe()})"


# -- compile-time logical rewrites --------------------------------------------


def reduce_outer_joins(
    node: PlanNode, memo: Optional[dict[int, PlanNode]] = None
) -> PlanNode:
    """Rewrite ``δ π(left-only) σ(IS NULL(right key) ∧ rest) (A ⟕ B)``
    into ``δ π (σ(rest) A) ▷ (σ(key IS NOT NULL) B)`` — the classical
    outer-join-to-anti-join reduction.

    Listing 1's ``WLockedObjects`` uses exactly this ``LEFT JOIN ...
    IS NULL ... DISTINCT`` idiom; as an anti join it probes a cached
    key set instead of materializing |history| padded join tuples per
    step.  Applied only at plan-compile time (the interpreted path
    stays the paper's literal shape).

    Exactness conditions, all checked: the join is a pure equi left
    join; exactly one IS NULL conjunct, testing a right-side join-key
    column; every other filter conjunct and every projected column
    resolves on the left input alone; and a DISTINCT sits directly
    above the projection.  The last two handle NULL join keys — under
    hash-join semantics a NULL left key *matches* a NULL build key, so
    such a left row is kept by the original query (its matched right
    key IS NULL), possibly multiple times.  Filtering the build side
    to non-NULL keys keeps that row in the anti join too, and the
    DISTINCT collapses the multiplicity difference.
    """
    from repro.relalg.optimizer import (
        _covers,
        _rebuild_with_children,
        _resolvable,
        split_join_predicate,
    )

    if memo is None:
        memo = {}
    done = memo.get(id(node))
    if done is not None:
        return done
    original = node
    node = _rebuild_with_children(
        node, [reduce_outer_joins(c, memo) for c in node.children()]
    )

    while (
        isinstance(node, DistinctNode)
        and isinstance(node.child, ProjectNode)
        and isinstance(node.child.child, FilterNode)
        and isinstance(node.child.child.child, JoinNode)
        and node.child.child.child.how == "left"
    ):
        project = node.child
        join = project.child.child
        left_schema = join.left.output_schema()
        right_schema = join.right.output_schema()
        left_keys, right_keys, residual = split_join_predicate(
            join.predicate, left_schema, right_schema
        )
        if not left_keys or residual is not None:
            break
        key_positions = {
            right_schema.resolve(*_split(k)) for k in right_keys
        }
        null_tested: list[ColumnRef] = []
        kept: list[Expr] = []
        applicable = True
        for conjunct in split_conjuncts(project.child.predicate):
            inner = conjunct.inner if isinstance(conjunct, IsNull) else None
            if (
                isinstance(inner, ColumnRef)
                and not _resolvable(left_schema, inner)
                and _resolvable(right_schema, inner)
                and right_schema.resolve(inner.name, inner.qualifier)
                in key_positions
            ):
                null_tested.append(inner)
            elif _covers(left_schema, conjunct):
                kept.append(conjunct)
            else:
                applicable = False
                break
        if not applicable or len(null_tested) != 1:
            break
        try:
            for column in project.columns:
                left_schema.resolve(*_split(column))
        except Exception:
            break
        probe = (
            FilterNode(join.left, and_(*kept)) if kept else join.left
        )
        build = FilterNode(
            join.right,
            ~IsNull(ColumnRef(null_tested[0].name, null_tested[0].qualifier)),
        )
        node = DistinctNode(
            ProjectNode(
                JoinNode(probe, build, join.predicate, "anti"),
                project.columns,
            )
        )
        break

    memo[id(original)] = node
    return node


# -- the compiler -------------------------------------------------------------


def compile_node(
    node: PlanNode, memo: Optional[dict[int, PhysicalNode]] = None
) -> PhysicalNode:
    """Lower a logical plan (sub)tree to physical operators.

    Shared logical nodes (CTEs) compile to shared physical nodes — the
    memo is keyed by node identity, mirroring the optimizer's DAG
    preservation."""
    if memo is None:
        memo = {}
    done = memo.get(id(node))
    if done is not None:
        return done
    physical = _compile(node, memo)
    memo[id(node)] = physical
    return physical


def _compile(node: PlanNode, memo: dict[int, PhysicalNode]) -> PhysicalNode:
    if isinstance(node, SourceNode):
        if isinstance(node.source, Table):
            return PTableScan(node.source, node.alias)
        return PStatic(node.source, node.alias)
    if isinstance(node, _AliasNode):
        child = compile_node(node.child, memo)
        return PPassthrough(child, child.schema.qualify(node.alias))
    if isinstance(node, CTENode):
        return PCTE(compile_node(node.child, memo), node.name)
    if isinstance(node, FilterNode):
        return PFilter(compile_node(node.child, memo), node.predicate)
    if isinstance(node, ProjectNode):
        return PProject(compile_node(node.child, memo), node.columns)
    if isinstance(node, ExtendNode):
        return PExtend(compile_node(node.child, memo), node.name, node.expr)
    if isinstance(node, DistinctNode):
        return PDistinct(compile_node(node.child, memo))
    if isinstance(node, OrderByNode):
        return POrderBy(compile_node(node.child, memo), node.keys)
    if isinstance(node, LimitNode):
        return PLimit(compile_node(node.child, memo), node.n)
    if isinstance(node, AggregateNode):
        return PAggregate(
            compile_node(node.child, memo), node.group_by, node.aggregations
        )
    if isinstance(node, SetOpNode):
        return PSetOp(
            node.kind,
            compile_node(node.left, memo),
            compile_node(node.right, memo),
        )
    if isinstance(node, JoinNode):
        return _compile_join(node, memo)
    # SQL-frontend plan nodes (lazy import: sql.py is a heavyweight
    # optional layer above the core engine).
    from repro.relalg import sql as _sql

    if isinstance(node, _sql._UnqualifyNode):
        child = compile_node(node.child, memo)
        return PPassthrough(child, child.schema.unqualified())
    if isinstance(node, _sql._RenameColumnsNode):
        child = compile_node(node.child, memo)
        renamed = Schema(
            [
                Column(new_name) if new_name else column
                for column, new_name in zip(
                    child.schema.columns, node.renames
                )
            ]
        )
        return PPassthrough(child, renamed)
    if isinstance(node, _sql._UncorrelatedExistsNode):
        return PUncorrelatedExists(
            compile_node(node.left, memo),
            compile_node(node.right, memo),
            node.negated,
        )
    return PLogicalFallback(node)


def _compile_join(node: JoinNode, memo: dict[int, PhysicalNode]) -> PhysicalNode:
    from repro.relalg.optimizer import split_join_predicate

    left = compile_node(node.left, memo)
    right = compile_node(node.right, memo)
    left_keys, right_keys, residual = split_join_predicate(
        node.predicate, left.schema, right.schema
    )
    left_pos = [left.schema.resolve(*_split(k)) for k in left_keys]
    right_pos = [right.schema.resolve(*_split(k)) for k in right_keys]

    if node.how == "inner":
        if left_pos:
            return PHashJoin(left, right, left_pos, right_pos, residual, "inner")
        if node.predicate is None:
            return PCrossJoin(left, right)
        return PNestedLoopJoin(left, right, node.predicate)
    if node.how == "left":
        if left_pos:
            return PHashJoin(left, right, left_pos, right_pos, residual, "left")
        raise ValueError(
            "left outer join requires at least one equality conjunct "
            f"between the sides; got predicate {node.predicate!r}"
        )
    if node.how == "semi":
        if left_pos and residual is None:
            return PSemiJoin(left, right, left_pos, right_pos)
        if node.predicate is None:
            raise ValueError("semi join requires a predicate")
        joined: PhysicalNode = (
            PHashJoin(left, right, left_pos, right_pos, residual, "inner")
            if left_pos
            else PNestedLoopJoin(left, right, node.predicate)
        )
        return PDistinct(PPrefix(joined, left.schema))
    # anti
    if left_pos:
        return PAntiJoin(left, right, left_pos, right_pos, residual)
    if node.predicate is None:
        raise ValueError("anti join requires a predicate")
    return PAntiNestedLoop(left, right, node.predicate)


class CompiledPlan:
    """A query analyzed once, executable many times.

    Construction performs the full one-time work (optimization,
    lowering, schema/key resolution, expression codegen); each
    :meth:`execute` runs only the physical operators against the
    current contents of the referenced base tables.  Safe to reuse
    across scheduler steps; cached join builds re-synchronize from
    table delta journals automatically.
    """

    def __init__(self, root: PlanNode, optimize: bool = True) -> None:
        from repro.relalg.optimizer import optimize_plan

        self.logical = root
        if optimize:
            self.logical = reduce_outer_joins(optimize_plan(root))
        self.physical = compile_node(self.logical)
        self.schema = self.physical.schema
        self.executions = 0

    def execute(self) -> Relation:
        self.executions += 1
        return Relation(self.schema, self.physical.rows(ExecContext()))

    def explain(self) -> str:
        """EXPLAIN of the *physical* plan, including build strategies."""
        return self.physical.explain()


class PlanCache:
    """Per-protocol memo: (base tables) -> :class:`CompiledPlan`.

    A protocol's query shape is fixed; what varies between scheduler
    instances is which table objects it runs against.  The cache keys
    on table identity (entries hold strong references, so ids cannot
    be recycled underneath it) and evicts least-recently-used entries
    beyond *capacity* — benchmarks that churn through many short-lived
    store pairs stay bounded.
    """

    def __init__(
        self,
        builder: Callable[..., Union[Query, PlanNode]],
        capacity: int = 8,
    ) -> None:
        self._builder = builder
        self._capacity = capacity
        self._entries: dict[tuple[int, ...], tuple[tuple, CompiledPlan]] = {}

    def get(self, *tables: Table) -> CompiledPlan:
        key = tuple(id(t) for t in tables)
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._entries[key] = entry  # re-insert: most recently used
            return entry[1]
        built = self._builder(*tables)
        root = built.plan if isinstance(built, Query) else built
        plan = CompiledPlan(root)
        self._entries[key] = (tables, plan)
        while len(self._entries) > self._capacity:
            self._entries.pop(next(iter(self._entries)))
        return plan

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
