"""Mutable base tables with hash indexes.

The scheduler's ``requests`` (pending) and ``history`` stores are
instances of :class:`Table`.  Tables support batch insert/delete — the
paper empties the incoming queue "as a batch job" into the pending table
and moves qualified requests into history the same way (Section 3.3) —
and maintain optional hash indexes used by index-nested-loop joins.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from repro.relalg.relation import Relation
from repro.relalg.schema import Column, Schema


class TableError(Exception):
    """Raised for arity mismatches and unknown index columns."""


class DeltaCursor:
    """An O(1) consumer position into a table's delta journal.

    A cursor records the absolute journal offset its owner has consumed
    up to; :meth:`take` returns everything appended since, advances the
    cursor to the journal's end in O(1), and lets the table prune the
    consumed prefix eagerly.  The table holds cursors weakly — when the
    owning consumer (a cached build, a delta plan) is collected, its
    cursor dies with it and journaling stops once no consumer remains.

    ``take()`` returns ``None`` when the cursor's span is gone (journal
    truncation overtook a laggard, or :meth:`Table.clear` replaced the
    contents); the consumer must then rebuild from :attr:`Table.rows`.
    The cursor is repositioned at the journal's end either way, so the
    rebuild-then-resume sequence needs no extra bookkeeping.
    """

    __slots__ = ("table", "epoch", "position", "__weakref__")

    def __init__(self, table: "Table") -> None:
        self.table = table
        self.epoch = table._log_epoch
        self.position = table._log_base + len(table._log)

    def take(self) -> Optional[list[tuple[bool, tuple]]]:
        """Entries appended since the last take (advancing past them),
        or ``None`` when the span is gone and the owner must rebuild."""
        return self.table._take_since(self)


class HashIndex:
    """Equality hash index over one or more columns of a table."""

    __slots__ = ("positions", "buckets")

    def __init__(self, positions: Sequence[int]) -> None:
        self.positions = tuple(positions)
        self.buckets: dict[tuple, list[tuple]] = {}

    def key_of(self, row: tuple) -> tuple:
        return tuple(row[p] for p in self.positions)

    def add(self, row: tuple) -> None:
        self.buckets.setdefault(self.key_of(row), []).append(row)

    def remove(self, row: tuple) -> None:
        key = self.key_of(row)
        bucket = self.buckets.get(key)
        if bucket is None:
            return
        try:
            bucket.remove(row)
        except ValueError:
            return
        if not bucket:
            del self.buckets[key]

    def lookup(self, key: tuple) -> list[tuple]:
        return self.buckets.get(key, [])

    def clear(self) -> None:
        self.buckets.clear()


class Table:
    """A named, mutable bag of rows with a fixed schema.

    >>> t = Table("requests", ["id", "ta", "intrata", "operation", "object"])
    >>> t.insert((1, 7, 0, "r", 42))
    >>> len(t)
    1
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[str | Column],
        rows: Iterable[tuple] = (),
    ) -> None:
        self.name = name
        self.schema = Schema(
            [c if isinstance(c, Column) else Column(c, name) for c in columns]
        )
        self._rows: list[tuple] = []
        self._indexes: dict[tuple[str, ...], HashIndex] = {}
        # Delta journal: (added, row) entries.  Cached physical-plan and
        # delta-plan state (repro.relalg.plan / repro.relalg.delta)
        # replays it to stay in sync with the table instead of
        # rebuilding per step.  Positions are *absolute* (``_log_base``
        # is the offset of ``_log[0]``), so the consumed prefix can be
        # pruned without moving anyone's mark; the epoch bumps only when
        # the table's contents are replaced wholesale (``clear``).
        # Recording starts lazily on the first delta_state()/
        # delta_cursor() call, so tables with no journal consumer pay
        # nothing per mutation.
        self._log: list[tuple[bool, tuple]] = []
        self._log_base = 0
        self._log_epoch = 0
        self._log_enabled = False
        # Weak references to registered journal consumers — legacy
        # owner objects and :class:`DeltaCursor` instances alike: when
        # the last one is collected, journaling stops and the log is
        # pruned, so a table never accumulates deltas for plans that no
        # longer exist.
        self._log_consumers: list[weakref.ref] = []
        self.insert_many(rows)

    # -- mutation ---------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> None:
        if len(row) != self.schema.arity:
            raise TableError(
                f"{self.name}: row arity {len(row)} != schema arity "
                f"{self.schema.arity}"
            )
        tup = tuple(row)
        self._rows.append(tup)
        if self._log_enabled:
            self._log.append((True, tup))
            self._maybe_compact_log()
        for index in self._indexes.values():
            index.add(tup)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def delete_where(self, predicate: Callable[[tuple], bool]) -> int:
        """Delete all rows satisfying *predicate*; returns rows removed."""
        kept: list[tuple] = []
        removed: list[tuple] = []
        for row in self._rows:
            (removed if predicate(row) else kept).append(row)
        if removed:
            self._rows = kept
            if self._log_enabled:
                self._log.extend((False, row) for row in removed)
                self._maybe_compact_log()
            self._reindex()
        return len(removed)

    def delete_rows(self, rows: Iterable[tuple]) -> int:
        """Bag-delete specific rows (each listed row removes one copy)."""
        to_remove: dict[tuple, int] = {}
        for row in rows:
            to_remove[tuple(row)] = to_remove.get(tuple(row), 0) + 1
        if not to_remove:
            return 0
        kept: list[tuple] = []
        removed = 0
        for row in self._rows:
            pending = to_remove.get(row, 0)
            if pending > 0:
                to_remove[row] = pending - 1
                removed += 1
                if self._log_enabled:
                    self._log.append((False, row))
            else:
                kept.append(row)
        if removed:
            self._rows = kept
            self._reindex()
            if self._log_enabled:
                self._maybe_compact_log()
        return removed

    def clear(self) -> None:
        self._rows.clear()
        for index in self._indexes.values():
            index.clear()
        self._log_base += len(self._log)
        self._log.clear()
        self._log_epoch += 1

    # -- delta journal ----------------------------------------------------

    def register_delta_consumer(self, owner: object) -> None:
        """Tie the journal's lifetime to *owner* (held weakly).

        Journal entries are recorded while at least one registered owner
        is alive; when the last one is garbage-collected, journaling
        stops and the accumulated log is pruned immediately.  Consumers
        that cannot name an owner may still call :meth:`delta_state`
        directly, at the cost of journaling for the table's lifetime.

        Positionless owners block eager prefix pruning (the table
        cannot know how far they have read); cursor-based consumers
        (:meth:`delta_cursor`) should be preferred.
        """
        self._log_consumers.append(
            weakref.ref(owner, self._on_consumer_collected)
        )
        self._log_enabled = True

    def delta_cursor(self) -> DeltaCursor:
        """A new :class:`DeltaCursor` positioned at the journal's end.

        The cursor doubles as the journal-lifetime token: the table
        holds it weakly, exactly like :meth:`register_delta_consumer`
        owners, and additionally uses live cursor positions to prune
        the consumed journal prefix eagerly."""
        cursor = DeltaCursor(self)
        self._log_consumers.append(
            weakref.ref(cursor, self._on_consumer_collected)
        )
        self._log_enabled = True
        return cursor

    def _on_consumer_collected(self, ref: weakref.ref) -> None:
        try:
            self._log_consumers.remove(ref)
        except ValueError:  # pragma: no cover - defensive
            pass
        if not self._log_consumers:
            self._log_enabled = False
            self._log_base += len(self._log)
            self._log.clear()
            self._log_epoch += 1

    def delta_state(self) -> tuple[int, int]:
        """Opaque (epoch, position) marker of the journal's current end.

        The first call turns journaling on; mutations before that are
        never needed (a consumer always full-builds from :attr:`rows`
        before taking its first marker)."""
        self._log_enabled = True
        return self._log_epoch, self._log_base + len(self._log)

    def delta_since(
        self, epoch: int, position: int
    ) -> Optional[list[tuple[bool, tuple]]]:
        """Journal entries appended since ``(epoch, position)``, or
        ``None`` when that span is gone (truncation) and the consumer
        must rebuild from :attr:`rows`."""
        end = self._log_base + len(self._log)
        if (
            epoch != self._log_epoch
            or position < self._log_base
            or position > end
        ):
            return None
        return self._log[position - self._log_base:]

    def _take_since(
        self, cursor: DeltaCursor
    ) -> Optional[list[tuple[bool, tuple]]]:
        end = self._log_base + len(self._log)
        if cursor.epoch != self._log_epoch or cursor.position < self._log_base:
            cursor.epoch = self._log_epoch
            cursor.position = end
            self._prune_consumed()
            return None
        entries = self._log[cursor.position - self._log_base:]
        cursor.position = end
        if entries:
            self._prune_consumed()
        return entries

    def _prune_consumed(self) -> None:
        """Drop the journal prefix every live consumer has consumed.

        O(consumers) per take — consumers are a handful of plans, not
        rows.  Skipped while any positionless (legacy) owner is
        registered, since the table cannot see how far it has read."""
        low: Optional[int] = None
        for ref in self._log_consumers:
            consumer = ref()
            if consumer is None:
                continue
            if not isinstance(consumer, DeltaCursor):
                return  # positionless owner: prefix may still be needed
            if consumer.epoch != self._log_epoch:
                return  # stale cursor; its next take() resynchronizes
            position = (
                consumer.position if low is None
                else min(low, consumer.position)
            )
            low = position
        if low is None:
            return
        drop = low - self._log_base
        if drop > 0:
            del self._log[:drop]
            self._log_base = low

    def _maybe_compact_log(self) -> None:
        # Keep the journal bounded: once it dwarfs the live row count,
        # someone is lagging and it is cheaper for *that* consumer to
        # rebuild than to replay.  Truncate up to the freshest live
        # cursor — up-to-date consumers stay valid; only laggards (and
        # positionless legacy owners) are forced to rebuild.
        if len(self._log) <= max(256, 4 * len(self._rows)):
            return
        high = self._log_base
        for ref in self._log_consumers:
            consumer = ref()
            if (
                isinstance(consumer, DeltaCursor)
                and consumer.epoch == self._log_epoch
            ):
                high = max(high, consumer.position)
        drop = high - self._log_base
        if drop > 0:
            del self._log[:drop]
            self._log_base = high
        if len(self._log) > max(256, 4 * len(self._rows)):
            # Even the freshest cursor lags beyond the bound: drop all.
            self._log_base += len(self._log)
            self._log.clear()

    # -- indexing ---------------------------------------------------------

    def create_index(self, *column_names: str) -> None:
        """Create (or refresh) a hash index over the given columns."""
        positions = [self.schema.resolve(n) for n in column_names]
        index = HashIndex(positions)
        for row in self._rows:
            index.add(row)
        self._indexes[tuple(column_names)] = index

    def index_on(self, *column_names: str) -> Optional[HashIndex]:
        return self._indexes.get(tuple(column_names))

    def lookup(self, column_names: Sequence[str], key: Sequence[Any]) -> list[tuple]:
        """Index lookup; falls back to a scan when no index exists."""
        index = self._indexes.get(tuple(column_names))
        if index is not None:
            return list(index.lookup(tuple(key)))
        positions = [self.schema.resolve(n) for n in column_names]
        key_t = tuple(key)
        return [
            row
            for row in self._rows
            if tuple(row[p] for p in positions) == key_t
        ]

    def _reindex(self) -> None:
        for index in self._indexes.values():
            index.clear()
            for row in self._rows:
                index.add(row)

    # -- reading ----------------------------------------------------------

    def as_relation(self, alias: Optional[str] = None) -> Relation:
        """Snapshot the table as a relation, optionally re-qualified.

        The rows list is shared (copy-on-write discipline: operators never
        mutate input rows), so snapshots are O(1).
        """
        schema = self.schema.qualify(alias) if alias else self.schema
        return Relation(schema, self._rows)

    @property
    def rows(self) -> list[tuple]:
        return self._rows

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self._rows)} rows)"


class Catalog:
    """A named collection of tables — the scheduler's "database"."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create(self, name: str, columns: Sequence[str | Column]) -> Table:
        if name in self._tables:
            raise TableError(f"table {name!r} already exists")
        table = Table(name, columns)
        self._tables[name] = table
        return table

    def get(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise TableError(
                f"unknown table {name!r}; have {sorted(self._tables)}"
            ) from None

    def drop(self, name: str) -> None:
        self._tables.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def names(self) -> list[str]:
        return sorted(self._tables)
