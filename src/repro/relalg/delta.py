"""Incremental (delta) plans: O(|delta|) maintenance of a query result.

:class:`~repro.relalg.plan.CompiledPlan` removed the per-step *analysis*
cost but still recomputes every operator over the full table contents on
each execution.  For the scheduler that is the remaining scaling wall:
the protocol's query is fixed, the tables are large, and each step
changes only a handful of rows (the arrived batch in, the dispatched
batch out).

:class:`DeltaPlan` closes that gap with classical incremental view
maintenance over bag (multiset) semantics:

* every operator keeps **materialized per-node state** (join index maps,
  aggregate accumulators, distinct counters) sized by its *input*, and
  exposes a maintenance method that maps an input delta to an output
  delta;
* deltas are signed multisets ``{row: count}`` — inserts positive,
  retracts negative — pulled from the base tables' delta journals via
  O(1) :class:`~repro.relalg.table.DeltaCursor` consumers;
* a refresh propagates the source deltas through the operator DAG in
  topological order, so a step's cost is proportional to the rows that
  changed, not the rows that exist.

Binary operators follow the sequential delta rule — for a join,
``Δ(L ⋈ R) = ΔL ⋈ R_old  ∪  L_new ⋈ ΔR`` — applying the left delta
against the *old* right state, folding it in, then applying the right
delta against the *new* left state.  This is exact for self-joins
(ΔL and ΔR may come from the same table in the same step).

Lowering is total over the same plan shapes the physical compiler
accepts, with two deliberate refusals (:class:`DeltaLoweringError`):
``LIMIT`` (order-dependent, meaningless over unordered deltas) and
outer/anti joins with no equality conjunct and no predicate.  Unknown
logical nodes — the compiled path's interpreted-fallback cases — are
refused rather than silently recomputed, so a ``DeltaPlan`` is
incremental end-to-end or it does not exist.

If maintenance ever observes an impossible transition (a retraction of
a row the state does not hold — e.g. after a journal truncation raced a
laggard consumer), it raises :class:`DeltaStateError` and the plan
falls back to a full rebuild from the base tables, exactly like a cold
start.  Correctness never depends on the journal's retention policy.
"""

from __future__ import annotations

import operator
from time import perf_counter
from typing import Any, Callable, Optional, Sequence

from repro.relalg.expressions import compile_expr
from repro.relalg.operators import _AGGREGATES, _split, resolve_sort_keys
from repro.relalg.query import (
    AggregateNode,
    CTENode,
    DistinctNode,
    ExtendNode,
    FilterNode,
    JoinNode,
    LimitNode,
    OrderByNode,
    PlanNode,
    ProjectNode,
    Query,
    SetOpNode,
    SourceNode,
    _AliasNode,
)
from repro.relalg.relation import Relation
from repro.relalg.schema import Column, Schema
from repro.relalg.table import Table

#: A signed multiset of rows: +n inserts, -n retracts.  Zero-count
#: entries are never stored.
Delta = dict


class DeltaLoweringError(ValueError):
    """The logical plan has no incremental lowering (e.g. LIMIT).

    When raised from inside a lowering walk the message is annotated
    with — and :attr:`operator_path` carries — the root-to-operator
    path of the refusing node, so backend refusals and ``repro
    analyze`` diagnostics cite *which* operator cannot be maintained.
    """

    #: ``_describe()`` strings from the plan root down to the refusing
    #: operator; ``None`` when raised outside a lowering walk.
    operator_path: "tuple[str, ...] | None" = None


class DeltaStateError(RuntimeError):
    """Maintenance observed an impossible transition; rebuild needed."""


def _merge(target: Delta, row: tuple, count: int) -> None:
    n = target.get(row, 0) + count
    if n:
        target[row] = n
    else:
        target.pop(row, None)


def _bump(counts: dict, row: tuple, count: int) -> tuple[int, int]:
    """Apply a signed count to a non-negative multiset; (old, new)."""
    old = counts.get(row, 0)
    new = old + count
    if new < 0:
        raise DeltaStateError(f"negative multiplicity for {row!r}")
    if new:
        counts[row] = new
    else:
        counts.pop(row, None)
    return old, new


def _bucket_bump(
    index: dict, key: Any, row: tuple, count: int
) -> tuple[int, int]:
    """Like :func:`_bump` on ``index[key]``, dropping empty buckets."""
    bucket = index.get(key)
    if bucket is None:
        bucket = index[key] = {}
    old = bucket.get(row, 0)
    new = old + count
    if new < 0:
        raise DeltaStateError(f"negative multiplicity for {row!r}")
    if new:
        bucket[row] = new
    else:
        del bucket[row]
        if not bucket:
            del index[key]
    return old, new


def _key_of(positions: Sequence[int]) -> Callable[[tuple], Any]:
    """Join-key extractor (scalar for one column, () for cross joins)."""
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        return operator.itemgetter(positions[0])
    return operator.itemgetter(*positions)


def _row_projector(positions: Sequence[int]) -> Callable[[tuple], tuple]:
    if len(positions) == 1:
        p = positions[0]
        return lambda row: (row[p],)
    if not positions:
        return lambda row: ()
    return operator.itemgetter(*positions)


# -- operator nodes -----------------------------------------------------------


class DeltaNode:
    """Base class of delta operators.

    A node declares its input :attr:`arity` (set when it is wired into
    the DAG), its output :attr:`schema`, and three hooks: :meth:`reset`
    clears materialized state for a rebuild, :meth:`seed` emits state
    that exists over *empty* input (only global aggregates), and
    :meth:`apply` maps per-port input deltas to an output delta.
    """

    schema: Schema
    arity: int = 1
    label = "node"

    def reset(self) -> None:
        pass

    def seed(self) -> Optional[Delta]:
        return None

    def apply(self, slots: list[Optional[Delta]]) -> Delta:
        raise NotImplementedError


class DSource(DeltaNode):
    """A live base table; deltas come from its journal cursor."""

    label = "source"
    arity = 0

    def __init__(self, table: Table) -> None:
        self.table = table
        self.schema = table.schema
        self.cursor = table.delta_cursor()


class DStatic(DeltaNode):
    """A frozen relation: full content at rebuild, no deltas after."""

    label = "static"
    arity = 0

    def __init__(self, relation: Relation, schema: Schema) -> None:
        self.schema = schema
        self._content: Delta = {}
        for row in relation.rows:
            _merge(self._content, row, 1)

    def content_delta(self) -> Delta:
        return dict(self._content)


class DIdentity(DeltaNode):
    """Schema-only change (alias, unqualify, rename, validated sort)."""

    label = "identity"

    def __init__(self, schema: Schema) -> None:
        self.schema = schema

    def apply(self, slots: list[Optional[Delta]]) -> Delta:
        return slots[0] or {}


class DFilter(DeltaNode):
    label = "filter"

    def __init__(self, schema: Schema, test: Callable[[tuple], bool]) -> None:
        self.schema = schema
        self.test = test

    def apply(self, slots: list[Optional[Delta]]) -> Delta:
        test = self.test
        return {row: c for row, c in (slots[0] or {}).items() if test(row)}


class DProject(DeltaNode):
    label = "project"

    def __init__(self, schema: Schema, positions: Sequence[int]) -> None:
        self.schema = schema
        self.projector = _row_projector(positions)

    def apply(self, slots: list[Optional[Delta]]) -> Delta:
        projector = self.projector
        out: Delta = {}
        for row, c in (slots[0] or {}).items():
            _merge(out, projector(row), c)
        return out


class DExtend(DeltaNode):
    label = "extend"

    def __init__(self, schema: Schema, fn: Callable[[tuple], Any]) -> None:
        self.schema = schema
        self.fn = fn

    def apply(self, slots: list[Optional[Delta]]) -> Delta:
        fn = self.fn
        out: Delta = {}
        for row, c in (slots[0] or {}).items():
            _merge(out, row + (fn(row),), c)
        return out


class DPrefix(DeltaNode):
    """Truncate rows to the first *width* columns (semi-join lowering)."""

    label = "prefix"

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.width = schema.arity

    def apply(self, slots: list[Optional[Delta]]) -> Delta:
        width = self.width
        out: Delta = {}
        for row, c in (slots[0] or {}).items():
            _merge(out, row[:width], c)
        return out


class DDistinct(DeltaNode):
    """Multiplicity counter: emit on 0→positive / positive→0 edges."""

    label = "distinct"

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.counts: dict = {}

    def reset(self) -> None:
        self.counts = {}

    def apply(self, slots: list[Optional[Delta]]) -> Delta:
        out: Delta = {}
        counts = self.counts
        for row, c in (slots[0] or {}).items():
            old, new = _bump(counts, row, c)
            if old == 0 and new > 0:
                _merge(out, row, 1)
            elif old > 0 and new == 0:
                _merge(out, row, -1)
        return out


def _bulk_step(fn_name: str, acc: Any, value: Any, n: int) -> Any:
    """Multiplicity-aware aggregate step (n identical inputs at once)."""
    if fn_name == "count":
        return acc + n
    if fn_name == "sum":
        return acc + value * n
    if fn_name == "avg":
        return (acc[0] + value * n, acc[1] + n)
    # min/max: multiplicity is irrelevant
    return _AGGREGATES[fn_name][1](acc, value)


class DAggregate(DeltaNode):
    """Group-recompute aggregation.

    State is the full input multiset per group plus the group's current
    output row.  A delta marks its groups dirty; each dirty group is
    re-finalized from its (small) input multiset, retracting the old
    output row and emitting the new one.  Exact for all aggregates
    including ``min``/``max`` (which are not differentiable under
    retraction without keeping the inputs anyway).
    """

    label = "aggregate"

    def __init__(
        self,
        schema: Schema,
        group_pos: Sequence[int],
        agg_specs: Sequence[tuple[str, Optional[int], str]],
    ) -> None:
        self.schema = schema
        self.group_pos = tuple(group_pos)
        self.agg_specs = list(agg_specs)
        self.is_global = not self.group_pos
        self.groups: dict[tuple, dict] = {}
        self.out_rows: dict[tuple, tuple] = {}

    def reset(self) -> None:
        self.groups = {}
        self.out_rows = {}

    def seed(self) -> Optional[Delta]:
        if not self.is_global:
            return None
        # SQL: a global aggregate over an empty input is one row.
        row = self._finalize((), {})
        self.out_rows[()] = row
        return {row: 1}

    def _finalize(self, key: tuple, bucket: dict) -> tuple:
        accs = [_AGGREGATES[fn][0]() for fn, __, __ in self.agg_specs]
        for row, n in bucket.items():
            for i, (fn_name, pos, __) in enumerate(self.agg_specs):
                value = row[pos] if pos is not None else 1
                accs[i] = _bulk_step(fn_name, accs[i], value, n)
        return key + tuple(
            _AGGREGATES[fn][2](acc)
            for (fn, __, __), acc in zip(self.agg_specs, accs)
        )

    def apply(self, slots: list[Optional[Delta]]) -> Delta:
        group_pos, groups = self.group_pos, self.groups
        dirty: set[tuple] = set()
        for row, c in (slots[0] or {}).items():
            key = tuple(row[p] for p in group_pos)
            bucket = groups.get(key)
            if bucket is None:
                bucket = groups[key] = {}
            _bump(bucket, row, c)
            dirty.add(key)
        out: Delta = {}
        for key in dirty:
            bucket = groups.get(key)
            previous = self.out_rows.pop(key, None)
            if previous is not None:
                _merge(out, previous, -1)
            if not bucket:
                groups.pop(key, None)
                if not self.is_global:
                    continue
                bucket = {}
            new_row = self._finalize(key, bucket)
            self.out_rows[key] = new_row
            _merge(out, new_row, 1)
        return out


class DSetOp(DeltaNode):
    """Set operations as per-row multiplicity functions of the two
    sides' counts — transliterating the interpreted operators'
    semantics (``except``/``union``/``intersect`` are SET-valued,
    ``union_all``/``except_all`` bag-valued)."""

    _FUNCS: dict[str, Callable[[int, int], int]] = {
        "union_all": lambda l, r: l + r,
        "union": lambda l, r: 1 if (l or r) else 0,
        "except": lambda l, r: 1 if (l and not r) else 0,
        "except_all": lambda l, r: l - r if l > r else 0,
        "intersect": lambda l, r: 1 if (l and r) else 0,
    }

    label = "setop"
    arity = 2

    def __init__(self, schema: Schema, kind: str) -> None:
        self.schema = schema
        self.kind = kind
        self.fn = self._FUNCS[kind]
        self.left_counts: dict = {}
        self.right_counts: dict = {}

    def reset(self) -> None:
        self.left_counts = {}
        self.right_counts = {}

    def apply(self, slots: list[Optional[Delta]]) -> Delta:
        dl, dr = slots
        fn = self.fn
        left, right = self.left_counts, self.right_counts
        rows: set = set()
        if dl:
            rows.update(dl)
        if dr:
            rows.update(dr)
        out: Delta = {}
        for row in rows:
            lo = left.get(row, 0)
            ro = right.get(row, 0)
            old = fn(lo, ro)
            if dl and row in dl:
                __, ln = _bump(left, row, dl[row])
            else:
                ln = lo
            if dr and row in dr:
                __, rn = _bump(right, row, dr[row])
            else:
                rn = ro
            new = fn(ln, rn)
            if new != old:
                _merge(out, row, new - old)
        return out


class DInnerJoin(DeltaNode):
    """Inner equi/θ/cross join; both sides indexed by join key (the
    empty key for keyless joins, with the full predicate as residual)."""

    label = "join"
    arity = 2

    def __init__(
        self,
        schema: Schema,
        left_pos: Sequence[int],
        right_pos: Sequence[int],
        residual_test: Optional[Callable[[tuple], bool]],
    ) -> None:
        self.schema = schema
        self.left_key = _key_of(left_pos)
        self.right_key = _key_of(right_pos)
        self.test = residual_test
        self.left_index: dict = {}
        self.right_index: dict = {}

    def reset(self) -> None:
        self.left_index = {}
        self.right_index = {}

    def apply(self, slots: list[Optional[Delta]]) -> Delta:
        dl, dr = slots
        test = self.test
        out: Delta = {}
        if dl:
            left_key = self.left_key
            for lr, cl in dl.items():
                bucket = self.right_index.get(left_key(lr))
                if bucket:
                    for rr, cr in bucket.items():
                        combined = lr + rr
                        if test is None or test(combined):
                            _merge(out, combined, cl * cr)
            for lr, cl in dl.items():
                _bucket_bump(self.left_index, left_key(lr), lr, cl)
        if dr:
            right_key = self.right_key
            for rr, cr in dr.items():
                bucket = self.left_index.get(right_key(rr))
                if bucket:
                    for lr, cl in bucket.items():
                        combined = lr + rr
                        if test is None or test(combined):
                            _merge(out, combined, cl * cr)
            for rr, cr in dr.items():
                _bucket_bump(self.right_index, right_key(rr), rr, cr)
        return out


class DLeftJoin(DeltaNode):
    """Left outer equi-join: the inner join plus a per-left-row count
    of residual-passing matches driving null-pad insert/retract edges."""

    label = "leftjoin"
    arity = 2

    def __init__(
        self,
        schema: Schema,
        left_pos: Sequence[int],
        right_pos: Sequence[int],
        residual_test: Optional[Callable[[tuple], bool]],
        pad_width: int,
    ) -> None:
        self.schema = schema
        self.left_key = _key_of(left_pos)
        self.right_key = _key_of(right_pos)
        self.test = residual_test
        self.pad = (None,) * pad_width
        self.left_index: dict = {}
        self.right_index: dict = {}
        self.match: dict[tuple, int] = {}

    def reset(self) -> None:
        self.left_index = {}
        self.right_index = {}
        self.match = {}

    def apply(self, slots: list[Optional[Delta]]) -> Delta:
        dl, dr = slots
        test, pad = self.test, self.pad
        out: Delta = {}
        if dl:
            left_key = self.left_key
            for lr, cl in dl.items():
                key = left_key(lr)
                matches = 0
                bucket = self.right_index.get(key)
                if bucket:
                    for rr, cr in bucket.items():
                        combined = lr + rr
                        if test is None or test(combined):
                            _merge(out, combined, cl * cr)
                            matches += cr
                __, new = _bucket_bump(self.left_index, key, lr, cl)
                if new:
                    self.match[lr] = matches
                else:
                    self.match.pop(lr, None)
                if matches == 0:
                    _merge(out, lr + pad, cl)
        if dr:
            right_key = self.right_key
            for rr, cr in dr.items():
                key = right_key(rr)
                bucket = self.left_index.get(key)
                if bucket:
                    for lr, cl in bucket.items():
                        combined = lr + rr
                        if test is None or test(combined):
                            _merge(out, combined, cl * cr)
                            m_old = self.match.get(lr, 0)
                            m_new = m_old + cr
                            if m_new < 0:
                                raise DeltaStateError("match underflow")
                            self.match[lr] = m_new
                            if m_old == 0 and m_new > 0:
                                _merge(out, lr + pad, -cl)
                            elif m_old > 0 and m_new == 0:
                                _merge(out, lr + pad, cl)
                _bucket_bump(self.right_index, key, rr, cr)
        return out


class DSemiJoin(DeltaNode):
    """Key-membership semi join (EXISTS with pure equi-correlation)."""

    label = "semijoin"
    arity = 2

    def __init__(
        self,
        schema: Schema,
        left_pos: Sequence[int],
        right_pos: Sequence[int],
    ) -> None:
        self.schema = schema
        self.left_key = _key_of(left_pos)
        self.right_key = _key_of(right_pos)
        self.left_index: dict = {}
        self.right_keys: dict = {}

    def reset(self) -> None:
        self.left_index = {}
        self.right_keys = {}

    def apply(self, slots: list[Optional[Delta]]) -> Delta:
        dl, dr = slots
        out: Delta = {}
        if dl:
            left_key = self.left_key
            for lr, cl in dl.items():
                key = left_key(lr)
                if self.right_keys.get(key, 0) > 0:
                    _merge(out, lr, cl)
                _bucket_bump(self.left_index, key, lr, cl)
        if dr:
            right_key = self.right_key
            for rr, cr in dr.items():
                key = right_key(rr)
                old, new = _bump(self.right_keys, key, cr)
                if (old > 0) != (new > 0):
                    bucket = self.left_index.get(key)
                    if bucket:
                        sign = 1 if new > 0 else -1
                        for lr, cl in bucket.items():
                            _merge(out, lr, sign * cl)
        return out


class DAntiKeyJoin(DeltaNode):
    """Key-based anti join (NOT EXISTS, no residual)."""

    label = "antijoin"
    arity = 2

    def __init__(
        self,
        schema: Schema,
        left_pos: Sequence[int],
        right_pos: Sequence[int],
    ) -> None:
        self.schema = schema
        self.left_key = _key_of(left_pos)
        self.right_key = _key_of(right_pos)
        self.left_index: dict = {}
        self.right_keys: dict = {}

    def reset(self) -> None:
        self.left_index = {}
        self.right_keys = {}

    def apply(self, slots: list[Optional[Delta]]) -> Delta:
        dl, dr = slots
        out: Delta = {}
        if dl:
            left_key = self.left_key
            for lr, cl in dl.items():
                key = left_key(lr)
                if self.right_keys.get(key, 0) == 0:
                    _merge(out, lr, cl)
                _bucket_bump(self.left_index, key, lr, cl)
        if dr:
            right_key = self.right_key
            for rr, cr in dr.items():
                key = right_key(rr)
                old, new = _bump(self.right_keys, key, cr)
                if (old > 0) != (new > 0):
                    bucket = self.left_index.get(key)
                    if bucket:
                        sign = -1 if new > 0 else 1
                        for lr, cl in bucket.items():
                            _merge(out, lr, sign * cl)
        return out


class DAntiResidualJoin(DeltaNode):
    """Anti join with a residual (or keyless θ) predicate: per-left-row
    counts of predicate-passing matches; a left row is emitted while its
    count is zero."""

    label = "antijoin"
    arity = 2

    def __init__(
        self,
        schema: Schema,
        left_pos: Sequence[int],
        right_pos: Sequence[int],
        test: Callable[[tuple], bool],
    ) -> None:
        self.schema = schema
        self.left_key = _key_of(left_pos)
        self.right_key = _key_of(right_pos)
        self.test = test
        self.left_index: dict = {}
        self.right_index: dict = {}
        self.match: dict[tuple, int] = {}

    def reset(self) -> None:
        self.left_index = {}
        self.right_index = {}
        self.match = {}

    def apply(self, slots: list[Optional[Delta]]) -> Delta:
        dl, dr = slots
        test = self.test
        out: Delta = {}
        if dl:
            left_key = self.left_key
            for lr, cl in dl.items():
                key = left_key(lr)
                matches = 0
                bucket = self.right_index.get(key)
                if bucket:
                    for rr, cr in bucket.items():
                        if test(lr + rr):
                            matches += cr
                __, new = _bucket_bump(self.left_index, key, lr, cl)
                if new:
                    self.match[lr] = matches
                else:
                    self.match.pop(lr, None)
                if matches == 0:
                    _merge(out, lr, cl)
        if dr:
            right_key = self.right_key
            for rr, cr in dr.items():
                key = right_key(rr)
                bucket = self.left_index.get(key)
                if bucket:
                    for lr, cl in bucket.items():
                        if test(lr + rr):
                            m_old = self.match.get(lr, 0)
                            m_new = m_old + cr
                            if m_new < 0:
                                raise DeltaStateError("match underflow")
                            self.match[lr] = m_new
                            if m_old == 0 and m_new > 0:
                                _merge(out, lr, -cl)
                            elif m_old > 0 and m_new == 0:
                                _merge(out, lr, cl)
                _bucket_bump(self.right_index, key, rr, cr)
        return out


class DUncorrelatedExists(DeltaNode):
    """(NOT) EXISTS with no correlation: all-or-nothing gate on the
    left side, keyed by whether the right side is non-empty."""

    label = "exists"
    arity = 2

    def __init__(self, schema: Schema, negated: bool) -> None:
        self.schema = schema
        self.negated = negated
        self.left_counts: dict = {}
        self.right_total = 0

    def reset(self) -> None:
        self.left_counts = {}
        self.right_total = 0

    def apply(self, slots: list[Optional[Delta]]) -> Delta:
        dl, dr = slots
        out: Delta = {}
        emitting = (self.right_total > 0) != self.negated
        if dl:
            if emitting:
                for row, c in dl.items():
                    _merge(out, row, c)
            for row, c in dl.items():
                _bump(self.left_counts, row, c)
        if dr:
            self.right_total += sum(dr.values())
            if self.right_total < 0:
                raise DeltaStateError("negative right-side cardinality")
            emitting_now = (self.right_total > 0) != self.negated
            if emitting_now != emitting:
                sign = 1 if emitting_now else -1
                for row, c in self.left_counts.items():
                    _merge(out, row, sign * c)
        return out


class DMaterialize(DeltaNode):
    """The plan root: accumulates the maintained result multiset."""

    label = "materialize"

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.out: dict = {}

    def reset(self) -> None:
        self.out = {}

    def apply(self, slots: list[Optional[Delta]]) -> Delta:
        for row, c in (slots[0] or {}).items():
            _bump(self.out, row, c)
        return {}

    def rows(self) -> list[tuple]:
        rows: list[tuple] = []
        for row, count in self.out.items():
            if count == 1:
                rows.append(row)
            else:
                rows.extend([row] * count)
        return rows


# -- lowering -----------------------------------------------------------------


class _Lowering:
    """Single pass from a logical plan to a wired delta-operator DAG.

    Mirrors :func:`repro.relalg.plan._compile` node for node; shared
    logical subtrees (CTEs, optimizer DAGs) lower to shared delta nodes,
    and every scan of the same base table shares one :class:`DSource`
    (and thus one journal cursor)."""

    def __init__(self) -> None:
        self.memo: dict[int, tuple[DeltaNode, Schema]] = {}
        self.table_sources: dict[int, DSource] = {}
        self.order: list[DeltaNode] = []
        self.parents: dict[int, list[tuple[DeltaNode, int]]] = {}
        self._path: list[str] = []

    def wire(self, node: DeltaNode, children: Sequence[DeltaNode]) -> DeltaNode:
        for port, child in enumerate(children):
            self.parents.setdefault(id(child), []).append((node, port))
        self.order.append(node)
        return node

    def lower(self, node: PlanNode) -> tuple[DeltaNode, Schema]:
        done = self.memo.get(id(node))
        if done is not None:
            return done
        self._path.append(node._describe())
        try:
            lowered = self._lower(node)
        except DeltaLoweringError as error:
            # Annotate the refusal with the root-to-operator path once
            # (the innermost frame sees the full stack) so the backend's
            # rejection message names the offending operator in place.
            if getattr(error, "operator_path", None) is None:
                error.operator_path = tuple(self._path)
                error.args = (
                    f"{error.args[0]} [at {' > '.join(self._path)}]",
                )
            raise
        finally:
            self._path.pop()
        self.memo[id(node)] = lowered
        return lowered

    def _lower(self, node: PlanNode) -> tuple[DeltaNode, Schema]:
        if isinstance(node, SourceNode):
            if isinstance(node.source, Table):
                source = self.table_sources.get(id(node.source))
                if source is None:
                    source = DSource(node.source)
                    self.table_sources[id(node.source)] = source
                    self.order.append(source)
                schema = (
                    node.source.schema.qualify(node.alias)
                    if node.alias
                    else node.source.schema
                )
                return source, schema
            schema = (
                node.source.schema.qualify(node.alias)
                if node.alias
                else node.source.schema
            )
            static = DStatic(node.source, schema)
            self.order.append(static)
            return static, schema
        if isinstance(node, _AliasNode):
            child, schema = self.lower(node.child)
            out = schema.qualify(node.alias)
            return self.wire(DIdentity(out), [child]), out
        if isinstance(node, CTENode):
            # Transparent: sharing is structural (memoized children).
            return self.lower(node.child)
        if isinstance(node, FilterNode):
            child, schema = self.lower(node.child)
            test = compile_expr(node.predicate, schema, predicate=True)
            return self.wire(DFilter(schema, test), [child]), schema
        if isinstance(node, ProjectNode):
            child, schema = self.lower(node.child)
            positions = [schema.resolve(*_split(c)) for c in node.columns]
            out = Schema([Column(_split(c)[0]) for c in node.columns])
            return self.wire(DProject(out, positions), [child]), out
        if isinstance(node, ExtendNode):
            child, schema = self.lower(node.child)
            fn = compile_expr(node.expr, schema)
            out = Schema(list(schema.columns) + [Column(node.name)])
            return self.wire(DExtend(out, fn), [child]), out
        if isinstance(node, DistinctNode):
            child, schema = self.lower(node.child)
            return self.wire(DDistinct(schema), [child]), schema
        if isinstance(node, OrderByNode):
            # The maintained result is an unordered multiset; ordering
            # is applied by consumers (the scheduler sorts dispatch
            # batches itself).  Keys are still resolved so invalid
            # queries are rejected exactly like the compiled path.
            child, schema = self.lower(node.child)
            resolve_sort_keys(schema, node.keys)
            return self.wire(DIdentity(schema), [child]), schema
        if isinstance(node, LimitNode):
            raise DeltaLoweringError(
                "LIMIT is order-dependent and has no delta lowering"
            )
        if isinstance(node, AggregateNode):
            child, schema = self.lower(node.child)
            group_pos = [schema.resolve(*_split(g)) for g in node.group_by]
            specs: list[tuple[str, Optional[int], str]] = []
            for fn_name, input_col, output_name in node.aggregations:
                if fn_name not in _AGGREGATES:
                    raise DeltaLoweringError(
                        f"unknown aggregate {fn_name!r}"
                    )
                if fn_name == "count" and input_col == "*":
                    pos: Optional[int] = None
                else:
                    pos = schema.resolve(*_split(input_col))
                specs.append((fn_name, pos, output_name))
            out = Schema(
                [Column(_split(g)[0]) for g in node.group_by]
                + [Column(name) for __, __, name in specs]
            )
            return (
                self.wire(DAggregate(out, group_pos, specs), [child]),
                out,
            )
        if isinstance(node, SetOpNode):
            left, left_schema = self.lower(node.left)
            right, right_schema = self.lower(node.right)
            if left_schema.arity != right_schema.arity:
                raise DeltaLoweringError(
                    f"{node.kind}: arity mismatch {left_schema.arity} vs "
                    f"{right_schema.arity}"
                )
            return (
                self.wire(DSetOp(left_schema, node.kind), [left, right]),
                left_schema,
            )
        if isinstance(node, JoinNode):
            return self._lower_join(node)
        from repro.relalg import sql as _sql

        if isinstance(node, _sql._UnqualifyNode):
            child, schema = self.lower(node.child)
            out = schema.unqualified()
            return self.wire(DIdentity(out), [child]), out
        if isinstance(node, _sql._RenameColumnsNode):
            child, schema = self.lower(node.child)
            out = Schema(
                [
                    Column(new_name) if new_name else column
                    for column, new_name in zip(schema.columns, node.renames)
                ]
            )
            return self.wire(DIdentity(out), [child]), out
        if isinstance(node, _sql._UncorrelatedExistsNode):
            left, left_schema = self.lower(node.left)
            right, __ = self.lower(node.right)
            return (
                self.wire(
                    DUncorrelatedExists(left_schema, node.negated),
                    [left, right],
                ),
                left_schema,
            )
        raise DeltaLoweringError(
            f"no delta lowering for {type(node).__name__}"
        )

    def _lower_join(self, node: JoinNode) -> tuple[DeltaNode, Schema]:
        from repro.relalg.optimizer import split_join_predicate

        left, left_schema = self.lower(node.left)
        right, right_schema = self.lower(node.right)
        left_keys, right_keys, residual = split_join_predicate(
            node.predicate, left_schema, right_schema
        )
        left_pos = [left_schema.resolve(*_split(k)) for k in left_keys]
        right_pos = [right_schema.resolve(*_split(k)) for k in right_keys]
        combined = left_schema.concat(right_schema)
        residual_test = (
            compile_expr(residual, combined, predicate=True)
            if residual is not None
            else None
        )

        if node.how == "inner":
            if not left_pos and node.predicate is not None:
                residual_test = compile_expr(
                    node.predicate, combined, predicate=True
                )
            join = DInnerJoin(combined, left_pos, right_pos, residual_test)
            return self.wire(join, [left, right]), combined
        if node.how == "left":
            if not left_pos:
                raise DeltaLoweringError(
                    "left outer join requires at least one equality "
                    f"conjunct; got predicate {node.predicate!r}"
                )
            join = DLeftJoin(
                combined,
                left_pos,
                right_pos,
                residual_test,
                right_schema.arity,
            )
            return self.wire(join, [left, right]), combined
        if node.how == "semi":
            if left_pos and residual is None:
                semi = DSemiJoin(left_schema, left_pos, right_pos)
                return self.wire(semi, [left, right]), left_schema
            if node.predicate is None:
                raise DeltaLoweringError("semi join requires a predicate")
            test = residual_test
            if not left_pos:
                test = compile_expr(node.predicate, combined, predicate=True)
            inner = self.wire(
                DInnerJoin(combined, left_pos, right_pos, test),
                [left, right],
            )
            prefix = self.wire(DPrefix(left_schema), [inner])
            return self.wire(DDistinct(left_schema), [prefix]), left_schema
        # anti
        if left_pos and residual is None:
            anti: DeltaNode = DAntiKeyJoin(left_schema, left_pos, right_pos)
            return self.wire(anti, [left, right]), left_schema
        if left_pos:
            anti = DAntiResidualJoin(
                left_schema, left_pos, right_pos, residual_test
            )
            return self.wire(anti, [left, right]), left_schema
        if node.predicate is None:
            raise DeltaLoweringError("anti join requires a predicate")
        test = compile_expr(node.predicate, combined, predicate=True)
        anti = DAntiResidualJoin(left_schema, [], [], test)
        return self.wire(anti, [left, right]), left_schema


# -- the maintained plan ------------------------------------------------------


class DeltaPlan:
    """A query lowered once to delta operators, maintained many times.

    :meth:`refresh` pulls each base table's journal delta, propagates it
    through the operator DAG in topological order, and returns the
    maintained result relation — O(|delta|) per step.  The first
    refresh (and any refresh after a journal truncation or an
    impossible state transition) falls back to a full rebuild: every
    node's state is reset and the tables' current contents are replayed
    as one big insert delta.
    """

    def __init__(self, root: PlanNode, optimize: bool = True) -> None:
        from repro.relalg.optimizer import optimize_plan
        from repro.relalg.plan import reduce_outer_joins

        self.logical = root
        if optimize:
            self.logical = reduce_outer_joins(optimize_plan(root))
        lowering = _Lowering()
        top, schema = lowering.lower(self.logical)
        self.schema = schema
        self.materialized = DMaterialize(schema)
        lowering.wire(self.materialized, [top])
        self.order = lowering.order
        self.parents = lowering.parents
        self.sources = [n for n in self.order if isinstance(n, DSource)]
        self.statics = [n for n in self.order if isinstance(n, DStatic)]
        self.node_count = len(self.order)
        self._initialized = False
        self.stats: dict[str, Any] = {
            "refreshes": 0,
            "rebuilds": 0,
            "inserts": 0,
            "retracts": 0,
            "maintain_s": 0.0,
            "operator_s": {},
        }
        self.last: dict[str, Any] = {}

    # -- maintenance ------------------------------------------------------

    def refresh(self) -> Relation:
        started = perf_counter()
        last: dict[str, Any] = {
            "inserts": 0,
            "retracts": 0,
            "rebuild": False,
        }
        step_ops: dict[str, float] = {}
        rebuild = not self._initialized
        pulled: list[tuple[DSource, list[tuple[bool, tuple]]]] = []
        for source in self.sources:
            entries = source.cursor.take()
            if entries is None:
                rebuild = True
            else:
                pulled.append((source, entries))
        if rebuild:
            self._rebuild(step_ops)
            last["rebuild"] = True
        else:
            initial: dict[int, Delta] = {}
            inserts = retracts = 0
            for source, entries in pulled:
                if not entries:
                    continue
                delta: Delta = {}
                for added, row in entries:
                    if added:
                        inserts += 1
                        _merge(delta, row, 1)
                    else:
                        retracts += 1
                        _merge(delta, row, -1)
                if delta:
                    initial[id(source)] = delta
            last["inserts"] = inserts
            last["retracts"] = retracts
            if initial:
                try:
                    self._propagate(initial, seed=False, op_s=step_ops)
                except DeltaStateError:
                    self._rebuild(step_ops)
                    last["rebuild"] = True
        elapsed = perf_counter() - started
        stats = self.stats
        stats["refreshes"] += 1
        stats["inserts"] += last["inserts"]
        stats["retracts"] += last["retracts"]
        stats["maintain_s"] += elapsed
        cumulative = stats["operator_s"]
        for label, seconds in step_ops.items():
            cumulative[label] = cumulative.get(label, 0.0) + seconds
        last["maintain_s"] = elapsed
        last["operator_s"] = step_ops
        self.last = last
        return Relation(self.schema, self.materialized.rows())

    def _rebuild(self, op_s: Optional[dict[str, float]] = None) -> None:
        self.stats["rebuilds"] += 1
        for node in self.order:
            node.reset()
        initial: dict[int, Delta] = {}
        for source in self.sources:
            delta: Delta = {}
            for row in source.table.rows:
                _merge(delta, row, 1)
            if delta:
                initial[id(source)] = delta
        for static in self.statics:
            content = static.content_delta()
            if content:
                initial[id(static)] = content
        self._propagate(
            initial, seed=True, op_s=op_s if op_s is not None else {}
        )
        self._initialized = True

    def _propagate(
        self, initial: dict[int, Delta], seed: bool, op_s: dict[str, float]
    ) -> None:
        pending: dict[int, list[Optional[Delta]]] = {}
        parents = self.parents
        operator_s = op_s

        def route(node: DeltaNode, delta: Delta) -> None:
            for parent, port in parents.get(id(node), ()):
                slots = pending.get(id(parent))
                if slots is None:
                    slots = pending[id(parent)] = [None] * max(
                        parent.arity, 1
                    )
                slot = slots[port]
                if slot is None:
                    slots[port] = dict(delta)
                else:
                    for row, c in delta.items():
                        _merge(slot, row, c)

        for node in self.order:
            if isinstance(node, (DSource, DStatic)):
                delta = initial.get(id(node))
                if delta:
                    route(node, delta)
                continue
            if seed:
                seeded = node.seed()
                if seeded:
                    route(node, seeded)
            slots = pending.pop(id(node), None)
            if slots is None:
                continue
            t0 = perf_counter()
            out = node.apply(slots)
            label = node.label
            operator_s[label] = (
                operator_s.get(label, 0.0) + perf_counter() - t0
            )
            if out:
                route(node, out)

    # -- reading ----------------------------------------------------------

    def rows(self) -> list[tuple]:
        return self.materialized.rows()

    def explain(self) -> str:
        lines = []
        for node in self.order:
            fanout = len(self.parents.get(id(node), ()))
            lines.append(f"{node.label}({node.schema.arity}) -> {fanout}")
        return "\n".join(lines)


def lower_delta_plan(
    root: "PlanNode | Query", optimize: bool = True
) -> DeltaPlan:
    """Lower a logical plan (or :class:`Query`) to a :class:`DeltaPlan`.

    Raises :class:`DeltaLoweringError` when any node has no incremental
    lowering — callers use this to *refuse* rather than silently fall
    back to recomputation."""
    if isinstance(root, Query):
        root = root.plan
    return DeltaPlan(root, optimize=optimize)
