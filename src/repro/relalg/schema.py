"""Schemas: ordered, named, optionally qualified columns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence


@dataclass(frozen=True, slots=True)
class Column:
    """A column: a name plus an optional relation qualifier.

    ``Column("ta", "requests")`` renders as ``requests.ta``.  Matching is
    by name, and by qualifier too when the reference carries one —
    the same resolution rule SQL uses.
    """

    name: str
    qualifier: Optional[str] = None

    @property
    def qualified_name(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    def matches(self, name: str, qualifier: Optional[str] = None) -> bool:
        """Does a reference ``qualifier.name`` resolve to this column?"""
        if self.name != name:
            return False
        if qualifier is None:
            return True
        return self.qualifier == qualifier

    def __str__(self) -> str:
        return self.qualified_name


class SchemaError(Exception):
    """Raised for unknown or ambiguous column references."""


class Schema:
    """An ordered list of :class:`Column` with fast reference resolution."""

    __slots__ = ("columns", "_index")

    def __init__(self, columns: Sequence[Column | str]) -> None:
        self.columns: tuple[Column, ...] = tuple(
            c if isinstance(c, Column) else Column(c) for c in columns
        )
        # name -> list of positions (for ambiguity detection);
        # "qualifier.name" -> position for qualified lookups.
        index: dict[str, list[int]] = {}
        for pos, column in enumerate(self.columns):
            index.setdefault(column.name, []).append(pos)
            if column.qualifier:
                index.setdefault(column.qualified_name, []).append(pos)
        self._index = index

    @classmethod
    def of(cls, *names: str, qualifier: Optional[str] = None) -> "Schema":
        return cls([Column(n, qualifier) for n in names])

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def arity(self) -> int:
        return len(self.columns)

    def resolve(self, name: str, qualifier: Optional[str] = None) -> int:
        """Return the position of the referenced column.

        Raises :class:`SchemaError` when the reference is unknown or —
        for unqualified references — ambiguous.
        """
        key = f"{qualifier}.{name}" if qualifier else name
        positions = self._index.get(key)
        if not positions:
            raise SchemaError(
                f"unknown column {key!r}; available: "
                f"{[c.qualified_name for c in self.columns]}"
            )
        if len(positions) > 1:
            raise SchemaError(
                f"ambiguous column reference {key!r}: matches positions {positions}"
            )
        return positions[0]

    def has(self, name: str, qualifier: Optional[str] = None) -> bool:
        key = f"{qualifier}.{name}" if qualifier else name
        return len(self._index.get(key, ())) == 1

    def qualify(self, qualifier: str) -> "Schema":
        """Return a copy with every column re-qualified — the effect of
        ``FROM t AS alias``."""
        return Schema([Column(c.name, qualifier) for c in self.columns])

    def unqualified(self) -> "Schema":
        return Schema([Column(c.name) for c in self.columns])

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join product."""
        return Schema(list(self.columns) + list(other.columns))

    def project(self, positions: Iterable[int]) -> "Schema":
        return Schema([self.columns[p] for p in positions])

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def __repr__(self) -> str:
        return f"Schema({[c.qualified_name for c in self.columns]})"
