"""The Relation value: a schema plus rows.

Operators consume and produce :class:`Relation` objects.  Rows are plain
tuples; the schema maps names to positions.  Relations are *materialized*
(lists) — the scheduling workloads the paper targets are batches of at
most a few thousand pending requests per scheduler run, so simplicity and
cache-friendly list scans beat a fully pipelined iterator model here.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.relalg.schema import Schema


class Relation:
    """An immutable (by convention) bag of tuples with a schema."""

    __slots__ = ("schema", "rows")

    def __init__(self, schema: Schema, rows: Iterable[tuple]) -> None:
        self.schema = schema
        self.rows: list[tuple] = rows if isinstance(rows, list) else list(rows)

    @classmethod
    def empty(cls, schema: Schema) -> "Relation":
        return cls(schema, [])

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    def column_values(self, name: str, qualifier: str | None = None) -> list:
        """All values of one column, in row order."""
        pos = self.schema.resolve(name, qualifier)
        return [row[pos] for row in self.rows]

    def to_dicts(self) -> list[dict]:
        """Rows as name->value dicts (uses unqualified names; later
        duplicate names would overwrite earlier ones — project first)."""
        names = self.schema.names
        return [dict(zip(names, row)) for row in self.rows]

    def sorted_rows(self) -> list[tuple]:
        """Rows in a canonical order — handy for set-style comparisons in
        tests without imposing an ORDER BY."""
        return sorted(self.rows, key=repr)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Relation({self.schema!r}, {len(self.rows)} rows)"


def rows_equal_as_bags(a: Sequence[tuple], b: Sequence[tuple]) -> bool:
    """Bag (multiset) equality of two row collections."""
    if len(a) != len(b):
        return False
    counts: dict[tuple, int] = {}
    for row in a:
        counts[row] = counts.get(row, 0) + 1
    for row in b:
        remaining = counts.get(row, 0)
        if remaining == 0:
            return False
        counts[row] = remaining - 1
    return True
