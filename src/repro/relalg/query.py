"""Fluent query builder and CTE-style pipelines.

:class:`Query` builds a small logical plan (sources, filters, joins, set
operations...) that is optimized (:mod:`repro.relalg.optimizer`) and then
executed against the physical operators.  :class:`Pipeline` gives named
intermediate results, mirroring the ``WITH`` chains of the paper's
Listing 1, so the declarative SS2PL protocol transliterates one CTE at a
time.

Example::

    q = (Query.from_(requests, alias="r")
              .join(Query.from_(history, alias="h"),
                    on=col("r.object") == col("h.object"))
              .where(col("r.ta") != col("h.ta"))
              .select("r.ta", "r.intrata"))
    result = q.execute()
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

from repro.relalg import operators as ops
from repro.relalg.expressions import Expr, and_
from repro.relalg.relation import Relation
from repro.relalg.schema import Column, Schema
from repro.relalg.table import Table


class PlanNode:
    """Base class of logical plan nodes."""

    def output_schema(self) -> Schema:
        raise NotImplementedError

    def execute(self) -> Relation:
        raise NotImplementedError

    def children(self) -> list["PlanNode"]:
        return []

    def explain(self, depth: int = 0) -> str:
        """Indented textual plan, EXPLAIN-style."""
        line = "  " * depth + self._describe()
        return "\n".join(
            [line] + [child.explain(depth + 1) for child in self.children()]
        )

    def _describe(self) -> str:
        return type(self).__name__


class SourceNode(PlanNode):
    """A base table or pre-computed relation, optionally aliased."""

    def __init__(self, source: Union[Table, Relation], alias: Optional[str] = None) -> None:
        self.source = source
        self.alias = alias

    def output_schema(self) -> Schema:
        if isinstance(self.source, Table):
            relation_schema = self.source.schema
        else:
            relation_schema = self.source.schema
        return relation_schema.qualify(self.alias) if self.alias else relation_schema

    def execute(self) -> Relation:
        if isinstance(self.source, Table):
            return self.source.as_relation(self.alias)
        if self.alias:
            return ops.rename(self.source, self.alias)
        return self.source

    def _describe(self) -> str:
        name = self.source.name if isinstance(self.source, Table) else "<relation>"
        alias = f" AS {self.alias}" if self.alias else ""
        return f"Source({name}{alias})"


class FilterNode(PlanNode):
    def __init__(self, child: PlanNode, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate

    def output_schema(self) -> Schema:
        return self.child.output_schema()

    def execute(self) -> Relation:
        return ops.select(self.child.execute(), self.predicate)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def _describe(self) -> str:
        return f"Filter({self.predicate!r})"


class ProjectNode(PlanNode):
    def __init__(self, child: PlanNode, columns: Sequence[str]) -> None:
        self.child = child
        self.columns = list(columns)

    def output_schema(self) -> Schema:
        return Schema([Column(c.split(".")[-1]) for c in self.columns])

    def execute(self) -> Relation:
        return ops.project(self.child.execute(), self.columns)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def _describe(self) -> str:
        return f"Project({', '.join(self.columns)})"


class ExtendNode(PlanNode):
    def __init__(self, child: PlanNode, name: str, expr: Expr) -> None:
        self.child = child
        self.name = name
        self.expr = expr

    def output_schema(self) -> Schema:
        return Schema(list(self.child.output_schema().columns) + [Column(self.name)])

    def execute(self) -> Relation:
        return ops.extend(self.child.execute(), self.name, self.expr)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def _describe(self) -> str:
        return f"Extend({self.name} := {self.expr!r})"


class JoinNode(PlanNode):
    """Inner/left-outer/semi/anti join with an arbitrary predicate.

    At execution time the predicate is analysed (see optimizer): equality
    conjuncts between the two sides become hash keys, the rest a residual
    filter; with no equi-keys we fall back to nested loops.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        predicate: Optional[Expr],
        how: str = "inner",
    ) -> None:
        if how not in ("inner", "left", "semi", "anti"):
            raise ValueError(f"unsupported join type: {how}")
        self.left = left
        self.right = right
        self.predicate = predicate
        self.how = how

    def output_schema(self) -> Schema:
        if self.how in ("semi", "anti"):
            return self.left.output_schema()
        return self.left.output_schema().concat(self.right.output_schema())

    def execute(self) -> Relation:
        from repro.relalg.optimizer import split_join_predicate

        left = self.left.execute()
        right = self.right.execute()
        left_keys, right_keys, residual = split_join_predicate(
            self.predicate, left.schema, right.schema
        )
        if self.how == "inner":
            if left_keys:
                return ops.hash_join(left, right, left_keys, right_keys, residual)
            if self.predicate is None:
                return ops.cross_join(left, right)
            return ops.nested_loop_join(left, right, self.predicate)
        if self.how == "left":
            if left_keys:
                return ops.left_outer_join(
                    left, right, left_keys, right_keys, residual
                )
            raise ValueError(
                "left outer join requires at least one equality conjunct "
                f"between the sides; got predicate {self.predicate!r}"
            )
        if self.how == "semi":
            if left_keys and residual is None:
                return ops.semi_join(left, right, left_keys, right_keys)
            if self.predicate is None:
                raise ValueError("semi join requires a predicate")
            joined = (
                ops.hash_join(left, right, left_keys, right_keys, residual)
                if left_keys
                else ops.nested_loop_join(left, right, self.predicate)
            )
            width = left.schema.arity
            return ops.distinct(
                Relation(left.schema, [row[:width] for row in joined.rows])
            )
        # anti
        if left_keys:
            return ops.anti_join(
                left, right, left_keys, right_keys, residual
            )
        if self.predicate is None:
            raise ValueError("anti join requires a predicate")
        return ops.anti_join_predicate(left, right, self.predicate)

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def _describe(self) -> str:
        return f"Join[{self.how}]({self.predicate!r})"


class SetOpNode(PlanNode):
    _FUNCS: dict[str, Callable[[Relation, Relation], Relation]] = {
        "union": ops.union,
        "union_all": ops.union_all,
        "except": ops.except_,
        "except_all": ops.except_all,
        "intersect": ops.intersect,
    }

    def __init__(self, kind: str, left: PlanNode, right: PlanNode) -> None:
        if kind not in self._FUNCS:
            raise ValueError(f"unknown set operation {kind!r}")
        self.kind = kind
        self.left = left
        self.right = right

    def output_schema(self) -> Schema:
        return self.left.output_schema()

    def execute(self) -> Relation:
        return self._FUNCS[self.kind](self.left.execute(), self.right.execute())

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def _describe(self) -> str:
        return f"SetOp[{self.kind}]"


class DistinctNode(PlanNode):
    def __init__(self, child: PlanNode) -> None:
        self.child = child

    def output_schema(self) -> Schema:
        return self.child.output_schema()

    def execute(self) -> Relation:
        return ops.distinct(self.child.execute())

    def children(self) -> list[PlanNode]:
        return [self.child]


class OrderByNode(PlanNode):
    def __init__(self, child: PlanNode, keys: Sequence) -> None:
        self.child = child
        self.keys = list(keys)

    def output_schema(self) -> Schema:
        return self.child.output_schema()

    def execute(self) -> Relation:
        return ops.order_by(self.child.execute(), self.keys)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def _describe(self) -> str:
        return f"OrderBy({self.keys})"


class LimitNode(PlanNode):
    def __init__(self, child: PlanNode, n: int) -> None:
        self.child = child
        self.n = n

    def output_schema(self) -> Schema:
        return self.child.output_schema()

    def execute(self) -> Relation:
        return ops.limit(self.child.execute(), self.n)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def _describe(self) -> str:
        return f"Limit({self.n})"


class AggregateNode(PlanNode):
    def __init__(
        self,
        child: PlanNode,
        group_by: Sequence[str],
        aggregations: Sequence[tuple[str, str, str]],
    ) -> None:
        self.child = child
        self.group_by = list(group_by)
        self.aggregations = list(aggregations)

    def output_schema(self) -> Schema:
        return Schema(
            [Column(g.split(".")[-1]) for g in self.group_by]
            + [Column(name) for __, __, name in self.aggregations]
        )

    def execute(self) -> Relation:
        return ops.aggregate(self.child.execute(), self.group_by, self.aggregations)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def _describe(self) -> str:
        return f"Aggregate(by={self.group_by}, {self.aggregations})"


class Query:
    """Immutable fluent wrapper over a plan node."""

    def __init__(self, plan: PlanNode) -> None:
        self.plan = plan

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_(
        cls, source: Union[Table, Relation, "Query"], alias: Optional[str] = None
    ) -> "Query":
        if isinstance(source, Query):
            if alias is None:
                return cls(source.plan)
            # Re-qualify a subquery: materialize through a Source wrapper.
            return cls(_AliasNode(source.plan, alias))
        return cls(SourceNode(source, alias))

    # -- relational verbs ----------------------------------------------------

    def where(self, predicate: Expr) -> "Query":
        return Query(FilterNode(self.plan, predicate))

    def select(self, *columns: str) -> "Query":
        return Query(ProjectNode(self.plan, columns))

    def extend(self, name: str, expr: Expr) -> "Query":
        return Query(ExtendNode(self.plan, name, expr))

    def join(
        self,
        other: Union["Query", Table, Relation],
        on: Optional[Expr] = None,
        how: str = "inner",
        alias: Optional[str] = None,
    ) -> "Query":
        other_q = other if isinstance(other, Query) else Query.from_(other, alias)
        return Query(JoinNode(self.plan, other_q.plan, on, how))

    def left_join(self, other, on: Expr, alias: Optional[str] = None) -> "Query":
        return self.join(other, on=on, how="left", alias=alias)

    def semi_join(self, other, on: Expr, alias: Optional[str] = None) -> "Query":
        return self.join(other, on=on, how="semi", alias=alias)

    def anti_join(self, other, on: Expr, alias: Optional[str] = None) -> "Query":
        """NOT EXISTS(correlated subquery) — the workhorse of Listing 1."""
        return self.join(other, on=on, how="anti", alias=alias)

    def union_all(self, other: "Query") -> "Query":
        return Query(SetOpNode("union_all", self.plan, other.plan))

    def union(self, other: "Query") -> "Query":
        return Query(SetOpNode("union", self.plan, other.plan))

    def except_(self, other: "Query") -> "Query":
        return Query(SetOpNode("except", self.plan, other.plan))

    def except_all(self, other: "Query") -> "Query":
        return Query(SetOpNode("except_all", self.plan, other.plan))

    def intersect(self, other: "Query") -> "Query":
        return Query(SetOpNode("intersect", self.plan, other.plan))

    def distinct(self) -> "Query":
        return Query(DistinctNode(self.plan))

    def order_by(self, *keys) -> "Query":
        return Query(OrderByNode(self.plan, keys))

    def limit(self, n: int) -> "Query":
        return Query(LimitNode(self.plan, n))

    def aggregate(
        self,
        group_by: Sequence[str],
        aggregations: Sequence[tuple[str, str, str]],
    ) -> "Query":
        return Query(AggregateNode(self.plan, group_by, aggregations))

    # -- execution ------------------------------------------------------------

    def execute(self, optimize: bool = True) -> Relation:
        from repro.relalg.optimizer import optimize_plan

        plan = optimize_plan(self.plan) if optimize else self.plan
        return plan.execute()

    def explain(self, optimize: bool = True) -> str:
        from repro.relalg.optimizer import optimize_plan

        plan = optimize_plan(self.plan) if optimize else self.plan
        return plan.explain()

    def compile(self, optimize: bool = True):
        """One-time analysis into a reusable :class:`~repro.relalg.plan.
        CompiledPlan`: optimization, schema resolution, equi-key
        extraction and expression codegen all happen here, so each
        subsequent ``execute()`` only runs the physical operators
        against current table contents."""
        from repro.relalg.plan import CompiledPlan

        return CompiledPlan(self.plan, optimize=optimize)


class CTENode(PlanNode):
    """A named, shared subplan (SQL ``WITH``), preserved as one node.

    Several parents may reference the *same* CTENode object; the plan
    compiler (:mod:`repro.relalg.plan`) computes it at most once per
    execution and the optimizer keeps the shared identity intact.  The
    interpreted :meth:`execute` simply recomputes — sharing pays off on
    the compiled path, which is where it matters.
    """

    def __init__(self, child: PlanNode, name: str) -> None:
        self.child = child
        self.name = name

    def output_schema(self) -> Schema:
        return self.child.output_schema()

    def execute(self) -> Relation:
        return self.child.execute()

    def children(self) -> list[PlanNode]:
        return [self.child]

    def _describe(self) -> str:
        return f"CTE({self.name})"


def cte(query: "Query", name: str) -> "Query":
    """Mark a query as a shared common-table-expression (see CTENode)."""
    return Query(CTENode(query.plan, name))


class _AliasNode(PlanNode):
    """Re-qualifies a subquery's output columns with an alias."""

    def __init__(self, child: PlanNode, alias: str) -> None:
        self.child = child
        self.alias = alias

    def output_schema(self) -> Schema:
        return self.child.output_schema().qualify(self.alias)

    def execute(self) -> Relation:
        return ops.rename(self.child.execute(), self.alias)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def _describe(self) -> str:
        return f"Alias({self.alias})"


class Pipeline:
    """Named intermediate relations — SQL ``WITH`` for the builder API.

    Each step is a function receiving the pipeline (to look up earlier
    steps) and returning a :class:`Query` or :class:`Relation`.  Steps are
    materialized in order, so later steps can reference earlier ones by
    name via :meth:`ref`, and a step's result is computed exactly once.
    """

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}

    def add_table(self, name: str, table: Table, alias: Optional[str] = None) -> None:
        self._relations[name] = table.as_relation(alias or name)

    def add_relation(self, name: str, relation: Relation) -> None:
        self._relations[name] = relation

    def add(self, name: str, step: Union[Query, Relation]) -> Relation:
        relation = step.execute() if isinstance(step, Query) else step
        self._relations[name] = relation
        return relation

    def ref(self, name: str, alias: Optional[str] = None) -> Query:
        """A Query reading a previously-materialized step."""
        relation = self[name]
        return Query.from_(relation, alias)

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(
                f"pipeline has no step {name!r}; have {sorted(self._relations)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations
